"""Benchmark: regenerate Figure 13 (tRCD-reduction speedup)."""

from repro.experiments import fig13_trcd_speedup
from repro.experiments.common import full_runs_enabled
from repro.workloads import polybench


def test_fig13_trcd_speedup(once):
    kernels = (polybench.FIG13_KERNELS if full_runs_enabled()
               else polybench.FIG13_KERNELS[:6])
    result = once(fig13_trcd_speedup.run, kernels=kernels, size="mini")
    print()
    print(fig13_trcd_speedup.report(result))
    # Paper shape: low-single-digit average improvement on both
    # platforms (EasyDRAM +2.75%, Ramulator +2.58%), no regressions
    # beyond noise.
    assert 1.0 <= result["easydram_geomean"] < 1.12
    assert 0.99 <= result["ramulator_geomean"] < 1.12
    assert all(s > 0.97 for s in result["easydram"])
