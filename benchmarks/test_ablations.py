"""Benchmark: ablation studies on EasyDRAM's design choices."""

from repro.analysis import format_table
from repro.experiments import ablations


def test_scheduler_ablation(once):
    result = once(ablations.scheduler_ablation)
    print()
    print(format_table(["scheduler", "exec us"], result["rows"],
                       title="Scheduler ablation"))
    # FR-FCFS must not lose to FCFS on a row-locality workload.
    assert result["frfcfs_speedup"] >= 0.99


def test_mlp_sweep(once):
    result = once(ablations.mlp_sweep, mlps=(1, 4, 16))
    print()
    print(format_table(["mlp", "copy us", "speedup"], result["rows"],
                       title="MLP sweep (64 KiB copy)"))
    # More outstanding misses -> faster streaming copy.
    assert result["speedup_1_to_max"] > 1.5


def test_bloom_sizing(once):
    result = once(ablations.bloom_ablation, fp_rates=(0.3, 0.01))
    print()
    print(format_table(
        ["fp rate", "bytes", "hashes", "demoted"], result["rows"],
        title="Bloom-filter sizing"))
    rows = result["rows"]
    # A tighter false-positive budget costs more bytes and demotes
    # fewer strong rows to the nominal tRCD.
    assert rows[1][1] > rows[0][1]
    assert rows[1][3] <= rows[0][3]


def test_quantization_error_tracks_measurement_clock(once):
    result = once(ablations.quantization_sweep, freqs_hz=(50e6, 333e6, 1e9))
    print()
    print(format_table(["clock", "cycles", "error %"], result["rows"],
                       title="Time-scaling error vs measurement clock"))
    errors = result["errors_pct"]
    # Finer measurement clocks cannot increase the error; the native
    # 1 GHz grid reproduces the reference exactly.
    assert errors[-1] == 0.0
    assert errors[0] >= errors[-1]
