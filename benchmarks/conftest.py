"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the rows/series the paper reports (captured with ``-s`` or in the
benchmark logs).  Experiments are deterministic, so every benchmark runs
a single round — the interesting number is the artifact, not the
harness's wall time.  Set ``REPRO_FULL=1`` for paper-scale sweeps.
"""

from __future__ import annotations

import os

import pytest

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    """Tag everything under benchmarks/ with the ``bench`` marker.

    Tier-1 runs (`pytest` with the default ``-m "not bench"`` addopts)
    then skip the benchmark suite; ``pytest -m bench`` selects it.
    """
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.bench)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
