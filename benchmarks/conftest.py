"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the rows/series the paper reports (captured with ``-s`` or in the
benchmark logs).  Experiments are deterministic, so every benchmark runs
a single round — the interesting number is the artifact, not the
harness's wall time.  Set ``REPRO_FULL=1`` for paper-scale sweeps.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
