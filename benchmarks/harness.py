"""Persistent emulation-speed benchmark harness.

Runs the tagged performance workloads (the Figure 8 trace and the
Figure 10 CPU-copy stream) under the event engine in three serve
configurations — the object pipeline (baseline), the array-native fast
path with the batch kernel off, and the batch serve kernel — and writes
``BENCH_emulation.json``: per-workload wall time, accesses per second,
the measured speedups, plus engine/revision/compiler metadata.  The
kernel backend is warmed before any timing so its one-time compile cost
is reported separately (``kernel_backend.build_seconds``), never folded
into a workload wall.  Future PRs regress against the *speedup*
columns — same-host same-process ratios — because absolute wall times
are machine-dependent while the ratios are stable.

Usage::

    python benchmarks/harness.py                 # write BENCH_emulation.json
    python benchmarks/harness.py --check         # also gate vs the baseline
    python benchmarks/harness.py --update-baseline
    python -m repro run --bench                  # the CLI front door

The checked-in baseline lives at ``benchmarks/BENCH_baseline.json``; the
gate fails when any workload's speedup drops more than
:data:`REGRESSION_TOLERANCE` below its baseline value.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import subprocess
import sys
import time
from typing import Callable

from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.workloads import lmbench, microbench

#: Fractional speedup loss vs the checked-in baseline that fails the gate.
REGRESSION_TOLERANCE = 0.20

#: The kernel column's tolerance.  Kernel walls are single-digit
#: milliseconds, so the ~50-120x ratios carry far more relative noise
#: than the ~3.5x fastpath column; 50% still catches any real
#: regression (a broken kernel falls back to ~1x) without flaking on
#: scheduler jitter in the tiny denominator.
KERNEL_REGRESSION_TOLERANCE = 0.50

#: Compiling the default experiment spec must cost less than this
#: fraction of the fig08 emulation run measured in the same report, so
#: the declarative layer stays invisible next to the work it schedules.
SPEC_OVERHEAD_BUDGET = 0.01

#: The spec the overhead probe loads — the suite CI shards over.
DEFAULT_SPEC_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                                 "specs", "default.yaml")

#: Timing rounds per (workload, mode); the fastest round is kept so
#: transient host load cannot fail the gate spuriously.  Five rounds
#: (up from three) keeps the speedup ratios stable now that the kernel
#: column's denominator is tens of milliseconds.
ROUNDS = 5

#: Fig 8's main-memory regime: a working set far beyond the 512 KiB L2.
FIG08_WORKING_SET = 2 * 1024 * 1024
FIG08_CHASE_ACCESSES = 12_000

#: Fig 10 CPU-copy: src/dst anchors of the RowClone case study.
COPY_BYTES = 2 * 1024 * 1024
COPY_SRC = 0
COPY_DST = 1 << 26

BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_baseline.json")


def _fig08(session, fast: bool) -> None:
    if fast:
        session.run_trace(microbench.touch_blocks(0, FIG08_WORKING_SET))
        session.run_trace(lmbench.pointer_chase_blocks(
            FIG08_WORKING_SET, FIG08_CHASE_ACCESSES, base_addr=0))
    else:
        session.run_trace(microbench.touch_trace(0, FIG08_WORKING_SET))
        session.run_trace(lmbench.pointer_chase(
            FIG08_WORKING_SET, FIG08_CHASE_ACCESSES, base_addr=0))


def _fig10_copy(session, fast: bool) -> None:
    if fast:
        session.run_trace(microbench.cpu_copy_blocks(
            COPY_SRC, COPY_DST, COPY_BYTES))
    else:
        session.run_trace(microbench.cpu_copy_trace(
            COPY_SRC, COPY_DST, COPY_BYTES))


#: workload name -> driver(session, fast)
WORKLOADS: dict[str, Callable] = {
    "fig08": _fig08,
    "fig10-cpu-copy": _fig10_copy,
}


#: mode -> (REPRO_FASTPATH, REPRO_KERNEL); None leaves the knob at its
#: default, so the "kernel" column measures what users actually get.
MODES = {
    "baseline": ("0", "0"),
    "fastpath": ("1", "0"),
    "kernel": ("1", None),
}


def _run_once(driver: Callable, mode: str) -> tuple[float, dict]:
    """One emulation run; returns (wall seconds, observable artifact)."""
    fastpath, kernel = MODES[mode]
    saved = {k: os.environ.get(k) for k in ("REPRO_FASTPATH", "REPRO_KERNEL")}
    os.environ["REPRO_FASTPATH"] = fastpath
    if kernel is None:
        os.environ.pop("REPRO_KERNEL", None)
    else:
        os.environ["REPRO_KERNEL"] = kernel
    try:
        system = EasyDRAMSystem(jetson_nano_time_scaling(), engine="event")
        session = system.session("bench")
        start = time.perf_counter()
        driver(session, fastpath == "1")
        wall = time.perf_counter() - start
        result = session.finish()
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    artifact = dataclasses.asdict(result)
    artifact.pop("wall_seconds")
    artifact["smc"] = dataclasses.asdict(system.smc.stats)
    artifact["device"] = dataclasses.asdict(system.device.stats)
    return wall, artifact


def measure_workload(name: str, rounds: int = ROUNDS) -> dict:
    """Benchmark one workload across all serve modes (best of ``rounds``)."""
    driver = WORKLOADS[name]
    walls = dict.fromkeys(MODES, float("inf"))
    artifacts = dict.fromkeys(MODES)
    for _ in range(rounds):
        for mode in MODES:
            wall, artifacts[mode] = _run_once(driver, mode)
            walls[mode] = min(walls[mode], wall)
    if artifacts["baseline"] != artifacts["fastpath"]:
        raise AssertionError(
            f"{name}: fast path changed the emulated artifact")
    if artifacts["fastpath"] != artifacts["kernel"]:
        raise AssertionError(
            f"{name}: batch kernel changed the emulated artifact")
    accesses = artifacts["fastpath"]["accesses"]
    return {
        "workload": name,
        "accesses": accesses,
        "baseline_wall_s": round(walls["baseline"], 4),
        "fastpath_wall_s": round(walls["fastpath"], 4),
        "kernel_wall_s": round(walls["kernel"], 4),
        "baseline_accesses_per_s": round(accesses / walls["baseline"]),
        "fastpath_accesses_per_s": round(accesses / walls["fastpath"]),
        "kernel_accesses_per_s": round(accesses / walls["kernel"]),
        "speedup": round(walls["baseline"] / walls["fastpath"], 3),
        "kernel_speedup": round(walls["baseline"] / walls["kernel"], 3),
        "kernel_vs_fastpath": round(walls["fastpath"] / walls["kernel"], 3),
    }


def measure_spec_overhead(rounds: int = ROUNDS) -> dict:
    """Best-of-``rounds`` wall time to validate and compile the default
    spec (warm, like the workload walls — imports and the knob inventory
    are shared process state, not per-plan cost)."""
    from repro.specs import load_and_compile, load_spec

    path = os.path.relpath(DEFAULT_SPEC_PATH)
    validate_wall = compile_wall = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        load_spec(path)
        validate_wall = min(validate_wall, time.perf_counter() - start)
        start = time.perf_counter()
        load_and_compile(path)
        compile_wall = min(compile_wall, time.perf_counter() - start)
    return {
        "spec": "specs/default.yaml",
        "validate_wall_s": round(validate_wall, 5),
        "compile_wall_s": round(compile_wall, 5),
    }


def check_spec_overhead(report: dict,
                        budget: float = SPEC_OVERHEAD_BUDGET) -> list[str]:
    """Spec-compilation overhead failures (empty = pass).

    The denominator is the report's own fig08 emulation wall (fast path
    off), so both sides of the ratio come from the same host and
    process and the gate does not drift with machine speed.
    """
    overhead = report.get("spec_overhead")
    if not overhead:
        return []
    fig08 = next((r for r in report.get("results", [])
                  if r.get("workload") == "fig08"), None)
    if fig08 is None:
        return []
    allowed = budget * fig08["baseline_wall_s"]
    if overhead["compile_wall_s"] >= allowed:
        return [
            f"spec compile: {overhead['compile_wall_s'] * 1000:.1f}ms is"
            f" over {budget:.0%} of the fig08 run"
            f" ({fig08['baseline_wall_s']:.3f}s -> {allowed * 1000:.1f}ms"
            " budget)"]
    return []


def kernel_build_info() -> dict:
    """Resolve (and thereby warm) the kernel backend; report its cost.

    Called before any workload timing so the one-time C compile lands
    here — ``build_seconds`` with ``compiled_this_process`` true — and
    never inside a measured wall.  On hosts without a compiler the dict
    says so and the kernel column degrades to the pure-Python mirror.
    """
    from repro.dram.kernel import backend_info

    info = dict(backend_info())
    info.pop("cache_path", None)  # host-specific; keep the report portable
    return info


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)))
        return out.stdout.strip() or "unknown"
    except Exception:
        return "unknown"


def run_benchmarks(rounds: int = ROUNDS) -> dict:
    """Measure every tagged workload and assemble the report."""
    return {
        "schema": "bench-emulation/v2",
        "engine": "event",
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "rounds": rounds,
        "kernel_backend": kernel_build_info(),
        "results": [measure_workload(name, rounds) for name in WORKLOADS],
        "spec_overhead": measure_spec_overhead(rounds),
    }


def check_regression(report: dict, baseline: dict,
                     tolerance: float = REGRESSION_TOLERANCE) -> list[str]:
    """Speedup regressions of ``report`` vs ``baseline`` (empty = pass)."""
    failures = []
    columns = (("speedup", tolerance),
               ("kernel_speedup", KERNEL_REGRESSION_TOLERANCE))
    baseline_by_name = {r["workload"]: r for r in baseline.get("results", [])}
    for row in report["results"]:
        ref = baseline_by_name.get(row["workload"])
        if ref is None:
            continue
        for column, column_tolerance in columns:
            value, floor_ref = row.get(column), ref.get(column)
            if value is None or floor_ref is None:
                continue  # pre-kernel baselines gate the classic column only
            floor = floor_ref * (1.0 - column_tolerance)
            if value < floor:
                failures.append(
                    f"{row['workload']}: {column} {value:.2f}x is"
                    f" below {floor:.2f}x ({floor_ref:.2f}x baseline"
                    f" - {column_tolerance:.0%} tolerance)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the emulation speed benchmarks")
    parser.add_argument("--out", default="BENCH_emulation.json",
                        help="report path (default: ./BENCH_emulation.json)")
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument("--check", action="store_true",
                        help="fail on >20%% speedup regression vs baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help=f"rewrite {BASELINE_PATH}")
    args = parser.parse_args(argv)

    report = run_benchmarks(rounds=args.rounds)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    backend = report.get("kernel_backend", {})
    if backend:
        build = backend.get("build_seconds")
        built = (f", built in {build:.2f}s" if build
                 and backend.get("compiled_this_process") else "")
        print(f"{'kernel backend':16s} {backend.get('backend', 'none')}"
              f" ({backend.get('compiler', backend.get('reason', '?'))}"
              f"{built})")
    for row in report["results"]:
        print(f"{row['workload']:16s} base {row['baseline_wall_s']:.3f}s"
              f"  fast {row['fastpath_wall_s']:.3f}s"
              f"  kernel {row['kernel_wall_s']:.3f}s"
              f"  ({row['speedup']:.2f}x / {row['kernel_speedup']:.2f}x,"
              f" {row['kernel_accesses_per_s']:,} acc/s)")
    overhead = report.get("spec_overhead")
    if overhead:
        print(f"{'spec compile':16s} "
              f"{overhead['compile_wall_s'] * 1000:.1f}ms"
              f" (validate {overhead['validate_wall_s'] * 1000:.1f}ms,"
              f" budget {SPEC_OVERHEAD_BUDGET:.0%} of fig08)")
    print(f"wrote {args.out}")

    if args.update_baseline:
        with open(BASELINE_PATH, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"updated {BASELINE_PATH}")
        return 0
    if args.check:
        if not os.path.exists(BASELINE_PATH):
            print(f"no baseline at {BASELINE_PATH}; run --update-baseline",
                  file=sys.stderr)
            return 2
        with open(BASELINE_PATH) as fh:
            baseline = json.load(fh)
        failures = check_regression(report, baseline)
        failures += check_spec_overhead(report)
        if failures:
            for line in failures:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 1
        print("benchmark gate passed (within tolerance of baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
