"""Benchmark: regenerate Figure 12 (minimum reliable tRCD heatmap)."""

from repro.experiments import fig12_trcd_heatmap
from repro.experiments.common import full_runs_enabled


def test_fig12_trcd_heatmap(once):
    rows = 4096 if full_runs_enabled() else 1024
    result = once(fig12_trcd_heatmap.run, banks=2, rows=rows)
    print()
    print(fig12_trcd_heatmap.report(result))
    # Paper findings: most rows strong (84.5%), the rest weak, and the
    # emulated profiling path agrees with the device's ground truth.
    assert 0.6 < result["strong_fraction"] < 0.98
    assert result["weak_fraction"] > 0.02
    assert result["emulated_sample_mismatches"] == 0
