"""Benchmark: regenerate Figure 16 (multi-core contention extension)."""

from repro.experiments import fig16_core_contention


def test_fig16_core_contention(once):
    result = once(fig16_core_contention.run)
    print()
    print(fig16_core_contention.report(result))
    # Contention must grow with core count under both schedulers...
    assert all(result["slowdown_monotonic"].values())
    # ...and FR-FCFS must recover at least FCFS's row-buffer locality.
    assert result["frfcfs_hit_rate_wins"]
    # At 4 cores the shared channel is genuinely contended.
    for sched in result["schedulers"]:
        assert result["avg_slowdowns"][sched][-1] > 1.5
        # One core means no contention: slowdown exactly 1.
        assert abs(result["avg_slowdowns"][sched][0] - 1.0) < 1e-9
    # The chase core is always the worst-off one (unfairness > 1).
    for sched in result["schedulers"]:
        assert result["unfairness"][sched][-1] > 1.2
