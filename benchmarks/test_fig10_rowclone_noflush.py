"""Benchmark: regenerate Figure 10 (RowClone speedups, No Flush)."""

from repro.experiments import fig10_rowclone_noflush


def test_fig10_rowclone_noflush(once):
    result = once(fig10_rowclone_noflush.run)
    print()
    print(fig10_rowclone_noflush.report(result))
    copy = result["copy_geomean"]
    init = result["init_geomean"]
    no_ts, ts = ("EasyDRAM - No Time Scaling", "EasyDRAM - Time Scaling")
    # The headline: evaluation without faithful system modeling skews
    # RowClone's benefit by an order of magnitude (paper: ~20x).
    assert copy[no_ts] / copy[ts] > 5
    # Copy with time scaling lands in the paper's ~15x ballpark.
    assert 5 < copy[ts] < 60
    # Init gains are far smaller than copy gains in every methodology.
    assert init[ts] < copy[ts]
    assert init[no_ts] < copy[no_ts]
    # The idealized baseline sits between the extremes on copy.
    assert copy[ts] < copy["Ramulator 2.0"] * 3
    assert copy["Ramulator 2.0"] < copy[no_ts]
