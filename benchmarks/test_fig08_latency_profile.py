"""Benchmark: regenerate Figure 8 (lmbench latency profile)."""

from repro.experiments import fig08_latency_profile
from repro.experiments.common import full_runs_enabled
from repro.workloads import lmbench


def test_fig08_latency_profile(once):
    if full_runs_enabled():
        sizes = lmbench.FIG8_SIZES_KIB
        max_accesses = 12_000
    else:
        sizes = (4, 16, 64, 256, 1024, 4096, 8192)
        max_accesses = 5_000
    result = once(fig08_latency_profile.run, sizes_kib=sizes,
                  max_accesses=max_accesses)
    print()
    print(fig08_latency_profile.report(result))
    series = result["series"]
    no_ts = series["EasyDRAM - No Time Scaling"]
    ts = series["EasyDRAM - Time Scaling"]
    a57 = series["Cortex A57"]
    # Paper shapes: No-TS deflates main-memory latency by >3x; time
    # scaling tracks the real A57's profile.
    assert a57[-1] > 3 * no_ts[-1]
    assert abs(ts[-1] - a57[-1]) / a57[-1] < 0.25
