"""Benchmark: Section 6 time-scaling validation (<0.1% average error)."""

from repro.experiments import sec6_validation
from repro.experiments.common import full_runs_enabled
from repro.workloads import polybench

#: A representative PolyBench subset for the CI-scale run; REPRO_FULL
#: sweeps all kernels like the paper's 28-workload validation.
SUBSET = ("gemm", "gemver", "mvt", "trisolv", "durbin", "correlation",
          "syrk", "jacobi-2d", "atax", "cholesky")


def test_sec6_time_scaling_validation(once):
    kernels = list(polybench.names()) if full_runs_enabled() else list(SUBSET)
    result = once(sec6_validation.run, kernels=kernels, size="mini")
    print()
    print(sec6_validation.report(result))
    # The paper's headline bounds.
    assert result["avg_exec_error_pct"] < 0.1
    assert result["max_exec_error_pct"] < 1.0
