"""Benchmark: regenerate Figure 2 (request time breakdown)."""

from repro.experiments import fig02_breakdown


def test_fig02_request_breakdown(once):
    result = once(fig02_breakdown.run, accesses=2500)
    print()
    print(fig02_breakdown.report(result))
    details = result["details"]
    real = details["Real system"]
    ts = details["FPGA + software MC + Time Scaling"]
    sw = details["FPGA + software MC"]
    rtl = details["FPGA + RTL MC"]
    # Shape: software MC is the slowest model; time scaling restores
    # the real system's execution time.
    assert sw.emulated_ps > rtl.emulated_ps > real.emulated_ps
    assert abs(ts.emulated_ps - real.emulated_ps) / real.emulated_ps < 0.1
