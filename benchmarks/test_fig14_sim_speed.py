"""Benchmark: regenerate Figure 14 (simulation speed comparison)."""

from repro.experiments import fig14_sim_speed
from repro.experiments.common import full_runs_enabled
from repro.workloads import polybench


def test_fig14_simulation_speed(once):
    kernels = (polybench.FIG13_KERNELS if full_runs_enabled()
               else polybench.FIG13_KERNELS[:6] + ("durbin",))
    kernels = tuple(dict.fromkeys(kernels))  # dedupe, keep order
    result = once(fig14_sim_speed.run, kernels=kernels, size="mini")
    print()
    print(fig14_sim_speed.report(result))
    # Paper shape: the event-driven emulator beats the cycle-level
    # simulator on average (paper: 5.9x), most on compute-bound kernels.
    assert result["mean_ratio"] > 1.0
    ratios = dict(zip(result["kernels"], result["speed_ratios"]))
    assert ratios["durbin"] >= result["mean_ratio"] * 0.5
