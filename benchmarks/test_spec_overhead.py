"""Benchmark: declarative-spec compilation stays invisible.

``repro run --spec`` adds a planning layer (YAML load, schema check,
point building, filtering) in front of every sweep.  This guard measures
that layer against the same fig08 emulation run the speed harness times
and asserts it stays under :data:`benchmarks.harness.SPEC_OVERHEAD_BUDGET`
(1%) of it — the spec machinery must never become a tax on the
experiments it schedules.

Run with ``-s`` to see the measured walls and the ratio.
"""

from __future__ import annotations

from benchmarks import harness


def test_spec_compile_under_one_percent_of_fig08(once):
    def measure():
        fig08 = harness.measure_workload("fig08", rounds=harness.ROUNDS)
        overhead = harness.measure_spec_overhead(rounds=harness.ROUNDS)
        return fig08, overhead

    fig08, overhead = once(measure)
    report = {"results": [fig08], "spec_overhead": overhead}
    ratio = overhead["compile_wall_s"] / fig08["baseline_wall_s"]
    print()
    print(f"  fig08 run:     {fig08['baseline_wall_s'] * 1000:.1f} ms")
    print(f"  spec validate: {overhead['validate_wall_s'] * 1000:.2f} ms")
    print(f"  spec compile:  {overhead['compile_wall_s'] * 1000:.2f} ms"
          f"  ({ratio:.2%} of the fig08 run)")
    failures = harness.check_spec_overhead(report)
    assert not failures, failures
    # Validation alone (no point building) must be cheaper still.
    assert overhead["validate_wall_s"] <= overhead["compile_wall_s"]
