"""Benchmark: regenerate Table 1 (platform comparison)."""

from repro.experiments import tab01_platforms


def test_tab01_platform_comparison(once):
    result = once(tab01_platforms.run, kernel="gemm", size="mini")
    print()
    print(tab01_platforms.report(result))
    assert len(result["rows"]) == 6
    # The defining Table 1 property: EasyDRAM evaluates orders of
    # magnitude more CPU cycles per second than a software simulator
    # run on the same host.
    assert result["easydram_fpga_rate_hz"] > result["ramulator_rate_hz"]
