"""Benchmark: regenerate Figure 15 (channel-scaling extension)."""

from repro.experiments import fig15_channel_scaling


def test_fig15_channel_scaling(once):
    result = once(fig15_channel_scaling.run)
    print()
    print(fig15_channel_scaling.report(result))
    # The whole point of channel-level parallelism: emulated stream
    # throughput rises monotonically from 1 to 4 channels.
    assert result["monotonic"]
    assert result["speedups"][-1] > 1.5
    # The channel-line interleave balances the stream across channels.
    for counts in result["requests_per_channel"].values():
        assert min(counts) > 0.8 * max(counts)
