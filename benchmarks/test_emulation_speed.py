"""Benchmark: event-driven engine vs the cycle-stepped reference.

Guards the tentpole property of the event-driven core on the Figure 8
trace workload (working-set touch + lmbench-style pointer chase):

* **equivalence** — the artifact dict and every emulated statistic are
  bit-identical between engines (the event schedule reorders host work,
  never simulated time);
* **speed** — the event engine finishes the same emulation at least 2x
  faster in host wall time.

Run with ``-s`` to see the measured speedup and the event-engine
counters (gates, releases, refreshes, batched episodes).
"""

from __future__ import annotations

import dataclasses
import time

from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.workloads import lmbench, microbench

#: Fig 8's main-memory regime: a working set far beyond the 512 KiB L2.
WORKING_SET_BYTES = 2 * 1024 * 1024
CHASE_ACCESSES = 12_000

#: Required host-time advantage of the event engine.
MIN_SPEEDUP = 2.0

#: Timing rounds per engine; the fastest round is compared so transient
#: host load cannot fail the gate spuriously.
ROUNDS = 3


def _fig08_workload(session) -> None:
    session.run_trace(microbench.touch_trace(0, WORKING_SET_BYTES))
    session.run_trace(lmbench.pointer_chase(
        WORKING_SET_BYTES, CHASE_ACCESSES, base_addr=0))


def _run(engine: str) -> tuple[dict, float, object]:
    system = EasyDRAMSystem(jetson_nano_time_scaling(), engine=engine)
    session = system.session("fig08-speed", engine=engine)
    start = time.perf_counter()
    _fig08_workload(session)
    wall = time.perf_counter() - start
    result = session.finish()
    artifact = dataclasses.asdict(result)
    artifact.pop("wall_seconds")  # host time is the quantity under test
    artifact["smc"] = dataclasses.asdict(system.smc.stats)
    artifact["device"] = dataclasses.asdict(system.device.stats)
    artifact["violations"] = [
        (v.constraint, v.time_ps, v.earliest_ps)
        for v in system.device.checker.violations]
    return artifact, wall, session.engine


def test_fastpath_bit_identical_and_3x_faster(once):
    """The array-native fast path: >= 3x over the PR 2 object pipeline.

    Runs the harness's tagged workloads (the fig08 trace and the fig10
    CPU-copy stream) with ``REPRO_FASTPATH`` on and off on the event
    engine — the off side is exactly the PR 2 batched path — asserting
    bit-identical artifacts (the harness itself raises otherwise) and
    the tentpole's additional >= 3x host speedup on both.
    """
    from benchmarks import harness

    # More rounds than the harness default: best-of-N on both sides
    # converges to true speed (noise only ever slows a run), so the
    # ratio estimate tightens with N and the 3x gate doesn't flake.
    report = once(harness.run_benchmarks, rounds=5)
    print()
    for row in report["results"]:
        print(f"  {row['workload']:16s} base {row['baseline_wall_s']:.3f}s"
              f"  fast {row['fastpath_wall_s']:.3f}s"
              f"  ({row['speedup']:.2f}x)")
    for row in report["results"]:
        assert row["speedup"] >= 3.0, (
            f"{row['workload']}: fast path only {row['speedup']:.2f}x over"
            " the PR 2 baseline (need 3x)")


def test_event_engine_bit_identical_and_2x_faster(once):
    def measure():
        cycle_artifact = event_artifact = engine_stats = None
        cycle_wall = event_wall = float("inf")
        for _ in range(ROUNDS):
            artifact, wall, _engine = _run("cycle")
            cycle_artifact = artifact
            cycle_wall = min(cycle_wall, wall)
            artifact, wall, engine = _run("event")
            event_artifact = artifact
            event_wall = min(event_wall, wall)
            engine_stats = engine.stats
        return (cycle_artifact, event_artifact, cycle_wall, event_wall,
                engine_stats)

    cycle_artifact, event_artifact, cycle_wall, event_wall, stats = \
        once(measure)
    speedup = cycle_wall / event_wall
    print()
    print(f"fig08 trace workload ({WORKING_SET_BYTES // 1024} KiB,"
          f" {CHASE_ACCESSES} chased loads)")
    print(f"  cycle engine: {cycle_wall:.3f} s")
    print(f"  event engine: {event_wall:.3f} s  ({speedup:.2f}x)")
    print(f"  event stats:  {stats.as_dict()}")

    # Bit-identical artifacts: the event-driven schedule is a pure
    # reordering of host work, not of simulated time.
    assert event_artifact == cycle_artifact

    # The engine really took the skip-ahead path...
    assert stats.batched_episodes > 0
    assert stats.fallback_episodes == 0
    # ...and it pays off.
    assert speedup >= MIN_SPEEDUP, (
        f"event engine only {speedup:.2f}x faster (need {MIN_SPEEDUP}x);"
        f" cycle={cycle_wall:.3f}s event={event_wall:.3f}s")
