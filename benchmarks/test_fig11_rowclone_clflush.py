"""Benchmark: regenerate Figure 11 (RowClone speedups, CLFLUSH)."""

from repro.experiments import fig11_rowclone_clflush


def test_fig11_rowclone_clflush(once):
    result = once(fig11_rowclone_clflush.run)
    print()
    print(fig11_rowclone_clflush.report(result))
    ts = "EasyDRAM - Time Scaling"
    copy = result["copy"][ts]
    init = result["init"][ts]
    # Coherence overhead compresses copy speedups (paper: ~3-4x vs 15x)
    # and grows milder as the array size grows.
    assert copy[-1] > copy[0] * 0.8
    assert max(copy) < 40
    # Init degrades (speedup < 1) at the smallest sizes under CLFLUSH.
    assert init[0] < 1.2
    # ... and recovers with size.
    assert init[-1] > init[0]
