#!/usr/bin/env python3
"""Write your own software memory controller (the Listing 1 experience).

EasyDRAM's point is that a memory controller is just a program.  This
example implements a *closed-page* controller — precharge immediately
after every column access — in a dozen lines over EasyAPI, installs it
as the serve hook, and compares it with the stock open-page FR-FCFS
controller on a row-locality-heavy and a row-thrashing workload.

Expected result: open-page wins when accesses hit open rows
(streaming), closed-page wins when every access conflicts (random rows
in one bank), because the precharge is already done when the next
activation arrives.

Run:  python examples/custom_memory_controller.py
"""

from __future__ import annotations

from repro import EasyDRAMSystem, jetson_nano_time_scaling
from repro.core.easyapi import EasyAPI
from repro.core.schedulers import TableEntry
from repro.cpu.memtrace import load


def closed_page_serve(api: EasyAPI, entry: TableEntry) -> None:
    """A complete closed-page request handler (compare to Listing 1)."""
    t = api.tile.config.timing
    dram = entry.dram
    state = api.tile.device.banks[dram.bank]
    if state.open_row is not None:            # should be rare: stale row
        api.ddr_precharge(dram.bank)
        api.wait_after_command_ps(t.tRP)
    api.ddr_activate(dram.bank, dram.row)
    api.wait_after_command_ps(t.tRCD)
    if entry.is_write:
        api.ddr_write(dram.bank, dram.col)
        api.ddr_wait_ps(t.tCWL + t.tBL + t.tWR)
    else:
        api.ddr_read(dram.bank, dram.col)
        api.wait_after_command_ps(t.tRTP)
    api.ddr_precharge(dram.bank)              # close the page right away


def streaming_trace(lines: int = 3000):
    """Sequential lines: consecutive accesses hit the same open row."""
    return [load(i * 64, gap=1, dependent=True) for i in range(lines)]


def thrashing_trace(system, accesses: int = 3000):
    """Alternate between two rows of one bank: worst case for open-page."""
    mapper = system.mapper
    a = mapper.row_base_physical(0, 10)
    b = mapper.row_base_physical(0, 200)
    return [load((a if i % 2 == 0 else b) + (i // 2 % 64) * 64,
                 gap=1, dependent=True) for i in range(accesses)]


def main() -> None:
    print("workload            open-page       closed-page     winner")
    print("-" * 62)
    for name, make in (("streaming (row hits)",
                        lambda s: streaming_trace()),
                       ("row thrashing",
                        lambda s: thrashing_trace(s))):
        times = {}
        for policy in ("open-page", "closed-page"):
            system = EasyDRAMSystem(jetson_nano_time_scaling())
            if policy == "closed-page":
                system.smc.serve_hook = closed_page_serve
            result = system.run(make(system), name)
            times[policy] = result.emulated_seconds * 1e6
        winner = min(times, key=times.get)
        print(f"{name:20s}{times['open-page']:10.1f} us"
              f"{times['closed-page']:14.1f} us     {winner}")


if __name__ == "__main__":
    main()
