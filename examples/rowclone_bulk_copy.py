#!/usr/bin/env python3
"""RowClone end to end: in-DRAM bulk copy vs CPU load/store copy.

Reproduces the Section 7 case-study flow on one array size:

1. allocate clonable source/destination row pairs (solving the
   alignment / granularity / mapping constraints of Section 7.1);
2. execute the copy with in-DRAM RowClone operations (plus CLFLUSH
   coherence in the worst-case setting);
3. verify the destination rows byte-for-byte against the source;
4. compare against a CPU copy of the same size on a fresh system.

Run:  python examples/rowclone_bulk_copy.py [size_kib]
"""

from __future__ import annotations

import sys

from repro import EasyDRAMSystem, jetson_nano_time_scaling
from repro.core.techniques import RowCloneTechnique
from repro.workloads.microbench import cpu_copy_trace, touch_trace

SRC, DST = 0, 1 << 26


def main() -> None:
    size_kib = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    size = size_kib * 1024

    # --- CPU baseline -----------------------------------------------------
    cpu_system = EasyDRAMSystem(jetson_nano_time_scaling())
    cpu = cpu_system.run(cpu_copy_trace(SRC, DST, size), "cpu-copy")
    print(f"CPU copy of {size_kib} KiB: {cpu.emulated_seconds * 1e6:.2f} us"
          f" ({cpu.accesses} ld/st accesses,"
          f" {cpu.llc_miss_requests} DRAM fills)")

    # --- RowClone, best case (data already in DRAM) ----------------------------
    rc_system = EasyDRAMSystem(jetson_nano_time_scaling())
    session = rc_system.session("rowclone-copy")
    technique = RowCloneTechnique(session)
    plan = technique.plan_copy(size, base_addr=SRC)
    reliable = sum(1 for p in plan.pairs if p.reliable)
    print(f"\nallocation: {len(plan.pairs)} row pairs,"
          f" {reliable} clonable, {len(plan.pairs) - reliable} CPU-fallback")
    technique.execute_copy(plan, clflush=False)
    rc = session.finish()
    assert technique.copy_is_correct(plan), "destination rows must match!"
    print(f"RowClone copy (No Flush): {rc.emulated_seconds * 1e6:.2f} us"
          f" -> speedup {cpu.emulated_ps / rc.emulated_ps:.1f}x"
          f"  (data verified in DRAM)")

    # --- RowClone, worst case (dirty cached copies must be flushed) -------------
    fl_system = EasyDRAMSystem(jetson_nano_time_scaling())
    fl_session = fl_system.session("rowclone-clflush")
    fl_technique = RowCloneTechnique(fl_session)
    fl_plan = fl_technique.plan_copy(size, base_addr=SRC)
    fl_session.run_trace(touch_trace(SRC, size, write=True))  # dirty the src
    start = fl_session.processor.cycles
    fl_technique.execute_copy(fl_plan, clflush=True)
    flush_result = fl_session.finish()
    measured = (flush_result.cycles - start) * 699 / 1e6
    print(f"RowClone copy (CLFLUSH):  {measured:.2f} us"
          f" ({fl_technique.stats.flushed_lines} dirty lines written back)")


if __name__ == "__main__":
    main()
