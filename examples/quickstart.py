#!/usr/bin/env python3
"""Quickstart: emulate a PolyBench kernel on EasyDRAM.

Builds the default time-scaled system (a BOOM core emulated as the
Jetson Nano's 1.43 GHz Cortex A57 over DDR4-1333), runs one workload to
completion, and prints the execution statistics an end-to-end DRAM-
technique evaluation is based on.

Run:  python examples/quickstart.py [kernel] [size]
"""

from __future__ import annotations

import sys

from repro import EasyDRAMSystem, jetson_nano_time_scaling
from repro.workloads import polybench


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "gemm"
    size = sys.argv[2] if len(sys.argv) > 2 else "mini"

    config = jetson_nano_time_scaling()
    system = EasyDRAMSystem(config)
    print(f"system: {config.name}")
    print(f"  processor: {config.processor.name}"
          f" ({config.processor_domain.fpga_freq_hz / 1e6:.0f} MHz FPGA"
          f" -> {config.processor.emulated_freq_hz / 1e9:.2f} GHz emulated)")
    print(f"  caches: L1D {config.l1.size_bytes // 1024} KiB,"
          f" L2 {config.l2.size_bytes // 1024} KiB")
    print(f"  DRAM: {config.timing.name},"
          f" {config.geometry.num_banks} banks x"
          f" {config.geometry.rows_per_bank} rows")
    print(f"running PolyBench {kernel!r} ({size} dataset)...\n")

    result = system.run(polybench.trace(kernel, size), workload_name=kernel)

    print(result.summary())
    print(f"  emulated time:     {result.emulated_seconds * 1e3:.3f} ms")
    print(f"  L1D hit rate:      {1 - result.l1.miss_rate:.3f}")
    print(f"  L2 hit rate:       {1 - result.l2.miss_rate:.3f}")
    print(f"  LLC misses/kacc:   {result.mpk_accesses:.2f}")
    print(f"  row buffer:        {result.row_hits} hits,"
          f" {result.row_misses} misses, {result.row_conflicts} conflicts")
    print(f"  refreshes issued:  {result.refreshes}")
    print(f"  DRAM commands:     {result.dram_commands}")
    print(f"  simulation speed:  {result.sim_speed_hz / 1e6:.2f} MHz"
          f" (emulated cycles / host second)")


if __name__ == "__main__":
    main()
