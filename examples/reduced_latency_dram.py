#!/usr/bin/env python3
"""tRCD reduction end to end (the Section 8 case study).

1. characterize the DRAM module: find every row's minimum reliable
   tRCD through profiling requests (Figure 12);
2. load the weak rows into a Bloom filter (RAIDR-style, Section 8.2);
3. run a workload with the reduced-tRCD scheduler installed and compare
   against the nominal-timing baseline (Figure 13).

Run:  python examples/reduced_latency_dram.py [kernel]
"""

from __future__ import annotations

import sys

from repro import EasyDRAMSystem, jetson_nano_time_scaling
from repro.core.techniques import TrcdReductionTechnique
from repro.dram.timing import ns
from repro.profiling import characterize, oracle_characterize
from repro.workloads import polybench


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "gemver"
    config = jetson_nano_time_scaling()

    # --- stage 1: DRAM characterization ------------------------------------
    probe = EasyDRAMSystem(config)
    geometry = probe.config.geometry
    print("profiling a sample of rows through real profiling requests...")
    session = probe.session("characterize")
    sample = characterize(session, banks=range(1), rows=range(0, 64, 8),
                          cols_per_row_sampled=1)
    for (bank, row), profile in list(sample.profiles.items())[:4]:
        print(f"  bank {bank} row {row:4d}:"
              f" min reliable tRCD = {profile.min_trcd_ps / 1000:.1f} ns"
              f" ({'strong' if profile.is_strong() else 'weak'})")
    print("sweeping the full module (oracle-accelerated)...")
    full = oracle_characterize(probe.tile.cells, geometry,
                               range(geometry.num_banks),
                               range(geometry.rows_per_bank))
    strong = full.strong_fraction(threshold_ps=ns(9.0))
    print(f"  strong rows (<= 9.0 ns): {strong * 100:.1f}%"
          f"   weak rows: {(1 - strong) * 100:.1f}%"
          f"   (nominal tRCD: 13.5 ns)")

    # --- stage 2 + 3: Bloom filter + reduced-tRCD scheduling ---------------------
    base = EasyDRAMSystem(config).run(polybench.trace(kernel, "mini"), kernel)
    fast_system = EasyDRAMSystem(config)
    technique = TrcdReductionTechnique(fast_system, full)
    technique.install()
    print(f"\nBloom filter: {technique.bloom.size_bytes} bytes,"
          f" {technique.bloom.num_hashes} hashes,"
          f" est. false-positive rate"
          f" {technique.bloom.estimated_fp_rate() * 100:.2f}%")
    fast = fast_system.run(polybench.trace(kernel, "mini"), kernel)

    speedup = base.emulated_ps / fast.emulated_ps
    print(f"\n{kernel}: baseline {base.emulated_seconds * 1e3:.3f} ms"
          f" -> reduced-tRCD {fast.emulated_seconds * 1e3:.3f} ms"
          f"  (speedup {speedup:.4f}x)")
    print(f"  activations: {technique.stats.reduced_acts} reduced,"
          f" {technique.stats.nominal_acts} nominal,"
          f" {technique.stats.row_hits} row hits")
    print(f"  data integrity: "
          f"{fast_system.device.stats.unreliable_reads} unreliable reads"
          f" (must be 0 — the Bloom filter has no false negatives)")


if __name__ == "__main__":
    main()
