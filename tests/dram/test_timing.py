"""Tests for DRAM timing parameters and time conversions."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.timing import (
    cycles_for_ps,
    ddr4_1333,
    ddr4_2400,
    ms,
    ns,
    period_ps,
    preset,
    us,
)


class TestConversions:
    def test_ns(self):
        assert ns(13.5) == 13_500

    def test_us(self):
        assert us(7.8) == 7_800_000

    def test_ms(self):
        assert ms(64.0) == 64_000_000_000

    def test_period_1ghz(self):
        assert period_ps(1e9) == 1000

    def test_period_100mhz(self):
        assert period_ps(100e6) == 10_000

    def test_period_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            period_ps(0)
        with pytest.raises(ValueError):
            period_ps(-5)

    def test_cycles_for_exact_multiple(self):
        assert cycles_for_ps(10_000, 1e9) == 10

    def test_cycles_for_rounds_up(self):
        assert cycles_for_ps(10_001, 1e9) == 11

    def test_cycles_for_zero(self):
        assert cycles_for_ps(0, 1e9) == 0
        assert cycles_for_ps(-5, 1e9) == 0

    @given(st.integers(min_value=1, max_value=10**9),
           st.sampled_from([50e6, 100e6, 333e6, 1e9, 1.43e9]))
    def test_cycles_cover_duration(self, duration, freq):
        """The quantized cycle count always covers the duration."""
        cycles = cycles_for_ps(duration, freq)
        assert cycles * period_ps(freq) >= duration
        assert (cycles - 1) * period_ps(freq) < duration


class TestPresets:
    def test_ddr4_1333_trcd_matches_datasheet(self):
        assert ddr4_1333().tRCD == ns(13.5)

    def test_ddr4_1333_tck(self):
        assert ddr4_1333().tCK == ns(1.5)

    def test_refresh_window_is_64ms(self):
        assert ddr4_1333().tREFW == ms(64)

    def test_refresh_interval_is_7_8us(self):
        assert ddr4_1333().tREFI == us(7.8)

    def test_trc_is_tras_plus_trp(self):
        t = ddr4_1333()
        assert t.tRC == t.tRAS + t.tRP

    def test_ddr4_2400_is_faster(self):
        assert ddr4_2400().tCK < ddr4_1333().tCK

    def test_read_latency_composition(self):
        t = ddr4_1333()
        assert t.read_latency == t.tRCD + t.tCL + t.tBL

    def test_peak_bandwidth(self):
        assert ddr4_1333().peak_bandwidth_bytes_per_s == pytest.approx(
            1333e6 * 8)

    def test_preset_lookup(self):
        assert preset("DDR4-1333").name == "DDR4-1333"

    def test_preset_unknown(self):
        with pytest.raises(KeyError, match="unknown timing preset"):
            preset("DDR9")

    def test_scaled_overrides_one_field(self):
        t = ddr4_1333()
        reduced = t.scaled(tRCD=ns(9.0))
        assert reduced.tRCD == ns(9.0)
        assert reduced.tRP == t.tRP
        assert t.tRCD == ns(13.5)  # original untouched

    def test_timing_is_frozen(self):
        with pytest.raises(Exception):
            ddr4_1333().tRCD = 1
