"""Multi-channel / multi-rank address-mapping and topology tests.

Property-based round trips across every mapping scheme and random
(including non-power-of-two) geometries, the vectorized block decoder
against the scalar one, the strict out-of-range contract, and the
decode-memo cap.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import TOPOLOGIES, topology
from repro.dram.address import AddressMapper, DramAddress, Geometry

# Mixed power-of-two and non-power-of-two shapes; channels include the
# awkward count 3 and ranks the paper never models.
GEOMETRIES = st.builds(
    Geometry,
    bank_groups=st.sampled_from((1, 2, 4)),
    banks_per_group=st.sampled_from((2, 3, 4)),
    rows_per_bank=st.sampled_from((64, 96, 256)),
    columns_per_row=st.sampled_from((16, 24, 32)),
    subarray_rows=st.just(32),
    ranks=st.sampled_from((1, 2, 3)),
    channels=st.sampled_from((1, 2, 3, 4)),
)


class TestGeometryTopology:
    def test_defaults_match_paper_single_channel(self):
        g = Geometry()
        assert g.channels == 1 and g.ranks == 1
        assert g.total_banks == g.num_banks
        assert g.total_bytes == g.channel_bytes

    def test_total_scaling(self):
        base = Geometry()
        multi = Geometry(channels=2, ranks=2)
        assert multi.total_banks == 2 * base.num_banks
        assert multi.channel_bytes == 2 * base.channel_bytes
        assert multi.total_bytes == 4 * base.total_bytes

    def test_rank_and_group_of_flat_banks(self):
        g = Geometry(bank_groups=2, banks_per_group=2, ranks=2)
        assert [g.rank_of(b) for b in range(g.total_banks)] == [0] * 4 + [1] * 4
        # Group ids never collide across ranks.
        groups_r0 = {g.bank_group_of(b) for b in range(4)}
        groups_r1 = {g.bank_group_of(b) for b in range(4, 8)}
        assert groups_r0.isdisjoint(groups_r1)

    def test_rejects_nonpositive_topology(self):
        with pytest.raises(ValueError):
            Geometry(channels=0)
        with pytest.raises(ValueError):
            Geometry(ranks=0)

    def test_topology_presets(self):
        for name in TOPOLOGIES:
            g = topology(name)
            assert g.channels >= 1 and g.ranks >= 1
        assert topology("ddr4-4ch").channels == 4
        assert topology("lpddr4-4ch").num_banks == 8
        with pytest.raises(KeyError, match="unknown topology"):
            topology("hbm-banana")

    def test_topology_overrides_win(self):
        g = topology("ddr4-2ch", rows_per_bank=128, subarray_rows=64,
                     channels=8)
        assert g.channels == 8 and g.rows_per_bank == 128


@settings(max_examples=120, deadline=None)
@given(geometry=GEOMETRIES, scheme=st.sampled_from(AddressMapper.SCHEMES),
       data=st.data())
def test_roundtrip_property_all_schemes(geometry, scheme, data):
    """to_physical(to_dram(x)) == line-aligned x for every scheme/shape."""
    mapper = AddressMapper(geometry, scheme)
    lines = geometry.total_bytes // geometry.line_bytes
    line = data.draw(st.integers(min_value=0, max_value=lines - 1))
    addr = line * geometry.line_bytes
    dram = mapper.to_dram(addr)
    assert mapper.to_physical(dram) == addr
    assert 0 <= dram.channel < geometry.channels
    assert 0 <= dram.rank < geometry.ranks
    assert dram.rank == geometry.rank_of(dram.bank)
    assert dram.channel == mapper.channel_of(addr)


@settings(max_examples=60, deadline=None)
@given(geometry=GEOMETRIES, scheme=st.sampled_from(AddressMapper.SCHEMES),
       seed=st.integers(min_value=0, max_value=2**31))
def test_vectorized_prime_matches_scalar(geometry, scheme, seed):
    """The NumPy block decoder produces exactly the scalar decodes."""
    import random

    rng = random.Random(seed)
    lines = geometry.total_bytes // geometry.line_bytes
    addrs = [rng.randrange(lines) * geometry.line_bytes for _ in range(64)]
    primed = AddressMapper(geometry, scheme)
    primed.prime(addrs, [-1, -7])          # negative sentinels skipped
    scalar = AddressMapper(geometry, scheme)
    for a in addrs:
        assert primed._decode_cache[a] == scalar.to_dram(a)


class TestChannelInterleaves:
    def test_channel_line_rotates_lines(self):
        g = Geometry(channels=4)
        mapper = AddressMapper(g, "channel-line")
        chans = [mapper.to_dram(i * 64).channel for i in range(8)]
        assert chans == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_channel_row_keeps_rows_contiguous(self):
        g = Geometry(channels=2)
        mapper = AddressMapper(g, "channel-row")
        assert mapper.row_is_contiguous()
        base = mapper.row_base_physical(3, 7, channel=1)
        coords = {(mapper.to_dram(base + i * 64).channel,
                   mapper.to_dram(base + i * 64).bank,
                   mapper.to_dram(base + i * 64).row)
                  for i in range(g.columns_per_row)}
        assert coords == {(1, 3, 7)}

    def test_channel_xor_breaks_power_of_two_camping(self):
        """Row-strided streams must not camp on one channel under XOR."""
        g = Geometry(channels=4)
        mapper = AddressMapper(g, "channel-xor")
        stride = g.row_bytes * 4
        chans = {mapper.to_dram(i * stride).channel for i in range(64)}
        assert len(chans) > 1

    def test_channel_schemes_balance_streams(self):
        g = Geometry(channels=4)
        for scheme in AddressMapper.CHANNEL_SCHEMES:
            mapper = AddressMapper(g, scheme)
            counts = [0] * 4
            for i in range(4096):
                counts[mapper.to_dram(i * 64).channel] += 1
            assert min(counts) > 0.8 * max(counts), scheme

    def test_single_channel_degenerates_to_row_major(self):
        """With one channel every channel scheme equals row-bank-col."""
        g = Geometry(channels=1)
        plain = AddressMapper(g, "row-bank-col")
        for scheme in AddressMapper.CHANNEL_SCHEMES:
            mapper = AddressMapper(g, scheme)
            for i in range(0, 4096, 97):
                assert mapper.to_dram(i * 64) == plain.to_dram(i * 64), scheme


class TestStrictAliasing:
    def test_out_of_range_raises_by_default(self, geometry):
        mapper = AddressMapper(geometry, "row-bank-col")
        with pytest.raises(ValueError, match="beyond the"):
            mapper.to_dram(geometry.total_bytes)
        with pytest.raises(ValueError, match="beyond the"):
            mapper.to_dram(geometry.total_bytes + 64)

    def test_out_of_range_raises_in_prime(self, geometry):
        mapper = AddressMapper(geometry, "row-bank-col")
        with pytest.raises(ValueError, match="beyond the"):
            mapper.prime([0, geometry.total_bytes + 64])

    def test_permissive_mode_wraps(self, geometry):
        mapper = AddressMapper(geometry, "row-bank-col", strict=False)
        wrapped = mapper.to_dram(geometry.total_bytes + 128)
        assert wrapped == mapper.to_dram(128)

    def test_channel_of_checks_range_too(self, geometry):
        mapper = AddressMapper(geometry, "row-bank-col")
        with pytest.raises(ValueError, match="beyond the"):
            mapper.channel_of(geometry.total_bytes)


class TestDecodeCacheCap:
    def test_scalar_inserts_stop_at_cap(self, geometry):
        mapper = AddressMapper(geometry, "row-bank-col", cache_limit=4)
        for i in range(8):
            mapper.to_dram(i * 64)
        assert len(mapper._decode_cache) == 4
        # Decodes past the cap still return correct values.
        fresh = AddressMapper(geometry, "row-bank-col")
        assert mapper.to_dram(6 * 64) == fresh.to_dram(6 * 64)

    def test_prime_respects_cap(self, geometry):
        mapper = AddressMapper(geometry, "row-bank-col", cache_limit=4)
        mapper.prime([i * 64 for i in range(16)])
        assert len(mapper._decode_cache) == 4
        mapper.prime([i * 64 for i in range(16, 32)])  # no-op: full
        assert len(mapper._decode_cache) == 4

    def test_default_cap_is_bounded(self, geometry):
        mapper = AddressMapper(geometry, "row-bank-col")
        assert mapper.cache_limit == AddressMapper.DECODE_CACHE_LIMIT
