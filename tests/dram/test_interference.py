"""Interference-knob differential tests (refresh storms, victim counters).

The DRAM-layer interference knobs must be pure observability/scenario
features: the activation counters and the rank-scoped retention epoch
may not perturb command timing, and the object (``issue_discard``) and
array (``issue_fast``) backends may not diverge on any knob setting —
otherwise the storm/hammer scenarios would silently break the repo's
engine- and fastpath-equivalence contracts.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.core.config import InterferenceConfig, jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.core.workload_mix import WorkloadMix, run_mix
from repro.dram.commands import Command, CommandKind
from repro.dram.device import DramDevice
from repro.dram.flat_timing import K_ACT, K_PRE, K_RD, K_REF, K_WR
from repro.workloads import microbench

KIND_CODES = {CommandKind.ACT: K_ACT, CommandKind.PRE: K_PRE,
              CommandKind.RD: K_RD, CommandKind.WR: K_WR,
              CommandKind.REF: K_REF}


def random_commands(geometry, rng, steps, open_rows):
    """A randomized loosely-legal stream as (kind, bank, row, col) tuples."""
    out = []
    for _ in range(steps):
        bank = rng.randrange(geometry.num_banks)
        if rng.random() < 0.06 and not any(r >= 0 for r in open_rows):
            out.append((CommandKind.REF, 0, 0, 0))
        elif open_rows[bank] < 0:
            row = rng.randrange(geometry.rows_per_bank)
            open_rows[bank] = row
            out.append((CommandKind.ACT, bank, row, 0))
        elif rng.random() < 0.3:
            open_rows[bank] = -1
            out.append((CommandKind.PRE, bank, 0, 0))
        elif rng.random() < 0.6:
            out.append((CommandKind.RD, bank, 0,
                        rng.randrange(geometry.columns_per_row)))
        else:
            out.append((CommandKind.WR, bank, 0,
                        rng.randrange(geometry.columns_per_row)))
    return out


class TestBackendsAgreeUnderKnobs:
    def test_issue_fast_matches_issue_discard_with_knobs(
            self, timing, geometry, cells):
        """Same stream, both backends, all knobs on: identical state."""
        kwargs = dict(cells=cells, track_row_activations=True, refresh_rank=0)
        a = DramDevice(timing, geometry, **kwargs)
        b = DramDevice(timing, geometry, **kwargs)
        rng = random.Random(11)
        stream = random_commands(geometry, rng, 400,
                                 [-1] * geometry.num_banks)
        t = 0
        for kind, bank, row, col in stream:
            t += rng.randrange(1000, 60_000)
            a.issue_discard(Command(kind, bank=bank, row=row, col=col), t)
            b.issue_fast(KIND_CODES[kind], bank, row, col, t, False)
        assert a.row_activations == b.row_activations
        assert a.row_activations  # the stream did activate rows
        assert a.hammer_report() == b.hammer_report()
        assert a.stats.commands == b.stats.commands
        for rank_a, rank_b in zip(a.ranks, b.ranks):
            assert rank_a.last_ref == rank_b.last_ref
            assert rank_a.refresh_epoch_ps == rank_b.refresh_epoch_ps

    def test_flat_earliest_unperturbed_by_knobs(self, timing, geometry,
                                                cells):
        """The knobs are observability only: timing answers are identical
        to a knob-free device fed the same stream, and the flat state
        still matches the object checker's earliest-issue oracle."""
        plain = DramDevice(timing, geometry, cells=cells)
        knobbed = DramDevice(timing, geometry, cells=cells,
                             track_row_activations=True, refresh_rank=0)
        rng = random.Random(23)
        stream = random_commands(geometry, rng, 300,
                                 [-1] * geometry.num_banks)
        t = 0
        for kind, bank, row, col in stream:
            t += rng.randrange(1000, 60_000)
            code = KIND_CODES[kind]
            plain.issue_fast(code, bank, row, col, t, False)
            knobbed.issue_fast(code, bank, row, col, t, False)
            for probe_kind, probe_code in KIND_CODES.items():
                for probe_bank in range(geometry.num_banks):
                    cmd = Command(probe_kind, bank=probe_bank, row=1, col=1)
                    want, _ = knobbed.checker.earliest_issue(
                        cmd, knobbed.banks, knobbed.rank)
                    got = knobbed.flat.earliest(probe_code, probe_bank)
                    assert got == max(0, want), (probe_kind, probe_bank)
                    assert got == plain.flat.earliest(probe_code, probe_bank)


class TestRefreshRankScoping:
    @pytest.fixture
    def two_rank_device(self, timing, cells):
        config = jetson_nano_time_scaling().with_topology("ddr4-1ch-2rk")
        return DramDevice(timing, config.geometry, refresh_rank=1)

    def test_ref_scopes_retention_epoch_not_last_ref(self, two_rank_device):
        device = two_rank_device
        device.issue(Command(CommandKind.REF), 1_000_000)
        # Timing shadow is channel-global on every rank...
        assert all(r.last_ref == 1_000_000 for r in device.ranks)
        # ...but only the stormed rank's retention epoch advances.
        assert device.ranks[1].refresh_epoch_ps == 1_000_000
        assert device.ranks[0].refresh_epoch_ps == 0

    def test_out_of_range_rank_rejected(self, timing, geometry, cells):
        with pytest.raises(ValueError, match="refresh_rank"):
            DramDevice(timing, geometry, cells=cells,
                       refresh_rank=geometry.ranks)


class TestActivationCounters:
    def test_hammer_report_ranks_by_neighbour_pressure(self, timing,
                                                       geometry, cells):
        device = DramDevice(timing, geometry, cells=cells,
                            track_row_activations=True)
        t = 0
        # Hammer rows 10 and 12 in bank 0: row 11 is the double-sided
        # victim; rows 9 and 13 are single-sided.
        for _ in range(50):
            for row in (10, 12):
                t += 100_000
                device.issue(Command(CommandKind.ACT, bank=0, row=row), t)
                t += 100_000
                device.issue(Command(CommandKind.PRE, bank=0), t)
        report = device.hammer_report(top=3)
        assert report[0] == {"bank": 0, "row": 11, "pressure": 100,
                             "own_acts": 0}
        assert {(e["bank"], e["row"]): e["pressure"] for e in report[1:]} \
            == {(0, 9): 50, (0, 13): 50}

    def test_counters_default_off_and_report_raises(self, device):
        assert device.row_activations is None
        with pytest.raises(RuntimeError, match="track_row_activations"):
            device.hammer_report()

    def test_reset_clears_counters(self, timing, geometry, cells):
        device = DramDevice(timing, geometry, cells=cells,
                            track_row_activations=True)
        device.issue(Command(CommandKind.ACT, bank=0, row=5), 100_000)
        assert device.row_activations == {(0, 5): 1}
        device.reset()
        assert device.row_activations == {}


def _storm_config(factor, **interference):
    return jetson_nano_time_scaling().with_overrides(
        interference=InterferenceConfig(refresh_storm_factor=factor,
                                        **interference))


class TestRefreshStorm:
    def _run(self, config, engine="event"):
        system = EasyDRAMSystem(config, engine=engine)
        result = system.run(
            microbench.cpu_copy_blocks(0, 1 << 26, 192 * 1024),
            workload_name="storm")
        return system, result

    def test_storm_multiplies_refreshes(self):
        _, base = self._run(jetson_nano_time_scaling())
        system, stormed = self._run(_storm_config(4))
        assert base.refreshes > 0
        # 4x refresh rate: same emulated span carries ~4x the REFs (the
        # span itself stretches slightly under the extra refresh time).
        assert stormed.refreshes >= 3 * base.refreshes
        assert system.smc.stats.storm_refreshes > 0
        # Storm REFs steal DRAM time: the run gets slower, never faster.
        assert stormed.emulated_ps > base.emulated_ps

    def test_storm_default_has_no_extra_refreshes(self):
        system, _ = self._run(jetson_nano_time_scaling())
        assert system.smc.stats.storm_refreshes == 0

    def test_storm_bit_identical_across_engines_and_fastpath(
            self, monkeypatch):
        config = _storm_config(3, track_row_activations=True)
        mix = WorkloadMix.parse("stream+pointer_chase")

        def snapshot(engine):
            run = run_mix(config, mix, engine=engine)
            d = dataclasses.asdict(run.result)
            d.pop("wall_seconds")
            return d, run.core_cycles, run.solo_cycles

        monkeypatch.setenv("REPRO_FASTPATH", "0")
        slow = snapshot("cycle")
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        assert snapshot("event") == slow

    def test_interference_config_validation(self):
        with pytest.raises(ValueError, match="refresh_storm_factor"):
            InterferenceConfig(refresh_storm_factor=0)
        with pytest.raises(ValueError, match="refresh_storm_rank"):
            InterferenceConfig(refresh_storm_rank=-1)
