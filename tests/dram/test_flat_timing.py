"""Flat timing-state cross-checks against the object-based oracle.

The flat path must compute *exactly* what the strict/object checker
computes — any divergence changes command start times and breaks the
bit-identical-artifact contract — and it must not allocate
``_Constraint`` objects on the hot path.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.dram import timing_checker
from repro.dram.commands import Command, CommandKind
from repro.dram.flat_timing import (
    K_ACT,
    K_PRE,
    K_PREA,
    K_RD,
    K_REF,
    K_WR,
    FlatTimingState,
)
from repro.workloads import lmbench, microbench

KIND_PAIRS = (
    (K_ACT, CommandKind.ACT),
    (K_PRE, CommandKind.PRE),
    (K_PREA, CommandKind.PREA),
    (K_RD, CommandKind.RD),
    (K_WR, CommandKind.WR),
    (K_REF, CommandKind.REF),
)


def random_legal_stream(device, rng, steps):
    """Drive the device with a randomized, loosely-legal command stream."""
    geometry = device.geometry
    t = 0
    for _ in range(steps):
        t += rng.randrange(0, 40_000)
        bank = rng.randrange(geometry.num_banks)
        choice = rng.random()
        state = device.banks[bank]
        if choice < 0.10:
            if all(not b.is_open for b in device.banks):
                cmd = Command(CommandKind.REF)
            else:
                cmd = Command(CommandKind.PREA)
        elif state.open_row is None or choice < 0.35:
            if state.open_row is not None:
                cmd = Command(CommandKind.PRE, bank=bank)
            else:
                cmd = Command(CommandKind.ACT, bank=bank,
                              row=rng.randrange(geometry.rows_per_bank))
        elif choice < 0.75:
            cmd = Command(CommandKind.RD, bank=bank,
                          col=rng.randrange(geometry.columns_per_row))
        else:
            cmd = Command(CommandKind.WR, bank=bank,
                          col=rng.randrange(geometry.columns_per_row))
        # Issue at the earliest legal time or (sometimes) a bit late, so
        # state stays realistic; permissive mode tolerates the rest.
        earliest, _ = device.checker.earliest_issue(
            cmd, device.banks, device.rank)
        issue_at = max(t, earliest + rng.choice((0, 0, 137, 5_000)))
        if issue_at < device._last_issue_ps:
            issue_at = device._last_issue_ps
        device.issue(cmd, issue_at)
        t = issue_at
        yield


class TestFlatMatchesOracle:
    def test_earliest_matches_checker_on_random_streams(self, device):
        rng = random.Random(99)
        for _ in random_legal_stream(device, rng, 400):
            for code, kind in KIND_PAIRS:
                for bank in range(device.geometry.num_banks):
                    cmd = Command(kind, bank=bank, row=1, col=1)
                    want, _name = device.checker.earliest_issue(
                        cmd, device.banks, device.rank)
                    want = max(0, want)
                    got = device.flat.earliest(code, bank)
                    # The binding constraint and the batched query agree
                    # by PR 2's tests; the flat array path must too.
                    assert got == want, (kind, bank)

    def test_flat_mirrors_bank_state(self, device):
        rng = random.Random(7)
        for _ in random_legal_stream(device, rng, 300):
            flat = device.flat
            for i, bank in enumerate(device.banks):
                assert flat.last_act[i] == bank.last_act
                assert flat.last_pre[i] == bank.last_pre
                assert flat.last_read[i] == bank.last_read
                assert flat.last_write_end[i] == bank.last_write_data_end
                open_row = -1 if bank.open_row is None else bank.open_row
                assert flat.open_row[i] == open_row
            assert list(flat.recent_acts) == device.rank.recent_acts
            assert flat.last_ref == device.rank.last_ref

    def test_reset_keeps_array_identity(self, timing, geometry):
        flat = FlatTimingState(timing, geometry)
        arrays = (flat.last_act, flat.open_row, flat.group_max_cas,
                  flat.recent_acts)
        flat.act(0, 5, 1000)
        flat.reset()
        assert (flat.last_act, flat.open_row, flat.group_max_cas,
                flat.recent_acts) == arrays  # same objects
        assert flat.open_count == 0 and flat.max_act_all < 0


class TestIssueFastPaths:
    def test_issue_fast_matches_issue_discard(self, timing, geometry, cells):
        """Same stream through issue_discard and issue_fast: same state."""
        from repro.dram.device import DramDevice

        a = DramDevice(timing, geometry, cells=cells)
        b = DramDevice(timing, geometry, cells=cells)
        rng = random.Random(3)
        t = 0
        for _ in range(300):
            t += rng.randrange(1000, 60_000)
            bank = rng.randrange(geometry.num_banks)
            if a.banks[bank].open_row is None:
                code, kind = K_ACT, CommandKind.ACT
                row, col = rng.randrange(geometry.rows_per_bank), 0
            elif rng.random() < 0.3:
                code, kind = K_PRE, CommandKind.PRE
                row = col = 0
            elif rng.random() < 0.6:
                code, kind = K_RD, CommandKind.RD
                row, col = 0, rng.randrange(geometry.columns_per_row)
            else:
                code, kind = K_WR, CommandKind.WR
                row, col = 0, rng.randrange(geometry.columns_per_row)
            a.issue_discard(Command(kind, bank=bank, row=row, col=col), t)
            b.issue_fast(code, bank, row, col, t, False)
            assert a.stats.commands == b.stats.commands
            for i in range(geometry.num_banks):
                assert a.banks[i].last_act == b.banks[i].last_act
                assert a.banks[i].open_row == b.banks[i].open_row
            assert [(v.constraint, v.time_ps, v.earliest_ps)
                    for v in a.checker.violations] == \
                   [(v.constraint, v.time_ps, v.earliest_ps)
                    for v in b.checker.violations]

    def test_strict_mode_raises_through_fast_path(self, timing, geometry,
                                                  cells):
        from repro.dram.device import DramDevice
        from repro.dram.timing_checker import TimingViolation

        device = DramDevice(timing, geometry, cells=cells, strict_timing=True)
        device.issue_fast(K_ACT, 0, 10, 0, 100_000, False)
        with pytest.raises(TimingViolation):
            # PRE right after ACT violates tRAS.
            device.issue_fast(K_PRE, 0, 0, 0, 101_000, False)


class TestNoConstraintAllocation:
    def test_hot_loop_allocates_no_constraints(self, monkeypatch):
        """The conventional fast path never builds ``_Constraint``s.

        A workload with fills, writebacks, dependent loads, and periodic
        refreshes runs start to finish with ``_Constraint`` poisoned;
        only the object-based oracle (untouched here) may build them.
        """
        class Boom:
            def __init__(self, *a, **k):
                raise AssertionError(
                    "_Constraint allocated on the fast path")

        monkeypatch.setattr(timing_checker, "_Constraint", Boom)
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        system = EasyDRAMSystem(jetson_nano_time_scaling(), engine="event")
        session = system.session("no-alloc")
        session.run_trace(microbench.cpu_copy_blocks(0, 1 << 26, 128 * 1024))
        session.run_trace(lmbench.pointer_chase_blocks(64 * 1024, 1500,
                                                       base_addr=0))
        result = session.finish()
        assert result.accesses > 0
        assert system.smc.stats.refreshes > 0  # refresh path exercised too
