"""Tests for the synthetic cell-behaviour model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.address import Geometry
from repro.dram.cells import CellArrayModel, CellModelConfig
from repro.dram.timing import ns


@pytest.fixture
def model(geometry):
    return CellArrayModel(geometry, CellModelConfig(seed=42))


class TestRowStrength:
    def test_deterministic(self, geometry):
        a = CellArrayModel(geometry, CellModelConfig(seed=7))
        b = CellArrayModel(geometry, CellModelConfig(seed=7))
        for bank in range(geometry.num_banks):
            for row in range(0, geometry.rows_per_bank, 17):
                assert a.row_min_trcd_ps(bank, row) == b.row_min_trcd_ps(bank, row)

    def test_seed_changes_profile(self, geometry):
        a = CellArrayModel(geometry, CellModelConfig(seed=7))
        b = CellArrayModel(geometry, CellModelConfig(seed=8))
        diffs = sum(
            a.row_min_trcd_ps(0, row) != b.row_min_trcd_ps(0, row)
            for row in range(geometry.rows_per_bank))
        assert diffs > 0

    def test_all_rows_below_nominal(self, model, geometry):
        """Paper: every row operates below the nominal 13.5 ns."""
        for bank in range(geometry.num_banks):
            for row in range(geometry.rows_per_bank):
                assert model.row_min_trcd_ps(bank, row) < ns(13.5)

    def test_strong_rows_dominate(self, geometry):
        """Most rows must be strong (paper: 84.5%); allow model slack."""
        model = CellArrayModel(geometry)
        frac = model.strong_fraction()
        assert 0.6 < frac < 0.98

    def test_strength_threshold_consistency(self, model, geometry):
        for row in range(geometry.rows_per_bank):
            strong = model.row_is_strong(0, row)
            assert strong == (model.row_min_trcd_ps(0, row) <= ns(9.0))

    def test_read_reliability_boundary(self, model):
        min_trcd = model.row_min_trcd_ps(0, 0)
        assert model.read_is_reliable(0, 0, min_trcd)
        assert not model.read_is_reliable(0, 0, min_trcd - 1)

    def test_weak_rows_cluster(self, geometry):
        """Weakness is decided per 64-row tile, so rows inside one tile
        agree on strength far more often than across tiles."""
        model = CellArrayModel(geometry, CellModelConfig(seed=3))
        tiles = {}
        for row in range(geometry.rows_per_bank):
            tiles.setdefault(row // 64, []).append(model.row_is_strong(0, row))
        for flags in tiles.values():
            assert len(set(flags)) == 1  # whole tile agrees


class TestRowClonePairs:
    def test_cross_subarray_never_clonable(self, model, geometry):
        sub = geometry.subarray_rows
        assert not model.rowclone_pair_reliable(0, 0, sub)
        assert not model.rowclone_copy_succeeds(0, 0, sub, attempt=1)

    def test_same_row_trivially_reliable(self, model):
        assert model.rowclone_pair_reliable(0, 5, 5)

    def test_pair_symmetry(self, model, geometry):
        for a, b in ((0, 1), (3, 9), (10, 60)):
            assert (model.rowclone_pair_reliable(0, a, b)
                    == model.rowclone_pair_reliable(0, b, a))

    def test_some_pairs_fail(self, geometry):
        model = CellArrayModel(geometry)
        sub = geometry.subarray_rows
        outcomes = {
            model.rowclone_pair_reliable(0, src, dst)
            for src in range(0, sub, 7) for dst in range(src + 1, sub, 13)
        }
        assert outcomes == {True, False}

    def test_reliable_pair_always_copies(self, model, geometry):
        sub = geometry.subarray_rows
        for src in range(sub):
            for dst in range(src + 1, sub):
                if model.rowclone_pair_reliable(0, src, dst):
                    assert all(model.rowclone_copy_succeeds(0, src, dst, k)
                               for k in range(50))
                    return
        pytest.skip("no reliable pair in subarray 0")

    def test_unreliable_pair_fails_sometimes(self, geometry):
        model = CellArrayModel(geometry, CellModelConfig(
            seed=11, unreliable_pair_error_rate=0.5))
        sub = geometry.subarray_rows
        for src in range(sub):
            for dst in range(src + 1, sub):
                if not model.rowclone_pair_reliable(0, src, dst):
                    outcomes = {model.rowclone_copy_succeeds(0, src, dst, k)
                                for k in range(200)}
                    assert False in outcomes
                    return
        pytest.fail("expected at least one unreliable pair")


class TestCorruption:
    def test_corrupt_differs(self, model):
        data = bytes(64)
        assert model.corrupt(data, 0, 0, salt=1) != data

    def test_corrupt_preserves_length(self, model):
        data = bytes(range(64))
        assert len(model.corrupt(data, 0, 0, salt=1)) == 64

    def test_corrupt_deterministic(self, model):
        data = bytes(range(64))
        assert (model.corrupt(data, 1, 2, salt=3)
                == model.corrupt(data, 1, 2, salt=3))

    def test_corrupt_empty(self, model):
        assert model.corrupt(b"", 0, 0, salt=1) == b""


@settings(max_examples=60)
@given(bank=st.integers(0, 3), row=st.integers(0, 255),
       trcd=st.integers(ns(8.0), ns(13.5)))
def test_reliability_monotonic_property(bank, row, trcd):
    """If a read is reliable at tRCD, it is reliable at any larger tRCD."""
    geometry = Geometry(bank_groups=2, banks_per_group=2, rows_per_bank=256,
                        columns_per_row=32, subarray_rows=64)
    model = CellArrayModel(geometry, CellModelConfig(seed=42))
    if model.read_is_reliable(bank, row, trcd):
        assert model.read_is_reliable(bank, row, trcd + 500)
