"""Rank-aware timing: flat state vs the object-checker oracle.

Multi-rank topologies flatten ranks into the bank dimension; tRRD/tFAW
and tCCD/tWTR must then couple banks *within* a rank only, with the
rank-to-rank turnaround tCS across ranks.  The flat fast path and the
object checker must agree exactly on every earliest-time query — the
same randomized cross-check contract the single-rank suite pins.
"""

from __future__ import annotations

import random

import pytest

from repro.dram.address import Geometry
from repro.dram.cells import CellArrayModel, CellModelConfig
from repro.dram.commands import Command, CommandKind
from repro.dram.device import DramDevice
from repro.dram.flat_timing import K_ACT, K_PRE, K_PREA, K_RD, K_REF, K_WR
from repro.dram.timing import ddr4_1333

KIND_PAIRS = (
    (K_ACT, CommandKind.ACT),
    (K_PRE, CommandKind.PRE),
    (K_PREA, CommandKind.PREA),
    (K_RD, CommandKind.RD),
    (K_WR, CommandKind.WR),
    (K_REF, CommandKind.REF),
)

MULTI_RANK_GEOMETRIES = (
    Geometry(bank_groups=2, banks_per_group=2, rows_per_bank=128,
             columns_per_row=16, subarray_rows=32, ranks=2),
    Geometry(bank_groups=1, banks_per_group=3, rows_per_bank=96,
             columns_per_row=16, subarray_rows=32, ranks=3),
)


def make_device(geometry):
    return DramDevice(ddr4_1333(), geometry,
                      cells=CellArrayModel(geometry, CellModelConfig(seed=7)),
                      strict_timing=False)


def random_stream(device, rng, steps):
    """Drive the device across all ranks with a loosely-legal stream."""
    geometry = device.geometry
    t = 0
    for _ in range(steps):
        t += rng.randrange(0, 40_000)
        bank = rng.randrange(geometry.total_banks)
        choice = rng.random()
        state = device.banks[bank]
        if choice < 0.10:
            if all(not b.is_open for b in device.banks):
                cmd = Command(CommandKind.REF)
            else:
                cmd = Command(CommandKind.PREA)
        elif state.open_row is None or choice < 0.35:
            if state.open_row is not None:
                cmd = Command(CommandKind.PRE, bank=bank)
            else:
                cmd = Command(CommandKind.ACT, bank=bank,
                              row=rng.randrange(geometry.rows_per_bank))
        elif choice < 0.75:
            cmd = Command(CommandKind.RD, bank=bank,
                          col=rng.randrange(geometry.columns_per_row))
        else:
            cmd = Command(CommandKind.WR, bank=bank,
                          col=rng.randrange(geometry.columns_per_row))
        earliest, _ = device.checker.earliest_issue(
            cmd, device.banks, device.checker_rank)
        issue_at = max(t, earliest + rng.choice((0, 0, 137, 5_000)))
        if issue_at < device._last_issue_ps:
            issue_at = device._last_issue_ps
        device.issue(cmd, issue_at)
        t = issue_at
        yield


@pytest.mark.parametrize("geometry", MULTI_RANK_GEOMETRIES,
                         ids=("2rk", "3rk-nonpow2"))
def test_flat_matches_oracle_multi_rank(geometry):
    """flat.earliest == checker.earliest_ps == earliest_issue, all kinds."""
    device = make_device(geometry)
    rng = random.Random(1234)
    for _ in random_stream(device, rng, 250):
        for code, kind in KIND_PAIRS:
            bank = rng.randrange(geometry.total_banks)
            cmd = Command(kind, bank=bank, row=0, col=0)
            fused = device.checker.earliest_ps(
                cmd, device.banks, device.checker_rank)
            enumerated, _name = device.checker.earliest_issue(
                cmd, device.banks, device.checker_rank)
            assert fused == enumerated, (kind, bank)
            assert device.flat.earliest(code, bank) == fused, (kind, bank)


def test_cross_rank_cas_sees_tcs_not_tccd():
    """A CAS right after another rank's CAS waits tCS, not tCCD."""
    t = ddr4_1333()
    geometry = MULTI_RANK_GEOMETRIES[0]
    bpr = geometry.num_banks
    device = make_device(geometry)
    device.issue(Command(CommandKind.ACT, bank=0, row=1), 0)
    device.issue(Command(CommandKind.ACT, bank=bpr, row=1), t.tRRD_S * 4)
    rd_at = 1_000_000
    device.issue(Command(CommandKind.RD, bank=0, col=0), rd_at)
    # Same rank, other group: tCCD_S.  Other rank: tCS (shorter).
    assert t.tCS < t.tCCD_S
    same_rank = device.flat.earliest(K_RD, 2)
    other_rank = device.flat.earliest(K_RD, bpr)
    assert same_rank == rd_at + t.tCCD_S
    assert other_rank == rd_at + t.tCS
    assert other_rank < same_rank


def test_tfaw_windows_are_per_rank():
    """Four ACTs in rank 0 must not stall rank 1's next ACT via tFAW."""
    t = ddr4_1333()
    geometry = MULTI_RANK_GEOMETRIES[0]
    bpr = geometry.num_banks
    device = make_device(geometry)
    at = 0
    for bank in range(4):
        earliest = device.flat.earliest(K_ACT, bank)
        at = max(at + 1, earliest)
        device.issue(Command(CommandKind.ACT, bank=bank, row=0), at)
    assert len(device.ranks[0].recent_acts) == 4
    # Rank 0's fifth ACT is tFAW-bound; rank 1 is not.
    blocked = device.flat.earliest(K_ACT, 0)
    free = device.flat.earliest(K_ACT, bpr)
    assert blocked >= device.ranks[0].recent_acts[0] + t.tFAW
    assert free < blocked


def test_refresh_covers_every_rank():
    geometry = MULTI_RANK_GEOMETRIES[0]
    device = make_device(geometry)
    device.issue(Command(CommandKind.REF), 10_000)
    assert all(r.last_ref == 10_000 for r in device.ranks)


def test_single_rank_checker_accepts_legacy_rank_argument():
    """Old call shape (bare RankState) still works on 1-rank devices."""
    geometry = Geometry(bank_groups=2, banks_per_group=2, rows_per_bank=128,
                        columns_per_row=16, subarray_rows=32)
    device = make_device(geometry)
    device.issue(Command(CommandKind.ACT, bank=0, row=3), 0)
    cmd = Command(CommandKind.ACT, bank=1, row=5)
    via_state = device.checker.earliest_ps(cmd, device.banks, device.rank)
    via_list = device.checker.earliest_ps(cmd, device.banks, device.ranks)
    assert via_state == via_list == device.flat.earliest(K_ACT, 1)
