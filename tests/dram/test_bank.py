"""Tests for per-bank and rank state tracking."""

from repro.dram.bank import NEVER, BankState, RankState
from repro.dram.commands import Command, CommandKind


class TestBankState:
    def test_initial_state(self):
        bank = BankState(0)
        assert not bank.is_open
        assert bank.last_act == NEVER

    def test_activate(self):
        bank = BankState(0)
        bank.activate(7, 1000)
        assert bank.is_open
        assert bank.open_row == 7
        assert bank.last_act == 1000
        assert bank.act_count == 1

    def test_precharge_remembers_previous_row(self):
        bank = BankState(0)
        bank.activate(7, 0)
        bank.precharge(50_000)
        assert bank.open_row is None
        assert bank.previously_open_row == 7
        assert bank.last_pre == 50_000

    def test_write_records_data_end(self):
        bank = BankState(0)
        bank.write(100, 120)
        assert bank.last_write == 100
        assert bank.last_write_data_end == 120

    def test_reset(self):
        bank = BankState(0)
        bank.activate(3, 10)
        bank.read(20)
        bank.reset()
        assert bank.open_row is None
        assert bank.last_act == NEVER
        assert bank.act_count == 0


class TestRankState:
    def test_faw_window_pruning(self):
        rank = RankState()
        for t in (0, 100, 200, 300, 40_000):
            rank.record_act(t, window_ps=30_000)
        # Entries older than 40_000 - 30_000 = 10_000 were pruned.
        assert rank.recent_acts == [40_000]

    def test_acts_in_window(self):
        rank = RankState()
        for t in (0, 10_000, 20_000, 29_000):
            rank.record_act(t, window_ps=100_000)
        assert rank.acts_in_window(30_000, 30_000) == 3


class TestCommands:
    def test_short_rendering(self):
        assert Command(CommandKind.ACT, bank=1, row=2).short() == "ACT b1 r2"
        assert Command(CommandKind.RD, bank=1, col=3).short() == "RD b1 c3"
        assert Command(CommandKind.PRE, bank=4).short() == "PRE b4"
        assert Command(CommandKind.REF).short() == "REF"

    def test_negative_coordinates_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            Command(CommandKind.ACT, bank=-1)

    def test_targets_bank(self):
        assert Command(CommandKind.ACT).targets_bank
        assert not Command(CommandKind.REF).targets_bank
