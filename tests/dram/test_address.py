"""Tests for physical <-> DRAM address mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.address import AddressMapper, DramAddress, Geometry


class TestGeometry:
    def test_num_banks(self, geometry):
        assert geometry.num_banks == 4

    def test_row_bytes(self, geometry):
        assert geometry.row_bytes == 32 * 64

    def test_total_bytes(self, geometry):
        assert geometry.total_bytes == 4 * 256 * 32 * 64

    def test_subarrays_per_bank(self, geometry):
        assert geometry.subarrays_per_bank == 4

    def test_subarray_of(self, geometry):
        assert geometry.subarray_of(0) == 0
        assert geometry.subarray_of(63) == 0
        assert geometry.subarray_of(64) == 1

    def test_bank_group_of(self, geometry):
        assert geometry.bank_group_of(0) == 0
        assert geometry.bank_group_of(1) == 0
        assert geometry.bank_group_of(2) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Geometry(bank_groups=0)

    def test_rejects_oversized_subarray(self):
        with pytest.raises(ValueError):
            Geometry(rows_per_bank=64, subarray_rows=128)


class TestMapperSchemes:
    @pytest.mark.parametrize("scheme", AddressMapper.SCHEMES)
    def test_roundtrip_samples(self, geometry, scheme):
        mapper = AddressMapper(geometry, scheme)
        for addr in range(0, geometry.total_bytes, 64 * 97):
            dram = mapper.to_dram(addr)
            assert mapper.to_physical(dram) == addr - (addr % 64)

    def test_unknown_scheme(self, geometry):
        with pytest.raises(ValueError, match="unknown scheme"):
            AddressMapper(geometry, "banana")

    def test_row_contiguous_schemes(self, geometry):
        assert AddressMapper(geometry, "row-bank-col").row_is_contiguous()
        assert AddressMapper(geometry, "row-bank-col-skew").row_is_contiguous()
        assert not AddressMapper(geometry, "bank-interleaved").row_is_contiguous()

    def test_row_base_physical_row_aligned(self, geometry):
        mapper = AddressMapper(geometry, "row-bank-col")
        base = mapper.row_base_physical(2, 5)
        assert base % geometry.row_bytes == 0
        dram = mapper.to_dram(base)
        assert (dram.bank, dram.row, dram.col) == (2, 5, 0)

    def test_contiguous_row_within_one_bank(self, geometry):
        """All lines of one physical 'row span' stay in one (bank, row)."""
        mapper = AddressMapper(geometry, "row-bank-col-skew")
        base = mapper.row_base_physical(1, 7)
        coords = {
            (mapper.to_dram(base + i * 64).bank, mapper.to_dram(base + i * 64).row)
            for i in range(geometry.columns_per_row)
        }
        assert len(coords) == 1

    def test_skew_separates_power_of_two_strides(self, full_geometry):
        """The motivating case: src at 0 and dst at a big power of two
        must not land in the same bank (row-conflict ping-pong)."""
        mapper = AddressMapper(full_geometry, "row-bank-col-skew")
        src = mapper.to_dram(0)
        dst = mapper.to_dram(1 << 26)
        assert src.bank != dst.bank

    def test_bank_interleaved_rotates_lines(self, geometry):
        mapper = AddressMapper(geometry, "bank-interleaved")
        banks = [mapper.to_dram(i * 64).bank for i in range(geometry.num_banks)]
        assert banks == list(range(geometry.num_banks))

    def test_out_of_range_coordinate(self, geometry, mapper):
        with pytest.raises(ValueError):
            mapper.to_physical(DramAddress(bank=99, row=0, col=0))
        with pytest.raises(ValueError):
            mapper.to_physical(DramAddress(bank=0, row=10**6, col=0))
        with pytest.raises(ValueError):
            mapper.to_physical(DramAddress(bank=0, row=0, col=10**6))

    def test_negative_physical(self, mapper):
        with pytest.raises(ValueError):
            mapper.to_dram(-1)


@settings(max_examples=200)
@given(line=st.integers(min_value=0, max_value=4 * 256 * 32 - 1),
       scheme=st.sampled_from(AddressMapper.SCHEMES))
def test_roundtrip_property(line, scheme):
    """to_physical(to_dram(x)) == line-aligned x for every scheme."""
    geometry = Geometry(bank_groups=2, banks_per_group=2, rows_per_bank=256,
                        columns_per_row=32, subarray_rows=64)
    mapper = AddressMapper(geometry, scheme)
    addr = line * 64
    assert mapper.to_physical(mapper.to_dram(addr)) == addr


@settings(max_examples=100)
@given(line_a=st.integers(min_value=0, max_value=4 * 256 * 32 - 1),
       line_b=st.integers(min_value=0, max_value=4 * 256 * 32 - 1),
       scheme=st.sampled_from(AddressMapper.SCHEMES))
def test_mapping_is_injective(line_a, line_b, scheme):
    """Different lines never map to the same DRAM coordinate."""
    geometry = Geometry(bank_groups=2, banks_per_group=2, rows_per_bank=256,
                        columns_per_row=32, subarray_rows=64)
    mapper = AddressMapper(geometry, scheme)
    if line_a != line_b:
        assert mapper.to_dram(line_a * 64) != mapper.to_dram(line_b * 64)
