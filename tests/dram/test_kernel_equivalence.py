"""Kernel differential suite: kernel == flat == object, bit for bit.

``REPRO_KERNEL`` adds a fourth serve path (and a whole-trace block
replay) that must be a pure host-time optimization, exactly like the
fastpath before it.  This suite drives *random* request streams —
hypothesis-generated access blocks across topologies, schedulers, and
interference knobs — through three serve configurations:

* **kernel** — fastpath on, ``REPRO_KERNEL`` forced to the compiled
  backend (or the pure-Python mirror when no C compiler exists);
* **flat**   — fastpath on, kernel disabled (the PR 3 closures);
* **object** — fastpath off (the staged-program reference pipeline);

and asserts the complete observable artifact — ``RunResult`` (including
per-core slices), per-request latencies, ``SmcStats``, and device stats
— is identical across all three.  Prefetch-tagged batches, refresh
storms, and multi-core contention get dedicated cases on top of the
randomized cross.
"""

from __future__ import annotations

import dataclasses
import os
from contextlib import contextmanager

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import (ControllerConfig, InterferenceConfig,
                               jetson_nano_time_scaling)
from repro.core.system import EasyDRAMSystem
from repro.cpu.blocks import AccessBlock, BlockTrace
from repro.cpu.memtrace import FLAG_DEPENDENT, FLAG_WRITE
from repro.cpu.prefetch import PrefetchConfig
from repro.dram.kernel import cbackend

LINE = 64

#: The kernel leg: the compiled backend when a C compiler exists, the
#: pure-Python mirror otherwise (batch entry only, still differential).
KERNEL_MODE = "c" if cbackend.load()[0] is not None else "py"

MODES = (
    ("kernel", "1", KERNEL_MODE),
    ("flat", "1", "0"),
    ("object", "0", "0"),
)


@contextmanager
def serve_mode(fastpath: str, kernel: str):
    saved = {k: os.environ.get(k) for k in ("REPRO_FASTPATH", "REPRO_KERNEL")}
    os.environ["REPRO_FASTPATH"] = fastpath
    os.environ["REPRO_KERNEL"] = kernel
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _trace(stream: list[tuple[int, int, int]], split: int) -> BlockTrace:
    """The drawn stream as (up to) two access blocks."""
    chunks = [stream[:split], stream[split:]]
    return BlockTrace(
        AccessBlock([a for a, _, _ in chunk], [f for _, f, _ in chunk],
                    [g for _, _, g in chunk])
        for chunk in chunks if chunk)


def _run_artifact(config, stream: list, split: int,
                  prefetch: PrefetchConfig | None = None) -> dict:
    """One full session over the stream; every observable, as a dict."""
    system = EasyDRAMSystem(config)
    session = system.session("kernel-diff")
    if prefetch is not None:
        session.set_prefetcher(0, prefetch)
    session.run_trace(_trace(stream, split))
    result = session.finish()
    artifact = dataclasses.asdict(result)
    artifact.pop("wall_seconds")
    artifact["latencies"] = list(session.processor.stats.request_latencies)
    artifact["smc"] = [dataclasses.asdict(smc.stats)
                       for smc in system.smcs]
    artifact["device"] = [dataclasses.asdict(c.tile.device.stats)
                          for c in system.channels]
    return artifact


def assert_modes_identical(make_config, stream: list, split: int,
                           prefetch: PrefetchConfig | None = None) -> None:
    artifacts = {}
    for name, fastpath, kernel in MODES:
        with serve_mode(fastpath, kernel):
            artifacts[name] = _run_artifact(make_config(), stream, split,
                                            prefetch)
    assert artifacts["kernel"] == artifacts["flat"], \
        "kernel serve path changed the artifact"
    assert artifacts["flat"] == artifacts["object"], \
        "flat serve path changed the artifact"


# -- randomized cross: topology x scheduler x interference -------------------

access = st.tuples(
    st.integers(min_value=0, max_value=(8 * 1024 * 1024) // LINE - 1)
    .map(lambda line: line * LINE),
    st.sampled_from((0, FLAG_WRITE, FLAG_DEPENDENT,
                     FLAG_WRITE | FLAG_DEPENDENT)),
    st.integers(min_value=0, max_value=40),
)

stream_st = st.lists(access, min_size=20, max_size=120)


@pytest.mark.slow  # 20 randomized full-cross examples; on CI's `slow` leg
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream=stream_st, split=st.integers(min_value=0, max_value=120),
       topology=st.sampled_from(("ddr4-1ch", "ddr4-2ch")),
       scheduler=st.sampled_from(("fr-fcfs", "fcfs", "bliss")),
       storm=st.sampled_from((1, 4)))
def test_random_streams_identical(stream, split, topology, scheduler, storm):
    assert_modes_identical(
        lambda: jetson_nano_time_scaling(
            controller=ControllerConfig(scheduler=scheduler),
            interference=InterferenceConfig(refresh_storm_factor=storm),
        ).with_topology(topology),
        stream, split)


# -- dedicated corners -------------------------------------------------------


def _dense_mixed_stream(n: int = 200) -> list[tuple[int, int, int]]:
    """Row-hit/miss/conflict mix with writebacks: strided rows + reuse."""
    stream = []
    for i in range(n):
        line = (i * 37 + (i % 5) * 4096) % (4 * 1024 * 1024 // LINE)
        flags = FLAG_WRITE if i % 3 == 0 else 0
        if i % 11 == 0:
            flags |= FLAG_DEPENDENT
        stream.append((line * LINE, flags, i % 7))
    return stream


def test_prefetch_tagged_batches_identical():
    """A stream prefetcher adds prefetch-tagged fills to every gate."""
    assert_modes_identical(
        jetson_nano_time_scaling, _dense_mixed_stream(), 120,
        prefetch=PrefetchConfig(degree=2, distance=4, streams=8))


def test_refresh_storm_batches_identical():
    """A 8x refresh storm interleaves REF bursts through the episodes."""
    stream = [(addr, flags, gap + 50) for addr, flags, gap
              in _dense_mixed_stream(120)]
    assert_modes_identical(
        lambda: jetson_nano_time_scaling(
            interference=InterferenceConfig(refresh_storm_factor=8)),
        stream, 60)


def test_multirank_topology_identical():
    """Multi-rank forces the kernel's structural fallback; still equal."""
    assert_modes_identical(
        lambda: jetson_nano_time_scaling().with_topology("ddr4-1ch-2rk"),
        _dense_mixed_stream(120), 60)


def test_multicore_coreresults_identical():
    """Contended mix: per-core slices and fairness stay bit-identical."""
    from repro.core.workload_mix import WorkloadMix, run_mix

    mix = WorkloadMix(("stream", "pointer_chase"))
    artifacts = {}
    for name, fastpath, kernel in MODES:
        with serve_mode(fastpath, kernel):
            run = run_mix(jetson_nano_time_scaling(), mix, solo=True)
        artifact = dataclasses.asdict(run.result)
        artifact.pop("wall_seconds")
        artifact["core_cycles"] = run.core_cycles
        artifact["solo_cycles"] = run.solo_cycles
        artifacts[name] = artifact
    assert artifacts["kernel"] == artifacts["flat"]
    assert artifacts["flat"] == artifacts["object"]


def test_kernel_actually_engages():
    """Guard: on the eligible config the kernel serves, not the closures.

    Without this, a silent structural fallback would turn the whole
    suite into flat-vs-flat and prove nothing about the kernel.
    """
    if KERNEL_MODE != "c":
        pytest.skip("no C compiler; block replay needs the compiled backend")
    from repro.dram.kernel import blockrun

    engaged = []
    original = blockrun.run_gated_kernel

    def counting(engine, session, proc, smc):
        ok = original(engine, session, proc, smc)
        engaged.append(ok)
        return ok

    blockrun.run_gated_kernel = counting
    try:
        with serve_mode("1", KERNEL_MODE):
            _run_artifact(jetson_nano_time_scaling(),
                          _dense_mixed_stream(), 120)
    finally:
        blockrun.run_gated_kernel = original
    assert engaged and all(engaged), \
        "block-replay kernel never engaged on the eligible config"
