"""Tests for the behavioural DDR4 device model."""

import pytest

from repro.dram.cells import CellArrayModel, CellModelConfig
from repro.dram.commands import Command, CommandKind
from repro.dram.device import DramDevice
from repro.dram.timing import ns
from repro.dram.timing_checker import TimingViolation


def act(bank=0, row=0):
    return Command(CommandKind.ACT, bank=bank, row=row)


def pre(bank=0):
    return Command(CommandKind.PRE, bank=bank)


def rd(bank=0, col=0):
    return Command(CommandKind.RD, bank=bank, col=col)


def wr(bank=0, col=0, data=None):
    return Command(CommandKind.WR, bank=bank, col=col, data=data)


class TestBasicOperation:
    def test_act_opens_row(self, device):
        device.issue(act(0, 7), 0)
        assert device.banks[0].open_row == 7

    def test_pre_closes_row(self, device, timing):
        device.issue(act(0, 7), 0)
        device.issue(pre(0), timing.tRAS)
        assert device.banks[0].open_row is None

    def test_prea_closes_all(self, device, timing):
        device.issue(act(0, 1), 0)
        device.issue(act(1, 2), timing.tRRD_L)
        device.issue(Command(CommandKind.PREA), timing.tRAS + timing.tRRD_L)
        assert all(not b.is_open for b in device.banks)

    def test_read_returns_default_pattern(self, device, timing):
        device.issue(act(0, 3), 0)
        result = device.issue(rd(0, 2), timing.tRCD)
        assert result.data == device.default_line(0, 3, 2)
        assert result.reliable

    def test_write_then_read(self, device, timing):
        payload = bytes(range(64))
        device.issue(act(0, 3), 0)
        device.issue(wr(0, 5, payload), timing.tRCD)
        result = device.issue(rd(0, 5), timing.tRCD + timing.tCCD_L)
        assert result.data == payload

    def test_read_without_open_row_errors(self, device):
        with pytest.raises(RuntimeError, match="no open row"):
            device.issue(rd(0, 0), 0)

    def test_write_payload_size_checked(self, device, timing):
        device.issue(act(0, 0), 0)
        with pytest.raises(ValueError, match="payload must be"):
            device.issue(wr(0, 0, b"short"), timing.tRCD)

    def test_time_cannot_go_backwards(self, device, timing):
        device.issue(act(0, 0), 1000)
        with pytest.raises(ValueError, match="backwards"):
            device.issue(pre(0), 500)

    def test_out_of_range_addresses_rejected(self, device):
        with pytest.raises(ValueError):
            device.issue(act(99, 0), 0)
        with pytest.raises(ValueError):
            device.issue(act(0, 10**6), 0)

    def test_command_counting(self, device, timing):
        device.issue(act(0, 0), 0)
        device.issue(rd(0, 0), timing.tRCD)
        device.issue(pre(0), timing.tRAS)
        assert device.stats.commands == {"ACT": 1, "RD": 1, "PRE": 1}
        assert device.stats.total_commands() == 3


class TestStrictTiming:
    def test_strict_device_raises_on_early_read(self, strict_device):
        strict_device.issue(act(0, 0), 0)
        with pytest.raises(TimingViolation):
            strict_device.issue(rd(0, 0), 100)  # way before tRCD

    def test_permissive_device_records_violation(self, device):
        device.issue(act(0, 0), 0)
        device.issue(rd(0, 0), 100)
        assert len(device.checker.violations) == 1


class TestReducedTrcdSemantics:
    def test_read_at_nominal_is_reliable(self, device, timing):
        device.issue(act(0, 0), 0)
        result = device.issue(rd(0, 0), timing.tRCD)
        assert result.reliable

    def test_early_read_corrupts_weak_row(self, geometry, timing):
        cells = CellArrayModel(geometry, CellModelConfig(seed=42))
        device = DramDevice(timing, geometry, cells=cells)
        # Find a row whose minimum tRCD exceeds 9 ns, then read at 8.5 ns.
        weak = next(row for row in range(geometry.rows_per_bank)
                    if cells.row_min_trcd_ps(0, row) > ns(9.0))
        device.issue(act(0, weak), 0)
        result = device.issue(rd(0, 0), ns(8.5))
        assert not result.reliable
        assert result.data != device.default_line(0, weak, 0)
        assert device.stats.unreliable_reads == 1

    def test_read_above_row_min_is_reliable(self, geometry, timing):
        cells = CellArrayModel(geometry, CellModelConfig(seed=42))
        device = DramDevice(timing, geometry, cells=cells)
        strong = next(row for row in range(geometry.rows_per_bank)
                      if cells.row_min_trcd_ps(0, row) <= ns(9.0))
        device.issue(act(0, strong), 0)
        result = device.issue(rd(0, 0), ns(9.0))
        assert result.reliable


class TestRowCloneSemantics:
    def _find_pair(self, device, reliable=True):
        geometry = device.geometry
        sub = geometry.subarray_rows
        for src in range(sub):
            for dst in range(src + 1, sub):
                if device.cells.rowclone_pair_reliable(0, src, dst) == reliable:
                    return src, dst
        pytest.skip(f"no pair with reliable={reliable}")

    def _do_rowclone(self, device, src, dst, t0=0):
        t = device.timing
        device.issue(act(0, src), t0)
        device.issue(pre(0), t0 + 2 * t.tCK)           # violates tRAS
        device.issue(act(0, dst), t0 + 3 * t.tCK)      # violates tRP
        device.issue(pre(0), t0 + 3 * t.tCK + t.tRAS)
        return t0 + 3 * t.tCK + t.tRAS + t.tRP

    def test_reliable_pair_copies_data(self, device):
        src, dst = self._find_pair(device, reliable=True)
        pattern = bytes([0xAB]) * device.geometry.row_bytes
        device.preload_row(0, src, pattern)
        self._do_rowclone(device, src, dst)
        assert device.row_data(0, dst) == pattern
        assert device.stats.rowclone_successes == 1

    def test_normal_act_sequence_does_not_clone(self, device, timing):
        pattern = bytes([0xCD]) * device.geometry.row_bytes
        device.preload_row(0, 1, pattern)
        device.issue(act(0, 1), 0)
        device.issue(pre(0), timing.tRAS)
        device.issue(act(0, 2), timing.tRAS + timing.tRP)  # legal gap
        assert device.row_data(0, 2) != pattern
        assert device.stats.rowclone_attempts == 0

    def test_cross_subarray_rowclone_corrupts(self, device, timing):
        geometry = device.geometry
        src, dst = 0, geometry.subarray_rows  # different subarrays
        pattern = bytes([0x5A]) * geometry.row_bytes
        device.preload_row(0, src, pattern)
        self._do_rowclone(device, src, dst)
        assert device.row_data(0, dst) != pattern

    def test_repeated_clones_deterministic_for_reliable_pair(self, device):
        src, dst = self._find_pair(device, reliable=True)
        pattern = bytes([0x11]) * device.geometry.row_bytes
        device.preload_row(0, src, pattern)
        t = 0
        for _ in range(5):
            t = self._do_rowclone(device, src, dst, t0=t) + 1000
            assert device.row_data(0, dst) == pattern


class TestRetention:
    def test_retention_failure_after_window(self, geometry, timing):
        device = DramDevice(timing, geometry, retention_modeling=True)
        # Find a leaky row (the model marks ~1% of rows leaky).
        leaky = next(row for row in range(geometry.rows_per_bank)
                     if device._row_is_leaky(0, row))
        t = timing.tREFW + timing.tREFI  # long past the refresh window
        device.issue(act(0, leaky), t)
        result = device.issue(rd(0, 0), t + timing.tRCD)
        assert not result.reliable
        assert device.stats.retention_failures == 1

    def test_refresh_resets_retention_clock(self, geometry, timing):
        device = DramDevice(timing, geometry, retention_modeling=True)
        leaky = next(row for row in range(geometry.rows_per_bank)
                     if device._row_is_leaky(0, row))
        t = timing.tREFW + timing.tREFI
        device.issue(Command(CommandKind.REF), t)
        device.issue(act(0, leaky), t + timing.tRFC)
        result = device.issue(rd(0, 0), t + timing.tRFC + timing.tRCD)
        assert result.reliable


class TestDataStore:
    def test_preload_row_size_checked(self, device):
        with pytest.raises(ValueError):
            device.preload_row(0, 0, b"tiny")

    def test_default_pattern_is_position_dependent(self, device):
        assert device.default_line(0, 0, 0) != device.default_line(0, 0, 1)
        assert device.default_line(0, 1, 0) != device.default_line(1, 0, 0)

    def test_reset_clears_bank_state_keeps_data(self, device, timing):
        payload = bytes(range(64))
        device.issue(act(0, 3), 0)
        device.issue(wr(0, 5, payload), timing.tRCD)
        device.reset()
        assert device.banks[0].open_row is None
        assert device.row_data(0, 3)[5 * 64:6 * 64] == payload
