"""Tests for the JEDEC inter-command timing checker."""

import pytest

from repro.dram.bank import BankState, RankState
from repro.dram.commands import Command, CommandKind
from repro.dram.timing import ddr4_1333
from repro.dram.timing_checker import TimingChecker, TimingViolation


@pytest.fixture
def checker(timing, geometry):
    return TimingChecker(timing, geometry, strict=True)


@pytest.fixture
def banks(geometry):
    return [BankState(i) for i in range(geometry.num_banks)]


@pytest.fixture
def rank():
    return RankState()


def act(bank=0, row=0):
    return Command(CommandKind.ACT, bank=bank, row=row)


class TestActConstraints:
    def test_power_on_act_is_free(self, checker, banks, rank):
        earliest, name = checker.earliest_issue(act(), banks, rank)
        assert earliest == 0

    def test_trc_same_bank(self, checker, banks, rank, timing):
        banks[0].activate(5, 1000)
        earliest, name = checker.earliest_issue(act(0, 6), banks, rank)
        assert earliest == 1000 + timing.tRC
        assert name == "tRC"

    def test_trp_after_precharge(self, checker, banks, rank, timing):
        banks[0].activate(5, 0)
        banks[0].precharge(timing.tRAS)
        earliest, name = checker.earliest_issue(act(0, 6), banks, rank)
        assert earliest == timing.tRAS + timing.tRP

    def test_trrd_other_bank_same_group(self, checker, banks, rank, timing):
        banks[0].activate(5, 1000)
        earliest, name = checker.earliest_issue(act(1, 0), banks, rank)
        assert earliest == 1000 + timing.tRRD_L
        assert name == "tRRD_L"

    def test_trrd_other_group_is_shorter(self, checker, banks, rank, timing):
        banks[0].activate(5, 1000)
        earliest, _ = checker.earliest_issue(act(2, 0), banks, rank)
        assert earliest == 1000 + timing.tRRD_S

    def test_tfaw_binds_fifth_act(self, checker, banks, rank, timing):
        # Four ACTs in quick succession across banks.
        for i, t in enumerate((0, 8000, 16000, 24000)):
            rank.record_act(t, timing.tFAW)
        earliest, name = checker.earliest_issue(act(0, 0), banks, rank)
        assert earliest >= 0 + timing.tFAW
        assert name in ("tFAW", "tRC")

    def test_trfc_after_refresh(self, checker, banks, rank, timing):
        rank.last_ref = 500
        earliest, name = checker.earliest_issue(act(), banks, rank)
        assert earliest == 500 + timing.tRFC
        assert name == "tRFC"


class TestColumnConstraints:
    def test_trcd_before_read(self, checker, banks, rank, timing):
        banks[0].activate(5, 1000)
        cmd = Command(CommandKind.RD, bank=0, col=0)
        earliest, name = checker.earliest_issue(cmd, banks, rank)
        assert earliest == 1000 + timing.tRCD
        assert name == "tRCD"

    def test_tccd_between_reads(self, checker, banks, rank, timing):
        banks[0].activate(5, 0)
        banks[0].read(timing.tRCD)
        cmd = Command(CommandKind.RD, bank=0, col=1)
        earliest, name = checker.earliest_issue(cmd, banks, rank)
        assert earliest == timing.tRCD + timing.tCCD_L

    def test_twtr_write_to_read(self, checker, banks, rank, timing):
        banks[0].activate(5, 0)
        banks[0].write(timing.tRCD, timing.tRCD + timing.tCWL + timing.tBL)
        cmd = Command(CommandKind.RD, bank=1, col=0)
        earliest, name = checker.earliest_issue(cmd, banks, rank)
        assert earliest >= timing.tRCD + timing.tCWL + timing.tBL + timing.tWTR


class TestPrechargeConstraints:
    def test_tras_before_precharge(self, checker, banks, rank, timing):
        banks[0].activate(5, 1000)
        cmd = Command(CommandKind.PRE, bank=0)
        earliest, name = checker.earliest_issue(cmd, banks, rank)
        assert earliest == 1000 + timing.tRAS
        assert name == "tRAS"

    def test_twr_after_write(self, checker, banks, rank, timing):
        banks[0].activate(5, 0)
        data_end = timing.tRCD + timing.tCWL + timing.tBL
        banks[0].write(timing.tRCD, data_end)
        cmd = Command(CommandKind.PRE, bank=0)
        earliest, name = checker.earliest_issue(cmd, banks, rank)
        assert earliest == max(timing.tRAS, data_end + timing.tWR)

    def test_refresh_requires_closed_banks(self, checker, banks, rank):
        banks[0].activate(5, 0)
        cmd = Command(CommandKind.REF)
        earliest, name = checker.earliest_issue(cmd, banks, rank)
        assert name == "banks-open"


class TestModes:
    def test_strict_raises(self, checker, banks, rank):
        banks[0].activate(5, 1000)
        with pytest.raises(TimingViolation) as err:
            checker.check(act(0, 6), 1001, banks, rank)
        assert err.value.constraint == "tRC"
        assert err.value.earliest_ps > 1001

    def test_permissive_records(self, timing, geometry, banks, rank):
        checker = TimingChecker(timing, geometry, strict=False)
        banks[0].activate(5, 1000)
        slack = checker.check(act(0, 6), 1001, banks, rank)
        assert slack == 1000 + timing.tRC - 1001
        assert len(checker.violations) == 1
        assert checker.violations[0].slack_ps == slack

    def test_legal_command_returns_zero(self, checker, banks, rank, timing):
        banks[0].activate(5, 0)
        slack = checker.check(act(0, 6), timing.tRC + 1, banks, rank)
        assert slack == 0

    def test_violation_message_is_informative(self, checker, banks, rank):
        banks[0].activate(5, 1000)
        with pytest.raises(TimingViolation, match="violates tRC"):
            checker.check(act(0, 6), 1001, banks, rank)
