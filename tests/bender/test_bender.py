"""Tests for the DRAM Bender substrate: ISA, programs, buffers, engine."""

import pytest

from repro.bender import isa
from repro.bender.buffers import BufferOverflow, CommandBuffer, ReadbackBuffer
from repro.bender.engine import BenderEngine, ProgramError
from repro.bender.isa import Opcode
from repro.bender.program import BenderProgram
from repro.dram.commands import Command, CommandKind


@pytest.fixture
def program(timing):
    return BenderProgram(timing)


@pytest.fixture
def engine(device):
    return BenderEngine(device)


class TestIsa:
    def test_ddr_requires_command(self):
        with pytest.raises(ValueError):
            isa.Instruction(Opcode.DDR)

    def test_wait_rejects_negative(self):
        with pytest.raises(ValueError):
            isa.wait(-1)

    def test_loop_rejects_zero(self):
        with pytest.raises(ValueError):
            isa.loop_begin(0)

    def test_short_disassembly(self):
        ins = isa.ddr(Command(CommandKind.ACT, bank=0, row=1))
        assert ins.short() == "DDR ACT b0 r1"
        assert isa.wait(4).short() == "WAIT 4"
        assert isa.loop_begin(3).short() == "LOOP 3 {"
        assert isa.loop_end().short() == "}"
        assert isa.end().short() == "END"


class TestProgramBuilder:
    def test_fluent_chaining(self, program):
        program.activate(0, 1).wait_ps(13_500).read(0, 2).finish()
        kinds = [ins.opcode for ins in program.instructions]
        assert kinds == [Opcode.DDR, Opcode.WAIT, Opcode.DDR, Opcode.END]

    def test_wait_ps_rounds_up_to_interface_cycles(self, program, timing):
        program.wait_ps(timing.tCK + 1)
        assert program.instructions[0].operand == 2

    def test_wait_ps_zero_is_elided(self, program):
        program.wait_ps(0)
        assert len(program) == 0

    def test_unclosed_loop_rejected_at_finish(self, program):
        program.loop(5).activate(0, 0)
        with pytest.raises(ValueError, match="unclosed loop"):
            program.finish()

    def test_end_loop_without_loop(self, program):
        with pytest.raises(ValueError, match="without a matching"):
            program.end_loop()

    def test_finish_idempotent(self, program):
        program.activate(0, 0)
        program.finish()
        program.finish()
        ends = [i for i in program.instructions if i.opcode is Opcode.END]
        assert len(ends) == 1

    def test_reads_counts_static_rd(self, program):
        program.read(0, 0).read(0, 1).write(0, 2)
        assert program.reads() == 2

    def test_disassemble_indents_loops(self, program):
        program.loop(2).activate(0, 0).end_loop().finish()
        listing = program.disassemble()
        assert "LOOP 2 {" in listing
        assert "  DDR ACT b0 r0" in listing


class TestBuffers:
    def test_command_buffer_overflow(self):
        buf = CommandBuffer(capacity=2)
        buf.push(isa.wait(1))
        buf.push(isa.wait(1))
        with pytest.raises(BufferOverflow, match="flush_commands"):
            buf.push(isa.wait(1))

    def test_command_buffer_drain_preserves_order(self):
        buf = CommandBuffer()
        a, b = isa.wait(1), isa.wait(2)
        buf.push(a)
        buf.push(b)
        assert buf.drain() == [a, b]
        assert buf.empty

    def test_readback_fifo_order(self):
        buf = ReadbackBuffer()
        buf.push(b"one", True)
        buf.push(b"two", False)
        assert buf.pop() == (b"one", True)
        assert buf.pop_line() == b"two"

    def test_readback_overflow(self):
        buf = ReadbackBuffer(capacity=1)
        buf.push(b"x", True)
        with pytest.raises(BufferOverflow):
            buf.push(b"y", True)

    def test_readback_pop_empty(self):
        with pytest.raises(IndexError):
            ReadbackBuffer().pop()


class TestEngine:
    def test_elapsed_counts_commands_and_waits(self, engine, timing):
        program = BenderProgram(timing)
        program.activate(0, 1).wait_ps(timing.tRCD).read(0, 0).finish()
        result = engine.execute(program)
        rcd_cycles = -(-timing.tRCD // timing.tCK)
        assert result.elapsed_ps == (2 + rcd_cycles) * timing.tCK
        assert result.commands_issued == 2
        assert result.reads == 1

    def test_readback_captured_in_order(self, engine, device, timing):
        program = BenderProgram(timing)
        program.activate(0, 3).wait_ps(timing.tRCD)
        program.read(0, 0)
        program.wait_ps(timing.tCCD_L)
        program.read(0, 1)
        program.finish()
        result = engine.execute(program)
        assert result.readback[0] == device.default_line(0, 3, 0)
        assert result.readback[1] == device.default_line(0, 3, 1)
        assert result.all_reliable

    def test_loop_repeats_body(self, engine, device, timing):
        program = BenderProgram(timing)
        program.activate(0, 0).wait_ps(timing.tRCD)
        program.loop(5)
        program.read(0, 0)
        program.wait_ps(timing.tCCD_L)
        program.end_loop()
        program.finish()
        result = engine.execute(program)
        assert result.reads == 5
        assert len(result.readback) == 5

    def test_nested_loops(self, engine, timing):
        program = BenderProgram(timing)
        program.loop(3)
        program.loop(4)
        program.wait_cycles(1)
        program.end_loop()
        program.end_loop()
        program.finish()
        result = engine.execute(program)
        assert result.elapsed_ps == 12 * timing.tCK

    def test_missing_end_detected(self, engine, timing):
        program = BenderProgram(timing)
        program.activate(0, 0)  # no finish()
        with pytest.raises(ProgramError, match="without END"):
            engine.execute(program)

    def test_empty_program(self, engine, timing):
        result = engine.execute(BenderProgram(timing))
        assert result.elapsed_ps == 0

    def test_start_offset_respected(self, engine, device, timing):
        program = BenderProgram(timing)
        program.activate(0, 0).finish()
        engine.execute(program, start_ps=1_000_000)
        assert device.banks[0].last_act == 1_000_000

    def test_engine_accumulates_stats(self, engine, timing):
        program = BenderProgram(timing)
        program.wait_cycles(10)
        program.finish()
        engine.execute(program)
        engine.execute(program, start_ps=engine.device.timing.tCK * 20)
        assert engine.programs_run == 2
        assert engine.total_interface_cycles == 20
