"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dram.address import AddressMapper, Geometry
from repro.dram.cells import CellArrayModel, CellModelConfig
from repro.dram.device import DramDevice
from repro.dram.timing import ddr4_1333


@pytest.fixture
def timing():
    return ddr4_1333()


@pytest.fixture
def geometry():
    """A small geometry that keeps sweeps fast."""
    return Geometry(bank_groups=2, banks_per_group=2, rows_per_bank=256,
                    columns_per_row=32, subarray_rows=64)


@pytest.fixture
def full_geometry():
    """The paper's full single-rank DDR4 shape (footnote 5)."""
    return Geometry(bank_groups=4, banks_per_group=4, rows_per_bank=32768,
                    columns_per_row=128, subarray_rows=512)


@pytest.fixture
def cells(geometry):
    return CellArrayModel(geometry, CellModelConfig(seed=1234))


@pytest.fixture
def device(timing, geometry, cells):
    return DramDevice(timing, geometry, cells=cells, strict_timing=False)


@pytest.fixture
def strict_device(timing, geometry, cells):
    return DramDevice(timing, geometry, cells=cells, strict_timing=True)


@pytest.fixture
def mapper(geometry):
    return AddressMapper(geometry, "row-bank-col")
