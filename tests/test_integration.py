"""Cross-module integration tests: full flows through every layer."""

import pytest

from repro import EasyDRAMSystem, jetson_nano_time_scaling
from repro.core.config import pidram_no_time_scaling
from repro.core.stats import RunResult
from repro.core.techniques import RowCloneTechnique, TrcdReductionTechnique
from repro.cpu.memtrace import load, store
from repro.profiling.characterize import oracle_characterize
from repro.workloads import polybench
from repro.workloads.microbench import cpu_copy_trace


class TestDataIntegrityEndToEnd:
    """Data written through the full CPU->SMC->Bender->device path must
    be recoverable, and technique operations must preserve it."""

    def test_writeback_data_lands_in_dram(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        session = system.session("wb")
        # Dirty 64 lines, flush them to DRAM, then check via Bender.
        session.run_trace([store(i * 64, gap=1) for i in range(64)])
        session.clflush_range(0, 64 * 64)
        assert system.smc.stats.serviced_writes >= 64
        assert system.device.stats.commands.get("WR", 0) >= 64

    def test_rowclone_after_cpu_writes_round_trip(self):
        """Write via CPU, flush, RowClone, verify at the device level —
        the coherence flow of Section 7.1 end to end."""
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        session = system.session("roundtrip")
        technique = RowCloneTechnique(session)
        size = technique.geometry.row_bytes
        plan = technique.plan_copy(size)
        session.run_trace([store(plan.src_addr + i * 64, gap=1)
                           for i in range(size // 64)])
        technique.execute_copy(plan, clflush=True)
        assert technique.copy_is_correct(plan)

    def test_techniques_compose(self):
        """tRCD reduction and RowClone can be active simultaneously:
        RowClone operations go through technique episodes while regular
        requests take the reduced-tRCD serve hook."""
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        g = system.config.geometry
        characterization = oracle_characterize(
            system.tile.cells, g, range(g.num_banks), range(256))
        trcd = TrcdReductionTechnique(system, characterization)
        trcd.install()
        session = system.session("composed")
        rowclone = RowCloneTechnique(session)
        plan = rowclone.plan_copy(g.row_bytes)
        session.run_trace([load(i * 64, gap=1) for i in range(200)])
        rowclone.execute_copy(plan)
        session.run_trace([load((1 << 22) + i * 64, gap=1)
                           for i in range(200)])
        result = session.finish()
        assert rowclone.copy_is_correct(plan)
        assert system.device.stats.unreliable_reads == 0
        assert result.technique_ops >= 1


class TestDeterminismAcrossLayers:
    def test_full_polybench_run_reproducible(self):
        results = []
        for _ in range(2):
            system = EasyDRAMSystem(jetson_nano_time_scaling())
            results.append(system.run(polybench.trace("mvt", "mini"), "mvt"))
        a, b = results
        assert a.cycles == b.cycles
        assert a.row_hits == b.row_hits
        assert a.dram_commands == b.dram_commands

    def test_result_fields_consistent(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        result = system.run(polybench.trace("trisolv", "mini"), "trisolv")
        assert isinstance(result, RunResult)
        assert result.loads + result.stores == result.accesses
        assert result.l2.misses == result.llc_miss_requests
        assert result.emulated_seconds > 0
        assert result.wall_seconds > 0


class TestFailureInjection:
    def test_refresh_disabled_eventually_corrupts_reads(self):
        """Retention failure injection: without refresh, reads from
        leaky rows beyond tREFW return corrupted data."""
        from repro.dram.address import Geometry
        from repro.dram.commands import Command, CommandKind
        from repro.dram.device import DramDevice
        from repro.dram.timing import ddr4_1333

        geometry = Geometry(rows_per_bank=512)
        timing = ddr4_1333()
        device = DramDevice(timing, geometry, retention_modeling=True)
        t = timing.tREFW * 2
        failures = 0
        for row in range(0, 512, 7):
            device.issue(Command(CommandKind.ACT, bank=0, row=row), t)
            result = device.issue(
                Command(CommandKind.RD, bank=0, col=0), t + timing.tRCD)
            failures += 0 if result.reliable else 1
            device.issue(Command(CommandKind.PRE, bank=0), t + timing.tRAS)
            t += timing.tRC * 4
        assert failures > 0

    def test_deadlock_detection(self):
        """A blocked processor with nothing pending is a hard error,
        not a hang."""
        from repro.core.system import EmulationDeadlock, Session

        system = EasyDRAMSystem(jetson_nano_time_scaling())
        session = system.session("deadlock")
        # Simulate the pathological state: an outstanding request that
        # was never handed to the engine.
        from repro.cpu.processor import MemoryRequest

        session.processor.outstanding.append(
            MemoryRequest(rid=0, addr=0, is_write=False, tag=0))
        with pytest.raises(EmulationDeadlock):
            session.run_trace([load(1 << 30, gap=1, dependent=True)])


class TestNoTimeScalingVsTimeScalingConsistency:
    def test_same_dram_command_stream_semantics(self):
        """Both configurations drive the same DRAM: command mix should
        be similar for the same workload (timing differs, legality not)."""
        def trace():
            return [load(i * 64, gap=3) for i in range(800)]

        ts = EasyDRAMSystem(jetson_nano_time_scaling())
        no_ts = EasyDRAMSystem(pidram_no_time_scaling())
        ts.run(trace(), "a")
        no_ts.run(trace(), "b")
        ts_rd = ts.device.stats.commands.get("RD", 0)
        no_ts_rd = no_ts.device.stats.commands.get("RD", 0)
        assert ts_rd > 0 and no_ts_rd > 0
        assert abs(ts_rd - no_ts_rd) / max(ts_rd, no_ts_rd) < 0.4

    def test_copy_skew_is_the_papers_conclusion(self):
        """The paper's bottom line, as an executable assertion: the
        non-faithful platform inflates RowClone's benefit severalfold."""
        size = 4 * 8192

        def speedup(config):
            cpu = EasyDRAMSystem(config).run(
                cpu_copy_trace(0, 1 << 24, size), "cpu")
            session = EasyDRAMSystem(config).session("rc")
            technique = RowCloneTechnique(session)
            plan = technique.plan_copy(size)
            technique.execute_copy(plan)
            return cpu.emulated_ps / session.finish().emulated_ps

        skew = speedup(pidram_no_time_scaling()) / speedup(
            jetson_nano_time_scaling())
        assert skew > 5
