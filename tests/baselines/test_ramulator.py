"""Tests for the cycle-level baseline simulator."""

import pytest

from repro.baselines.ramulator import RamulatorConfig, RamulatorSim
from repro.baselines.ramulator.dram_model import DramTimingModel
from repro.cpu.memtrace import load, store
from repro.dram.address import Geometry
from repro.dram.timing import ddr4_1333


def stream(n, stride=64, gap=1):
    return [load(i * stride, gap=gap) for i in range(n)]


class TestTimingModel:
    @pytest.fixture
    def model(self):
        return DramTimingModel(ddr4_1333(), Geometry())

    def test_activate_opens_row(self, model):
        assert model.can_activate(0, 10)
        model.activate(0, 5, 10)
        assert model.banks[0].open_row == 5
        assert not model.can_activate(0, 11)  # already open

    def test_trcd_gates_read(self, model):
        model.activate(0, 5, 0)
        assert not model.can_read(0, 5, model.c_rcd - 1)
        assert model.can_read(0, 5, model.c_rcd)

    def test_wrong_row_cannot_read(self, model):
        model.activate(0, 5, 0)
        assert not model.can_read(0, 6, model.c_rcd)

    def test_tras_gates_precharge(self, model):
        model.activate(0, 5, 0)
        assert not model.can_precharge(0, model.c_ras - 1)
        assert model.can_precharge(0, model.c_ras)

    def test_faw_limits_burst_of_activates(self, model):
        for i in range(4):
            model.recent_acts.append(i)
        assert not model.can_activate(0, 4)

    def test_write_to_read_turnaround(self, model):
        model.activate(0, 5, 0)
        end = model.write(0, model.c_rcd)
        assert not model.can_read(0, 5, end)
        assert model.can_read(0, 5, end + model.c_wtr)

    def test_refresh_requires_closed_banks(self, model):
        model.activate(0, 5, 0)
        assert not model.all_banks_closed()
        model.precharge(0, model.c_ras)
        assert model.all_banks_closed()

    def test_refresh_blocks_activates(self, model):
        done = model.refresh(0)
        assert done == model.c_rfc
        assert not model.can_activate(0, done - 1)
        assert model.can_activate(0, done)

    def test_reduced_trcd_activate(self, model):
        model.activate_with_trcd_cycles(0, 5, 0, trcd_cycles=6)
        assert model.can_read(0, 5, 6)


class TestSimulation:
    def test_stream_completes(self):
        result = RamulatorSim().run(stream(500), "stream")
        assert result.accesses == 500
        assert result.llc_misses == 500
        assert result.reads >= 500
        assert result.cpu_cycles > 0

    def test_deterministic(self):
        a = RamulatorSim().run(stream(300), "x")
        b = RamulatorSim().run(stream(300), "x")
        assert a.cpu_cycles == b.cpu_cycles

    def test_cache_filters_repeats(self):
        trace = stream(20) + [load(0, gap=1) for _ in range(500)]
        result = RamulatorSim().run(trace, "hits")
        assert result.llc_misses <= 21

    def test_read_latency_in_plausible_band(self):
        result = RamulatorSim().run(
            [load(i * 64, gap=40, dependent=True) for i in range(300)],
            "chase")
        # A full row-miss access is ~tRCD+tCL+tBL ~= 21 mem cycles; with
        # queueing it stays well under 100.
        assert 10 < result.avg_read_latency_mem_cycles < 100

    def test_max_accesses_caps_simulation(self):
        config = RamulatorConfig(max_accesses=100)
        result = RamulatorSim(config).run(stream(10_000), "capped")
        assert result.accesses == 100

    def test_refresh_issued_on_long_runs(self):
        trace = [load(i * 64, gap=300) for i in range(2000)]
        result = RamulatorSim().run(trace, "long")
        assert result.refreshes > 0

    def test_writebacks_reach_dram(self):
        config = RamulatorConfig(l2_size=8 * 1024, l1_size=1024,
                                 l1_assoc=2)
        trace = [store(i * 64, gap=1) for i in range(1000)]
        result = RamulatorSim(config).run(trace, "wb")
        assert result.writes > 0

    def test_rowclone_cycles_scale_with_rows(self):
        sim = RamulatorSim()
        assert sim.rowclone_rows_cycles(10) == 10 * sim.rowclone_rows_cycles(1)

    def test_dependent_trace_serializes(self):
        dep = RamulatorSim().run(
            [load(i * 64, gap=1, dependent=True) for i in range(200)], "dep")
        indep = RamulatorSim().run(
            [load(i * 64, gap=1) for i in range(200)], "indep")
        assert dep.cpu_cycles > indep.cpu_cycles


class TestRelativePerformance:
    def test_cycle_level_is_slower_than_easydram(self):
        """Figure 14's premise: the event-driven emulator outpaces the
        per-cycle baseline on compute-heavy workloads."""
        from repro.core.config import jetson_nano_time_scaling
        from repro.core.system import EasyDRAMSystem

        def trace():
            return [load((i % 64) * 64, gap=60) for i in range(4000)]

        easy = EasyDRAMSystem(jetson_nano_time_scaling()).run(trace(), "w")
        ram = RamulatorSim().run(trace(), "w")
        assert easy.sim_speed_hz > ram.sim_speed_hz
