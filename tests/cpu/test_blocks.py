"""Block-trace frontend: builders, shims, and processor equivalence."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.cpu.blocks import AccessBlock, blockify
from repro.cpu.memtrace import Access, load, store
from repro.workloads import lmbench, microbench, polybench


def as_list(trace):
    return list(trace)


class TestAccessBlock:
    def test_parallel_arrays_must_align(self):
        with pytest.raises(ValueError):
            AccessBlock([1, 2], [0], [0, 0])

    def test_accesses_view_matches_arrays(self):
        block = AccessBlock([64, 128], [0, 1], [3, 7])
        assert list(block.accesses()) == [Access(64, 0, 3), Access(128, 1, 7)]

    def test_blockify_roundtrip(self):
        accesses = [load(i * 64, gap=i % 3, dependent=(i % 5 == 0))
                    for i in range(1, 100)] + [store(4096, gap=2)]
        bt = blockify(iter(accesses), block=7)
        blocks = list(bt)
        assert all(isinstance(b, AccessBlock) for b in blocks)
        assert max(len(b) for b in blocks) <= 7
        rebuilt = [a for b in blocks for a in b.accesses()]
        assert rebuilt == accesses

    def test_blocktrace_is_single_use(self):
        bt = blockify([load(0)], block=4)
        assert len(list(bt)) == 1
        assert list(bt) == []


class TestWorkloadBuilders:
    """Block builders and their iterator shims emit identical streams."""

    def test_cpu_copy(self):
        shim = as_list(microbench.cpu_copy_trace(0, 1 << 20, 5 * 64))
        blocks = microbench.cpu_copy_blocks(0, 1 << 20, 5 * 64, block=4)
        assert [a for b in blocks for a in b.accesses()] == shim
        assert shim[0] == Access(0, 0, 7)          # load src
        assert shim[1] == Access(1 << 20, 1, 7)    # store dst

    def test_cpu_init(self):
        shim = as_list(microbench.cpu_init_trace(1 << 16, 9 * 64))
        blocks = microbench.cpu_init_blocks(1 << 16, 9 * 64, block=4)
        assert [a for b in blocks for a in b.accesses()] == shim
        assert all(a.is_write for a in shim)

    def test_touch(self):
        for write in (False, True):
            shim = as_list(microbench.touch_trace(128, 6 * 64, write=write))
            blocks = microbench.touch_blocks(128, 6 * 64, write=write, block=5)
            assert [a for b in blocks for a in b.accesses()] == shim

    def test_pointer_chase(self):
        shim = as_list(lmbench.pointer_chase(4096, 150, seed=11))
        blocks = lmbench.pointer_chase_blocks(4096, 150, seed=11, block=16)
        assert [a for b in blocks for a in b.accesses()] == shim
        assert all(a.is_dependent for a in shim)

    def test_pointer_chase_too_small_raises_lazily(self):
        with pytest.raises(ValueError):
            list(lmbench.pointer_chase(32, 10))
        with pytest.raises(ValueError):
            lmbench.pointer_chase_blocks(32, 10)

    def test_polybench_blocks(self):
        shim = as_list(polybench.trace("gemm", "mini"))
        blocks = polybench.trace_blocks("gemm", "mini", block=64)
        assert [a for b in blocks for a in b.accesses()] == shim

    def test_block_size_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCK_SIZE", "3")
        blocks = list(microbench.touch_blocks(0, 10 * 64))
        assert [len(b) for b in blocks] == [3, 3, 3, 1]
        monkeypatch.setenv("REPRO_BLOCK_SIZE", "garbage")
        assert len(next(iter(microbench.touch_blocks(0, 10 * 64)))) == 10


class TestProcessorBlockMode:
    """Block replay == per-access execution, fastpath on or off."""

    def _run(self, trace_factory, fastpath, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH", "1" if fastpath else "0")
        system = EasyDRAMSystem(jetson_nano_time_scaling(), engine="event")
        session = system.session("blocks")
        session.run_trace(trace_factory())
        result = dataclasses.asdict(session.finish())
        result.pop("wall_seconds")
        return result

    def test_block_trace_matches_access_trace(self, monkeypatch):
        def blocks():
            return microbench.cpu_copy_blocks(0, 1 << 26, 96 * 1024, block=37)

        def accesses():
            return microbench.cpu_copy_trace(0, 1 << 26, 96 * 1024)

        fast_blocks = self._run(blocks, True, monkeypatch)
        fast_access = self._run(accesses, True, monkeypatch)
        slow_blocks = self._run(blocks, False, monkeypatch)
        assert fast_blocks == fast_access == slow_blocks

    def test_dependent_stream_matches(self, monkeypatch):
        def blocks():
            return lmbench.pointer_chase_blocks(32 * 1024, 2000, block=11)

        def accesses():
            return lmbench.pointer_chase(32 * 1024, 2000)

        assert (self._run(blocks, True, monkeypatch)
                == self._run(accesses, False, monkeypatch))
