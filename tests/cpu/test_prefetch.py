"""Stream-prefetcher tests: training, stats, env knob, and integration.

The prefetcher must be a pure addition at the core boundary: off by
default (bit-identical paper paths), deterministic when on, issuing
prefetch-tagged requests that never gate the core and never pollute
demand-attribution statistics.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.cpu.prefetch import (
    PrefetchConfig,
    StreamPrefetcher,
    prefetch_from_env,
)
from repro.workloads import microbench

LINE = 64
LIMIT = 1 << 26


def make(degree=2, distance=4, streams=16):
    return StreamPrefetcher(PrefetchConfig(degree=degree, distance=distance,
                                           streams=streams),
                            line_bytes=LINE, limit=LIMIT)


class TestTraining:
    def test_two_equal_strides_confirm_and_emit(self):
        pf = make(degree=2, distance=4)
        assert pf.observe(0) == []           # new stream
        assert pf.observe(LINE) == []        # first stride seen
        out = pf.observe(2 * LINE)           # confirmed: emit ahead
        assert out == [(2 + 4) * LINE, (2 + 5) * LINE]
        assert pf.stats.issued == 2
        assert pf.stats.demand_misses == 3

    def test_descending_stream(self):
        pf = make(degree=1, distance=2)
        base = 100 * LINE
        pf.observe(base)
        pf.observe(base - LINE)
        assert pf.observe(base - 2 * LINE) == [base - 4 * LINE]

    def test_non_unit_stride_resets_training(self):
        pf = make()
        pf.observe(0)
        pf.observe(LINE)
        assert pf.observe(5 * LINE) == []    # stride 4 lines: reset
        assert pf.observe(6 * LINE) == []    # unit stride again, unconfirmed
        assert pf.observe(7 * LINE) != []    # reconfirmed

    def test_useful_accounting(self):
        pf = make(degree=1, distance=1)
        pf.observe(0)
        pf.observe(LINE)
        issued = pf.observe(2 * LINE)        # prefetches line 3
        assert issued == [3 * LINE]
        out = pf.observe(3 * LINE)           # demand hits the prefetch...
        assert pf.stats.useful == 1
        assert out == [4 * LINE]             # ...and the stream keeps going
        assert pf.stats.accuracy == 0.5      # 1 useful of 2 issued so far
        assert pf.stats.coverage == 1 / 4
        # A consumed prefetch is only credited once (replay resets the
        # stream to stride 0, no new credit and no new issue).
        assert pf.observe(3 * LINE) == []
        assert pf.stats.useful == 1

    def test_limit_bounds_prefetch_addresses(self):
        pf = make(degree=4, distance=1)
        last = LIMIT - LINE
        pf.observe(last - 2 * LINE)
        pf.observe(last - LINE)
        out = pf.observe(last)               # window crosses the limit
        assert out == []                     # nothing decodable remains
        assert all(0 <= a < LIMIT for a in out)

    def test_stream_table_evicts_oldest_region(self):
        pf = make(streams=1)
        pf.observe(0)
        pf.observe(1 << 20)                  # second region evicts first
        pf.observe(LINE)                     # back to region 0: retrains
        assert pf.observe(2 * LINE) == []    # stride seen once, unconfirmed

    def test_line_bytes_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            StreamPrefetcher(PrefetchConfig(), line_bytes=48, limit=LIMIT)

    def test_config_validation(self):
        for bad in ({"degree": 0}, {"distance": 0}, {"streams": 0}):
            with pytest.raises(ValueError):
                PrefetchConfig(**bad)


class TestEnvKnob:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PREFETCH", raising=False)
        assert prefetch_from_env() is None

    @pytest.mark.parametrize("value", ["0", "false", "off", ""])
    def test_false_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PREFETCH", value)
        assert prefetch_from_env() is None

    def test_enable_with_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREFETCH", "1")
        assert prefetch_from_env() == PrefetchConfig()

    def test_degree_distance_syntax(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREFETCH", "4:8")
        assert prefetch_from_env() == PrefetchConfig(degree=4, distance=8)

    def test_bad_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREFETCH", "lots")
        with pytest.raises(ValueError, match="REPRO_PREFETCH"):
            prefetch_from_env()


def _copy_result(session_prefetch=None, env=None, monkeypatch=None,
                 engine="event"):
    if env is not None:
        monkeypatch.setenv("REPRO_PREFETCH", env)
    system = EasyDRAMSystem(jetson_nano_time_scaling(), engine=engine)
    session = system.session("pf")
    if session_prefetch is not None:
        session.set_prefetcher(0, session_prefetch)
    session.run_trace(microbench.cpu_copy_blocks(0, 1 << 26, 128 * 1024))
    result = session.finish()
    return system, session, result


class TestSystemIntegration:
    def test_prefetcher_issues_and_covers_on_a_stream(self):
        system, session, result = _copy_result(PrefetchConfig())
        stats = session.prefetch_stats()[0]
        assert stats.issued > 0
        assert stats.useful > 0
        assert 0.0 < stats.coverage <= 1.0
        assert session.cores[0].processor.stats.prefetch_requests \
            == stats.issued
        assert system.smc.stats.serviced_prefetches == stats.issued

    def test_demand_attribution_is_prefetch_blind(self):
        baseline_system, _, baseline = _copy_result()
        system, _, result = _copy_result(PrefetchConfig())
        # The demand stream is address-deterministic, so demand service
        # counts match the prefetch-free run exactly; prefetches land in
        # their own counter and stay out of requests_per_channel.
        assert system.smc.stats.serviced_reads \
            == baseline_system.smc.stats.serviced_reads
        assert system.smc.stats.serviced_writes \
            == baseline_system.smc.stats.serviced_writes
        assert result.requests_per_channel == baseline.requests_per_channel
        assert result.llc_miss_requests == baseline.llc_miss_requests

    def test_env_knob_wires_every_core(self, monkeypatch):
        _, session, _ = _copy_result(env="2:4", monkeypatch=monkeypatch)
        assert session.cores[0].processor.prefetcher.config \
            == PrefetchConfig(degree=2, distance=4)

    def test_off_means_no_hook(self):
        _, session, _ = _copy_result()
        assert session.cores[0].processor.prefetcher is None
        assert session.prefetch_stats() == {}

    def test_set_prefetcher_none_removes(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        session = system.session("pf")
        session.set_prefetcher(0, PrefetchConfig())
        session.set_prefetcher(0, None)
        assert session.cores[0].processor.prefetcher is None

    @pytest.mark.parametrize("engine", ("cycle", "event"))
    def test_prefetch_bit_identical_across_fastpath(self, monkeypatch,
                                                    engine):
        def snapshot():
            _, session, result = _copy_result(PrefetchConfig(),
                                              engine=engine)
            d = dataclasses.asdict(result)
            d.pop("wall_seconds")
            return d, dataclasses.asdict(session.prefetch_stats()[0])

        monkeypatch.setenv("REPRO_FASTPATH", "0")
        slow = snapshot()
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        assert snapshot() == slow

    def test_prefetch_bit_identical_across_engines(self):
        def snapshot(engine):
            _, session, result = _copy_result(PrefetchConfig(),
                                              engine=engine)
            d = dataclasses.asdict(result)
            d.pop("wall_seconds")
            return d, dataclasses.asdict(session.prefetch_stats()[0])

        assert snapshot("cycle") == snapshot("event")
