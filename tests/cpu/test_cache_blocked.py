"""Differential tests: flat-array cache (per-access + block) vs the seed.

The seed model (:class:`ReferenceCache`/:class:`ReferenceCacheHierarchy`,
kept verbatim) is the oracle.  The randomized streams mix loads, stores,
and CLFLUSH of clean/dirty/absent lines, and the block path is driven
with random chunk boundaries so every replay-cursor edge case is hit.
"""

from __future__ import annotations

import random

from repro.cpu.cache import (
    Cache,
    CacheHierarchy,
    ReferenceCache,
    ReferenceCacheHierarchy,
)

LINE = 64


def build_pair(l1_sets=4, l1_assoc=2, l2_sets=8, l2_assoc=4):
    l1 = Cache("L1", l1_sets * l1_assoc * LINE, l1_assoc, LINE, 2)
    l2 = Cache("L2", l2_sets * l2_assoc * LINE, l2_assoc, LINE, 10)
    new = CacheHierarchy(l1, l2, memory_fill_latency=3)
    r1 = ReferenceCache("L1", l1_sets * l1_assoc * LINE, l1_assoc, LINE, 2)
    r2 = ReferenceCache("L2", l2_sets * l2_assoc * LINE, l2_assoc, LINE, 10)
    ref = ReferenceCacheHierarchy(r1, r2, memory_fill_latency=3)
    return new, ref


def stats_tuple(h):
    return tuple((c.stats.hits, c.stats.misses, c.stats.writebacks,
                  c.stats.flushes) for c in (h.l1, h.l2))


def random_stream(rng, n, lines=64):
    """(op, addr) ops: 0=load, 1=store, 2=flush."""
    hot = [rng.randrange(lines) * LINE for _ in range(8)]
    ops = []
    for _ in range(n):
        r = rng.random()
        op = 1 if r < 0.35 else (2 if r < 0.45 else 0)
        addr = (rng.choice(hot) if rng.random() < 0.5
                else rng.randrange(lines) * LINE)
        addr += rng.randrange(LINE)  # sub-line offsets must not matter
        ops.append((op, addr))
    return ops


class TestPerAccessDifferential:
    def test_randomized_streams_match_reference(self):
        for seed in range(8):
            rng = random.Random(seed)
            new, ref = build_pair()
            for op, addr in random_stream(rng, 3000):
                if op == 2:
                    assert new.flush_line(addr) == ref.flush_line(addr)
                else:
                    got = new.access(addr, is_write=bool(op))
                    want = ref.access(addr, is_write=bool(op))
                    assert (got.latency, got.fill_line, got.writebacks) == \
                        (want.latency, want.fill_line, want.writebacks)
                assert stats_tuple(new) == stats_tuple(ref)
            assert new.l1.resident_lines() == ref.l1.resident_lines()
            assert new.l2.resident_lines() == ref.l2.resident_lines()

    def test_clflush_clean_dirty_absent(self):
        new, ref = build_pair()
        for h in (new, ref):
            h.access(0, is_write=False)      # clean resident line
            h.access(LINE, is_write=True)    # dirty resident line
        for addr in (0, LINE, 7 * LINE):     # clean, dirty, absent
            assert new.flush_line(addr) == ref.flush_line(addr)
        assert new.flush_line(LINE) == ref.flush_line(LINE)  # re-flush
        assert stats_tuple(new) == stats_tuple(ref)


class TestBlockDifferential:
    def _drive_block(self, hierarchy, ops, rng):
        """Apply ops through access_block in random chunks; return events."""
        events = []
        i = 0
        while i < len(ops):
            # CLFLUSH is not part of the block interface; split around it.
            if ops[i][0] == 2:
                events.append(("flush", hierarchy.flush_line(ops[i][1])))
                i += 1
                continue
            j = i
            limit = i + rng.randrange(1, 16)
            while j < len(ops) and j < limit and ops[j][0] != 2:
                j += 1
            addrs = [a for _, a in ops[i:j]]
            flags = [op for op, _ in ops[i:j]]
            traffic = hierarchy.access_block(addrs, flags)
            assert traffic.n_fills == sum(
                1 for f in traffic.fill_addr if f >= 0)
            wb_ptr = 0
            for k in range(len(addrs)):
                lat = traffic.latency[k]
                fills = traffic.fill_addr[k]
                wbs = []
                while (wb_ptr < len(traffic.wb_index)
                       and traffic.wb_index[wb_ptr] == k):
                    wbs.append(traffic.wb_addr[wb_ptr])
                    wb_ptr += 1
                events.append(("access", lat, fills, wbs))
            assert wb_ptr == len(traffic.wb_index)
            i = j
        return events

    def _drive_per_access(self, hierarchy, ops):
        events = []
        for op, addr in ops:
            if op == 2:
                events.append(("flush", hierarchy.flush_line(addr)))
            else:
                t = hierarchy.access(addr, is_write=bool(op))
                fill = -1 if t.fill_line is None else t.fill_line
                events.append(("access", t.latency, fill, t.writebacks))
        return events

    def test_block_path_matches_seed_reference(self):
        """Old per-access implementation vs new block path, randomized."""
        for seed in range(10):
            rng = random.Random(1000 + seed)
            new, ref = build_pair()
            ops = random_stream(rng, 2500)
            got = self._drive_block(new, ops, rng)
            want = self._drive_per_access(ref, ops)
            assert got == want
            assert stats_tuple(new) == stats_tuple(ref)

    def test_writeback_ordering_within_block(self):
        """An access evicting two dirty lines posts both, in seed order."""
        # L1 1 set x 1 way, L2 1 set x 1 way: every new line evicts.
        l1 = Cache("L1", LINE, 1, LINE, 1)
        l2 = Cache("L2", LINE, 1, LINE, 1)
        h = CacheHierarchy(l1, l2, memory_fill_latency=0)
        r = ReferenceCacheHierarchy(
            ReferenceCache("L1", LINE, 1, LINE, 1),
            ReferenceCache("L2", LINE, 1, LINE, 1), 0)
        ops = [(1, 0), (1, LINE), (1, 2 * LINE), (0, 3 * LINE), (1, 0)]
        got = self._drive_block(h, ops, random.Random(0))
        want = self._drive_per_access(r, ops)
        assert got == want

    def test_mixed_flush_interleave(self):
        for seed in range(5):
            rng = random.Random(7000 + seed)
            new, ref = build_pair(l1_sets=2, l1_assoc=1, l2_sets=2, l2_assoc=2)
            ops = random_stream(rng, 1200, lines=24)
            assert (self._drive_block(new, ops, rng)
                    == self._drive_per_access(ref, ops))


class TestNonPowerOfTwoSets:
    """Satellite regression: set indexing is stable for non-pow2 set counts."""

    def test_split_roundtrips(self):
        cache = Cache("odd", 3 * 2 * LINE, 2, LINE, 1)  # 3 sets
        assert cache.num_sets == 3
        for line in (0, 1, 2, 3, 7, 100, 12345):
            s, t = cache.split(line)
            assert t * cache.num_sets + s == line
            cache.fill(line, dirty=True)
            assert cache.contains(line)
        # Victim reconstruction uses the same split.
        cache2 = Cache("odd1", 3 * 1 * LINE, 1, LINE, 1)
        cache2.fill(5, dirty=True)     # set 2, tag 1
        victim = cache2.fill(8, dirty=False)  # set 2, tag 2 evicts line 5
        assert victim == 5

    def test_differential_with_non_pow2_hierarchy(self):
        l1 = Cache("L1", 3 * 2 * LINE, 2, LINE, 2)
        l2 = Cache("L2", 6 * 2 * LINE, 2, LINE, 9)
        new = CacheHierarchy(l1, l2, 1)
        ref = ReferenceCacheHierarchy(
            ReferenceCache("L1", 3 * 2 * LINE, 2, LINE, 2),
            ReferenceCache("L2", 6 * 2 * LINE, 2, LINE, 9), 1)
        rng = random.Random(42)
        ops = random_stream(rng, 2000, lines=48)
        driver = TestBlockDifferential()
        assert (driver._drive_block(new, ops, rng)
                == driver._drive_per_access(ref, ops))
        assert stats_tuple(new) == stats_tuple(ref)
