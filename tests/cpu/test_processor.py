"""Tests for the trace-driven processor model."""

import pytest

from repro.cpu.cache import Cache, CacheHierarchy
from repro.cpu.memtrace import load, store
from repro.cpu.processor import Processor, ProcessorConfig


def make_processor(trace, mlp=4, miss_window=16):
    l1 = Cache("L1", 1024, 2, 64, 1)
    l2 = Cache("L2", 4096, 4, 64, 4)
    config = ProcessorConfig(mlp=mlp, miss_window=miss_window)
    return Processor(config, CacheHierarchy(l1, l2), trace)


def release_all(requests, latency=100):
    for request in requests:
        if request.release is None:
            request.release = request.tag + latency


class TestBasics:
    def test_empty_trace_finishes_immediately(self):
        proc = make_processor([])
        burst = proc.execute_burst()
        assert burst.done
        assert proc.done

    def test_hit_only_trace_never_blocks(self):
        trace = [load(0, gap=2)] + [load(0, gap=1) for _ in range(9)]
        proc = make_processor(trace)
        burst = proc.execute_burst()
        # The very first access misses; everything after hits.
        assert len(burst.new_requests) == 1
        release_all(burst.new_requests, latency=50)
        burst = proc.execute_burst()
        assert burst.done
        assert proc.stats.accesses == 10

    def test_compute_gaps_accumulate(self):
        trace = [load(0, gap=10), load(0, gap=5)]
        proc = make_processor(trace)
        burst = proc.execute_burst()
        release_all(burst.new_requests)
        proc.execute_burst()
        assert proc.stats.compute_cycles == 15

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ProcessorConfig(mlp=0)
        with pytest.raises(ValueError):
            ProcessorConfig(miss_window=0)


class TestBlockingAndMlp:
    def test_blocks_at_mlp_limit(self):
        # 8 distinct lines, all misses, mlp=2.
        trace = [load(i * 64, gap=1) for i in range(8)]
        proc = make_processor(trace, mlp=2)
        burst = proc.execute_burst()
        assert burst.blocked
        assert len(burst.new_requests) == 2
        assert len(proc.outstanding) == 2

    def test_resumes_after_release(self):
        trace = [load(i * 64, gap=1) for i in range(4)]
        proc = make_processor(trace, mlp=2)
        burst = proc.execute_burst()
        release_all(burst.new_requests, latency=100)
        burst = proc.execute_burst()
        release_all(burst.new_requests, latency=100)
        burst = proc.execute_burst()
        assert burst.done
        assert proc.stats.llc_miss_requests == 4

    def test_release_advances_cycles(self):
        trace = [load(0, gap=0)]
        proc = make_processor(trace, mlp=1)
        burst = proc.execute_burst()
        request = burst.new_requests[0]
        request.release = request.tag + 500
        proc.execute_burst()
        assert proc.cycles >= request.tag + 500
        assert proc.stats.stall_cycles >= 499

    def test_dependent_access_serializes(self):
        trace = [load(0, gap=0), load(64, gap=0, dependent=True)]
        proc = make_processor(trace, mlp=8)
        burst = proc.execute_burst()
        # The dependent load cannot issue while the first is outstanding.
        assert len(burst.new_requests) == 1
        assert burst.blocked

    def test_in_order_config_blocks_immediately(self):
        trace = [load(i * 64, gap=1) for i in range(4)]
        proc = make_processor(trace, mlp=1, miss_window=1)
        burst = proc.execute_burst()
        assert len(burst.new_requests) == 1

    def test_deliver_requires_release(self):
        trace = [load(0)]
        proc = make_processor(trace)
        burst = proc.execute_burst()
        with pytest.raises(ValueError):
            proc.deliver(burst.new_requests[0])


class TestWritebacks:
    def test_writebacks_are_posted_not_blocking(self):
        # Dirty a line, then evict it by filling its set.
        l1 = Cache("L1", 2 * 64, 2, 64, 1)
        l2 = Cache("L2", 4 * 64, 2, 64, 4)
        config = ProcessorConfig(mlp=8, miss_window=64)
        sets_l2 = l2.num_sets
        trace = [store(0, gap=0)] + [
            load(i * sets_l2 * 64, gap=0) for i in range(1, 6)]
        proc = Processor(config, CacheHierarchy(l1, l2), trace)
        seen_wb = []
        while not proc.done:
            burst = proc.execute_burst()
            seen_wb.extend(r for r in burst.new_requests if r.is_writeback)
            release_all(burst.new_requests)
        assert seen_wb, "expected a posted writeback"
        assert all(r.is_write for r in seen_wb)

    def test_writebacks_do_not_join_outstanding(self):
        trace = [store(0, gap=0)]
        proc = make_processor(trace)
        burst = proc.execute_burst()
        fills = [r for r in burst.new_requests if not r.is_writeback]
        assert len(proc.outstanding) == len(fills)


class TestFeedAndStats:
    def test_feed_resumes_after_done(self):
        proc = make_processor([load(0, gap=1)])
        burst = proc.execute_burst()
        release_all(burst.new_requests)
        assert proc.execute_burst().done
        proc.feed([load(64, gap=1)])
        assert not proc.done
        burst = proc.execute_burst()
        release_all(burst.new_requests)
        assert proc.execute_burst().done
        assert proc.stats.accesses == 2

    def test_clflush_charges_cycles(self):
        proc = make_processor([])
        before = proc.cycles
        wb, cost = proc.clflush(0)
        assert wb is None
        assert proc.cycles == before + proc.config.flush_latency

    def test_request_latency_recorded(self):
        proc = make_processor([load(0, gap=0)], mlp=1)
        burst = proc.execute_burst()
        burst.new_requests[0].release = burst.new_requests[0].tag + 77
        proc.execute_burst()
        assert proc.stats.request_latencies == [77]

    def test_loads_and_stores_counted(self):
        trace = [load(0), store(64), load(128)]
        proc = make_processor(trace, mlp=8)
        while not proc.done:
            burst = proc.execute_burst()
            release_all(burst.new_requests)
        assert proc.stats.loads == 2
        assert proc.stats.stores == 1
