"""Tests for the cache hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.cache import Cache, CacheHierarchy


def make_hierarchy(l1_size=1024, l2_size=4096, line=64):
    l1 = Cache("L1", l1_size, 2, line, 2)
    l2 = Cache("L2", l2_size, 4, line, 12)
    return CacheHierarchy(l1, l2)


class TestCache:
    def test_size_divisibility_checked(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, 3, 64, 1)

    def test_miss_then_hit(self):
        cache = Cache("c", 1024, 2, 64, 1)
        assert not cache.lookup(5, False)
        cache.fill(5, dirty=False)
        assert cache.lookup(5, False)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = Cache("c", 2 * 64, 2, 64, 1)  # 1 set, 2 ways
        cache.fill(0, False)
        cache.fill(1, False)
        cache.lookup(0, False)          # 0 becomes MRU
        victim = cache.fill(2, False)   # evicts 1 (LRU), clean
        assert victim is None
        assert cache.contains(0)
        assert not cache.contains(1)

    def test_dirty_eviction_reports_victim(self):
        cache = Cache("c", 2 * 64, 2, 64, 1)
        cache.fill(0, dirty=True)
        cache.fill(1, False)
        victim = cache.fill(2, False)
        assert victim == 0

    def test_write_sets_dirty(self):
        cache = Cache("c", 2 * 64, 2, 64, 1)
        cache.fill(0, False)
        cache.lookup(0, True)   # write hit marks dirty
        _, dirty = cache.evict(0)
        assert dirty

    def test_evict_missing_line(self):
        cache = Cache("c", 1024, 2, 64, 1)
        assert cache.evict(42) == (False, False)

    def test_refill_merges_dirty(self):
        cache = Cache("c", 1024, 2, 64, 1)
        cache.fill(3, dirty=False)
        cache.fill(3, dirty=True)
        _, dirty = cache.evict(3)
        assert dirty
        assert cache.resident_lines() == 0


class TestHierarchy:
    def test_line_size_must_match(self):
        l1 = Cache("L1", 1024, 2, 64, 1)
        l2 = Cache("L2", 4096, 4, 128, 10)
        with pytest.raises(ValueError):
            CacheHierarchy(l1, l2)

    def test_first_access_misses_to_memory(self):
        h = make_hierarchy()
        traffic = h.access(0, False)
        assert traffic.is_llc_miss
        assert traffic.fill_line == 0

    def test_second_access_hits_l1(self):
        h = make_hierarchy()
        h.access(0, False)
        traffic = h.access(0, False)
        assert not traffic.is_llc_miss
        assert traffic.latency == h.l1.hit_latency

    def test_l1_victim_falls_to_l2(self):
        h = make_hierarchy(l1_size=2 * 64, l2_size=64 * 64)
        h.access(0, False)
        # Fill enough lines in the same L1 set to evict line 0 from L1.
        h.access(64, False)
        h.access(2 * 64, False)
        traffic = h.access(0, False)
        assert not traffic.is_llc_miss        # L2 still has it
        assert traffic.latency == h.l1.hit_latency + h.l2.hit_latency

    def test_dirty_l2_eviction_produces_writeback(self):
        h = make_hierarchy(l1_size=2 * 64, l2_size=4 * 64)
        sets = h.l2.num_sets
        # Write lines that all map to L2 set 0 until one dirty line spills.
        addrs = [i * sets * 64 for i in range(6)]
        writebacks = []
        for addr in addrs:
            traffic = h.access(addr, True)
            writebacks.extend(traffic.writebacks)
        assert writebacks, "expected at least one dirty writeback"

    def test_flush_line_dirty(self):
        h = make_hierarchy()
        h.access(0, True)
        wb = h.flush_line(0)
        assert wb == 0
        assert not h.l1.contains(0)
        assert not h.l2.contains(0)

    def test_flush_line_clean(self):
        h = make_hierarchy()
        h.access(0, False)
        assert h.flush_line(0) is None

    def test_flush_absent_line(self):
        h = make_hierarchy()
        assert h.flush_line(12345 * 64) is None

    def test_reset_stats(self):
        h = make_hierarchy()
        h.access(0, False)
        h.reset_stats()
        assert h.l1.stats.accesses == 0
        assert h.l2.stats.accesses == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.booleans()),
                min_size=1, max_size=300))
def test_hierarchy_never_double_counts_property(ops):
    """Invariants over random access streams:

    * resident lines never exceed capacity at any level;
    * a flush of every touched line leaves both caches empty;
    * total L1 accesses equals the number of operations.
    """
    h = make_hierarchy(l1_size=512, l2_size=2048)
    touched = set()
    for line, is_write in ops:
        h.access(line * 64, is_write)
        touched.add(line)
    assert h.l1.resident_lines() <= 512 // 64
    assert h.l2.resident_lines() <= 2048 // 64
    assert h.l1.stats.accesses == len(ops)
    for line in touched:
        h.flush_line(line * 64)
    assert h.l1.resident_lines() == 0
    assert h.l2.resident_lines() == 0
