"""Tests for EasyAPI and the software memory controller."""

import pytest

from repro.core.config import jetson_nano_time_scaling, pidram_no_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.cpu.memtrace import load, store
from repro.cpu.processor import MemoryRequest
from repro.dram.address import DramAddress
from repro.dram.commands import CommandKind


@pytest.fixture
def system():
    return EasyDRAMSystem(jetson_nano_time_scaling())


@pytest.fixture
def api(system):
    return system.api


class TestEasyApiCosts:
    def test_charges_accumulate_and_drain(self, api):
        api.set_scheduling_state(True)
        api.get_addr_mapping(0)
        charged = api.take_charges()
        assert charged == api.costs.critical_toggle + api.costs.address_map
        assert api.take_charges() == 0

    def test_req_empty_polls(self, api, system):
        assert api.req_empty()
        system.tile.push_request(MemoryRequest(0, 0, False, 0))
        assert not api.req_empty()

    def test_get_request_moves_from_fifo(self, api, system):
        request = MemoryRequest(1, 64, False, 10)
        system.tile.push_request(request)
        assert api.get_request() is request
        assert not system.tile.has_requests

    def test_addr_mapping_roundtrip(self, api):
        dram = api.get_addr_mapping(8192)
        assert api.reverse_addr_mapping(dram) == 8192


class TestSequences:
    def test_read_sequence_closed_bank(self, api):
        api.read_sequence(DramAddress(0, 5, 3))
        kinds = [i.command.kind for i in api.program.instructions
                 if i.command is not None]
        assert kinds == [CommandKind.ACT, CommandKind.RD]

    def test_read_sequence_row_hit(self, api, system):
        system.device.banks[0].activate(5, 0)
        api.read_sequence(DramAddress(0, 5, 3))
        kinds = [i.command.kind for i in api.program.instructions
                 if i.command is not None]
        assert kinds == [CommandKind.RD]

    def test_read_sequence_conflict(self, api, system):
        system.device.banks[0].activate(9, 0)
        api.read_sequence(DramAddress(0, 5, 3))
        kinds = [i.command.kind for i in api.program.instructions
                 if i.command is not None]
        assert kinds == [CommandKind.PRE, CommandKind.ACT, CommandKind.RD]

    def test_refresh_sequence(self, api):
        api.refresh_sequence()
        kinds = [i.command.kind for i in api.program.instructions
                 if i.command is not None]
        assert kinds == [CommandKind.PREA, CommandKind.REF]

    def test_rowclone_sequence_shape(self, api):
        api.rowclone(0, 1, 2)
        kinds = [i.command.kind for i in api.program.instructions
                 if i.command is not None]
        assert kinds == [CommandKind.ACT, CommandKind.PRE, CommandKind.ACT,
                         CommandKind.PRE]

    def test_flush_resets_program(self, system, api):
        api.read_sequence(DramAddress(0, 5, 3))
        result = api.flush_commands()
        assert result.commands_issued == 2
        assert len(api.program) == 0

    def test_flush_without_executor(self, system):
        system.api.executor = None
        system.api.ddr_activate(0, 0)
        with pytest.raises(RuntimeError, match="no program executor"):
            system.api.flush_commands()

    def test_data_latency(self, api, system):
        t = system.config.timing
        assert api.data_latency_ps(False) == t.tCL + t.tBL
        assert api.data_latency_ps(True) == t.tCWL + t.tBL


class TestServicePending:
    def test_sets_release_on_every_request(self, system):
        requests = [MemoryRequest(i, i * 64, False, tag=10 + i)
                    for i in range(4)]
        system.smc.service_pending(requests)
        assert all(r.release is not None for r in requests)
        assert all(r.release > r.tag for r in requests)

    def test_release_includes_latency_floor(self, system):
        request = MemoryRequest(0, 0, False, tag=100)
        system.smc.service_pending([request])
        # Latency must at least cover the DRAM read itself.
        t = system.config.timing
        period = 699  # 1.43 GHz
        min_cycles = (t.tRCD + t.tCL + t.tBL) // period
        assert request.release - request.tag >= min_cycles

    def test_empty_call_is_noop(self, system):
        system.smc.service_pending([])
        assert system.smc.stats.serviced_reads == 0

    def test_counts_reads_and_writes(self, system):
        requests = [
            MemoryRequest(0, 0, False, tag=1),
            MemoryRequest(1, 64, True, tag=2, is_writeback=True),
        ]
        system.smc.service_pending(requests)
        assert system.smc.stats.serviced_reads == 1
        assert system.smc.stats.serviced_writes == 1

    def test_row_hits_batched_by_frfcfs(self, system):
        # Two requests to one row, one to another row of the same bank:
        # FR-FCFS serves both row hits before the conflicting row.
        mapper = system.mapper
        base_a = mapper.row_base_physical(0, 10)
        base_b = mapper.row_base_physical(0, 20)
        requests = [
            MemoryRequest(0, base_a, False, tag=1),
            MemoryRequest(1, base_b, False, tag=2),
            MemoryRequest(2, base_a + 64, False, tag=3),
        ]
        system.smc.service_pending(requests)
        assert requests[2].release < requests[1].release

    def test_critical_mode_toggled(self, system):
        request = MemoryRequest(0, 0, False, tag=1)
        system.smc.service_pending([request])
        assert not system.counters.critical_mode
        assert system.counters.critical_entries == 1

    def test_mc_counter_advances(self, system):
        request = MemoryRequest(0, 0, False, tag=1)
        system.smc.service_pending([request])
        assert system.counters.memory_controller > 0


class TestRefreshCadence:
    def test_refreshes_track_trefi(self):
        system = EasyDRAMSystem(pidram_no_time_scaling())
        # A trace long enough to cross several tREFI intervals at 50 MHz.
        trace = [load(i * 64, gap=200) for i in range(3000)]
        result = system.run(trace, "refresh-test")
        expected = result.emulated_ps // system.config.timing.tREFI
        assert result.refreshes == pytest.approx(expected, abs=2)

    def test_refresh_can_be_disabled(self):
        from repro.core.config import ControllerConfig

        config = pidram_no_time_scaling(
            controller=ControllerConfig(pipelined_occupancy_cycles=0,
                                        refresh_enabled=False))
        system = EasyDRAMSystem(config)
        trace = [load(i * 64, gap=200) for i in range(2000)]
        result = system.run(trace, "no-refresh")
        assert result.refreshes == 0


class TestNoTimeScalingSerialization:
    def test_no_ts_requests_cost_more_cycles_end_to_end(self):
        """The software MC's full cost is exposed without time scaling:
        per-request wall latency (ns) is much higher."""
        trace = [load(i * 64, gap=1, dependent=True) for i in range(300)]
        ts = EasyDRAMSystem(jetson_nano_time_scaling()).run(list(trace), "a")
        no_ts = EasyDRAMSystem(pidram_no_time_scaling()).run(list(trace), "b")
        ts_ns = (ts.avg_request_latency_cycles / 1.43e9) * 1e9
        no_ts_ns = (no_ts.avg_request_latency_cycles / 50e6) * 1e9
        assert no_ts_ns > 3 * ts_ns
