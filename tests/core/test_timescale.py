"""Tests for clock domains and time-scaling counters."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.timescale import ClockDomain, TimeScalingCounters


class TestClockDomain:
    def test_scaling_active_detection(self):
        assert ClockDomain("p", 100e6, 1e9).scaling_active
        assert not ClockDomain("p", 1e9, 1e9).scaling_active

    def test_scale_factor(self):
        assert ClockDomain("p", 100e6, 1e9).scale_factor == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ClockDomain("p", 0, 1e9)

    def test_cycles_to_emulated_ps(self):
        domain = ClockDomain("mc", 100e6, 1e9)
        # 60 controller cycles at the *emulated* 1 GHz = 60 ns.
        assert domain.cycles_to_emulated_ps(60) == 60_000

    def test_measure_quantizes_up_to_fpga_grid(self):
        domain = ClockDomain("b", 333e6, 333e6)
        period = domain.fpga_period_ps
        assert domain.measure_ps(1) == period
        assert domain.measure_ps(period) == period
        assert domain.measure_ps(period + 1) == 2 * period

    def test_measure_zero(self):
        assert ClockDomain("b", 1e9, 1e9).measure_ps(0) == 0

    def test_ps_to_emulated_cycles_rounds_up(self):
        domain = ClockDomain("p", 100e6, 1e9)
        assert domain.ps_to_emulated_cycles(1001) == 2
        assert domain.ps_to_emulated_cycles(1000) == 1

    @given(duration=st.integers(1, 10**8))
    @settings(max_examples=100)
    def test_measurement_error_bounded_by_one_cycle(self, duration):
        """Quantization never adds more than one FPGA period — the basis
        of the paper's <0.1% validation result."""
        domain = ClockDomain("b", 333e6, 333e6)
        measured = domain.measure_ps(duration)
        assert 0 <= measured - duration < domain.fpga_period_ps


class TestCounters:
    def test_initial_state(self):
        c = TimeScalingCounters()
        assert (c.processor, c.memory_controller, c.global_fpga) == (0, 0, 0)
        assert not c.critical_mode

    def test_enter_exit_critical(self):
        c = TimeScalingCounters()
        c.enter_critical()
        assert c.critical_mode
        assert c.critical_entries == 1
        c.exit_critical()
        assert not c.critical_mode

    def test_enter_critical_idempotent(self):
        c = TimeScalingCounters()
        c.enter_critical()
        c.enter_critical()
        assert c.critical_entries == 1

    def test_exit_synchronizes_processor_to_mc(self):
        """Fig 5: when critical mode ends the processor counter catches
        up to the memory-controller counter."""
        c = TimeScalingCounters()
        c.enter_critical()
        c.advance_processor(100)
        c.advance_memory_controller(250)
        c.exit_critical()
        assert c.processor == 250

    def test_processor_counter_monotonic(self):
        c = TimeScalingCounters()
        c.advance_processor(100)
        c.advance_processor(50)   # absorbed, not an error
        assert c.processor == 100

    def test_mc_counter_rejects_regression(self):
        c = TimeScalingCounters()
        c.advance_memory_controller(100)
        with pytest.raises(ValueError):
            c.advance_memory_controller(50)

    def test_global_counter(self):
        c = TimeScalingCounters()
        c.advance_global(10)
        c.advance_global(5)
        assert c.global_fpga == 15
        with pytest.raises(ValueError):
            c.advance_global(-1)
