"""Engine equivalence and event-scheduler edge cases.

The event-driven engine's contract is that it is a pure host-time
optimization: every emulated quantity — run results, controller and
device statistics, timing-violation records, counters — must be
bit-identical to the cycle-stepped reference engine.  These tests pin
that contract across configurations, workloads (including writebacks,
refresh storms, and technique interleavings), and the scheduler edge
cases the skip-ahead logic must get right.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.core.config import (
    cortex_a57_reference,
    jetson_nano_time_scaling,
    pidram_no_time_scaling,
    validation_time_scaled,
)
from repro.core.engine import (
    CycleEngine,
    EventEngine,
    make_engine,
    resolve_engine_name,
)
from repro.core.events import EventKind, EventQueue
from repro.core.system import EasyDRAMSystem, EmulationDeadlock
from repro.cpu.memtrace import load
from repro.cpu.processor import MemoryRequest
from repro.dram.bank import BankState, RankState
from repro.dram.commands import Command, CommandKind
from repro.dram.timing import ddr4_1333
from repro.dram.timing_checker import TimingChecker
from repro.workloads import lmbench, microbench

CONFIGS = {
    "jetson": jetson_nano_time_scaling,
    "pidram": pidram_no_time_scaling,
    "a57": cortex_a57_reference,
    "validation": validation_time_scaled,
}


def snapshot(system: EasyDRAMSystem, result) -> dict:
    """Every emulated observable of a finished run (host wall time excluded)."""
    run = dataclasses.asdict(result)
    run.pop("wall_seconds")
    return {
        "run": run,
        "smc": dataclasses.asdict(system.smc.stats),
        "tile": dataclasses.asdict(system.tile.stats),
        "device": dataclasses.asdict(system.device.stats),
        "violations": [
            (v.constraint, v.time_ps, v.earliest_ps, v.command.kind)
            for v in system.device.checker.violations],
        "counters": (system.counters.processor,
                     system.counters.memory_controller,
                     system.counters.critical_entries,
                     system.counters.catch_up_cycles),
        "cursors": (system.smc.sched_cursor, system.smc.dram_cursor),
        "bender": (system.tile.engine.programs_run,
                   system.tile.engine.total_interface_cycles),
    }


def run_both(config_factory, driver):
    """Run ``driver(session)`` under both engines; return both snapshots."""
    outcomes = []
    for engine in ("cycle", "event"):
        system = EasyDRAMSystem(config_factory(), engine=engine)
        session = system.session("equivalence", engine=engine)
        driver(session)
        outcomes.append(snapshot(system, session.finish()))
    return outcomes


def assert_equivalent(config_factory, driver):
    cycle, event = run_both(config_factory, driver)
    assert cycle == event


# -- workload drivers ---------------------------------------------------------


def chase_driver(session):
    session.run_trace(microbench.touch_trace(0, 96 * 1024))
    session.run_trace(lmbench.pointer_chase(96 * 1024, 3000, base_addr=0))


def writeback_driver(session):
    # A store stream larger than the L2 forces dirty evictions, so the
    # batch mixes fills and posted writebacks (WR commands).
    size = session.hierarchy.l2.size_bytes * 2
    session.run_trace(microbench.cpu_init_trace(0, size))
    session.run_trace(microbench.cpu_copy_trace(0, size, size // 2))


def gap_driver(session):
    # Long compute gaps so tREFI deadlines land inside skipped intervals.
    trace = []
    for i in range(64):
        trace.append(load(i * 4096 * 64, gap=50_000))
    session.run_trace(trace)


def technique_driver(session):
    session.run_trace(microbench.touch_trace(0, 32 * 1024, write=True))
    session.technique_op(lambda api: api.rowclone(0, 1, 2))
    session.clflush_range(0, 64 * 64)
    session.run_trace(lmbench.pointer_chase(64 * 1024, 800, base_addr=0))
    session.technique_op(lambda api: api.rowclone(1, 3, 4))
    session.run_trace(microbench.cpu_init_trace(0, 32 * 1024))


class TestEngineEquivalence:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_pointer_chase_identical(self, config_name):
        assert_equivalent(CONFIGS[config_name], chase_driver)

    @pytest.mark.slow  # heaviest equivalence pair in this file (~7 s)
    @pytest.mark.parametrize("config_name", ["jetson", "pidram"])
    def test_writebacks_identical(self, config_name):
        assert_equivalent(CONFIGS[config_name], writeback_driver)

    def test_refresh_heavy_identical(self):
        assert_equivalent(jetson_nano_time_scaling, gap_driver)

    def test_technique_interleaving_identical(self):
        """Technique episodes and CLFLUSH share cursors with batched
        episodes; mixing the fast and reference paths must not skew."""
        assert_equivalent(jetson_nano_time_scaling, technique_driver)

    def test_event_engine_used_batched_path(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling(), engine="event")
        session = system.session("batched")
        chase_driver(session)
        session.finish()
        assert session.engine.stats.batched_episodes > 0
        assert session.engine.stats.fallback_episodes == 0
        assert session.engine.stats.gates > 0

    def test_serve_hook_falls_back_to_reference_path(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling(), engine="event")
        session = system.session("hooked")
        calls = []

        def hook(api, entry):
            calls.append(entry.request.rid)
            if entry.is_write:
                api.write_sequence(entry.dram)
            else:
                api.read_sequence(entry.dram)

        system.smc.serve_hook = hook
        session.run_trace(microbench.touch_trace(0, 64 * 1024))
        session.finish()
        assert calls, "hook never saw a request"
        assert session.engine.stats.fallback_episodes > 0
        assert session.engine.stats.batched_episodes == 0


class TestEventSchedulerEdgeCases:
    @pytest.mark.parametrize("engine", ["cycle", "event"])
    def test_blocked_with_no_pending_raises_deadlock(self, engine):
        """Zero pending requests at a gate is a hard error, not a hang."""
        system = EasyDRAMSystem(jetson_nano_time_scaling(), engine=engine)
        session = system.session("deadlock")
        session.processor.outstanding.append(
            MemoryRequest(rid=0, addr=0, is_write=False, tag=0))
        with pytest.raises(EmulationDeadlock):
            session.run_trace([load(1 << 30, gap=1, dependent=True)])

    @staticmethod
    def _coarse_clock_config():
        """A processor clock so slow that one emulated cycle spans many
        controller service slots: distinct DRAM completions quantize onto
        the same release cycle (back-to-back releases)."""
        from repro.core.timescale import ClockDomain
        from repro.cpu.processor import ProcessorConfig

        return jetson_nano_time_scaling(
            processor_domain=ClockDomain("processor", 100e6, 10e6),
            processor=ProcessorConfig(
                name="coarse-10MHz", emulated_freq_hz=10e6,
                fpga_freq_hz=100e6, mlp=16, miss_window=96))

    def test_back_to_back_release_cycles(self):
        """Several responses can release on the same processor cycle;
        both engines must agree on every release."""
        def releases(engine):
            system = EasyDRAMSystem(self._coarse_clock_config(), engine=engine)
            session = system.session("b2b")
            session.run_trace([load(i * 64, gap=0) for i in range(256)])
            session.finish()
            # release - tag per request, all consumed by the drain.
            return tuple(session.processor.stats.request_latencies)

        cycle, event = releases("cycle"), releases("event")
        assert cycle == event

    def test_equal_release_cycles_observed_by_event_queue(self):
        """The coarse-clock batch really does produce same-cycle
        releases, and the queue pops them FIFO."""
        system = EasyDRAMSystem(self._coarse_clock_config(), engine="event")
        session = system.session("b2b-queue")
        seen = []
        smc = system.smc
        original = smc.service_pending_batched

        def spy(requests, refresh_sink=None):
            out = original(requests, refresh_sink=refresh_sink)
            seen.extend(r.release for r in requests)
            # Every serviced request got a release, and the processor's
            # next RELEASE event is the oldest outstanding fill's.
            assert all(r.release is not None for r in requests)
            outstanding = session.processor.outstanding
            if outstanding:
                assert (session.processor.next_release_cycle()
                        == outstanding[0].release)
            return out

        smc.service_pending_batched = spy
        session.run_trace([load(i * 64, gap=0) for i in range(256)])
        session.finish()
        duplicates = len(seen) - len(set(seen))
        assert duplicates > 0, "workload never produced equal release cycles"

    def test_refresh_deadline_inside_skipped_interval(self):
        """A compute gap that skips past tREFI deadlines must still issue
        every refresh at its exact emulated time, in both engines."""
        cycle, event = run_both(jetson_nano_time_scaling, gap_driver)
        assert cycle == event
        assert cycle["run"]["refreshes"] > 1

        # The event engine logged those deadlines as REFRESH events.
        system = EasyDRAMSystem(jetson_nano_time_scaling(), engine="event")
        session = system.session("refresh-events")
        gap_driver(session)
        session.finish()
        assert session.engine.stats.refreshes == session.system.smc.stats.refreshes
        assert session.engine.stats.refreshes > 1

    def test_refresh_disabled_never_calls_sink(self):
        config = jetson_nano_time_scaling(
            controller=dataclasses.replace(
                jetson_nano_time_scaling().controller, refresh_enabled=False))
        cycle, event = run_both(lambda: config, chase_driver)
        assert cycle == event
        assert cycle["run"]["refreshes"] == 0


class TestEventQueue:
    def test_orders_by_time_then_fifo(self):
        queue = EventQueue()
        queue.push(50, EventKind.RELEASE, payload=1)
        queue.push(10, EventKind.GATE, payload=2)
        queue.push(50, EventKind.REFRESH, payload=3)
        queue.push(10, EventKind.RELEASE, payload=4)
        order = [(e.time, e.kind, e.payload)
                 for e in (queue.pop() for _ in range(len(queue)))]
        assert order == [
            (10, EventKind.GATE, 2),
            (10, EventKind.RELEASE, 4),
            (50, EventKind.RELEASE, 1),
            (50, EventKind.REFRESH, 3),
        ]

    def test_pop_until_drains_inclusive(self):
        queue = EventQueue()
        for t in (5, 10, 15, 20):
            queue.push(t, EventKind.RELEASE)
        fired = queue.pop_until(15)
        assert [e.time for e in fired] == [5, 10, 15]
        assert len(queue) == 1
        assert queue.peek().time == 20

    def test_drain_until_counts(self):
        queue = EventQueue()
        for t in (1, 2, 3):
            queue.push(t, EventKind.REFRESH)
        assert queue.drain_until(2) == 2
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        queue = EventQueue()
        assert queue.peek() is None
        with pytest.raises(IndexError):
            queue.pop()

    def test_clear_keeps_sequence_monotonic(self):
        queue = EventQueue()
        queue.push(1, EventKind.GATE)
        queue.clear()
        queue.push(1, EventKind.GATE)
        assert queue.pop().seq == 1


class TestEngineSelection:
    def test_default_is_event(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine_name(None) == "event"
        assert isinstance(make_engine(None), EventEngine)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "cycle")
        assert resolve_engine_name(None) == "cycle"
        assert isinstance(make_engine(None), CycleEngine)

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "cycle")
        system = EasyDRAMSystem(jetson_nano_time_scaling(), engine="event")
        assert system.engine_name == "event"
        assert isinstance(system.session("s").engine, EventEngine)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown emulation engine"):
            EasyDRAMSystem(jetson_nano_time_scaling(), engine="warp")


class TestBatchedTimingQueries:
    """earliest_ps must compute exactly what earliest_issue computes."""

    def _random_state(self, rng, geometry):
        banks = []
        for i in range(geometry.num_banks):
            bank = BankState(i)
            if rng.random() < 0.8:
                bank.last_act = rng.randrange(0, 2_000_000)
                bank.open_row = rng.randrange(0, geometry.rows_per_bank)
            if rng.random() < 0.7:
                bank.last_pre = rng.randrange(0, 2_000_000)
                if rng.random() < 0.5:
                    bank.open_row = None
            if rng.random() < 0.6:
                bank.last_read = rng.randrange(0, 2_000_000)
            if rng.random() < 0.6:
                bank.last_write = rng.randrange(0, 2_000_000)
                bank.last_write_data_end = bank.last_write + rng.randrange(0, 20_000)
            banks.append(bank)
        rank = RankState()
        for _ in range(rng.randrange(0, 6)):
            rank.recent_acts.append(rng.randrange(0, 2_000_000))
        if rng.random() < 0.5:
            rank.last_ref = rng.randrange(0, 2_000_000)
        return banks, rank

    def test_matches_full_enumeration_on_random_states(self):
        timing = ddr4_1333()
        from repro.dram.address import Geometry

        geometry = Geometry()
        checker = TimingChecker(timing, geometry, strict=False)
        rng = random.Random(0xEA5D)
        kinds = [
            lambda b, r: Command(CommandKind.ACT, bank=b, row=r),
            lambda b, r: Command(CommandKind.PRE, bank=b),
            lambda b, r: Command(CommandKind.PREA),
            lambda b, r: Command(CommandKind.RD, bank=b, col=0),
            lambda b, r: Command(CommandKind.WR, bank=b, col=0),
            lambda b, r: Command(CommandKind.REF),
        ]
        for _ in range(300):
            banks, rank = self._random_state(rng, geometry)
            cmd = rng.choice(kinds)(
                rng.randrange(geometry.num_banks),
                rng.randrange(geometry.rows_per_bank))
            full, _name = checker.earliest_issue(cmd, banks, rank)
            assert checker.earliest_ps(cmd, banks, rank) == full

    def test_check_fast_records_identical_violations(self):
        timing = ddr4_1333()
        from repro.dram.address import Geometry

        geometry = Geometry()
        slow = TimingChecker(timing, geometry, strict=False)
        fast = TimingChecker(timing, geometry, strict=False)
        banks = [BankState(i) for i in range(geometry.num_banks)]
        rank = RankState()
        banks[0].activate(100, 10_000)
        early_pre = Command(CommandKind.PRE, bank=0)
        # tRAS violation: PRE right after the ACT.
        slow.check(early_pre, 12_000, banks, rank)
        fast.check_fast(early_pre, 12_000, banks, rank)
        assert len(slow.violations) == len(fast.violations) == 1
        a, b = slow.violations[0], fast.violations[0]
        assert (a.constraint, a.time_ps, a.earliest_ps) == \
            (b.constraint, b.time_ps, b.earliest_ps)

    def test_strict_mode_raises_from_fast_path(self):
        from repro.dram.address import Geometry
        from repro.dram.timing_checker import TimingViolation

        checker = TimingChecker(ddr4_1333(), Geometry(), strict=True)
        banks = [BankState(i) for i in range(Geometry().num_banks)]
        rank = RankState()
        banks[0].activate(100, 10_000)
        with pytest.raises(TimingViolation):
            checker.check_fast(Command(CommandKind.PRE, bank=0), 12_000,
                               banks, rank)
