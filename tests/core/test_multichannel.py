"""Multi-channel system tests: routing, equivalence, scaling, techniques.

The :class:`~repro.core.channels.ChannelSet` façade must keep the
engine-equivalence and fastpath-equivalence contracts that hold on the
paper's single-channel system: both engines, with the array-native fast
path on or off, produce bit-identical emulated observables on any
topology.  On top of that, channel-level parallelism must actually pay:
a bandwidth-bound stream finishes faster on more channels.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.core.techniques.rowclone import RowCloneTechnique
from repro.core.techniques.trcd import TrcdReductionTechnique
from repro.dram.timing import ns
from repro.profiling.characterize import oracle_characterize
from repro.workloads import lmbench, microbench


def two_channel_config(**kwargs):
    return jetson_nano_time_scaling().with_topology("ddr4-2ch", **kwargs)


def snapshot(system: EasyDRAMSystem, result) -> dict:
    """Every emulated observable, per channel (host wall time excluded)."""
    run = dataclasses.asdict(result)
    run.pop("wall_seconds")
    return {
        "run": run,
        "smc": [dataclasses.asdict(smc.stats) for smc in system.smcs],
        "tile": [dataclasses.asdict(t.stats) for t in system.tiles],
        "device": [dataclasses.asdict(c.tile.device.stats)
                   for c in system.channels],
        "violations": [
            [(v.constraint, v.time_ps, v.earliest_ps, v.command.kind)
             for v in c.tile.device.checker.violations]
            for c in system.channels],
        "cursors": [(smc.sched_cursor, smc.dram_cursor)
                    for smc in system.smcs],
        "counters": (system.counters.processor,
                     system.counters.memory_controller),
    }


def mixed_driver(session):
    """Streams + dependent chases + flushes across both channels."""
    system = session.system
    session.run_trace(microbench.channel_stream_blocks(
        system.mapper, 1024, write=True))
    session.run_trace(lmbench.pointer_chase_blocks(64 * 1024, 2000,
                                                   base_addr=0))
    session.clflush_range(0, 32 * 1024)
    session.run_trace(microbench.cpu_copy_blocks(0, 1 << 22, 64 * 1024))


def run_config(config, engine):
    system = EasyDRAMSystem(config, engine=engine)
    session = system.session("mc", engine=engine)
    mixed_driver(session)
    return snapshot(system, session.finish())


class TestEquivalence:
    @pytest.mark.parametrize("scheme", ("channel-line", "channel-row",
                                        "channel-xor"))
    def test_engines_bit_identical_two_channels(self, scheme):
        config = two_channel_config(mapping_scheme=scheme)
        assert run_config(config, "cycle") == run_config(config, "event")

    def test_engines_bit_identical_four_channels(self):
        config = jetson_nano_time_scaling().with_topology("ddr4-4ch")
        assert run_config(config, "cycle") == run_config(config, "event")

    def test_fastpath_bit_identical_two_channels(self, monkeypatch):
        config = two_channel_config()
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        slow = run_config(config, "event")
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        fast = run_config(config, "event")
        assert slow == fast

    def test_multi_rank_engines_bit_identical(self):
        config = jetson_nano_time_scaling().with_topology("ddr4-2ch-2rk")
        assert run_config(config, "cycle") == run_config(config, "event")


class TestRouting:
    def test_requests_reach_every_channel(self):
        system = EasyDRAMSystem(two_channel_config())
        result = system.run(microbench.channel_stream_blocks(
            system.mapper, 2048, write=True), "route")
        assert len(result.requests_per_channel) == 2
        assert all(n > 0 for n in result.requests_per_channel)
        assert sum(result.requests_per_channel) >= result.llc_miss_requests

    def test_requests_tagged_with_decoded_channel(self):
        system = EasyDRAMSystem(two_channel_config())
        session = system.session("tags")
        session.run_trace(microbench.touch_blocks(0, 64 * 1024))
        # Every serviced request went to the controller its address maps
        # to: each device only ever saw its own channel's banks.
        for channel in system.channels:
            assert channel.tile.stats.requests_received > 0

    def test_single_channel_has_no_channel_set(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        assert system.smc is system.channels[0].smc
        assert system.num_channels == 1


class TestScaling:
    def test_stream_faster_on_more_channels(self):
        lines_per_channel = 4096
        times = {}
        for name in ("ddr4-1ch", "ddr4-2ch", "ddr4-4ch"):
            config = jetson_nano_time_scaling().with_topology(
                name, mapping_scheme="channel-line")
            system = EasyDRAMSystem(config)
            channels = config.geometry.channels
            trace = microbench.channel_stream_blocks(
                system.mapper, lines_per_channel * 4 // channels, write=True)
            times[channels] = system.run(trace, name).emulated_ps
        assert times[2] < times[1]
        assert times[4] < times[2]


class TestTechniques:
    def test_rowclone_spans_channels(self):
        config = two_channel_config(mapping_scheme="channel-row")
        system = EasyDRAMSystem(config)
        session = system.session("rowclone-mc")
        technique = RowCloneTechnique(session)
        g = config.geometry
        plan = technique.plan_copy(8 * g.row_bytes)
        assert {p.channel for p in plan.pairs} == {0, 1}
        technique.execute_copy(plan)
        assert technique.copy_is_correct(plan)
        # The in-DRAM ops ran on both channels' controllers.
        ops = [smc.stats.technique_ops for smc in system.smcs]
        assert all(n > 0 for n in ops)

    def test_rowclone_rejects_line_interleave(self):
        config = two_channel_config(mapping_scheme="channel-line")
        session = EasyDRAMSystem(config).session("rowclone-bad")
        with pytest.raises(ValueError, match="row-contiguous"):
            RowCloneTechnique(session)

    def test_trcd_installs_on_every_channel(self):
        config = two_channel_config()
        system = EasyDRAMSystem(config)
        g = config.geometry
        characterization = oracle_characterize(
            system.tile.cells, g, range(4), range(64))
        technique = TrcdReductionTechnique(system, characterization,
                                           reduced_trcd_ps=ns(9.0))
        technique.install()
        assert all(smc.serve_hook is not None for smc in system.smcs)
        system.run(microbench.channel_stream_blocks(system.mapper, 512),
                   "trcd-mc")
        assert technique.stats.reduced_acts + technique.stats.nominal_acts > 0
        technique.uninstall()
        assert all(smc.serve_hook is None for smc in system.smcs)
