"""Tests for the tRCD-reduction technique."""

import pytest

from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.core.techniques.trcd import TrcdReductionTechnique
from repro.cpu.memtrace import load
from repro.dram.timing import ns
from repro.profiling.characterize import oracle_characterize


@pytest.fixture
def system():
    return EasyDRAMSystem(jetson_nano_time_scaling())


@pytest.fixture
def characterization(system):
    g = system.config.geometry
    return oracle_characterize(system.tile.cells, g, range(g.num_banks),
                               range(512))


@pytest.fixture
def technique(system, characterization):
    return TrcdReductionTechnique(system, characterization)


def row_miss_trace(system, rows, accesses_per_row=1):
    """A trace that activates many distinct rows (ACT-heavy)."""
    mapper = system.mapper
    trace = []
    for row in range(rows):
        base = mapper.row_base_physical(row % 4, row % 400)
        for i in range(accesses_per_row):
            trace.append(load(base + i * 64, gap=1, dependent=True))
    return trace


class TestConfiguration:
    def test_rejects_non_reduced_trcd(self, system, characterization):
        with pytest.raises(ValueError, match="below nominal"):
            TrcdReductionTechnique(system, characterization,
                                   reduced_trcd_ps=ns(14.0))

    def test_bloom_contains_every_weak_row(self, technique, characterization):
        """RAIDR-style guarantee: no false negatives — a weak row is
        never accessed with the reduced tRCD."""
        for bank, row in characterization.weak_rows(threshold_ps=ns(9.0)):
            assert technique.trcd_for(bank, row) == technique.nominal_trcd_ps

    def test_most_strong_rows_get_reduced_trcd(self, technique,
                                               characterization):
        strong = [(b, r) for (b, r), p in characterization.profiles.items()
                  if p.min_trcd_ps <= ns(9.0)]
        reduced = sum(
            1 for bank, row in strong
            if technique.trcd_for(bank, row) < technique.nominal_trcd_ps)
        # Bloom false positives may demote a few strong rows — safe but
        # rare (~1% by construction).
        assert reduced / len(strong) > 0.95


class TestServing:
    def test_no_unreliable_reads_ever(self, system, technique):
        """The correctness property of the whole scheme: reduced-tRCD
        accesses never return corrupted data."""
        technique.install()
        system.run(row_miss_trace(system, 300), "trcd-safe")
        assert system.device.stats.unreliable_reads == 0
        assert technique.stats.reduced_acts > 0

    def test_reduced_fraction_tracks_strong_fraction(self, system, technique):
        technique.install()
        system.run(row_miss_trace(system, 400), "trcd-frac")
        frac = technique.stats.reduced_fraction
        strong = system.tile.cells.strong_fraction(banks=4)
        assert abs(frac - strong) < 0.25

    def test_speedup_on_act_heavy_workload(self, system, characterization):
        """Reduced tRCD must shorten execution on a row-miss-heavy
        trace; the gain is bounded by tRCD's share of the access."""
        def trace():
            return row_miss_trace(system, 500)

        base_sys = EasyDRAMSystem(jetson_nano_time_scaling())
        base = base_sys.run(trace(), "base")
        fast_sys = EasyDRAMSystem(jetson_nano_time_scaling())
        technique = TrcdReductionTechnique(fast_sys, characterization)
        technique.install()
        fast = fast_sys.run(trace(), "fast")
        speedup = base.emulated_ps / fast.emulated_ps
        assert 1.0 < speedup < 1.15

    def test_uninstall_restores_stock_behaviour(self, system, technique):
        technique.install()
        technique.uninstall()
        system.run(row_miss_trace(system, 50), "stock")
        assert technique.stats.reduced_acts == 0

    def test_row_hits_bypass_bloom_check(self, system, technique):
        technique.install()
        mapper = system.mapper
        base = mapper.row_base_physical(0, 3)
        trace = [load(base + i * 64, gap=1, dependent=True) for i in range(64)]
        system.run(trace, "hits")
        assert technique.stats.row_hits > 0
        total_acts = technique.stats.reduced_acts + technique.stats.nominal_acts
        assert total_acts <= 4  # one activation, plus refresh-induced reopens
