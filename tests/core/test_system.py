"""End-to-end tests of the EasyDRAM emulation engine."""

import pytest

from repro.core.config import (
    jetson_nano_time_scaling,
    pidram_no_time_scaling,
    validation_reference,
    validation_time_scaled,
)
from repro.core.system import EasyDRAMSystem
from repro.cpu.memtrace import load, store
from repro.workloads.lmbench import pointer_chase


def stream(n, stride=64, gap=1, base=0):
    return [load(base + i * stride, gap=gap) for i in range(n)]


class TestRunBasics:
    def test_simple_run_completes(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        result = system.run(stream(500), "stream")
        assert result.accesses == 500
        assert result.cycles > 0
        assert result.llc_miss_requests == 500

    def test_deterministic_across_instances(self):
        a = EasyDRAMSystem(jetson_nano_time_scaling()).run(stream(400), "x")
        b = EasyDRAMSystem(jetson_nano_time_scaling()).run(stream(400), "x")
        assert a.cycles == b.cycles
        assert a.emulated_ps == b.emulated_ps

    def test_cache_hits_do_not_reach_dram(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        trace = stream(10) + stream(1000, stride=0)  # re-touch line 0
        result = system.run(trace, "hits")
        assert result.llc_miss_requests <= 11

    def test_emulated_time_consistency(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        result = system.run(stream(200), "t")
        period = 699  # 1.43 GHz in ps (truncated)
        assert result.emulated_ps == result.cycles * period

    def test_breakdown_sums_to_total(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        result = system.run(stream(300), "b")
        b = result.breakdown
        assert b.processing_ps + b.stall_ps == result.emulated_ps

    def test_row_statistics_tracked(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        result = system.run(stream(600), "rows")
        assert result.row_hits + result.row_misses + result.row_conflicts >= 600 - 10

    def test_run_result_summary_renders(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        result = system.run(stream(50), "sum")
        text = result.summary()
        assert "sum" in text and "cycles" in text


class TestSessionFlows:
    def test_session_mixes_traces(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        session = system.session("mixed")
        session.run_trace(stream(100))
        mid = session.processor.cycles
        session.run_trace(stream(100, base=1 << 20))
        result = session.finish()
        assert result.cycles > mid
        assert result.accesses == 200

    def test_technique_op_blocks_processor(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        session = system.session("tech")
        before = session.processor.cycles
        session.technique_op(lambda api: api.rowclone(0, 1, 2))
        assert session.processor.cycles > before
        assert system.smc.stats.technique_ops == 1

    def test_clflush_range_writes_back_dirty_lines(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        session = system.session("flush")
        session.run_trace([store(i * 64, gap=1) for i in range(32)])
        flushed = session.clflush_range(0, 32 * 64)
        assert flushed == 32
        assert system.smc.stats.serviced_writes >= 32

    def test_clflush_clean_lines_are_free(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        session = system.session("flush-clean")
        session.run_trace(stream(32))
        flushed = session.clflush_range(0, 32 * 64)
        assert flushed == 0


class TestTimeScalingBehaviour:
    def test_memory_latency_matches_a57_ballpark(self):
        """The Jetson config's main-memory load latency must fall in the
        150-190 cycle band the paper's Figure 8 shows for the A57."""
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        result = system.run(pointer_chase(4 * 1024 * 1024, 4000), "chase")
        assert 120 < result.cycles_per_access < 220

    def test_no_ts_memory_latency_is_deflated(self):
        """Without time scaling few processor cycles pass per access —
        the evaluation-skew pathology of Sections 3 and 6."""
        system = EasyDRAMSystem(pidram_no_time_scaling())
        result = system.run(pointer_chase(4 * 1024 * 1024, 4000), "chase")
        assert result.cycles_per_access < 60

    def test_validation_error_small_even_on_dense_stream(self):
        """A dense miss stream is the worst case for time scaling's
        measurement quantization (every request pays the grid error);
        even there the divergence stays within 2%.  The Section 6
        experiment checks the paper's <0.1% claim on real workloads."""
        def trace():
            return stream(1500, gap=2)

        ref = EasyDRAMSystem(validation_reference()).run(trace(), "v")
        ts = EasyDRAMSystem(validation_time_scaled()).run(trace(), "v")
        err = abs(ts.cycles - ref.cycles) / ref.cycles
        assert err < 0.02

    def test_validation_error_tiny_on_compute_heavy_workload(self):
        """Section 6's regime: PolyBench-like low memory intensity."""
        def trace():
            return stream(300, gap=50)

        ref = EasyDRAMSystem(validation_reference()).run(trace(), "v")
        ts = EasyDRAMSystem(validation_time_scaled()).run(trace(), "v")
        err = abs(ts.cycles - ref.cycles) / ref.cycles
        assert err < 0.002

    def test_counters_monotone_through_run(self):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        system.run(stream(300), "c")
        counters = system.counters
        assert counters.processor > 0
        assert counters.memory_controller > 0
        assert not counters.critical_mode
