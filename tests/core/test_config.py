"""Tests for system configurations and presets."""

import pytest

from repro.core.config import (
    ControllerConfig,
    cortex_a57_reference,
    jetson_nano_time_scaling,
    pidram_no_time_scaling,
    preset,
    validation_reference,
    validation_time_scaled,
)


class TestPresets:
    def test_jetson_time_scaling_enabled(self):
        assert jetson_nano_time_scaling().time_scaling_enabled

    def test_no_time_scaling_preset(self):
        cfg = pidram_no_time_scaling()
        assert not cfg.time_scaling_enabled
        assert cfg.processor.mlp == 1                      # in-order core
        assert cfg.controller.pipelined_occupancy_cycles == 0

    def test_jetson_models_a57(self):
        cfg = jetson_nano_time_scaling()
        assert cfg.processor.emulated_freq_hz == pytest.approx(1.43e9)
        assert cfg.l2.size_bytes == 512 * 1024

    def test_a57_reference_has_2mib_l2(self):
        assert cortex_a57_reference().l2.size_bytes == 2 * 1024 * 1024

    def test_validation_pair_differs_only_in_domains(self):
        ref = validation_reference()
        ts = validation_time_scaled()
        assert ref.processor_domain.emulated_freq_hz == pytest.approx(1e9)
        assert ts.processor_domain.emulated_freq_hz == pytest.approx(1e9)
        assert ts.processor_domain.fpga_freq_hz == pytest.approx(100e6)
        assert ref.l1 == ts.l1
        assert ref.l2 == ts.l2
        assert ref.timing == ts.timing

    def test_preset_lookup(self):
        assert preset("jetson-nano-ts").name == "EasyDRAM-TimeScaling"

    def test_preset_unknown(self):
        with pytest.raises(KeyError, match="unknown system preset"):
            preset("nope")

    def test_preset_overrides(self):
        cfg = preset("jetson-nano-ts", name="custom")
        assert cfg.name == "custom"

    def test_with_overrides_returns_new_config(self):
        cfg = jetson_nano_time_scaling()
        other = cfg.with_overrides(name="x")
        assert cfg.name != other.name

    def test_controller_scheduler_validated(self):
        with pytest.raises(ValueError):
            ControllerConfig(scheduler="lifo")

    def test_default_mapping_is_skewed(self):
        assert jetson_nano_time_scaling().mapping_scheme == "row-bank-col-skew"
