"""Tests for the RowClone technique (end to end)."""

import pytest

from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.core.techniques.rowclone import RowCloneTechnique
from repro.workloads.microbench import cpu_copy_trace


@pytest.fixture
def session():
    return EasyDRAMSystem(jetson_nano_time_scaling()).session("rowclone")


@pytest.fixture
def technique(session):
    return RowCloneTechnique(session)


class TestPlanning:
    def test_rows_for_rounds_up(self, technique):
        row_bytes = technique.geometry.row_bytes
        assert technique.rows_for(row_bytes) == 1
        assert technique.rows_for(row_bytes + 1) == 2

    def test_copy_plan_covers_size(self, technique):
        size = 4 * technique.geometry.row_bytes
        plan = technique.plan_copy(size)
        assert len(plan.pairs) == 4

    def test_copy_pairs_share_subarray(self, technique):
        plan = technique.plan_copy(8 * technique.geometry.row_bytes)
        g = technique.geometry
        for pair in plan.pairs:
            if pair.reliable:
                assert g.subarray_of(pair.src_row) == g.subarray_of(pair.dst_row)

    def test_copy_allocator_avoids_unreliable_pairs(self, technique):
        """The allocator tests candidates, so copy plans are almost
        entirely reliable pairs (unlike prescribed init targets)."""
        plan = technique.plan_copy(16 * technique.geometry.row_bytes)
        reliable = sum(1 for p in plan.pairs if p.reliable)
        assert reliable == len(plan.pairs)

    def test_init_plan_one_source_per_subarray(self, technique):
        plan = technique.plan_init(8 * technique.geometry.row_bytes)
        for (channel, bank, sub), src_row in plan.source_rows.items():
            assert technique.geometry.subarray_of(src_row) == sub
        for pair in plan.targets:
            key = (pair.channel, pair.bank,
                   technique.geometry.subarray_of(pair.dst_row))
            assert plan.source_rows[key] == pair.src_row

    def test_init_prescribed_targets_include_failures(self, technique):
        """With a ~30% pair-failure rate, a large prescribed-target init
        must hit some unclonable pairs (footnote 6's fallback)."""
        plan = technique.plan_init(64 * technique.geometry.row_bytes)
        unreliable = sum(1 for p in plan.targets if not p.reliable)
        assert 0 < unreliable < len(plan.targets)

    def test_rows_never_reused(self, technique):
        plan_a = technique.plan_copy(4 * technique.geometry.row_bytes)
        plan_b = technique.plan_copy(
            4 * technique.geometry.row_bytes,
            base_addr=64 * technique.geometry.row_bytes)
        used = set()
        for plan in (plan_a, plan_b):
            for pair in plan.pairs:
                assert (pair.bank, pair.dst_row) not in used
                used.add((pair.bank, pair.dst_row))

    def test_requires_row_contiguous_mapping(self):
        config = jetson_nano_time_scaling(mapping_scheme="bank-interleaved")
        session = EasyDRAMSystem(config).session("bad")
        with pytest.raises(ValueError, match="row-contiguous"):
            RowCloneTechnique(session)


class TestExecution:
    def test_copy_moves_real_data(self, session, technique):
        size = 2 * technique.geometry.row_bytes
        plan = technique.plan_copy(size)
        device = session.system.device
        for i, pair in enumerate(plan.pairs):
            device.preload_row(pair.bank, pair.src_row,
                               bytes([i + 1]) * technique.geometry.row_bytes)
        technique.execute_copy(plan)
        assert technique.copy_is_correct(plan)
        for i, pair in enumerate(plan.pairs):
            assert device.row_data(pair.bank, pair.dst_row) == (
                bytes([i + 1]) * technique.geometry.row_bytes)

    def test_copy_advances_emulated_time(self, session, technique):
        plan = technique.plan_copy(technique.geometry.row_bytes)
        before = session.processor.cycles
        technique.execute_copy(plan)
        assert session.processor.cycles > before

    def test_clflush_copy_flushes_dirty_source(self, session, technique):
        from repro.cpu.memtrace import store

        size = technique.geometry.row_bytes
        plan = technique.plan_copy(size)
        session.run_trace([store(plan.src_addr + i * 64, gap=1)
                           for i in range(size // 64)])
        technique.execute_copy(plan, clflush=True)
        assert technique.stats.flushed_lines > 0
        assert technique.copy_is_correct(plan)

    def test_init_falls_back_for_unreliable_targets(self, session, technique):
        size = 32 * technique.geometry.row_bytes
        plan = technique.plan_init(size, base_addr=1 << 22)
        technique.execute_init(plan, include_source_setup=False)
        expected_fallbacks = sum(1 for p in plan.targets if not p.reliable)
        assert technique.stats.fallback_rows == expected_fallbacks
        ok = sum(1 for p in plan.targets if p.reliable)
        assert technique.stats.rowclone_ops == ok

    def test_emulated_pair_test_agrees_with_oracle(self, session):
        technique = RowCloneTechnique(session, use_oracle_testing=False,
                                      test_attempts=60)
        cells = session.system.tile.cells
        g = technique.geometry
        checked = 0
        for dst in range(1, g.subarray_rows):
            oracle = cells.rowclone_pair_reliable(0, 0, dst)
            if oracle:
                assert technique.test_pair_emulated(0, 0, dst, attempts=30)
                checked += 1
            if checked >= 2:
                break
        assert checked >= 1

    def test_emulated_test_detects_cross_subarray(self, session):
        technique = RowCloneTechnique(session, use_oracle_testing=False)
        g = technique.geometry
        assert not technique.pair_is_clonable(0, 0, g.subarray_rows)


class TestSpeedupShape:
    def test_rowclone_beats_cpu_copy(self):
        """The core claim: in-DRAM copy is much faster than ld/st copy."""
        size = 8 * 8192
        cpu = EasyDRAMSystem(jetson_nano_time_scaling()).run(
            cpu_copy_trace(0, 1 << 24, size), "cpu")
        session = EasyDRAMSystem(jetson_nano_time_scaling()).session("rc")
        technique = RowCloneTechnique(session)
        plan = technique.plan_copy(size)
        technique.execute_copy(plan)
        rc = session.finish()
        assert cpu.emulated_ps / rc.emulated_ps > 5
