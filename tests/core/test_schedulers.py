"""Tests for FCFS and FR-FCFS schedulers."""

import pytest

from repro.core.schedulers import FCFS, FRFCFS, TableEntry, make_scheduler
from repro.cpu.processor import MemoryRequest
from repro.dram.address import DramAddress
from repro.dram.bank import BankState


def entry(order, bank=0, row=0, writeback=False):
    request = MemoryRequest(rid=order, addr=0, is_write=writeback, tag=order,
                            is_writeback=writeback)
    return TableEntry(request=request, dram=DramAddress(bank, row, 0),
                      arrival_order=order)


@pytest.fixture
def banks():
    return [BankState(i) for i in range(4)]


class TestFCFS:
    def test_picks_oldest(self, banks):
        table = [entry(3), entry(1), entry(2)]
        assert FCFS().select(table, banks).arrival_order == 1

    def test_empty_table_rejected(self, banks):
        with pytest.raises(ValueError):
            FCFS().select([], banks)

    def test_decision_cost_grows_with_table(self):
        s = FCFS()
        assert s.decision_cost(10) > s.decision_cost(1)


class TestFRFCFS:
    def test_prefers_row_hit_over_older_miss(self, banks):
        banks[0].activate(7, 0)
        table = [entry(1, bank=0, row=3), entry(2, bank=0, row=7)]
        assert FRFCFS().select(table, banks).arrival_order == 2

    def test_falls_back_to_oldest_without_hits(self, banks):
        table = [entry(5, row=1), entry(2, row=2), entry(9, row=3)]
        assert FRFCFS().select(table, banks).arrival_order == 2

    def test_age_breaks_ties_between_hits(self, banks):
        banks[0].activate(7, 0)
        table = [entry(4, row=7), entry(2, row=7)]
        assert FRFCFS().select(table, banks).arrival_order == 2

    def test_reads_beat_writebacks_even_on_row_hits(self, banks):
        banks[0].activate(7, 0)
        table = [entry(1, row=7, writeback=True), entry(5, row=3)]
        chosen = FRFCFS().select(table, banks)
        assert chosen.arrival_order == 5  # the read, despite row miss

    def test_writeback_selected_when_alone(self, banks):
        table = [entry(1, writeback=True)]
        assert FRFCFS().select(table, banks).arrival_order == 1

    def test_decision_cost_scales(self):
        s = FRFCFS()
        assert s.decision_cost(8) == 4 + 16


class TestFactory:
    def test_make_known(self):
        assert make_scheduler("fcfs").name == "fcfs"
        assert make_scheduler("fr-fcfs").name == "fr-fcfs"

    def test_make_unknown(self):
        with pytest.raises(ValueError):
            make_scheduler("random")
