"""Tests for FCFS and FR-FCFS schedulers (in isolation from the SMC)."""

import pytest

from repro.core.schedulers import (
    FCFS,
    FRFCFS,
    TableEntry,
    make_scheduler,
    scheduler_names,
)
from repro.cpu.processor import MemoryRequest
from repro.dram.address import DramAddress
from repro.dram.bank import BankState


def entry(order, bank=0, row=0, writeback=False):
    request = MemoryRequest(rid=order, addr=0, is_write=writeback, tag=order,
                            is_writeback=writeback)
    return TableEntry(request=request, dram=DramAddress(bank, row, 0),
                      arrival_order=order)


def flat_entry(order, bank=0, row=0, writeback=False):
    """A fast-path request-table entry: (arrival_order, request, dram)."""
    request = MemoryRequest(rid=order, addr=0, is_write=writeback, tag=order,
                            is_writeback=writeback)
    return (order, request, DramAddress(bank, row, 0))


@pytest.fixture
def banks():
    return [BankState(i) for i in range(4)]


class TestFCFS:
    def test_picks_oldest(self, banks):
        table = [entry(3), entry(1), entry(2)]
        assert FCFS().select(table, banks).arrival_order == 1

    def test_empty_table_rejected(self, banks):
        with pytest.raises(ValueError):
            FCFS().select([], banks)

    def test_decision_cost_grows_with_table(self):
        s = FCFS()
        assert s.decision_cost(10) > s.decision_cost(1)


class TestFRFCFS:
    def test_prefers_row_hit_over_older_miss(self, banks):
        banks[0].activate(7, 0)
        table = [entry(1, bank=0, row=3), entry(2, bank=0, row=7)]
        assert FRFCFS().select(table, banks).arrival_order == 2

    def test_falls_back_to_oldest_without_hits(self, banks):
        table = [entry(5, row=1), entry(2, row=2), entry(9, row=3)]
        assert FRFCFS().select(table, banks).arrival_order == 2

    def test_age_breaks_ties_between_hits(self, banks):
        banks[0].activate(7, 0)
        table = [entry(4, row=7), entry(2, row=7)]
        assert FRFCFS().select(table, banks).arrival_order == 2

    def test_reads_beat_writebacks_even_on_row_hits(self, banks):
        banks[0].activate(7, 0)
        table = [entry(1, row=7, writeback=True), entry(5, row=3)]
        chosen = FRFCFS().select(table, banks)
        assert chosen.arrival_order == 5  # the read, despite row miss

    def test_writeback_selected_when_alone(self, banks):
        table = [entry(1, writeback=True)]
        assert FRFCFS().select(table, banks).arrival_order == 1

    def test_decision_cost_scales(self):
        s = FRFCFS()
        assert s.decision_cost(8) == 4 + 16


class TestFlatSelect:
    """The fast path's tuple-table variants must mirror select."""

    def test_fcfs_flat_picks_head(self):
        table = [flat_entry(1), flat_entry(2), flat_entry(3)]
        assert FCFS().select_flat(table, [0, -1, -1, -1]) is table[0]

    def test_frfcfs_flat_prefers_row_hit(self):
        open_row = [7, -1, -1, -1]
        table = [flat_entry(1, bank=0, row=3), flat_entry(2, bank=0, row=7)]
        assert FRFCFS().select_flat(table, open_row) is table[1]

    def test_frfcfs_flat_fast_path_for_oldest_hit(self):
        open_row = [7, -1, -1, -1]
        table = [flat_entry(1, bank=0, row=7), flat_entry(2, bank=0, row=7)]
        assert FRFCFS().select_flat(table, open_row) is table[0]


class TestAgeCap:
    """The FR-FCFS anti-starvation guard (multi-core contention)."""

    def test_default_has_no_cap(self):
        assert FRFCFS().age_cap is None
        assert make_scheduler("fr-fcfs").age_cap is None

    def test_factory_threads_cap(self):
        assert make_scheduler("fr-fcfs", age_cap=16).age_cap == 16

    def test_factory_ignores_cap_for_fcfs(self):
        assert make_scheduler("fcfs", age_cap=16).name == "fcfs"

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            FRFCFS(age_cap=0)

    def test_starved_entry_served_despite_row_hits(self, banks):
        """Once bypassed by age_cap newer arrivals, the oldest wins."""
        banks[0].activate(7, 0)
        old_miss = entry(0, bank=0, row=3)
        table = [old_miss] + [entry(i, bank=0, row=7) for i in range(1, 5)]
        assert FRFCFS(age_cap=4).select(table, banks) is old_miss
        # One fewer bypass: the row hits still win.
        assert FRFCFS(age_cap=5).select(table, banks).arrival_order == 1

    def test_starvation_without_cap(self, banks):
        """Control: uncapped FR-FCFS keeps bypassing the old miss."""
        banks[0].activate(7, 0)
        table = [entry(0, bank=0, row=3)] + [
            entry(i, bank=0, row=7) for i in range(1, 100)]
        assert FRFCFS().select(table, banks).arrival_order == 1

    def test_flat_variant_applies_cap(self):
        open_row = [7, -1, -1, -1]
        old_miss = flat_entry(0, bank=0, row=3)
        table = [old_miss] + [flat_entry(i, bank=0, row=7)
                              for i in range(1, 5)]
        assert FRFCFS(age_cap=4).select_flat(table, open_row) is old_miss
        assert FRFCFS(age_cap=5).select_flat(table, open_row) is table[1]

    def test_capped_writeback_can_be_served(self, banks):
        """The guard is class-blind: even a writeback is un-starved."""
        banks[0].activate(7, 0)
        old_wb = entry(0, bank=0, row=3, writeback=True)
        table = [old_wb] + [entry(i, bank=0, row=7) for i in range(1, 9)]
        assert FRFCFS(age_cap=8).select(table, banks) is old_wb


class TestDecisionCostCharging:
    """Decision cost must be charged to the controller's cost model."""

    def _run(self, scheduler):
        from repro.core.config import jetson_nano_time_scaling
        from repro.core.system import EasyDRAMSystem
        from repro.workloads import microbench

        system = EasyDRAMSystem(jetson_nano_time_scaling())
        system.smc.scheduler = scheduler
        result = system.run(
            microbench.cpu_copy_blocks(0, 1 << 21, 64 * 1024), "charge")
        return system.smc.stats.total_sched_cycles, result

    def test_slower_scheduler_charges_more_cycles(self):
        class SlowFRFCFS(FRFCFS):
            def decision_cost(self, table_len: int) -> int:
                return 4000 + 2 * table_len

        base_cycles, base = self._run(FRFCFS())
        slow_cycles, slow = self._run(SlowFRFCFS())
        # The inflated decision cost lands in the controller's
        # scheduling counters and (on a time-scaled system) in the
        # emulated timeline's scheduling share.
        assert slow_cycles > base_cycles
        assert slow.breakdown.scheduling_ps > base.breakdown.scheduling_ps

    def test_charge_scales_with_table_length(self):
        assert FRFCFS().decision_cost(32) == 4 + 64
        assert FCFS().decision_cost(32) == 3 + 32


class TestFactory:
    def test_make_known(self):
        assert make_scheduler("fcfs").name == "fcfs"
        assert make_scheduler("fr-fcfs").name == "fr-fcfs"

    def test_make_unknown(self):
        with pytest.raises(ValueError):
            make_scheduler("random")

    def test_make_zoo_members(self):
        for name in ("atlas", "bliss", "batch"):
            assert make_scheduler(name).name == name
            assert make_scheduler(name).stateful is True

    def test_unknown_lists_registry_with_did_you_mean(self):
        with pytest.raises(ValueError) as excinfo:
            make_scheduler("fr-fcsf")
        message = str(excinfo.value)
        assert "did you mean 'fr-fcfs'?" in message
        for name in scheduler_names():
            assert name in message

    def test_unknown_far_from_everything_still_lists_registry(self):
        with pytest.raises(ValueError) as excinfo:
            make_scheduler("zzzzzz")
        message = str(excinfo.value)
        assert "did you mean" not in message
        assert "known: " + ", ".join(scheduler_names()) in message


class TestEnvOverride:
    """REPRO_SCHEDULER overrides the config at controller construction."""

    def test_env_override_selects_scheduler(self, monkeypatch):
        from repro.core.config import jetson_nano_time_scaling
        from repro.core.system import EasyDRAMSystem

        monkeypatch.setenv("REPRO_SCHEDULER", "atlas")
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        assert system.smc.scheduler.name == "atlas"

    def test_env_unset_uses_config_default(self, monkeypatch):
        from repro.core.config import jetson_nano_time_scaling
        from repro.core.system import EasyDRAMSystem

        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        assert system.smc.scheduler.name == "fr-fcfs"
