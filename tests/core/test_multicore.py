"""Multi-core contention subsystem tests.

The shared-memory scenario engine must keep the repo's two standing
contracts — engine equivalence and fastpath equivalence — on multi-core
sessions, must leave the paper's single-core paths bit-identical, and
must actually model contention: cores slow each other down, the shared
controller attributes service per core, and the FR-FCFS age cap bounds
starvation.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import ControllerConfig, jetson_nano_time_scaling
from repro.core.stats import fairness_of
from repro.core.system import EasyDRAMSystem
from repro.core.workload_mix import (
    CORE_REGION_BYTES,
    WorkloadMix,
    mix_names,
    run_mix,
)
from repro.workloads import microbench


def small_config(**controller):
    cfg = jetson_nano_time_scaling(
        l1=dataclasses.replace(jetson_nano_time_scaling().l1,
                               size_bytes=4 * 1024),
        l2=dataclasses.replace(jetson_nano_time_scaling().l2,
                               size_bytes=32 * 1024),
    )
    if controller:
        cfg = cfg.with_overrides(controller=ControllerConfig(**controller))
    return cfg


def run_snapshot(config, engine, mix, scale=1):
    run = run_mix(config, mix, engine=engine, scale=scale)
    d = dataclasses.asdict(run.result)
    d.pop("wall_seconds")
    return d, run.core_cycles, run.solo_cycles


MIX2 = WorkloadMix.parse("stream+pointer_chase")
MIX4 = WorkloadMix.parse("stream+init+pointer_chase", cores=4)


@pytest.mark.slow  # full dual-engine runs; CI's `slow` leg covers these
class TestEquivalence:
    def test_engines_bit_identical_two_cores(self):
        config = small_config()
        assert run_snapshot(config, "cycle", MIX2) == \
            run_snapshot(config, "event", MIX2)

    def test_engines_bit_identical_four_cores(self):
        config = small_config()
        assert run_snapshot(config, "cycle", MIX4) == \
            run_snapshot(config, "event", MIX4)

    def test_fastpath_bit_identical(self, monkeypatch):
        config = small_config()
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        slow = run_snapshot(config, "event", MIX2)
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        fast = run_snapshot(config, "event", MIX2)
        assert slow == fast

    def test_materialization_is_pure_host_optimization(self, monkeypatch):
        config = small_config()
        monkeypatch.setenv("REPRO_MC_MATERIALIZE", "0")
        regen = run_snapshot(config, "event", MIX2)
        monkeypatch.setenv("REPRO_MC_MATERIALIZE", "1")
        mat = run_snapshot(config, "event", MIX2)
        assert regen == mat

    def test_deterministic_repeat(self):
        config = small_config()
        assert run_snapshot(config, "event", MIX4) == \
            run_snapshot(config, "event", MIX4)


class TestSingleCoreUnchanged:
    """One configured core must reproduce the plain session exactly."""

    @pytest.mark.parametrize("engine", ("cycle", "event"))
    def test_run_cores_matches_run_trace(self, engine):
        config = small_config()

        def observables(drive):
            system = EasyDRAMSystem(config, engine=engine)
            session = system.session("solo", engine=engine)
            drive(session)
            result = dataclasses.asdict(session.finish())
            result.pop("wall_seconds")
            smc = dataclasses.asdict(system.smc.stats)
            return result, smc, (system.counters.processor,
                                 system.counters.memory_controller)

        def trace():
            return microbench.cpu_copy_blocks(0, 1 << 21, 128 * 1024)

        via_trace = observables(lambda s: s.run_trace(trace()))
        via_cores = observables(lambda s: s.run_cores([trace()]))
        assert via_trace == via_cores

    def test_single_core_reports_no_per_core_slices(self):
        system = EasyDRAMSystem(small_config())
        result = system.run(microbench.touch_blocks(0, 64 * 1024), "t")
        assert result.per_core == []
        assert result.slowdowns == []
        assert result.unfairness == 0.0

    def test_single_core_installs_no_tracker(self):
        system = EasyDRAMSystem(small_config())
        session = system.session("solo")
        assert session._core_tracker is None
        assert system.smc._core_tracker is None


class TestContention:
    def test_slowdowns_at_least_one(self):
        run = run_mix(small_config(), MIX2)
        assert all(s >= 1.0 for s in run.slowdowns)
        assert run.unfairness >= 1.0

    def test_pointer_chase_is_the_victim(self):
        """The MLP-less chase suffers more than the bandwidth stream."""
        run = run_mix(small_config(), MIX2)
        stream, chase = run.slowdowns
        assert chase > stream

    def test_more_cores_more_contention(self):
        avg = {}
        for cores in (1, 2, 4):
            mix = WorkloadMix.parse("stream+init+pointer_chase", cores=cores)
            avg[cores] = run_mix(small_config(), mix).avg_slowdown
        assert avg[1] == pytest.approx(1.0)
        assert avg[2] >= avg[1]
        assert avg[4] >= avg[2]

    def test_per_core_attribution_sums_to_totals(self):
        run = run_mix(small_config(), MIX4)
        result = run.result
        assert len(result.per_core) == 4
        assert sum(c.serviced_reads + c.serviced_writes
                   for c in result.per_core) == sum(
                       result.requests_per_channel)
        assert sum(c.row_hits for c in result.per_core) == result.row_hits
        assert sum(c.row_misses for c in result.per_core) == \
            result.row_misses
        assert sum(c.row_conflicts for c in result.per_core) == \
            result.row_conflicts
        assert sum(c.accesses for c in result.per_core) == result.accesses
        for core in result.per_core:
            assert core.serviced_reads > 0
            assert core.slowdown >= 1.0

    def test_headline_cycles_is_makespan(self):
        run = run_mix(small_config(), MIX2)
        assert run.result.cycles == max(run.core_cycles)

    def test_multichannel_mix(self):
        """Cores and channels compose: a mix on a 2-channel topology."""
        config = small_config().with_topology("ddr4-2ch")
        run = run_mix(config, MIX2)
        result = run.result
        assert len(result.requests_per_channel) == 2
        assert all(n > 0 for n in result.requests_per_channel)
        assert sum(c.serviced_reads + c.serviced_writes
                   for c in result.per_core) == sum(
                       result.requests_per_channel)
        assert all(s >= 1.0 for s in run.slowdowns)


class TestWorkloadMix:
    def test_parse_pairs_and_repeats(self):
        assert WorkloadMix.parse("stream+pointer_chase").names == \
            ("stream", "pointer_chase")
        assert WorkloadMix.parse("stream*3").names == ("stream",) * 3
        assert WorkloadMix.parse("stream*2+init").names == \
            ("stream", "stream", "init")

    def test_parse_cycles_to_core_count(self):
        mix = WorkloadMix.parse("stream+pointer_chase", cores=4)
        assert mix.names == ("stream", "pointer_chase",
                             "stream", "pointer_chase")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown mix workload"):
            WorkloadMix.parse("definitely_not_a_workload")

    def test_polybench_kernels_resolvable(self):
        mix = WorkloadMix.parse("gemm*2")
        trace = mix.build(1)
        total = sum(len(b) for b in trace)
        assert total > 0

    def test_regions_are_disjoint(self):
        mix = WorkloadMix.parse("stream+init+pointer_chase+gemm")
        for core in range(mix.cores):
            lo = mix.region_base(core)
            hi = lo + CORE_REGION_BYTES
            for block in mix.build(core):
                assert all(lo <= a < hi for a in block.addr), \
                    f"core {core} escaped its region"

    def test_region_escape_raises(self):
        """A scale that overflows the core region fails loudly.

        Silent overlap would alias another core's footprint and quietly
        invalidate every slowdown/fairness number.
        """
        mix = WorkloadMix.parse("stream")
        with pytest.raises(ValueError, match="escaped its region"):
            for _ in mix.build(0, scale=64):
                pass

    def test_mix_names_lists_builtins_and_polybench(self):
        names = mix_names()
        assert "stream" in names and "pointer_chase" in names
        assert "gemm" in names

    def test_homogeneous_quad_runs(self):
        run = run_mix(small_config(), WorkloadMix.parse("trisolv*2"))
        assert all(s >= 1.0 for s in run.slowdowns)


class TestAgeCapEndToEnd:
    def test_age_cap_bounds_worst_case_latency(self):
        """With the cap, the chase's worst wait under a hit storm shrinks.

        A deterministic end-to-end check of the anti-starvation guard:
        same mix, FR-FCFS with and without the cap; the capped
        scheduler may not *increase* the victim core's slowdown.
        """
        mix = WorkloadMix.parse("stream+init+pointer_chase", cores=4)
        uncapped = run_mix(small_config(scheduler="fr-fcfs"), mix)
        capped = run_mix(
            small_config(scheduler="fr-fcfs", scheduler_age_cap=8), mix)
        assert capped.max_slowdown <= uncapped.max_slowdown * 1.05
        assert capped.unfairness <= uncapped.unfairness * 1.05


class TestResultEdgeCases:
    """CoreResult / fairness math at the corners of the metric space."""

    def test_single_core_mix_is_perfectly_fair(self):
        run = run_mix(small_config(), WorkloadMix.parse("stream"))
        # One core: the shared run IS the solo run, so the slowdown is
        # exactly 1.0 and unfairness is the perfectly-fair 1.0.
        assert run.slowdowns == [1.0]
        assert run.max_slowdown == run.min_slowdown == 1.0
        assert run.unfairness == 1.0

    def test_fairness_of_ignores_unknown_slowdowns(self):
        assert fairness_of([]) == 0.0
        assert fairness_of([0.0, 0.0]) == 0.0       # nothing known
        assert fairness_of([2.0, 0.0]) == 1.0       # one known core
        assert fairness_of([3.0, 1.5]) == 2.0

    def test_core_with_zero_serviced_requests(self):
        system = EasyDRAMSystem(small_config())
        session = system.session("busy")
        session.add_core("idle")
        busy = microbench.cpu_copy_blocks(0, 1 << 21, 64 * 1024)
        session.run_cores([busy, ()])               # core 1 issues nothing
        result = session.finish()
        idle = result.per_core[1]
        assert idle.accesses == 0
        assert idle.serviced_reads == 0
        assert idle.serviced_writes == 0
        assert idle.serviced_prefetches == 0
        assert idle.row_hit_rate == 0.0             # 0/0 guards to 0.0
        # No solo references were set, so fairness is unknown, not inf.
        assert idle.slowdown == 0.0
        assert result.unfairness == 0.0

    def test_prefetches_excluded_from_demand_attribution(self):
        from repro.cpu.prefetch import PrefetchConfig

        system = EasyDRAMSystem(small_config())
        session = system.session("plain")
        session.add_core("prefetching", prefetch=PrefetchConfig())
        region = CORE_REGION_BYTES
        session.run_cores([
            microbench.cpu_copy_blocks(0, 1 << 21, 64 * 1024),
            microbench.cpu_copy_blocks(region, region + (1 << 21),
                                       64 * 1024)])
        result = session.finish()
        plain, prefetching = result.per_core
        assert prefetching.serviced_prefetches > 0
        assert plain.serviced_prefetches == 0
        # Demand attribution stays prefetch-blind: every demand service
        # has exactly one row-outcome note, prefetches have none, and
        # the channel totals only count demand traffic.
        for core in result.per_core:
            assert core.serviced_reads + core.serviced_writes == \
                core.row_hits + core.row_misses + core.row_conflicts
        assert sum(c.serviced_reads + c.serviced_writes
                   for c in result.per_core) == sum(
                       result.requests_per_channel)
