"""Property-based invariants for every registered scheduler.

Each property drives a scheduler through a deterministic serve-loop
simulation of the SMC's request table (inject up to two arrivals, serve
one, repeat; then drain) over hypothesis-randomized request streams:

* **work conservation** — ``select`` always returns a live table entry
  (the controller never idles while a request is ready), and every
  injected request is eventually served;
* **bounded wait** — with the anti-starvation age cap active, no
  request is bypassed by ``age_cap`` or more younger requests;
* **determinism** — the same stream through two fresh instances yields
  the same serve order (no hidden iteration-order or clock dependence);
* **object/flat equivalence** — ``select`` on the object table and
  ``select_flat`` on the fast path's tuple table make identical
  decisions, the scheduler-level half of the fastpath bit-identity
  contract;
* **FR-FCFS default equivalence** — the scheduler built from a default
  ``ControllerConfig`` serves exactly like a hand-built FR-FCFS, so the
  zoo is invisible at the paper's knobs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ControllerConfig
from repro.core.schedulers import (
    FRFCFS,
    TableEntry,
    make_scheduler,
    scheduler_names,
)
from repro.cpu.processor import MemoryRequest
from repro.dram.address import DramAddress
from repro.dram.bank import BankState

BANKS = 4
AGE_CAP = 8

#: One request: (bank, row, is_writeback, core).
REQUEST = st.tuples(st.integers(0, BANKS - 1), st.integers(0, 7),
                    st.booleans(), st.integers(0, 3))
STREAMS = st.lists(REQUEST, min_size=1, max_size=48)

ALL_SCHEDULERS = scheduler_names()


def _entries(specs):
    return [TableEntry(
        request=MemoryRequest(rid=i, addr=0, is_write=wb, tag=i,
                              is_writeback=wb, core=core),
        dram=DramAddress(bank, row, 0), arrival_order=i)
        for i, (bank, row, wb, core) in enumerate(specs)]


def serve_order_object(scheduler, specs):
    """Serve a stream through ``select``; return the arrival-order list.

    Mimics the SMC's loop: up to two arrivals join the table per round,
    one entry is served (the serve opens its row, like the DRAM side
    does), and the table drains once the stream ends.
    """
    entries = _entries(specs)
    banks = [BankState(i) for i in range(BANKS)]
    table: list[TableEntry] = []
    served: list[int] = []
    t = 0
    i = 0
    while i < len(entries) or table:
        for _ in range(2):
            if i < len(entries):
                table.append(entries[i])
                i += 1
        chosen = scheduler.select(table, banks)
        assert chosen in table, "scheduler selected a request not in the table"
        table.remove(chosen)
        t += 100
        banks[chosen.dram.bank].activate(chosen.dram.row, t)
        served.append(chosen.arrival_order)
    return served


def serve_order_flat(scheduler, specs):
    """The same serve loop over the fast path's tuple table."""
    entries = [(e.arrival_order, e.request, e.dram) for e in _entries(specs)]
    open_row = [-1] * BANKS
    table: list[tuple] = []
    served: list[int] = []
    i = 0
    while i < len(entries) or table:
        for _ in range(2):
            if i < len(entries):
                table.append(entries[i])
                i += 1
        chosen = scheduler.select_flat(table, open_row)
        assert chosen in table
        table.remove(chosen)
        _, _, dram = chosen
        open_row[dram.bank] = dram.row
        served.append(chosen[0])
    return served


@pytest.mark.parametrize("name", ALL_SCHEDULERS)
class TestSchedulerProperties:
    @settings(max_examples=30, deadline=None)
    @given(specs=STREAMS)
    def test_work_conservation(self, name, specs):
        served = serve_order_object(make_scheduler(name), specs)
        # Every request serves exactly once; nothing invented or lost.
        assert sorted(served) == list(range(len(specs)))

    @settings(max_examples=30, deadline=None)
    @given(specs=STREAMS)
    def test_bounded_wait_with_age_cap(self, name, specs):
        served = serve_order_object(make_scheduler(name, age_cap=AGE_CAP),
                                    specs)
        # With the cap, a younger request can bypass an older one only
        # while the table's age spread is below the cap, so no request
        # is ever bypassed by AGE_CAP or more younger requests.
        position = {order: i for i, order in enumerate(served)}
        for order in range(len(specs)):
            bypassers = sum(1 for younger in range(order + 1, len(specs))
                            if position[younger] < position[order])
            assert bypassers < AGE_CAP, (
                f"request {order} bypassed {bypassers} times under {name}")

    @settings(max_examples=30, deadline=None)
    @given(specs=STREAMS)
    def test_deterministic_given_stream(self, name, specs):
        first = serve_order_object(make_scheduler(name), specs)
        second = serve_order_object(make_scheduler(name), specs)
        assert first == second

    @settings(max_examples=30, deadline=None)
    @given(specs=STREAMS)
    def test_flat_path_matches_object_path(self, name, specs):
        via_object = serve_order_object(make_scheduler(name), specs)
        via_flat = serve_order_flat(make_scheduler(name), specs)
        assert via_object == via_flat


class TestDefaultIsFrfcfs:
    def test_default_config_builds_frfcfs_without_cap(self):
        config = ControllerConfig()
        scheduler = make_scheduler(config.scheduler,
                                   config.scheduler_age_cap)
        assert isinstance(scheduler, FRFCFS)
        assert scheduler.age_cap is None
        assert scheduler.stateful is False

    @settings(max_examples=30, deadline=None)
    @given(specs=STREAMS)
    def test_default_serves_exactly_like_frfcfs(self, specs):
        config = ControllerConfig()
        default = make_scheduler(config.scheduler, config.scheduler_age_cap)
        reference = FRFCFS()
        assert (serve_order_object(default, specs)
                == serve_order_object(reference, specs))
