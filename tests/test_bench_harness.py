"""Benchmark-harness plumbing: schema, regression gate, CLI wiring.

The heavy measurement itself runs in the ``-m bench`` suite
(:mod:`benchmarks.test_emulation_speed`); tier-1 only validates the
harness's logic on stubbed or miniature inputs.
"""

from __future__ import annotations

import importlib.util
import json
import os

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_harness():
    spec = importlib.util.spec_from_file_location(
        "bench_harness_under_test",
        os.path.join(REPO, "benchmarks", "harness.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def report_with(speedups: dict) -> dict:
    return {
        "schema": "bench-emulation/v1",
        "results": [{"workload": name, "speedup": value}
                    for name, value in speedups.items()],
    }


class TestRegressionGate:
    def test_within_tolerance_passes(self):
        harness = load_harness()
        baseline = report_with({"fig08": 3.0, "fig10-cpu-copy": 3.0})
        report = report_with({"fig08": 2.5, "fig10-cpu-copy": 3.4})
        assert harness.check_regression(report, baseline) == []

    def test_regression_fails(self):
        harness = load_harness()
        baseline = report_with({"fig08": 3.0})
        report = report_with({"fig08": 2.3})  # below 3.0 * 0.8
        failures = harness.check_regression(report, baseline)
        assert len(failures) == 1 and "fig08" in failures[0]

    def test_unknown_workloads_are_ignored(self):
        harness = load_harness()
        baseline = report_with({"other": 9.0})
        report = report_with({"fig08": 1.0})
        assert harness.check_regression(report, baseline) == []

    @staticmethod
    def kernel_report(speedup: float, kernel_speedup: float) -> dict:
        return {"results": [{"workload": "fig08", "speedup": speedup,
                             "kernel_speedup": kernel_speedup}]}

    def test_kernel_column_gated_too(self):
        # The kernel column has its own (wider) tolerance: its walls are
        # milliseconds, so the ratio is noisier than the fastpath one.
        harness = load_harness()
        baseline = self.kernel_report(3.0, 40.0)
        report = self.kernel_report(3.0, 15.0)  # below 40.0 * 0.5
        failures = harness.check_regression(report, baseline)
        assert len(failures) == 1 and "kernel_speedup" in failures[0]
        within = self.kernel_report(3.0, 25.0)  # above 40.0 * 0.5
        assert harness.check_regression(within, baseline) == []

    def test_pre_kernel_baseline_gates_classic_column_only(self):
        # A v1 baseline (no kernel column) must not fail a v2 report.
        harness = load_harness()
        baseline = report_with({"fig08": 3.0})
        report = self.kernel_report(2.9, 40.0)
        assert harness.check_regression(report, baseline) == []


class TestSpecOverheadGate:
    @staticmethod
    def report_with_overhead(fig08_wall: float, compile_wall: float) -> dict:
        return {
            "results": [{"workload": "fig08", "baseline_wall_s": fig08_wall}],
            "spec_overhead": {"spec": "specs/default.yaml",
                              "validate_wall_s": compile_wall / 2,
                              "compile_wall_s": compile_wall},
        }

    def test_under_budget_passes(self):
        harness = load_harness()
        report = self.report_with_overhead(1.0, 0.005)
        assert harness.check_spec_overhead(report) == []

    def test_over_budget_fails(self):
        harness = load_harness()
        report = self.report_with_overhead(1.0, 0.02)
        failures = harness.check_spec_overhead(report)
        assert len(failures) == 1 and "spec compile" in failures[0]

    def test_reports_without_overhead_pass(self):
        # Older reports (and stubbed ones in tests) lack the key.
        harness = load_harness()
        assert harness.check_spec_overhead(
            {"results": [{"workload": "fig08", "baseline_wall_s": 1.0}]}) \
            == []

    def test_measure_is_real_and_fast(self):
        # The probe itself is cheap enough for tier-1: compiling the
        # default spec takes milliseconds.
        harness = load_harness()
        overhead = harness.measure_spec_overhead(rounds=1)
        assert overhead["spec"] == "specs/default.yaml"
        assert 0 < overhead["validate_wall_s"]
        assert overhead["compile_wall_s"] < 1.0


class TestHarnessReport:
    def test_main_writes_report_and_checks(self, tmp_path, monkeypatch):
        harness = load_harness()
        fake = {
            "schema": "bench-emulation/v2",
            "engine": "event",
            "git_rev": "deadbee",
            "python": "3.11",
            "rounds": 1,
            "kernel_backend": {
                "backend": "c", "compiler": "cc 12.2.0",
                "build_seconds": 0.4, "compiled_this_process": True,
                "reason": "ok",
            },
            "results": [{
                "workload": "fig08", "accesses": 1000,
                "baseline_wall_s": 1.0, "fastpath_wall_s": 0.25,
                "kernel_wall_s": 0.05,
                "baseline_accesses_per_s": 1000,
                "fastpath_accesses_per_s": 4000,
                "kernel_accesses_per_s": 20000,
                "speedup": 4.0, "kernel_speedup": 20.0,
                "kernel_vs_fastpath": 5.0,
            }],
        }
        monkeypatch.setattr(harness, "run_benchmarks", lambda rounds: fake)
        monkeypatch.setattr(harness, "BASELINE_PATH",
                            str(tmp_path / "BENCH_baseline.json"))
        out = tmp_path / "BENCH_emulation.json"
        assert harness.main(["--out", str(out), "--update-baseline"]) == 0
        written = json.loads(out.read_text())
        assert written["results"][0]["workload"] == "fig08"
        assert json.loads((tmp_path / "BENCH_baseline.json").read_text()) \
            == fake
        # Second run gates against the freshly written baseline.
        assert harness.main(["--out", str(out), "--check"]) == 0
        worse = json.loads(json.dumps(fake))
        worse["results"][0]["speedup"] = 1.0
        monkeypatch.setattr(harness, "run_benchmarks", lambda rounds: worse)
        assert harness.main(["--out", str(out), "--check"]) == 1

    def test_checked_in_baseline_is_valid(self):
        harness = load_harness()
        with open(harness.BASELINE_PATH) as fh:
            baseline = json.load(fh)
        assert baseline["schema"] == "bench-emulation/v2"
        assert "compiler" in baseline["kernel_backend"]
        assert "build_seconds" in baseline["kernel_backend"]
        names = {r["workload"] for r in baseline["results"]}
        assert names == set(harness.WORKLOADS)
        for row in baseline["results"]:
            assert row["speedup"] >= 3.0  # the fastpath acceptance bar
            # The batch kernel's acceptance bar: >=3x over the fastpath.
            assert row["kernel_vs_fastpath"] >= 3.0

    def test_measure_workload_asserts_artifact_equality(self, monkeypatch):
        harness = load_harness()
        artifacts = iter([({"a": 1}, 1.0), ({"a": 2}, 1.0), ({"a": 2}, 1.0)])

        def fake_run_once(driver, mode):
            artifact, wall = next(artifacts)
            return wall, artifact

        monkeypatch.setattr(harness, "_run_once", fake_run_once)
        try:
            harness.measure_workload("fig08", rounds=1)
        except AssertionError as exc:
            assert "artifact" in str(exc)
        else:  # pragma: no cover - guard
            raise AssertionError("artifact mismatch not detected")

    def test_measure_workload_asserts_kernel_artifact_equality(
            self, monkeypatch):
        harness = load_harness()
        artifacts = iter([({"a": 1}, 1.0), ({"a": 1}, 1.0), ({"a": 2}, 1.0)])

        def fake_run_once(driver, mode):
            artifact, wall = next(artifacts)
            return wall, artifact

        monkeypatch.setattr(harness, "_run_once", fake_run_once)
        try:
            harness.measure_workload("fig08", rounds=1)
        except AssertionError as exc:
            assert "kernel" in str(exc)
        else:  # pragma: no cover - guard
            raise AssertionError("kernel artifact mismatch not detected")


class TestCliBench:
    def test_run_bench_invokes_harness(self, tmp_path, monkeypatch):
        from repro.runner import cli

        calls = {}

        class FakeHarness:
            @staticmethod
            def main(argv):
                calls["argv"] = argv
                return 0

        monkeypatch.setattr(cli, "_load_bench_harness", lambda: FakeHarness)
        rc = cli.main(["run", "--bench", "--out", str(tmp_path)])
        assert rc == 0
        assert calls["argv"][0] == "--out"
        assert calls["argv"][1].endswith("BENCH_emulation.json")
        assert "--check" in calls["argv"]

    def test_profile_command_smoke(self, capsys):
        from repro.runner import cli

        rc = cli.main(["profile", "--artifact", "fig02"])
        out = capsys.readouterr().out
        assert rc == 0
        for layer in ("trace_gen", "cache", "smc", "device"):
            assert layer in out

    def test_profile_unknown_artifact(self, capsys):
        from repro.runner import cli

        assert cli.main(["profile", "--artifact", "nope"]) == 2
