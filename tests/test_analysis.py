"""Tests for reporting and charting helpers."""

import os

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    arith_mean,
    bar_chart,
    format_table,
    geomean,
    heatmap,
    line_chart,
    write_csv,
)


class TestAggregates:
    def test_geomean_basic(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([2, 2, 2]) == pytest.approx(2.0)

    def test_geomean_ignores_nonpositive(self):
        assert geomean([4, 0, -1, 1]) == pytest.approx(2.0)

    def test_geomean_empty(self):
        assert geomean([]) == 0.0

    def test_arith_mean(self):
        assert arith_mean([1, 2, 3]) == pytest.approx(2.0)
        assert arith_mean([]) == 0.0

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1,
                    max_size=50))
    def test_geomean_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) * 0.999 <= g <= max(values) * 1.001

    @given(st.lists(st.floats(min_value=0.01, max_value=1e3), min_size=1,
                    max_size=30))
    def test_geomean_at_most_arith_mean(self, values):
        """AM-GM inequality."""
        assert geomean(values) <= arith_mean(values) * 1.0001


class TestTable:
    def test_columns_aligned(self):
        text = format_table(["name", "value"],
                            [("a", 1.5), ("long-name", 20000.0)])
        lines = text.splitlines()
        assert len(lines) == 4
        dash_line = lines[1]
        assert set(dash_line) <= {"-", " "}
        # The dash ruler spans the full column widths.
        assert len(dash_line) >= max(len(lines[2].rstrip()),
                                     len(lines[3].rstrip())) - 1

    def test_title_included(self):
        assert format_table(["a"], [(1,)], title="My Title").startswith(
            "My Title")

    def test_float_formatting(self):
        text = format_table(["v"], [(0.123456,), (12345.6,)])
        assert "0.123" in text
        assert "12,346" in text


class TestCharts:
    def test_bar_chart_renders_all_series(self):
        text = bar_chart(["a", "b"], {"x": [1.0, 10.0], "y": [5.0, 2.0]})
        assert text.count("#") > 4
        assert "10.00" in text

    def test_bar_chart_log_scale(self):
        text = bar_chart(["a", "b"], {"x": [1.0, 1000.0]}, log=True)
        assert "#" in text

    def test_bar_chart_empty(self):
        assert bar_chart([], {}, title="t") == "t"

    def test_line_chart_has_axis_and_legend(self):
        text = line_chart([1, 2, 3], {"latency": [10.0, 20.0, 30.0]})
        assert "o=latency" in text
        assert "+" in text  # the x axis

    def test_heatmap_scale_annotation(self):
        text = heatmap([[8.0, 10.5], [9.0, 9.5]])
        assert "scale:" in text
        assert "8.00" in text and "10.50" in text

    def test_heatmap_uses_density_ramp(self):
        text = heatmap([[0.0, 1.0]])
        first_line = text.splitlines()[0]
        assert first_line[0] != first_line[1]


class TestCsv:
    def test_write_and_readback(self, tmp_path):
        path = os.path.join(tmp_path, "out", "rows.csv")
        write_csv(path, ["a", "b"], [(1, 2), (3, 4)])
        with open(path) as f:
            content = f.read()
        assert content.splitlines()[0] == "a,b"
        assert "3,4" in content
