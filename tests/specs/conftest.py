"""Shared fixtures for the declarative-spec tests."""

from __future__ import annotations

import textwrap

import pytest

#: A cheap two-artifact spec (6 points, <1 s) used wherever a test needs
#: real sweeps behind the spec machinery.
TINY_SPEC = """\
version: 1
name: tiny
description: Small two-artifact grid for tests.
artifacts:
  - artifact: fig02
    overrides:
      accesses: 200
      working_set: 65536
  - artifact: fig16
    overrides:
      core_counts: [1]
      schedulers: [fcfs, fr-fcfs]
"""


@pytest.fixture
def spec_file(tmp_path):
    """Write a (dedented) YAML text under tmp_path, returning its path."""

    def _write(text: str, name: str = "spec.yaml") -> str:
        target = tmp_path / name
        target.write_text(textwrap.dedent(text), encoding="utf-8")
        return str(target)

    return _write


@pytest.fixture
def tiny_spec(spec_file):
    return spec_file(TINY_SPEC, name="tiny.yaml")
