"""Deterministic sharding: disjoint slices, exhaustive union, and the
acceptance property — merged shard partials combine bit-identically to
an unsharded run."""

from __future__ import annotations

import importlib.util
import json
import os
from pathlib import Path

import pytest

from repro.runner.cli import main as cli_main
from repro.specs import load_and_compile, parse_shard, shard_selection

REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


class TestParseShard:
    @pytest.mark.parametrize("text,expected", [
        ("1/1", (1, 1)), ("2/3", (2, 3)), (" 3/3 ", (3, 3)),
    ])
    def test_accepts(self, text, expected):
        assert parse_shard(text) == expected

    @pytest.mark.parametrize("text", [
        "0/3", "4/3", "1/0", "a/b", "1-3", "1/3/5", "-1/3", "",
    ])
    def test_rejects(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)


class TestSelection:
    @pytest.mark.parametrize("count", [1, 2, 3, 4])
    def test_union_is_exact_and_disjoint(self, tiny_spec, count):
        compiled = load_and_compile(tiny_spec)
        full = {e.sweep.artifact: [p.point_id for p in e.selected]
                for e in compiled.entries}
        shards = [shard_selection(compiled, index, count)
                  for index in range(1, count + 1)]
        for artifact, ids in full.items():
            picked = [pid for shard in shards
                      for pid in shard[artifact]]
            # Disjoint: no point appears twice across shards...
            assert len(picked) == len(set(picked))
            # ...and exhaustive: the union is exactly the full set.
            assert sorted(picked) == sorted(ids)
        # Round-robin over the global index balances shard sizes.
        sizes = [sum(len(ids) for ids in shard.values())
                 for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_every_artifact_keyed_even_when_empty(self, tiny_spec):
        compiled = load_and_compile(tiny_spec)
        shard = shard_selection(compiled, 6, 6)
        assert set(shard) == {"fig02", "fig16"}

    def test_assignment_is_deterministic(self, tiny_spec):
        compiled = load_and_compile(tiny_spec)
        again = load_and_compile(tiny_spec)
        for index in (1, 2, 3):
            assert shard_selection(compiled, index, 3) \
                == shard_selection(again, index, 3)


def load_compare_tool():
    spec = importlib.util.spec_from_file_location(
        "compare_results_under_test",
        os.path.join(REPO, "tools", "compare_results.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestShardedRunMergesBitIdentical:
    def test_three_shards_merge_equals_unsharded(self, tiny_spec, tmp_path,
                                                 capsys):
        cache = str(tmp_path / "cache")
        shard_out = str(tmp_path / "shards")
        merged = tmp_path / "merged"
        fresh = tmp_path / "fresh"

        # Shard workers: each evaluates its slice into the shared cache
        # and writes a shard manifest; none combines.
        for index in (1, 2, 3):
            rc = cli_main(["run", "--spec", tiny_spec,
                           "--shard", f"{index}/3", "--quiet",
                           "--out", shard_out, "--cache-dir", cache])
            assert rc == 0, capsys.readouterr().err
            manifest = json.loads(Path(
                shard_out, f"shard-{index}-of-3.json").read_text())
            assert manifest["shard"] == f"{index}/3"
            assert all(e["partial"] and e["ok"]
                       for e in manifest["artifacts"])

        # The three slices cover all 6 points exactly once.
        evaluated = sum(e["selected"]
                        for index in (1, 2, 3)
                        for e in json.loads(Path(
                            shard_out,
                            f"shard-{index}-of-3.json").read_text())
                        ["artifacts"])
        assert evaluated == 6

        # Merge: unsharded run over the union of the partials — every
        # point is a cache hit, combine runs for real.
        rc = cli_main(["run", "--spec", tiny_spec, "--quiet",
                       "--format", "json", "--out", str(merged),
                       "--cache-dir", cache])
        assert rc == 0, capsys.readouterr().err
        manifest = json.loads((merged / "manifest.json").read_text())
        for entry in manifest["artifacts"]:
            assert entry["ok"] and not entry["partial"]
            assert entry["cache_hits"] == entry["points"]

        # Reference: the same spec from scratch, no cache at all.
        rc = cli_main(["run", "--spec", tiny_spec, "--quiet",
                       "--format", "json", "--out", str(fresh),
                       "--no-cache"])
        assert rc == 0, capsys.readouterr().err

        tool = load_compare_tool()
        assert tool.assert_all_cached(merged) == []
        assert tool.compare(merged, fresh) == []
        # Belt and braces: identical result payloads, artifact by
        # artifact, straight off the JSON files.
        for name in ("fig02.json", "fig16.json"):
            a = json.loads((merged / name).read_text())["result"]
            b = json.loads((fresh / name).read_text())["result"]
            assert a == b, name
        capsys.readouterr()
