"""Spec content addresses and the HASHES.json drift gate."""

from __future__ import annotations

import glob
import os

from repro.specs import (
    check_hash,
    load_and_compile,
    load_spec,
    run_fingerprint,
    spec_hash,
    update_hashes,
)

REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


class TestSpecHash:
    def test_stable_under_key_reordering_and_comments(self, spec_file):
        a = spec_file("""\
            version: 1
            name: x
            description: d
            artifacts:
              - artifact: fig02
                overrides:
                  accesses: 100
                  working_set: 65536
            """, name="a.yaml")
        b = spec_file("""\
            # cosmetic differences only
            name: x
            artifacts:
              - overrides:
                  working_set: 65536
                  accesses: 100
                artifact: fig02
            description: d
            version: 1
            """, name="b.yaml")
        assert spec_hash(load_spec(a)) == spec_hash(load_spec(b))

    def test_sensitive_to_every_semantic_field(self, spec_file):
        base = """\
            version: 1
            name: x
            description: d
            env:
              REPRO_FULL: "0"
            artifacts:
              - artifact: fig02
                overrides:
                  accesses: 100
                points:
                  include: ["model-*"]
            """
        edits = [
            ("name: x", "name: y"),
            ("description: d", "description: e"),
            ('REPRO_FULL: "0"', 'REPRO_FULL: "1"'),
            ("artifact: fig02", "artifact: fig16"),
            ("accesses: 100", "accesses: 200"),
            ('include: ["model-*"]', 'include: ["model-0"]'),
        ]
        reference = spec_hash(load_spec(spec_file(base, name="ref.yaml")))
        for index, (old, new) in enumerate(edits):
            edited = spec_file(base.replace(old, new),
                               name=f"edit{index}.yaml")
            assert spec_hash(load_spec(edited)) != reference, (old, new)

    def test_run_fingerprint_tracks_the_code(self, spec_file, monkeypatch):
        from repro.specs import hashing

        path = spec_file("""\
            version: 1
            name: x
            artifacts:
              - artifact: fig02
            """)
        spec = load_spec(path)
        before = run_fingerprint(spec)
        assert before != spec_hash(spec)
        import repro.runner.cache as cache_mod

        monkeypatch.setattr(cache_mod, "code_fingerprint",
                            lambda: "feedfacefeedface")
        assert hashing.run_fingerprint(spec) != before
        # The document address must NOT move with the code.
        assert spec_hash(spec) == hashing.spec_hash(spec)


class TestLockfile:
    def spec_at(self, spec_file, body: str = "name: x"):
        return load_spec(spec_file(f"""\
            version: 1
            {body}
            artifacts:
              - artifact: fig02
            """))

    def test_check_update_cycle(self, spec_file):
        spec = self.spec_at(spec_file)
        missing = check_hash(spec)
        assert missing and "no recorded hash" in missing
        assert "repro hash --update" in missing
        update_hashes([spec])
        assert check_hash(spec) is None
        # A semantic edit makes the recorded hash stale.
        edited = self.spec_at(spec_file, body="name: renamed")
        stale = check_hash(edited)
        assert stale and "stale hash" in stale

    def test_checked_in_specs_validate_and_match_lockfile(self):
        paths = sorted(glob.glob(os.path.join(REPO, "specs", "*.yaml")))
        assert len(paths) >= 4  # default + the figure grids
        for path in paths:
            compiled = load_and_compile(path)  # registry cross-checks too
            assert compiled.total_points() > 0
            assert check_hash(compiled.spec) is None, path

    def test_default_suite_covers_the_deterministic_artifacts(self):
        compiled = load_and_compile(os.path.join(REPO, "specs",
                                                 "default.yaml"))
        names = {e.sweep.artifact for e in compiled.entries}
        # Host-wall-clock artifacts must stay out: their results are not
        # bit-identical across runs, which the sharded CI merge asserts.
        assert names.isdisjoint({"tab01", "fig14", "fig15"})
        assert {"fig02", "fig08", "fig16", "ablations"} <= names
