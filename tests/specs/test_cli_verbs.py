"""The spec-facing CLI verbs: validate, plan, diff, hash, run --spec."""

from __future__ import annotations

import json

import pytest

from repro.runner.cli import main as cli_main


class TestValidate:
    def test_ok_spec_prints_summary(self, tiny_spec, capsys):
        assert cli_main(["validate", tiny_spec]) == 0
        out = capsys.readouterr().out
        assert f"OK {tiny_spec}" in out
        assert "2 artifacts, 6 points" in out

    def test_invalid_spec_exits_2_with_anchored_errors(self, spec_file,
                                                       capsys):
        path = spec_file("""\
            version: 1
            name: x
            artifacts:
              - artifact: fig9
            """)
        assert cli_main(["validate", path]) == 2
        err = capsys.readouterr().err
        assert f"error: {path}:4:" in err
        assert "did you mean" in err

    def test_one_bad_spec_fails_the_batch(self, tiny_spec, spec_file,
                                          capsys):
        bad = spec_file("version: 1\n", name="bad.yaml")
        assert cli_main(["validate", tiny_spec, bad]) == 2
        captured = capsys.readouterr()
        assert f"OK {tiny_spec}" in captured.out
        assert "error:" in captured.err


class TestPlan:
    def test_table_lists_artifacts_and_totals(self, tiny_spec, tmp_path,
                                              capsys):
        rc = cli_main(["plan", tiny_spec,
                       "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig02" in out and "fig16" in out
        assert "total: 6 points, 0 cached, 6 to run" in out

    def test_json_plan_parses(self, tiny_spec, tmp_path, capsys):
        rc = cli_main(["plan", tiny_spec, "--json",
                       "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["total_to_run"] == 6

    def test_shard_plan(self, tiny_spec, tmp_path, capsys):
        rc = cli_main(["plan", tiny_spec, "--shard", "1/2", "--json",
                       "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["total_selected"] == 3

    def test_bad_shard_exits_2(self, tiny_spec, tmp_path, capsys):
        assert cli_main(["plan", tiny_spec, "--shard", "9/2",
                         "--cache-dir", str(tmp_path / "cache")]) == 2
        assert "shard" in capsys.readouterr().err


class TestDiff:
    def test_identical_specs_exit_0(self, tiny_spec, spec_file, capsys):
        from pathlib import Path

        copy = spec_file(Path(tiny_spec).read_text(), name="copy.yaml")
        assert cli_main(["diff", tiny_spec, copy]) == 0
        assert "semantically identical" in capsys.readouterr().out

    def test_semantic_change_exits_1_with_delta(self, tiny_spec, spec_file,
                                                capsys):
        from pathlib import Path

        changed = spec_file(
            Path(tiny_spec).read_text().replace(
                "core_counts: [1]", "core_counts: [1, 2]"),
            name="changed.yaml")
        assert cli_main(["diff", tiny_spec, changed]) == 1
        out = capsys.readouterr().out
        assert "fig16: override core_counts: [1] -> [1, 2]" in out
        # Compiled point delta: two new 2-core points appeared.
        assert "fig16: +2 points" in out

    def test_unreadable_spec_exits_2(self, tiny_spec, tmp_path, capsys):
        missing = str(tmp_path / "nope.yaml")
        assert cli_main(["diff", tiny_spec, missing]) == 2
        assert "error:" in capsys.readouterr().err


class TestHash:
    def test_prints_spec_hash_and_run_fingerprint(self, tiny_spec, capsys):
        from repro.specs import load_spec, run_fingerprint, spec_hash

        assert cli_main(["hash", tiny_spec]) == 0
        out = capsys.readouterr().out
        spec = load_spec(tiny_spec)
        assert spec_hash(spec) in out
        assert run_fingerprint(spec) in out

    def test_check_update_roundtrip(self, tiny_spec, tmp_path, capsys):
        assert cli_main(["hash", "--check", tiny_spec]) == 1
        assert "no recorded hash" in capsys.readouterr().err
        assert cli_main(["hash", "--update", tiny_spec]) == 0
        assert (tmp_path / "HASHES.json").is_file()
        capsys.readouterr()
        assert cli_main(["hash", "--check", tiny_spec]) == 0
        assert "up to date" in capsys.readouterr().out

    def test_check_and_update_are_exclusive(self, tiny_spec, capsys):
        with pytest.raises(SystemExit):
            cli_main(["hash", "--check", "--update", tiny_spec])


class TestRunSpec:
    def test_shard_without_spec_exits_2(self, capsys):
        assert cli_main(["run", "--shard", "1/3"]) == 2
        assert "--shard requires --spec" in capsys.readouterr().err

    def test_shard_with_no_cache_exits_2(self, tiny_spec, capsys):
        assert cli_main(["run", "--spec", tiny_spec, "--shard", "1/3",
                         "--no-cache"]) == 2
        assert "drop" in capsys.readouterr().err

    def test_invalid_spec_exits_2(self, spec_file, capsys):
        bad = spec_file("version: 1\n", name="bad.yaml")
        assert cli_main(["run", "--spec", bad]) == 2
        assert "error:" in capsys.readouterr().err


class TestArtifactSelection:
    def test_glob_artifacts_expand(self, capsys):
        from repro.runner.cli import _select_artifacts

        assert _select_artifacts("fig1*") == [
            "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "fig17"]
        assert _select_artifacts("fig02,fig0*") == ["fig02", "fig08"]

    def test_unknown_artifact_suggests_and_exits_2(self, capsys):
        assert cli_main(["run", "--artifacts", "fig9"]) == 2
        err = capsys.readouterr().err
        assert "unknown artifact 'fig9'" in err
        assert "did you mean" in err

    def test_unmatched_glob_exits_2(self, capsys):
        assert cli_main(["run", "--artifacts", "zz*"]) == 2
        assert "zz*" in capsys.readouterr().err

    def test_help_epilog_lists_the_spec_verbs(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            cli_main(["--help"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        for verb in ("validate", "plan", "diff", "hash"):
            assert verb in out
