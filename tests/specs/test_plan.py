"""``repro plan``: point counts, cache probes, runtime estimates."""

from __future__ import annotations

import pytest

from repro.runner.cache import ResultCache
from repro.specs import load_and_compile, parse_runtime, plan_spec


@pytest.mark.parametrize("text,seconds", [
    ("~45 s", 45.0),
    ("~1 s", 1.0),
    ("2.5 sec", 2.5),
    ("~5 min", 300.0),
    ("3 m", 180.0),
    ("", None),
    ("fast-ish", None),
])
def test_parse_runtime(text, seconds):
    assert parse_runtime(text) == seconds


class TestPlan:
    def test_cold_plan_counts_every_point(self, tiny_spec, tmp_path):
        compiled = load_and_compile(tiny_spec)
        plan = plan_spec(compiled, ResultCache(tmp_path / "cache"))
        assert plan["spec"] == "tiny"
        assert plan["total_selected"] == 6
        assert plan["total_cached"] == 0
        assert plan["total_to_run"] == 6
        assert plan["est_seconds"] and plan["est_seconds"] > 0
        by_name = {r["artifact"]: r for r in plan["artifacts"]}
        assert by_name["fig02"]["point_ids"] == [
            "model-0", "model-1", "model-2", "model-3"]
        assert by_name["fig16"]["built"] == 2

    def test_warmed_cache_turns_points_into_hits(self, tiny_spec, tmp_path):
        compiled = load_and_compile(tiny_spec)
        cache = ResultCache(tmp_path / "cache")
        # Warm fig02 only — plan must probe, not recompute.
        fig02 = next(e for e in compiled.entries
                     if e.sweep.artifact == "fig02")
        for point in fig02.selected:
            cache.put(point, {"stub": point.point_id})
        plan = plan_spec(compiled, cache)
        by_name = {r["artifact"]: r for r in plan["artifacts"]}
        assert by_name["fig02"]["cached"] == 4
        assert by_name["fig02"]["to_run"] == 0
        assert by_name["fig02"]["est_seconds"] == 0
        assert by_name["fig16"]["cached"] == 0
        assert plan["total_cached"] == 4
        assert plan["total_to_run"] == 2

    def test_cache_hits_are_override_sensitive(self, tiny_spec, tmp_path,
                                               spec_file):
        # Same artifact, different overrides -> different points -> the
        # warmed cache must not claim hits for the other spec.
        compiled = load_and_compile(tiny_spec)
        cache = ResultCache(tmp_path / "cache")
        for entry in compiled.entries:
            for point in entry.selected:
                cache.put(point, {"stub": 1})
        other = spec_file("""\
            version: 1
            name: other
            artifacts:
              - artifact: fig02
                overrides:
                  accesses: 300
                  working_set: 65536
            """, name="other.yaml")
        plan = plan_spec(load_and_compile(other), cache)
        assert plan["total_cached"] == 0

    def test_shard_plan_covers_only_the_slice(self, tiny_spec, tmp_path):
        from repro.specs import shard_selection

        compiled = load_and_compile(tiny_spec)
        cache = ResultCache(tmp_path / "cache")
        plans = [plan_spec(compiled, cache,
                           shard_selection(compiled, index, 2))
                 for index in (1, 2)]
        assert sum(p["total_selected"] for p in plans) == 6
        assert all(p["total_selected"] == 3 for p in plans)

    def test_plan_carries_both_hashes(self, tiny_spec, tmp_path):
        from repro.specs import run_fingerprint, spec_hash

        compiled = load_and_compile(tiny_spec)
        plan = plan_spec(compiled, ResultCache(tmp_path / "cache"))
        assert plan["spec_hash"] == spec_hash(compiled.spec)
        assert plan["run_fingerprint"] == run_fingerprint(compiled.spec)
