"""Spec schema validation: every problem reported, anchored file:line."""

from __future__ import annotations

import pytest

from repro.specs import (
    SpecLoadError,
    SpecValidationError,
    compile_spec,
    knob_inventory,
    load_and_compile,
    load_spec,
)


def problems_of(path: str) -> list[str]:
    with pytest.raises(SpecValidationError) as err:
        load_and_compile(path)
    return err.value.problems


class TestDocumentSchema:
    def test_valid_spec_loads(self, tiny_spec):
        spec = load_spec(tiny_spec)
        assert spec.name == "tiny"
        assert [e.selector for e in spec.entries] == ["fig02", "fig16"]
        assert spec.entries[1].overrides["core_counts"] == [1]

    def test_yaml_syntax_error_is_line_anchored(self, spec_file):
        path = spec_file("version: 1\nname: [unclosed\n")
        with pytest.raises(SpecLoadError) as err:
            load_spec(path)
        assert f"{path}:" in str(err.value)
        assert "invalid YAML" in str(err.value)

    def test_non_mapping_document_rejected(self, spec_file):
        path = spec_file("- just\n- a\n- list\n")
        with pytest.raises(SpecValidationError) as err:
            load_spec(path)
        assert "must be a YAML mapping" in str(err.value)

    def test_unknown_top_key_anchored_to_its_line(self, spec_file):
        path = spec_file("""\
            version: 1
            name: x
            bogus: true
            artifacts:
              - artifact: fig02
            """)
        problems = problems_of(path)
        assert any(p.startswith(f"{path}:3:") and "'bogus'" in p
                   for p in problems)

    def test_wrong_version_rejected(self, spec_file):
        path = spec_file("""\
            version: 99
            name: x
            artifacts:
              - artifact: fig02
            """)
        assert any("'version' must be 1" in p for p in problems_of(path))

    def test_missing_artifacts_rejected(self, spec_file):
        path = spec_file("version: 1\nname: x\n")
        assert any("'artifacts' must be a non-empty list" in p
                   for p in problems_of(path))

    def test_env_knob_name_and_value_checked(self, spec_file):
        path = spec_file("""\
            version: 1
            name: x
            env:
              NOT_A_KNOB: 1
              REPRO_FULL: [1]
            artifacts:
              - artifact: fig02
            """)
        problems = problems_of(path)
        assert any("'NOT_A_KNOB' must match REPRO_" in p for p in problems)
        assert any("REPRO_FULL needs a scalar" in p for p in problems)

    def test_yaml_bool_env_values_become_knob_strings(self, spec_file):
        path = spec_file("""\
            version: 1
            name: x
            env:
              REPRO_FULL: true
            artifacts:
              - artifact: fig02
            """)
        assert load_spec(path).env == {"REPRO_FULL": "1"}

    def test_entry_unknown_key_anchored(self, spec_file):
        path = spec_file("""\
            version: 1
            name: x
            artifacts:
              - artifact: fig02
                overides:
                  accesses: 100
            """)
        problems = problems_of(path)
        assert any(f"{path}:5:" in p and "'overides'" in p
                   for p in problems)

    def test_points_section_schema(self, spec_file):
        path = spec_file("""\
            version: 1
            name: x
            artifacts:
              - artifact: fig02
                points:
                  includes: ["*"]
                  exclude: "model-0"
            """)
        problems = problems_of(path)
        assert any("'includes'" in p for p in problems)
        assert any("'exclude' must be a list" in p for p in problems)

    def test_all_problems_reported_at_once(self, spec_file):
        path = spec_file("""\
            version: 2
            artifacts: []
            """)
        assert len(problems_of(path)) >= 3  # version, name, artifacts


class TestCompileCrossChecks:
    def test_unknown_artifact_gets_suggestion(self, spec_file):
        path = spec_file("""\
            version: 1
            name: x
            artifacts:
              - artifact: fig9
            """)
        problems = problems_of(path)
        assert any("unknown artifact 'fig9'" in p and "did you mean" in p
                   for p in problems)

    def test_unknown_env_knob_gets_suggestion(self, spec_file):
        path = spec_file("""\
            version: 1
            name: x
            env:
              REPRO_FULLL: 1
            artifacts:
              - artifact: fig02
            """)
        problems = problems_of(path)
        assert any("unknown knob REPRO_FULLL" in p
                   and "REPRO_FULL" in p for p in problems)

    def test_unknown_override_names_the_accepted_ones(self, spec_file):
        path = spec_file("""\
            version: 1
            name: x
            artifacts:
              - artifact: fig02
                overrides:
                  access_count: 100
            """)
        problems = problems_of(path)
        assert any("no override 'access_count'" in p and "accesses" in p
                   for p in problems)

    def test_include_matching_nothing_is_an_error(self, spec_file):
        path = spec_file("""\
            version: 1
            name: x
            artifacts:
              - artifact: fig02
                points:
                  include: ["nope-*"]
            """)
        assert any("matches no points" in p for p in problems_of(path))

    def test_filters_that_leave_nothing_are_an_error(self, spec_file):
        path = spec_file("""\
            version: 1
            name: x
            artifacts:
              - artifact: fig02
                points:
                  exclude: ["model-*"]
            """)
        assert any("leave no points" in p for p in problems_of(path))

    def test_duplicate_artifact_across_entries_rejected(self, spec_file):
        path = spec_file("""\
            version: 1
            name: x
            artifacts:
              - artifact: fig02
              - artifact: fig0*
            """)
        assert any("already selected" in p for p in problems_of(path))

    def test_glob_selector_expands_in_registry_order(self, spec_file):
        path = spec_file("""\
            version: 1
            name: x
            artifacts:
              - artifact: fig1*
            """)
        compiled = compile_spec(load_spec(path))
        names = [e.sweep.artifact for e in compiled.entries]
        assert names == ["fig10", "fig11", "fig12", "fig13", "fig14",
                         "fig15", "fig16", "fig17"]

    def test_point_filters_select_subset(self, spec_file):
        path = spec_file("""\
            version: 1
            name: x
            artifacts:
              - artifact: fig16
                overrides:
                  core_counts: [1]
                points:
                  include: ["1core-*"]
                  exclude: ["1core-fcfs"]
            """)
        compiled = compile_spec(load_spec(path))
        entry = compiled.entries[0]
        assert entry.filtered
        assert [p.point_id for p in entry.selected] == ["1core-fr-fcfs"]

    def test_knob_inventory_sees_the_documented_knobs(self):
        inventory = knob_inventory()
        for knob in ("REPRO_FULL", "REPRO_JOBS", "REPRO_CACHE_DIR"):
            assert knob in inventory
