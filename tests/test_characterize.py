"""Tests for DRAM characterization (profiling requests)."""

import pytest

from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.dram.address import DramAddress
from repro.dram.timing import ns
from repro.profiling.characterize import (
    DEFAULT_TRCD_CANDIDATES_PS,
    characterize,
    oracle_characterize,
    profile_line,
    profile_row,
)


@pytest.fixture
def system():
    return EasyDRAMSystem(jetson_nano_time_scaling())


@pytest.fixture
def session(system):
    return system.session("profiling")


class TestProfileLine:
    def test_nominal_trcd_always_passes(self, session):
        dram = DramAddress(0, 0, 0)
        assert profile_line(session, dram, ns(13.0))

    def test_too_aggressive_trcd_fails(self, session, system):
        cells = system.tile.cells
        # ns(8.0) is realized as 9.0 ns on the 1.5 ns command grid, so a
        # row weaker than 9.0 ns must fail the probe.
        g = system.config.geometry
        bank, row = next(
            (b, r) for b in range(g.num_banks) for r in range(g.rows_per_bank)
            if cells.row_min_trcd_ps(b, r) > ns(9.0))
        assert not profile_line(session, DramAddress(bank, row, 0), ns(8.0))

    def test_profiling_advances_emulated_time(self, session):
        before = session.processor.cycles
        profile_line(session, DramAddress(0, 0, 0), ns(13.0))
        assert session.processor.cycles > before


class TestProfileRow:
    def test_matches_cell_model(self, session, system):
        cells = system.tile.cells
        tck = system.config.timing.tCK
        for row in (0, 7, 33):
            profile = profile_row(session, 0, row)
            true_min = cells.row_min_trcd_ps(0, row)
            # The profiled value is the smallest candidate whose grid-
            # realized delay covers the true minimum (the sequencer can
            # only place reads on interface-clock edges).
            expected = next(
                (c for c in sorted(DEFAULT_TRCD_CANDIDATES_PS)
                 if -(-c // tck) * tck >= true_min),
                system.config.timing.tRCD)
            assert profile.min_trcd_ps == expected

    def test_strong_classification(self, session):
        profile = profile_row(session, 0, 0)
        assert profile.is_strong() == (profile.min_trcd_ps <= ns(9.0))


class TestCharacterize:
    def test_emulated_equals_oracle(self, session, system):
        emulated = characterize(session, range(1), range(0, 32, 4),
                                cols_per_row_sampled=1)
        oracle = oracle_characterize(
            system.tile.cells, system.config.geometry, range(1),
            range(0, 32, 4))
        for key, profile in emulated.profiles.items():
            assert oracle.profiles[key].min_trcd_ps == profile.min_trcd_ps

    def test_strong_fraction_in_paper_band(self, system):
        g = system.config.geometry
        oracle = oracle_characterize(system.tile.cells, g, range(2),
                                     range(1024))
        assert 0.6 < oracle.strong_fraction() < 0.98

    def test_weak_rows_listed(self, system):
        g = system.config.geometry
        oracle = oracle_characterize(system.tile.cells, g, range(2),
                                     range(512))
        weak = oracle.weak_rows()
        assert weak
        for bank, row in weak:
            assert oracle.min_trcd(bank, row) > ns(9.0)

    def test_unprofiled_row_defaults_to_nominal(self):
        from repro.profiling.characterize import CharacterizationResult

        result = CharacterizationResult()
        assert result.min_trcd(0, 99999) == result.nominal_trcd_ps

    def test_heatmap_shape(self, system):
        g = system.config.geometry
        oracle = oracle_characterize(system.tile.cells, g, range(1),
                                     range(256))
        grid = oracle.heatmap(0, 256, group=64)
        assert len(grid) == 4
        assert all(len(row) == 64 for row in grid)
        assert all(8.0 <= v <= 13.5 for row in grid for v in row)
