"""Tests for workload generators: PolyBench, lmbench, microbenchmarks."""

import pytest

from repro.cpu.memtrace import FLAG_DEPENDENT, summarize, take
from repro.workloads import lmbench, microbench, polybench


class TestPolybench:
    def test_at_least_28_kernels(self):
        """The paper evaluates 28 PolyBench workloads."""
        assert len(polybench.names()) >= 28

    def test_fig13_kernels_all_registered(self):
        for name in polybench.FIG13_KERNELS:
            assert name in polybench.names()

    @pytest.mark.parametrize("name", polybench.names())
    def test_every_kernel_generates(self, name):
        stats = summarize(take(polybench.trace(name, "mini"), 2000))
        assert stats.accesses > 0
        assert stats.reads > 0

    def test_unknown_kernel(self):
        with pytest.raises(KeyError, match="unknown PolyBench kernel"):
            polybench.trace("quicksort")

    def test_unknown_size(self):
        with pytest.raises(KeyError, match="unknown size class"):
            polybench.trace("gemm", "huge")

    def test_sizes_scale_access_counts(self):
        mini = summarize(polybench.trace("gemm", "mini")).accesses
        small = summarize(polybench.trace("gemm", "small")).accesses
        assert small > 2 * mini

    def test_kernels_are_deterministic(self):
        a = list(take(polybench.trace("mvt", "mini"), 500))
        b = list(take(polybench.trace("mvt", "mini"), 500))
        assert a == b

    def test_gemm_access_count_matches_loop_nest(self):
        d = polybench.SIZES["mini"]
        stats = summarize(polybench.trace("gemm", "mini"))
        # Per (i, j): load C + m*(load A + load B) + store C.
        expected = d.n * d.n * (2 + 2 * d.m)
        assert stats.accesses == expected

    def test_durbin_has_tiny_footprint(self):
        """durbin is the paper's least memory-intensive workload."""
        durbin = summarize(polybench.trace("durbin", "mini")).footprint_bytes
        gemver = summarize(polybench.trace("gemver", "mini")).footprint_bytes
        assert durbin < gemver / 10

    def test_writes_present_in_inplace_kernels(self):
        stats = summarize(take(polybench.trace("seidel-2d", "mini"), 5000))
        assert stats.writes > 0


class TestLmbench:
    def test_chase_is_fully_dependent(self):
        accesses = list(lmbench.pointer_chase(4096, 100))
        assert all(a.flags & FLAG_DEPENDENT for a in accesses)
        assert len(accesses) == 100

    def test_chase_covers_working_set(self):
        size = 64 * 64
        accesses = list(lmbench.pointer_chase(size, 64))
        addrs = {a.addr for a in accesses}
        assert len(addrs) == 64  # one hop per line, all distinct

    def test_chase_wraps_around(self):
        accesses = list(lmbench.pointer_chase(64 * 8, 20))
        assert len(accesses) == 20

    def test_chase_deterministic_per_seed(self):
        a = list(lmbench.pointer_chase(4096, 50, seed=3))
        b = list(lmbench.pointer_chase(4096, 50, seed=3))
        c = list(lmbench.pointer_chase(4096, 50, seed=4))
        assert a == b
        assert a != c

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            list(lmbench.pointer_chase(32, 10))

    def test_accesses_for_two_passes(self):
        assert lmbench.accesses_for(64 * 10_000) == 20_000
        assert lmbench.accesses_for(64) == 4096  # floor
        assert lmbench.accesses_for(1 << 30) == 40_000  # cap


class TestMicrobench:
    def test_copy_trace_alternates_load_store(self):
        trace = list(microbench.cpu_copy_trace(0, 1 << 20, 4 * 64))
        assert len(trace) == 8
        assert not trace[0].is_write and trace[1].is_write
        assert trace[0].addr == 0 and trace[1].addr == 1 << 20

    def test_init_trace_is_stores_only(self):
        trace = list(microbench.cpu_init_trace(0, 8 * 64))
        assert len(trace) == 8
        assert all(a.is_write for a in trace)

    def test_touch_trace_read_and_write_modes(self):
        reads = list(microbench.touch_trace(0, 4 * 64))
        writes = list(microbench.touch_trace(0, 4 * 64, write=True))
        assert not any(a.is_write for a in reads)
        assert all(a.is_write for a in writes)

    def test_fig10_sizes_span_8k_to_16m(self):
        assert microbench.FIG10_SIZES[0] == 8 * 1024
        assert microbench.FIG10_SIZES[-1] == 16 * 1024 * 1024
        assert len(microbench.FIG10_SIZES) == 12
