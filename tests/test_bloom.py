"""Tests for the Bloom filter (weak-row tracking)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.profiling.bloom import BloomFilter


class TestBasics:
    def test_added_keys_are_members(self):
        bloom = BloomFilter.sized_for(100)
        for key in range(100):
            bloom.add(key)
        assert all(key in bloom for key in range(100))

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter.sized_for(100)
        assert not any(key in bloom for key in range(1000))

    def test_len_counts_additions(self):
        bloom = BloomFilter.sized_for(10)
        bloom.add(1)
        bloom.add(1)
        assert len(bloom) == 2

    def test_sizing_validation(self):
        with pytest.raises(ValueError):
            BloomFilter.sized_for(10, fp_rate=0.0)
        with pytest.raises(ValueError):
            BloomFilter(num_bits=4, num_hashes=1)
        with pytest.raises(ValueError):
            BloomFilter(num_bits=64, num_hashes=0)

    def test_sized_for_handles_zero_keys(self):
        bloom = BloomFilter.sized_for(0)
        assert bloom.num_bits >= 8

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter.sized_for(2000, fp_rate=0.01, seed=5)
        for key in range(2000):
            bloom.add(key)
        false_hits = sum(1 for key in range(10_000, 30_000) if key in bloom)
        rate = false_hits / 20_000
        assert rate < 0.03  # target 1% with slack

    def test_fill_ratio_and_estimate(self):
        bloom = BloomFilter.sized_for(500, fp_rate=0.01)
        for key in range(500):
            bloom.add(key)
        assert 0.2 < bloom.fill_ratio < 0.8
        assert 0.0 < bloom.estimated_fp_rate() < 0.1

    def test_seed_changes_bit_pattern(self):
        a = BloomFilter(num_bits=256, num_hashes=3, seed=1)
        b = BloomFilter(num_bits=256, num_hashes=3, seed=2)
        a.add(42)
        b.add(42)
        assert bytes(a._bits) != bytes(b._bits)

    def test_size_bytes(self):
        assert BloomFilter(num_bits=64, num_hashes=2).size_bytes == 8


@settings(max_examples=50)
@given(keys=st.sets(st.integers(min_value=0, max_value=2**48), min_size=1,
                    max_size=200))
def test_no_false_negatives_property(keys):
    """The RAIDR safety property: every added key is always a member,
    so a weak row can never slip through to a reduced-tRCD access."""
    bloom = BloomFilter.sized_for(len(keys), fp_rate=0.05)
    for key in keys:
        bloom.add(key)
    assert all(key in bloom for key in keys)
