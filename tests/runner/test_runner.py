"""Tests for the parallel sweep runner (specs, scheduler, cache)."""

from __future__ import annotations

import json

import pytest

from repro.runner import (
    ARTIFACT_ORDER,
    NullCache,
    ResultCache,
    SweepPoint,
    SweepSpec,
    all_specs,
    evaluate_point,
    run_sweep,
)
from repro.runner.cache import code_fingerprint


class TestRegistry:
    def test_every_artifact_exposes_a_sweep_spec(self):
        specs = all_specs()
        assert set(specs) == set(ARTIFACT_ORDER)
        for spec in specs.values():
            assert isinstance(spec, SweepSpec)
            assert spec.artifact and spec.title and spec.module

    def test_canonical_order_matches_run_all(self):
        assert list(all_specs()) == list(ARTIFACT_ORDER)

    def test_every_spec_builds_resolvable_picklable_points(self):
        for name, spec in all_specs().items():
            points = spec.build_points()
            assert points, name
            ids = [p.point_id for p in points]
            assert len(ids) == len(set(ids)), f"{name}: duplicate point ids"
            for point in points:
                assert point.artifact == name
                assert callable(point.resolve())
                json.dumps(dict(point.params))  # cache/pickle-safe params

    def test_unknown_artifact_raises_with_known_ids(self):
        from repro.runner import registry
        with pytest.raises(KeyError, match="fig10"):
            registry.get("fig99")


class TestScheduler:
    def test_parallel_and_serial_runs_identical_fig08(self):
        spec = all_specs()["fig08"]
        overrides = {"sizes_kib": (16, 64), "max_accesses": 1000}
        serial = run_sweep(spec, jobs=1, overrides=overrides)
        parallel = run_sweep(spec, jobs=2, overrides=overrides)
        assert serial.ok and parallel.ok
        assert serial.result == parallel.result
        assert serial.points == parallel.points == 6

    def test_parallel_and_serial_runs_identical_fig10(self):
        spec = all_specs()["fig10"]
        serial = run_sweep(spec, jobs=1, overrides={"sizes": (8 * 1024,)})
        parallel = run_sweep(spec, jobs=2, overrides={"sizes": (8 * 1024,)})
        assert serial.ok and parallel.ok
        assert serial.result == parallel.result

    def test_runner_matches_module_run(self):
        from repro.experiments import fig10_rowclone_noflush as fig10
        outcome = run_sweep(all_specs()["fig10"], jobs=2,
                            overrides={"sizes": (8 * 1024,)})
        from repro.runner.spec import json_normalize
        assert outcome.result == json_normalize(fig10.run(sizes=(8 * 1024,)))

    def test_failing_sweep_is_captured_not_raised(self):
        spec = SweepSpec(
            artifact="boom", title="Boom", module="repro.experiments",
            build_points=lambda: (SweepPoint(
                artifact="boom", point_id="p",
                fn="repro.runner.spec:does_not_exist"),),
            combine=dict)
        outcome = run_sweep(spec, jobs=1)
        assert not outcome.ok
        assert "does_not_exist" in outcome.error
        assert outcome.result is None

    def test_duplicate_point_ids_rejected(self):
        point = SweepPoint(artifact="dup", point_id="p",
                           fn="repro.runner.spec:json_normalize",
                           params={"value": 1})
        spec = SweepSpec(artifact="dup", title="Dup", module="repro",
                         build_points=lambda: (point, point), combine=dict)
        outcome = run_sweep(spec, jobs=1)
        assert not outcome.ok and "duplicate point" in outcome.error


class TestParallelSafety:
    @staticmethod
    def _pid_spec(parallel_safe: bool, n: int = 3) -> SweepSpec:
        return SweepSpec(
            artifact="pids", title="Pids", module="repro",
            build_points=lambda: tuple(
                SweepPoint(artifact="pids", point_id=f"p{i}", fn="os:getpid")
                for i in range(n)),
            combine=lambda r: {"pids": list(r.values())},
            parallel_safe=parallel_safe)

    def test_parallel_unsafe_sweep_stays_in_process(self):
        import os
        outcome = run_sweep(self._pid_spec(parallel_safe=False), jobs=4)
        assert outcome.ok
        assert set(outcome.result["pids"]) == {os.getpid()}

    def test_parallel_safe_sweep_uses_workers(self):
        import os
        outcome = run_sweep(self._pid_spec(parallel_safe=True), jobs=4)
        assert outcome.ok
        assert os.getpid() not in outcome.result["pids"]

    def test_failed_point_still_caches_completed_siblings(self, tmp_path):
        cache = ResultCache(tmp_path)
        good = tuple(
            SweepPoint(artifact="mix", point_id=f"g{i}", fn="os:getpid")
            for i in range(3))
        bad = SweepPoint(artifact="mix", point_id="bad",
                         fn="repro.runner.spec:does_not_exist")
        failing = SweepSpec(
            artifact="mix", title="Mix", module="repro",
            build_points=lambda: good + (bad,), combine=dict)
        outcome = run_sweep(failing, jobs=2, cache=cache)
        assert not outcome.ok and "does_not_exist" in outcome.error
        retry = SweepSpec(
            artifact="mix", title="Mix", module="repro",
            build_points=lambda: good, combine=dict)
        retried = run_sweep(retry, jobs=2, cache=cache)
        assert retried.ok
        # Points that finished before the failure were not thrown away.
        assert retried.cache_hits >= 1


class TestCache:
    def _spec(self):
        return all_specs()["fig02"]

    def test_second_run_hits_cache_with_identical_result(self, tmp_path):
        cache = ResultCache(tmp_path)
        overrides = {"accesses": 400}
        first = run_sweep(self._spec(), jobs=2, cache=cache,
                          overrides=overrides)
        second = run_sweep(self._spec(), jobs=2, cache=cache,
                           overrides=overrides)
        assert first.ok and second.ok
        assert first.cache_hits == 0
        assert second.cache_hits == second.points == first.points
        assert first.result == second.result

    def test_key_depends_on_params_and_code_version(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = SweepPoint(artifact="x", point_id="p", fn="m:f",
                       params={"n": 1})
        b = SweepPoint(artifact="x", point_id="p", fn="m:f",
                       params={"n": 2})
        assert cache.key(a) != cache.key(b)
        assert cache.key(a) == cache.key(a)
        assert len(code_fingerprint()) == 16

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = SweepPoint(artifact="x", point_id="p", fn="m:f")
        cache.put(point, {"v": 1})
        assert cache.get(point) == {"v": 1}
        path = cache._path(point)
        path.write_text("{not json")
        assert not cache.is_hit(cache.get(point))

    def test_null_cache_never_stores(self, tmp_path):
        cache = NullCache()
        point = SweepPoint(artifact="x", point_id="p", fn="m:f")
        cache.put(point, {"v": 1})
        assert not cache.is_hit(cache.get(point))
        assert list(tmp_path.iterdir()) == []


class TestEvaluatePoint:
    def test_results_are_json_normalized(self):
        point = SweepPoint(
            artifact="x", point_id="p",
            fn="repro.runner.spec:json_normalize",
            params={"value": {"t": (1, 2), "f": 1.5}})
        value = evaluate_point(point)
        assert value == {"t": [1, 2], "f": 1.5}
