"""Smoke tests for the unified ``repro`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.runner import SweepPoint, SweepSpec
from repro.runner import registry
from repro.runner.cli import main


@pytest.fixture
def isolated_dirs(tmp_path, monkeypatch):
    out = tmp_path / "results"
    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
    return out, cache


class TestRunJson:
    def test_json_smoke(self, isolated_dirs, capsys):
        out, cache = isolated_dirs
        rc = main(["run", "--artifacts", "tab01", "--jobs", "2",
                   "--format", "json", "--out", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "Table 1" in stdout
        assert "all artifacts regenerated" in stdout
        payload = json.loads((out / "tab01.json").read_text())
        assert payload["ok"] is True
        assert payload["artifact"] == "tab01"
        assert len(payload["result"]["rows"]) == 6
        manifest = json.loads((out / "manifest.json").read_text())
        assert [a["artifact"] for a in manifest["artifacts"]] == ["tab01"]
        assert (cache / "tab01").is_dir()

    def test_second_run_reports_cache_hits(self, isolated_dirs, capsys):
        out, _cache = isolated_dirs
        assert main(["run", "--artifacts", "tab01", "--format", "json",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["run", "--artifacts", "tab01", "--format", "json",
                     "--out", str(out)]) == 0
        assert "1 cached" in capsys.readouterr().out

    def test_no_cache_flag_skips_cache_dir(self, isolated_dirs, capsys):
        out, cache = isolated_dirs
        rc = main(["run", "--artifacts", "tab01", "--no-cache",
                   "--quiet", "--out", str(out)])
        assert rc == 0
        assert not cache.exists()


class TestRunCsv:
    def test_csv_rows_written(self, isolated_dirs):
        out, _cache = isolated_dirs
        rc = main(["run", "--artifacts", "tab01", "--format", "csv",
                   "--quiet", "--out", str(out)])
        assert rc == 0
        lines = (out / "tab01.csv").read_text().strip().splitlines()
        assert lines[0].startswith("platform,")
        assert len(lines) == 7  # header + 6 platform rows

    def test_every_artifact_shape_has_a_csv_table_or_none(self):
        from repro.runner.cli import _csv_table
        spec = registry.get("fig10")
        fig10_like = {
            "sizes": [8192], "clflush": False,
            "copy": {"TS": [2.0]}, "init": {"TS": [1.1]},
        }
        headers, rows = _csv_table(spec, fig10_like)
        assert headers[0] == "workload"
        assert ("copy", 8192, "TS", 2.0) in rows
        fig08_like = {"sizes_kib": [16], "series": {"A": [3.5]}}
        headers, rows = _csv_table(registry.get("fig08"), fig08_like)
        assert headers == ("size_kib", "A") and rows == [[16, 3.5]]
        # The ablations bundle has no single table: explicit None.
        assert _csv_table(registry.get("ablations"),
                          {"scheduler": {"rows": []}}) is None

    def test_csv_skip_note_names_artifact(self, isolated_dirs, capsys,
                                          monkeypatch):
        from repro.runner import SweepPoint as SP, SweepSpec as SS
        out, _cache = isolated_dirs
        tableless = SS(
            artifact="tableless", title="Tableless", module="repro",
            build_points=lambda: (SP(artifact="tableless", point_id="p",
                                     fn="os:getpid"),),
            combine=lambda r: {"value": list(r.values())})
        registry._load()
        monkeypatch.setitem(registry._REGISTRY, "tableless", tableless)
        rc = main(["run", "--artifacts", "tableless", "--format", "csv",
                   "--quiet", "--no-cache", "--out", str(out)])
        assert rc == 0
        assert "tableless: no tabular shape" in capsys.readouterr().err
        assert not (out / "tableless.csv").exists()


class TestFailureHandling:
    @pytest.fixture
    def with_broken_artifact(self, monkeypatch):
        broken = SweepSpec(
            artifact="broken", title="Broken artifact",
            module="repro.experiments",
            build_points=lambda: (SweepPoint(
                artifact="broken", point_id="p",
                fn="repro.runner.spec:does_not_exist"),),
            combine=dict)
        registry._load()
        monkeypatch.setitem(registry._REGISTRY, "broken", broken)
        return broken

    def test_failing_artifact_exits_nonzero_and_is_named(
            self, with_broken_artifact, isolated_dirs, capsys):
        out, _cache = isolated_dirs
        rc = main(["run", "--artifacts", "broken,tab01", "--quiet",
                   "--no-cache", "--out", str(out)])
        assert rc == 1
        captured = capsys.readouterr()
        assert "FAILED broken" in captured.out
        assert "broken" in captured.err
        assert "does_not_exist" in captured.err
        # The failure did not abort the remaining artifacts.
        assert "Table 1" in captured.out

    def test_unknown_artifact_is_a_usage_error(self, capsys):
        assert main(["run", "--artifacts", "fig99"]) == 2
        assert "unknown artifact" in capsys.readouterr().err


class TestList:
    def test_list_names_every_artifact(self, capsys):
        assert main(["list"]) == 0
        stdout = capsys.readouterr().out
        for artifact in registry.ARTIFACT_ORDER:
            assert artifact in stdout

    def test_list_shows_descriptions_and_runtimes(self, capsys):
        """Users should not need to grep experiments/ for what runs what."""
        assert main(["list"]) == 0
        stdout = capsys.readouterr().out
        for spec in registry.all_specs().values():
            assert spec.description, f"{spec.artifact} has no description"
            assert spec.runtime, f"{spec.artifact} has no runtime estimate"
            assert spec.description in stdout
            assert spec.runtime in stdout

    def test_run_dash_dash_list_is_the_same_listing(self, capsys):
        assert main(["list"]) == 0
        plain = capsys.readouterr().out
        assert main(["run", "--list"]) == 0
        assert capsys.readouterr().out == plain
