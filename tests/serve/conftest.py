"""Shared fixtures for the service tests.

The service executes registered artifacts, so these tests register a
synthetic, instant artifact (``svc-tiny``) whose point function is an
importable library function — the queue runs sweeps in-process
(``jobs=1``), so no pickling of the spec itself is required.  The
registration is removed again on teardown to keep the global registry
exactly the paper's artifact set for every other test.
"""

from __future__ import annotations

import os

import pytest

from repro.runner import SweepPoint, SweepSpec, register
from repro.runner.registry import _REGISTRY
from repro.serve.jobs import JobQueue
from repro.serve.server import make_server, serve_in_thread
from repro.serve.store import ResultStore

REPO = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))

TINY_ARTIFACT = "svc-tiny"


def _tiny_points(values=(1, 2, 3)) -> tuple[SweepPoint, ...]:
    return tuple(
        SweepPoint(artifact=TINY_ARTIFACT, point_id=f"p{value}",
                   fn="repro.runner.spec:json_normalize",
                   params={"value": {"value": value, "squared": value * value}})
        for value in values)


def _tiny_combine(results):
    return {"total": sum(r["value"] for r in results.values()),
            "per_point": results}


@pytest.fixture
def tiny_artifact():
    """Register the instant test artifact; yield its id; deregister."""
    spec = SweepSpec(
        artifact=TINY_ARTIFACT, title="Service test artifact",
        module="tests.serve", build_points=_tiny_points,
        combine=_tiny_combine, description="instant, for service tests")
    register(spec)
    try:
        yield TINY_ARTIFACT
    finally:
        _REGISTRY.pop(TINY_ARTIFACT, None)


@pytest.fixture
def store(tmp_path):
    store = ResultStore(tmp_path / "results.db")
    yield store
    store.close()


@pytest.fixture
def service(store, tiny_artifact):
    """A live ephemeral-port service; yields (server, base_url)."""
    server = make_server(port=0, store=store)
    serve_in_thread(server)
    yield server, server.url
    server.close()


@pytest.fixture
def spied_service(store, tiny_artifact):
    """A live service whose runner counts real executions.

    Yields ``(server, url, calls)`` where ``calls`` is a list with one
    entry per underlying sweep execution — the dedupe contract is
    ``len(calls) == 1`` no matter how many clients submitted.
    """
    from repro.serve.jobs import execute_request

    calls: list[str] = []

    def spying_runner(request, store, jobs=1):
        calls.append(request.get("artifact") or "spec")
        return execute_request(request, store, jobs=jobs)

    queue = JobQueue(store, workers=4, runner=spying_runner)
    server = make_server(port=0, store=store, queue=queue)
    serve_in_thread(server)
    yield server, server.url, calls
    server.close()
