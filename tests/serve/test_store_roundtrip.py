"""Property-based store round-trip: arbitrary ``RunResult``-shaped
payloads survive write -> SQL store -> read bit-identically under the
``tools/compare_results.py`` comparison — non-finite floats, empty
sweeps, per-core slices and all."""

from __future__ import annotations

import importlib.util
import json
import math
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import SweepPoint, json_normalize
from repro.serve.store import ResultStore

_REPO = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))


def _load_compare_tool():
    spec = importlib.util.spec_from_file_location(
        "compare_results_for_roundtrip",
        os.path.join(_REPO, "tools", "compare_results.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


payloads_equal = _load_compare_tool().payloads_equal

# JSON-normalized payloads: what evaluate_point produces and the store
# holds.  Keys are strings and tuples are lists by construction; floats
# include NaN/±inf (sweeps emit them for empty latency windows).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=24),
)
_payloads = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=12), children, max_size=5),
    ),
    max_leaves=25,
)


def _runresult_shaped(payload) -> dict:
    """Wrap arbitrary data in the nesting RunResult payloads have."""
    return {
        "requests": 17,
        "latencies_ps": [1.5, float("nan"), 3.0],
        "per_core": [{"core": 0, "slowdown": 1.0, "extra": payload}],
        "payload": payload,
    }


class TestPropertyRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(payload=_payloads)
    def test_arbitrary_payloads_bit_identical(self, tmp_path_factory,
                                              payload):
        store = ResultStore(
            tmp_path_factory.mktemp("store") / "results.db")
        try:
            value = json_normalize(_runresult_shaped(payload))
            point = SweepPoint(artifact="prop", point_id="p0",
                               fn="repro.runner.spec:json_normalize",
                               params={"value": 0})
            store.put(point, value)
            read = store.get(point)
            assert payloads_equal(read, value)
        finally:
            store.close()

    @settings(max_examples=40, deadline=None)
    @given(payload=_payloads)
    def test_job_payload_round_trip(self, tmp_path_factory, payload):
        store = ResultStore(
            tmp_path_factory.mktemp("store") / "results.db")
        try:
            value = json_normalize(payload)
            store.record_job("fp", "artifact", "prop", {"artifact": "p"},
                             value)
            assert payloads_equal(store.get_job_payload("fp"), value)
        finally:
            store.close()


class TestEdgeCases:
    def _round_trip(self, store, value):
        point = SweepPoint(artifact="edge", point_id="p",
                           fn="repro.runner.spec:json_normalize",
                           params={"value": 0})
        store.put(point, value)
        return store.get(point)

    def test_empty_sweep_shapes(self, store):
        for value in ({}, [], {"points": []}, {"series": {}}, None):
            assert payloads_equal(self._round_trip(store, value),
                                  json_normalize(value))

    def test_non_finite_floats(self, store):
        value = json_normalize({
            "nan": float("nan"),
            "inf": float("inf"),
            "ninf": float("-inf"),
            "mixed": [0.0, -0.0, float("nan"), 1e308],
        })
        read = self._round_trip(store, value)
        assert payloads_equal(read, value)
        assert math.isnan(read["nan"])
        assert read["inf"] == float("inf")
        # -0.0 keeps its sign bit through the round trip.
        assert math.copysign(1.0, read["mixed"][1]) == -1.0

    def test_float_precision_is_exact(self, store):
        value = [0.1, 1 / 3, 2 ** -1074, 1.7976931348623157e308]
        read = self._round_trip(store, value)
        assert [v.hex() for v in read] == [v.hex() for v in value]


class TestPayloadsEqualSemantics:
    """The comparison itself: strict on types and bits, sane on NaN."""

    def test_nan_equals_nan(self):
        assert payloads_equal(float("nan"), float("nan"))
        assert payloads_equal({"x": [float("nan")]}, {"x": [float("nan")]})

    def test_plain_equality_would_fail_on_nan(self):
        # A freshly computed NaN is a different object from the json
        # decoder's interned one, so container identity shortcuts don't
        # save `==` here — this is why compare_results needs
        # payloads_equal and not plain dict equality.
        value = {"x": [float("nan")]}
        assert value != json.loads(json.dumps(value))
        assert payloads_equal(value, json.loads(json.dumps(value)))

    def test_type_strict(self):
        assert not payloads_equal(1, 1.0)
        assert not payloads_equal(True, 1)
        assert not payloads_equal([1], (1,))

    def test_zero_sign_strict(self):
        assert not payloads_equal(0.0, -0.0)
        assert payloads_equal(-0.0, -0.0)

    def test_shape_mismatches(self):
        assert not payloads_equal({"a": 1}, {"b": 1})
        assert not payloads_equal([1, 2], [1])
        assert not payloads_equal({"a": 1}, {"a": 2})
