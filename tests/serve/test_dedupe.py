"""The service's headline guarantee: N concurrent identical
submissions execute the sweep exactly once, and every client reads the
identical, bit-equal payload."""

from __future__ import annotations

import json
import threading
import urllib.request

from repro.serve.jobs import JobQueue, job_fingerprint, normalize_request

CLIENTS = 32


def _post(url: str, body: dict) -> dict:
    data = json.dumps(body).encode()
    request = urllib.request.Request(
        f"{url}/submit", data=data,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


class TestConcurrentDedupe:
    def test_hammering_one_point_executes_once(self, spied_service):
        """~32 threads hit /submit with the same spec point; exactly one
        ``run_sweep`` execution happens underneath."""
        server, url, calls = spied_service
        body = {"artifact": "svc-tiny", "points": ["p2"], "wait": 60}
        responses: list[dict] = []
        errors: list[Exception] = []
        barrier = threading.Barrier(CLIENTS)

        def client():
            try:
                barrier.wait(timeout=30)
                responses.append(_post(url, body))
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [threading.Thread(target=client)
                   for _ in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        assert not errors
        assert len(responses) == CLIENTS
        # The spy saw exactly one underlying execution.
        assert calls == ["svc-tiny"]
        # Every client got the same finished job's identical payload.
        assert all(r["state"] == "done" for r in responses)
        results = [json.dumps(r["result"], sort_keys=True)
                   for r in responses]
        assert len(set(results)) == 1
        assert responses[0]["result"]["values"]["p2"] \
            == {"value": 2, "squared": 4}
        # Accounting: one miss executed; everyone else coalesced onto
        # the in-flight job or read the store.
        stats = server.queue.stats
        assert stats["executed"] == 1
        assert stats["submitted"] == CLIENTS
        assert stats["coalesced"] + stats["cached"] == CLIENTS - 1

    def test_whole_artifact_submissions_also_coalesce(self, spied_service):
        server, url, calls = spied_service
        body = {"artifact": "svc-tiny", "wait": 60}
        responses = []
        threads = [threading.Thread(
            target=lambda: responses.append(_post(url, body)))
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert calls == ["svc-tiny"]
        assert len({json.dumps(r["result"], sort_keys=True)
                    for r in responses} ) == 1
        assert responses[0]["result"]["result"]["total"] == 6

    def test_resubmission_after_completion_is_a_store_read(
            self, spied_service):
        server, url, calls = spied_service
        first = _post(url, {"artifact": "svc-tiny", "wait": 60})
        assert first["state"] == "done" and not first["cached"]
        second = _post(url, {"artifact": "svc-tiny", "wait": 60})
        assert second["state"] == "done" and second["cached"]
        assert calls == ["svc-tiny"]
        assert second["result"] == first["result"]


class TestFingerprints:
    def test_fingerprint_ignores_transport_fields(self):
        a = normalize_request({"artifact": "fig12"})
        b = normalize_request({"artifact": "fig12", "overrides": {}})
        assert job_fingerprint(a, "C") == job_fingerprint(b, "C")

    def test_fingerprint_tracks_semantics(self):
        base = normalize_request({"artifact": "fig12"})
        assert job_fingerprint(base, "C1") != job_fingerprint(base, "C2")
        overridden = normalize_request(
            {"artifact": "fig12", "overrides": {"banks": 1}})
        assert job_fingerprint(base, "C1") \
            != job_fingerprint(overridden, "C1")
        pointed = normalize_request(
            {"artifact": "fig12", "points": ["p1"]})
        assert job_fingerprint(base, "C1") != job_fingerprint(pointed, "C1")

    def test_point_order_is_canonical(self):
        a = normalize_request({"artifact": "x", "points": ["b", "a"]})
        b = normalize_request({"artifact": "x", "points": ["a", "b"]})
        assert job_fingerprint(a, "C") == job_fingerprint(b, "C")


class TestRequestValidation:
    def test_needs_artifact_or_spec(self):
        import pytest

        with pytest.raises(ValueError, match="exactly one"):
            normalize_request({})
        with pytest.raises(ValueError, match="exactly one"):
            normalize_request({"artifact": "a", "spec": "name: x"})

    def test_bad_shapes_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="overrides"):
            normalize_request({"artifact": "a", "overrides": [1]})
        with pytest.raises(ValueError, match="point ids"):
            normalize_request({"artifact": "a", "points": [1, 2]})


class TestQueueDirect:
    def test_failed_execution_reports_not_raises(self, store,
                                                 tiny_artifact):
        queue = JobQueue(store, workers=1)
        job = queue.submit({"artifact": "svc-tiny",
                            "points": ["no-such-point"]})
        queue.wait(job.job_id, timeout=60)
        assert job.state == "failed"
        assert "no-such-point" in job.error
        assert queue.result(job.job_id) is None
        queue.shutdown()

    def test_unknown_artifact_rejected_at_submit(self, store):
        import pytest

        queue = JobQueue(store, workers=1)
        with pytest.raises(KeyError, match="fig99"):
            queue.submit({"artifact": "fig99"})
        assert queue.stats["failed"] == 0  # rejected, not a failed job
        queue.shutdown()
