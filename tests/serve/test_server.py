"""HTTP endpoint tests plus the service's bit-identity acceptance
contract: a payload served from the store compares bit-equal (per
``tools/compare_results.py``) to a fresh run with the store disabled."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

from repro.runner import NullCache, run_sweep
from repro.runner.registry import get as get_spec
from repro.serve.client import ServiceClient, ServiceError

_REPO = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))

#: Small enough for a test, real enough to mean something: a genuine
#: paper artifact with shrunk parameters (~0.2 s).
REAL_ARTIFACT = "fig12"
REAL_OVERRIDES = {"banks": 1, "rows": 128, "emulated_sample_rows": 2}

SPEC_TEXT = """\
version: 1
name: serve-test
description: Tiny spec submitted over HTTP.
artifacts:
  - artifact: fig02
    overrides:
      accesses: 200
      working_set: 65536
"""


def _payloads_equal():
    spec = importlib.util.spec_from_file_location(
        "compare_results_for_server",
        os.path.join(_REPO, "tools", "compare_results.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.payloads_equal


payloads_equal = _payloads_equal()


class TestEndpoints:
    def test_health(self, service):
        _, url = service
        health = ServiceClient(url).health()
        assert health["ok"] is True
        assert health["backend"] in ("duckdb", "sqlite")
        assert set(health["queue"]) == {"submitted", "coalesced",
                                        "cached", "executed", "failed"}

    def test_submit_status_result_lifecycle(self, service):
        _, url = service
        client = ServiceClient(url)
        response = client.submit(artifact="svc-tiny")
        job_id = response["job_id"]
        assert response["state"] in ("queued", "running", "done")
        result = client.result(job_id, wait=60)
        assert result["state"] == "done"
        assert result["result"]["result"]["total"] == 6
        status = client.status(job_id)
        assert status["state"] == "done"
        assert "result" not in status  # status is metadata-only

    def test_submit_wait_inlines_result(self, service):
        _, url = service
        response = ServiceClient(url).submit(artifact="svc-tiny", wait=60)
        assert response["state"] == "done"
        assert response["result"]["result"]["per_point"]["p1"]["value"] == 1

    def test_unknown_job_is_404(self, service):
        _, url = service
        client = ServiceClient(url)
        for call in (lambda: client.status("job-999"),
                     lambda: client.result("job-999")):
            with pytest.raises(ServiceError) as err:
                call()
            assert err.value.status == 404

    def test_unknown_endpoint_is_404(self, service):
        _, url = service
        with pytest.raises(ServiceError) as err:
            ServiceClient(url)._request("/nope")
        assert err.value.status == 404

    def test_bad_submission_is_400(self, service):
        _, url = service
        client = ServiceClient(url)
        with pytest.raises(ServiceError) as err:
            client._request("/submit", {})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client._request("/submit", {"artifact": "fig99"})
        assert err.value.status == 400
        assert "fig99" in str(err.value)

    def test_query_endpoint(self, service):
        _, url = service
        client = ServiceClient(url)
        client.submit(artifact="svc-tiny", wait=60)
        table = client.query(
            "SELECT artifact, count(*) AS points FROM points"
            " GROUP BY artifact")
        assert table["columns"] == ["artifact", "points"]
        assert table["rows"] == [["svc-tiny", 3]]

    def test_query_rejects_writes_with_400(self, service):
        _, url = service
        with pytest.raises(ServiceError) as err:
            ServiceClient(url).query("DELETE FROM points")
        assert err.value.status == 400
        assert "read-only" in str(err.value)

    def test_failed_job_reports_500_with_error(self, service):
        _, url = service
        client = ServiceClient(url)
        # A waited-on submission that fails surfaces as the 500 itself.
        with pytest.raises(ServiceError) as err:
            client._request("/submit", {"artifact": "svc-tiny",
                                        "points": ["missing"], "wait": 60})
        assert err.value.status == 500
        assert "missing" in str(err.value)
        # The failed job stays inspectable: status shows the error text,
        # and /result for it is a 500 as well.
        failed = [j for j in client.jobs() if j["state"] == "failed"]
        assert failed and "missing" in failed[0]["error"]
        with pytest.raises(ServiceError) as err:
            client.result(failed[0]["job_id"], wait=60)
        assert err.value.status == 500


class TestSpecSubmission:
    def test_spec_document_runs_and_lands_in_store(self, service):
        _, url = service
        client = ServiceClient(url)
        response = client.submit(spec_text=SPEC_TEXT, wait=120)
        assert response["state"] == "done"
        payload = response["result"]
        assert payload["spec"] == "serve-test"
        assert "fig02" in payload["artifacts"]
        # The run fingerprint deduped: a resubmission is a cache hit.
        again = client.submit(spec_text=SPEC_TEXT, wait=120)
        assert again["cached"] is True
        assert payloads_equal(again["result"], payload)
        # spec_hash landed as a store key.
        table = client.query(
            "SELECT spec_hash FROM jobs WHERE spec_hash IS NOT NULL")
        assert len(table["rows"]) == 1

    def test_invalid_spec_text_fails_the_job(self, service):
        _, url = service
        client = ServiceClient(url)
        with pytest.raises(ServiceError) as err:
            client._request(
                "/submit", {"spec": "version: 99\nname: bad\n", "wait": 60})
        assert err.value.status == 500
        assert "version" in str(err.value)


class TestBitIdentityContract:
    def test_stored_result_equals_fresh_uncached_run(self, service):
        """The acceptance criterion, end to end over HTTP: the payload
        the store serves is bit-equal to `repro run` with no store."""
        _, url = service
        client = ServiceClient(url)
        served = client.submit(artifact=REAL_ARTIFACT,
                               overrides=REAL_OVERRIDES, wait=300)
        assert served["state"] == "done"

        fresh = run_sweep(get_spec(REAL_ARTIFACT), cache=NullCache(),
                          overrides=REAL_OVERRIDES)
        assert fresh.ok
        assert payloads_equal(served["result"]["result"], fresh.result)

        # And the cached re-read serves the identical bits again.
        reread = client.submit(artifact=REAL_ARTIFACT,
                               overrides=REAL_OVERRIDES, wait=300)
        assert reread["cached"] is True
        assert payloads_equal(reread["result"]["result"], fresh.result)

    def test_point_values_equal_fresh_point_evaluation(self, service):
        from repro.runner import evaluate_point

        _, url = service
        client = ServiceClient(url)
        spec = get_spec(REAL_ARTIFACT)
        point = spec.build_points(**REAL_OVERRIDES)[0]
        served = client.submit(artifact=REAL_ARTIFACT,
                               overrides=REAL_OVERRIDES,
                               points=[point.point_id], wait=300)
        assert served["state"] == "done"
        assert payloads_equal(
            served["result"]["values"][point.point_id],
            evaluate_point(point))


class TestWireFormat:
    def test_non_finite_floats_survive_http(self, service, store):
        """NaN/Infinity tokens cross the wire bit-identically."""
        from repro.runner import SweepPoint

        point = SweepPoint(artifact="wire", point_id="w",
                           fn="repro.runner.spec:json_normalize",
                           params={"value": 0})
        store.put(point, {"nan": float("nan"), "inf": float("inf")})
        _, url = service
        table = ServiceClient(url).query(
            "SELECT value FROM points WHERE artifact = 'wire'")
        value = json.loads(table["rows"][0][0])
        assert value["inf"] == float("inf")
        assert value["nan"] != value["nan"]  # a true NaN, parsed back
