"""The `repro submit` / `repro query` CLI verbs against a live service,
plus `repro serve` argument handling."""

from __future__ import annotations

import json

import pytest

from repro.runner.cli import main


class TestSubmitVerb:
    def test_submit_artifact_waits_and_prints_result(self, service,
                                                     capsys):
        _, url = service
        rc = main(["submit", "--url", url, "--artifact", "svc-tiny"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "job-1: done (executed, fingerprint " in out
        assert '"total": 6' in out

    def test_second_submission_reports_cache_hit(self, service, capsys):
        _, url = service
        assert main(["submit", "--url", url, "--artifact", "svc-tiny"]) == 0
        capsys.readouterr()
        assert main(["submit", "--url", url, "--artifact", "svc-tiny"]) == 0
        assert "done (store cache hit" in capsys.readouterr().out

    def test_json_output_is_machine_readable(self, service, capsys):
        _, url = service
        rc = main(["submit", "--url", url, "--artifact", "svc-tiny",
                   "--point", "p2", "--json"])
        assert rc == 0
        response = json.loads(capsys.readouterr().out)
        assert response["state"] == "done"
        assert response["result"]["values"]["p2"] == {"value": 2,
                                                      "squared": 4}

    def test_overrides_and_spec_are_exclusive_shapes(self, service,
                                                     capsys):
        _, url = service
        assert main(["submit", "--url", url]) == 2
        assert "exactly one" in capsys.readouterr().err
        rc = main(["submit", "--url", url, "--artifact", "svc-tiny",
                   "--overrides", "{not json"])
        assert rc == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_unknown_artifact_is_a_client_error(self, service, capsys):
        _, url = service
        rc = main(["submit", "--url", url, "--artifact", "fig99"])
        assert rc == 2
        assert "fig99" in capsys.readouterr().err

    def test_unreachable_service_is_a_clear_error(self, capsys):
        rc = main(["submit", "--url", "http://127.0.0.1:9",
                   "--artifact", "svc-tiny"])
        assert rc == 2
        assert "repro serve" in capsys.readouterr().err

    def test_spec_file_submission(self, service, tmp_path, capsys):
        _, url = service
        spec = tmp_path / "tiny.yaml"
        spec.write_text(
            "version: 1\n"
            "name: cli-test\n"
            "description: CLI spec submission.\n"
            "artifacts:\n"
            "  - artifact: fig02\n"
            "    overrides:\n"
            "      accesses: 200\n"
            "      working_set: 65536\n")
        rc = main(["submit", "--url", url, "--spec", str(spec), "--json"])
        assert rc == 0
        response = json.loads(capsys.readouterr().out)
        assert response["state"] == "done"
        assert "fig02" in response["result"]["artifacts"]


class TestQueryVerb:
    @pytest.fixture(autouse=True)
    def _populate(self, service):
        _, url = service
        assert main(["submit", "--url", url, "--artifact", "svc-tiny"]) == 0

    def test_ascii_table(self, service, capsys):
        _, url = service
        capsys.readouterr()
        rc = main(["query", "--url", url,
                   "SELECT artifact, count(*) AS points FROM points"
                   " GROUP BY artifact"])
        out = capsys.readouterr().out
        assert rc == 0
        lines = out.splitlines()
        assert lines[0].split() == ["artifact", "points"]
        assert lines[2].split() == ["svc-tiny", "3"]
        assert lines[3] == "(1 row)"

    def test_json_output(self, service, capsys):
        _, url = service
        capsys.readouterr()
        rc = main(["query", "--url", url, "--json",
                   "SELECT count(*) AS n FROM jobs"])
        assert rc == 0
        table = json.loads(capsys.readouterr().out)
        assert table["rows"] == [[1]]

    def test_write_statements_rejected(self, service, capsys):
        _, url = service
        capsys.readouterr()
        rc = main(["query", "--url", url, "DELETE FROM points"])
        assert rc == 1
        assert "read-only" in capsys.readouterr().err


class TestServeVerb:
    def test_bad_store_path_is_a_startup_error(self, tmp_path, capsys):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("x")
        rc = main(["serve", "--store",
                   str(blocker / "nested" / "results.db")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_explicit_backend_must_be_available(self, tmp_path, capsys):
        from repro.serve import store as store_module

        if "duckdb" in store_module.available_backends():
            pytest.skip("duckdb installed; forced backend succeeds")
        rc = main(["serve", "--store", str(tmp_path / "r.db"),
                   "--backend", "duckdb"])
        assert rc == 2
        assert "duckdb" in capsys.readouterr().err
