"""Unit tests for the service result store (cache interface, SQL
surface, backend selection, job payloads)."""

from __future__ import annotations

import threading

import pytest

from repro.runner import SweepPoint, run_sweep
from repro.runner.cache import ResultCache, point_key
from repro.serve.store import (
    ResultStore,
    StoreError,
    available_backends,
    resolve_backend,
)


def _point(value=7, artifact="t") -> SweepPoint:
    return SweepPoint(artifact=artifact, point_id=f"p{value}",
                      fn="repro.runner.spec:json_normalize",
                      params={"value": value})


class TestCacheInterface:
    def test_miss_then_hit_round_trip(self, store):
        point = _point()
        assert not store.has(point)
        assert not store.is_hit(store.get(point))
        store.put(point, {"a": [1, 2], "b": None})
        assert store.has(point)
        assert store.get(point) == {"a": [1, 2], "b": None}

    def test_key_scheme_matches_the_json_cache(self, store, tmp_path):
        """Store and on-disk cache share one fingerprint scheme."""
        point = _point()
        assert ResultCache(tmp_path).key(point) == point_key(point)

    def test_put_is_idempotent_replace(self, store):
        point = _point()
        store.put(point, {"v": 1})
        store.put(point, {"v": 2})
        assert store.get(point) == {"v": 2}
        assert store.counts()["points"] == 1

    def test_run_sweep_accepts_the_store_as_cache(self, store,
                                                  tiny_artifact):
        from repro.runner import registry

        spec = registry.get(tiny_artifact)
        cold = run_sweep(spec, cache=store)
        warm = run_sweep(spec, cache=store)
        assert cold.ok and warm.ok
        assert cold.cache_hits == 0
        assert warm.cache_hits == warm.points == 3
        assert warm.result == cold.result

    def test_distinct_code_fingerprints_never_collide(self, tmp_path):
        one = ResultStore(tmp_path / "s.db", code="F1")
        two = ResultStore(tmp_path / "s2.db", code="F2")
        point = _point()
        assert point_key(point, one.code()) != point_key(point, two.code())
        one.close(), two.close()


class TestBackends:
    def test_sqlite_always_available(self):
        assert "sqlite" in available_backends()

    def test_auto_resolves_to_an_available_backend(self):
        assert resolve_backend("auto") in available_backends()
        assert resolve_backend(None) in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(StoreError, match="unknown store backend"):
            resolve_backend("postgres")

    def test_explicit_sqlite(self, tmp_path):
        store = ResultStore(tmp_path / "s.db", backend="sqlite")
        assert store.backend == "sqlite"
        store.close()

    @pytest.mark.skipif("duckdb" not in available_backends(),
                        reason="duckdb not installed")
    def test_duckdb_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "s.duckdb", backend="duckdb")
        point = _point()
        store.put(point, {"v": [1.5, None, "x"]})
        assert store.get(point) == {"v": [1.5, None, "x"]}
        assert store.query("SELECT count(*) FROM points")["rows"] == [[1]]
        store.close()


class TestJobPayloads:
    def test_record_and_fetch(self, store):
        store.record_job("fp1", "artifact", "fig12", {"artifact": "fig12"},
                         {"result": {"rows": 3}})
        assert store.get_job_payload("fp1") == {"result": {"rows": 3}}
        assert store.get_job_payload("fp-missing") is None

    def test_payload_from_other_code_fingerprint_not_served(self, tmp_path):
        old = ResultStore(tmp_path / "s.db", code="F1")
        old.record_job("fp1", "artifact", "a", {}, {"r": 1})
        now = ResultStore(tmp_path / "s.db", code="F2")
        assert old.get_job_payload("fp1") == {"r": 1}
        assert now.get_job_payload("fp1") is None
        old.close(), now.close()


class TestQuerySurface:
    def test_select_over_points(self, store):
        for value in (1, 2, 3):
            store.put(_point(value, artifact="svc-tiny"), {"ok": True})
        table = store.query(
            "SELECT artifact, count(*) FROM points GROUP BY artifact")
        assert table["rows"] == [["svc-tiny", 3]]

    def test_parameterized_query(self, store):
        store.put(_point(1), {"v": 1})
        store.put(_point(2), {"v": 2})
        table = store.query(
            "SELECT point_id FROM points WHERE point_id = ?", ["p1"])
        assert table["rows"] == [["p1"]]

    @pytest.mark.parametrize("sql", [
        "DELETE FROM points",
        "INSERT INTO points VALUES (1,2,3,4,5,6,7,8,9)",
        "UPDATE jobs SET stale = 1",
        "DROP TABLE points",
        "PRAGMA writable_schema = 1",
        "",
    ])
    def test_writes_rejected(self, store, sql):
        with pytest.raises(StoreError, match="read-only"):
            store.query(sql)

    def test_multiple_statements_rejected(self, store):
        with pytest.raises(StoreError, match="single SQL statement"):
            store.query("SELECT 1; DELETE FROM points")

    def test_sql_errors_surface_as_store_errors(self, store):
        with pytest.raises(StoreError, match="query failed"):
            store.query("SELECT nope FROM nothing_here")

    def test_concurrent_readers_and_writers(self, store):
        """The shared connection survives hammering from many threads."""
        errors = []

        def work(index):
            try:
                for value in range(10):
                    store.put(_point(index * 100 + value), {"v": value})
                    store.query("SELECT count(*) FROM points")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.counts()["points"] == 80
