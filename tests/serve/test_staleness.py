"""Staleness across code-fingerprint bumps: old rows are flagged (never
silently served), re-submission repopulates fresh rows, and historical
rows stay queryable."""

from __future__ import annotations

from repro.runner import SweepPoint
from repro.serve.jobs import JobQueue
from repro.serve.staleness import refresh_staleness
from repro.serve.store import ResultStore


def _point(value=1) -> SweepPoint:
    return SweepPoint(artifact="stale-test", point_id=f"p{value}",
                      fn="repro.runner.spec:json_normalize",
                      params={"value": value})


class TestFingerprintBump:
    def test_rows_flagged_not_served_after_bump(self, tmp_path):
        path = tmp_path / "results.db"
        old = ResultStore(path, code="F1")
        old.put(_point(1), {"era": "F1"})
        old.record_job("fp-old", "artifact", "stale-test", {}, {"era": "F1"})
        assert old.get(_point(1)) == {"era": "F1"}
        old.close()

        # The code fingerprint moves: same database, new store handle.
        new = ResultStore(path, code="F2")
        # Not served before flagging (the key embeds the fingerprint)...
        assert not new.has(_point(1))
        assert new.get_job_payload("fp-old") is None
        # ...and explicitly flagged after the staleness sweep.
        report = refresh_staleness(new)
        assert report.code_fingerprint == "F2"
        assert report.points_flagged == 1
        assert report.jobs_flagged == 1
        assert report.points_stale == 1
        table = new.query(
            "SELECT point_id, stale, code_fingerprint FROM points")
        assert table["rows"] == [["p1", 1, "F1"]]
        new.close()

    def test_flagging_is_idempotent(self, tmp_path):
        path = tmp_path / "results.db"
        old = ResultStore(path, code="F1")
        old.put(_point(1), {"era": "F1"})
        old.close()
        new = ResultStore(path, code="F2")
        assert refresh_staleness(new).points_flagged == 1
        again = refresh_staleness(new)
        assert again.points_flagged == 0      # nothing newly flagged
        assert again.points_stale == 1        # still visibly stale
        new.close()

    def test_resubmission_repopulates_fresh_rows(self, tmp_path,
                                                 tiny_artifact):
        path = tmp_path / "results.db"

        # Era F1: the service runs the artifact and stores everything.
        store1 = ResultStore(path, code="F1")
        queue1 = JobQueue(store1, workers=1)
        job1 = queue1.submit({"artifact": "svc-tiny"})
        queue1.wait(job1.job_id, timeout=60)
        assert job1.state == "done" and not job1.cached
        payload1 = queue1.result(job1.job_id)
        queue1.shutdown()
        store1.close()

        # Era F2: the same submission is NOT a cache hit — it re-runs.
        store2 = ResultStore(path, code="F2")
        refresh_staleness(store2)
        queue2 = JobQueue(store2, workers=1)
        job2 = queue2.submit({"artifact": "svc-tiny"})
        queue2.wait(job2.job_id, timeout=60)
        assert job2.state == "done" and not job2.cached
        payload2 = queue2.result(job2.job_id)
        assert payload2 == payload1  # same code result; fresh rows

        # Fresh rows live alongside the flagged historical ones.
        table = store2.query(
            "SELECT code_fingerprint, stale, count(*) FROM points"
            " GROUP BY code_fingerprint, stale"
            " ORDER BY code_fingerprint")
        assert table["rows"] == [["F1", 1, 3], ["F2", 0, 3]]

        # And a repeat in era F2 is a cache hit again.
        job3 = queue2.submit({"artifact": "svc-tiny"})
        queue2.wait(job3.job_id, timeout=60)
        assert job3.cached
        queue2.shutdown()
        store2.close()

    def test_historical_rows_stay_queryable(self, tmp_path):
        path = tmp_path / "results.db"
        for era in ("F1", "F2", "F3"):
            store = ResultStore(path, code=era)
            refresh_staleness(store)
            store.put(_point(1), {"era": era})
            store.close()
        final = ResultStore(path, code="F3")
        table = final.query(
            "SELECT code_fingerprint, stale FROM points"
            " ORDER BY code_fingerprint")
        assert table["rows"] == [["F1", 1], ["F2", 1], ["F3", 0]]
        # Cross-era archaeology is plain SQL.
        eras = final.query(
            "SELECT count(DISTINCT code_fingerprint) FROM points")
        assert eras["rows"] == [[3]]
        final.close()


class TestServerStartupFlagging:
    def test_health_reports_staleness(self, tmp_path, tiny_artifact):
        from repro.serve.client import ServiceClient
        from repro.serve.server import make_server, serve_in_thread

        path = tmp_path / "results.db"
        old = ResultStore(path, code="F1")
        old.put(_point(1), {"era": "F1"})
        old.close()

        store = ResultStore(path, code="F2")
        server = make_server(port=0, store=store)
        serve_in_thread(server)
        try:
            health = ServiceClient(server.url).health()
            assert health["staleness"]["code_fingerprint"] == "F2"
            assert health["staleness"]["points_stale"] == 1
            assert health["rows"]["points_stale"] == 1
        finally:
            server.close()
