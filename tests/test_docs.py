"""Docs stay in sync: knob reference freshness and link integrity.

These mirror the CI docs job so drift is caught before a push: the
generated ``docs/KNOBS.md`` must match the source tree, and every local
Markdown link in the repo must resolve.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
TOOLS = ROOT / "tools"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(TOOLS / script), *args],
        capture_output=True, text=True, cwd=ROOT)


def test_knob_reference_is_fresh():
    proc = _run("gen_knob_docs.py", "--check")
    assert proc.returncode == 0, (
        f"docs/KNOBS.md drifted from the source tree:\n{proc.stderr}\n"
        "regenerate with `python tools/gen_knob_docs.py`")


def test_markdown_links_resolve():
    proc = _run("check_markdown_links.py")
    assert proc.returncode == 0, f"broken markdown links:\n{proc.stderr}"


def test_knob_scanner_sees_the_known_knobs():
    sys.path.insert(0, str(TOOLS))
    try:
        import gen_knob_docs
    finally:
        sys.path.pop(0)
    found = gen_knob_docs.scan_env_vars()
    for knob in ("REPRO_FASTPATH", "REPRO_ENGINE", "REPRO_FULL",
                 "REPRO_MC_MATERIALIZE"):
        assert knob in found, f"scanner lost {knob}"
    assert not gen_knob_docs.check_coverage(found)


def test_undocumented_knob_is_flagged():
    sys.path.insert(0, str(TOOLS))
    try:
        import gen_knob_docs
    finally:
        sys.path.pop(0)
    found = dict(gen_knob_docs.scan_env_vars())
    found["REPRO_NOT_A_REAL_KNOB"] = ["src/repro/nowhere.py"]
    problems = gen_knob_docs.check_coverage(found)
    assert any("REPRO_NOT_A_REAL_KNOB" in p for p in problems)
