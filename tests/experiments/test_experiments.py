"""Shape tests for the experiment harnesses (paper claims, scaled down)."""

import pytest

from repro.experiments import (
    fig02_breakdown,
    fig08_latency_profile,
    fig10_rowclone_noflush,
    fig11_rowclone_clflush,
    fig12_trcd_heatmap,
    fig13_trcd_speedup,
    fig14_sim_speed,
    fig15_channel_scaling,
    fig16_core_contention,
    fig17_scheduler_frontier,
    sec6_validation,
    tab01_platforms,
)


class TestValidation:
    def test_small_sweep_error_below_paper_max(self):
        result = sec6_validation.run(
            kernels=["gemm", "trisolv", "durbin"], size="mini")
        assert result["avg_exec_error_pct"] < 0.5
        assert result["max_exec_error_pct"] < 1.0   # paper's max bound

    def test_report_renders(self):
        result = sec6_validation.run(kernels=["gemm"], size="mini")
        text = sec6_validation.report(result)
        assert "time scaling" in text


class TestFig02:
    def test_time_scaling_restores_real_proportions(self):
        result = fig02_breakdown.run(accesses=1200)
        details = result["details"]
        real = details["Real system"]
        ts = details["FPGA + software MC + Time Scaling"]
        sw = details["FPGA + software MC"]
        # TS total within 10% of the real system.
        ratio = ts.emulated_ps / real.emulated_ps
        assert 0.9 < ratio < 1.1
        # The bare software MC inflates execution by >2x.
        assert sw.emulated_ps > 2 * real.emulated_ps

    def test_software_mc_is_scheduling_dominated(self):
        result = fig02_breakdown.run(accesses=800)
        sw = result["details"]["FPGA + software MC"]
        assert sw.breakdown.scheduling_ps > sw.breakdown.main_memory_ps


class TestFig08:
    def test_latency_profile_shape(self):
        result = fig08_latency_profile.run(
            sizes_kib=(16, 256, 8192), max_accesses=3000)
        series = result["series"]
        no_ts = series["EasyDRAM - No Time Scaling"]
        ts = series["EasyDRAM - Time Scaling"]
        a57 = series["Cortex A57"]
        # Latency grows with working-set size for every config.
        assert ts[0] < ts[-1]
        # In the DRAM region No-TS is far below the real system (>3x).
        assert a57[-1] > 3 * no_ts[-1]
        # Time scaling tracks the A57 out in DRAM (their L2 sizes
        # differ — 512 KiB vs 2 MiB — so a 25% band is the right check).
        assert abs(ts[-1] - a57[-1]) / a57[-1] < 0.25


class TestFig10And11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_rowclone_noflush.run(sizes=(8 * 1024, 64 * 1024))

    def test_no_ts_overstates_rowclone(self, result):
        copy = result["copy_geomean"]
        skew = (copy["EasyDRAM - No Time Scaling"]
                / copy["EasyDRAM - Time Scaling"])
        assert skew > 5  # paper: ~20x

    def test_everyone_wins_on_copy(self, result):
        for name, value in result["copy_geomean"].items():
            assert value > 1, name

    def test_ramulator_between_extremes_on_copy(self, result):
        copy = result["copy_geomean"]
        assert (copy["EasyDRAM - Time Scaling"]
                < copy["Ramulator 2.0"] * 3)  # same order as TS
        assert (copy["Ramulator 2.0"]
                < copy["EasyDRAM - No Time Scaling"])

    def test_init_gains_below_copy_gains(self, result):
        for name in ("EasyDRAM - No Time Scaling", "EasyDRAM - Time Scaling"):
            assert result["init_geomean"][name] < result["copy_geomean"][name]

    def test_clflush_compresses_copy_speedups(self, result):
        clflush = fig11_rowclone_clflush.run(sizes=(8 * 1024, 64 * 1024))
        ts_noflush = result["copy_geomean"]["EasyDRAM - Time Scaling"]
        ts_clflush = clflush["copy_geomean"]["EasyDRAM - Time Scaling"]
        assert ts_clflush < ts_noflush

    def test_clflush_init_degrades_at_small_sizes(self):
        clflush = fig11_rowclone_clflush.run(sizes=(8 * 1024,))
        ts = clflush["init"]["EasyDRAM - Time Scaling"][0]
        assert ts < 1.5  # paper: degradation at small sizes

    def test_report_renders(self, result):
        text = fig10_rowclone_noflush.report(result)
        assert "geomean" in text and "copy" in text


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_trcd_heatmap.run(banks=2, rows=512,
                                      emulated_sample_rows=4)

    def test_strong_fraction_near_paper(self, result):
        assert 0.6 < result["strong_fraction"] < 0.98

    def test_emulated_path_agrees_with_oracle(self, result):
        assert result["emulated_sample_mismatches"] == 0

    def test_heatmap_dimensions(self, result):
        grid = result["heatmaps"][0]
        assert len(grid) == 512 // 64

    def test_report_renders(self, result):
        text = fig12_trcd_heatmap.report(result)
        assert "84.5%" in text


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_trcd_speedup.run(
            kernels=("gemver", "trisolv", "durbin"), size="mini")

    def test_geomean_gain_in_paper_band(self, result):
        """Single-digit average improvement (paper: +2.75%)."""
        assert 1.0 <= result["easydram_geomean"] < 1.12

    def test_no_workload_pathologically_degrades(self, result):
        assert all(s > 0.97 for s in result["easydram"])

    def test_ramulator_also_gains(self, result):
        assert result["ramulator_geomean"] >= 0.99

    def test_report_renders(self, result):
        assert "tRCD" in fig13_trcd_speedup.report(result)


class TestFig14:
    def test_easydram_faster_than_baseline(self):
        result = fig14_sim_speed.run(kernels=("durbin", "gemver"),
                                     size="mini")
        assert result["mean_ratio"] > 1.0

    def test_low_intensity_widen_gap(self):
        # durbin (compute-bound) gains at least as much as gemver.  The
        # ratios are host wall-clock rates, so one sample can be skewed
        # by transient load on one leg; take the best of a few runs
        # before judging the shape.
        ratios = {}
        for _ in range(3):
            result = fig14_sim_speed.run(kernels=("durbin", "gemver"),
                                         size="mini")
            ratios = dict(zip(result["kernels"], result["speed_ratios"]))
            if ratios["durbin"] >= 0.8 * ratios["gemver"]:
                return
        assert ratios["durbin"] >= 0.8 * ratios["gemver"]


class TestFig15:
    @pytest.fixture(scope="class")
    def result(self):
        return fig15_channel_scaling.run(total_lines=4096)

    def test_throughput_scales_with_channels(self, result):
        assert result["channels"] == [1, 2, 4]
        assert result["monotonic"]
        gbps = result["gbps"]
        assert gbps[1] > 1.3 * gbps[0]     # 2ch meaningfully beats 1ch
        assert gbps[2] > gbps[1]

    def test_interleave_balances_channels(self, result):
        for counts in result["requests_per_channel"].values():
            assert min(counts) > 0.8 * max(counts)

    def test_report_renders(self, result):
        text = fig15_channel_scaling.report(result)
        assert "channel count" in text
        assert "monotonically" in text


class TestFig16:
    @pytest.fixture(scope="class")
    def result(self):
        return fig16_core_contention.run()

    def test_slowdown_monotone_in_core_count(self, result):
        assert result["core_counts"] == [1, 2, 4]
        assert all(result["slowdown_monotonic"].values())
        for sched in result["schedulers"]:
            curve = result["avg_slowdowns"][sched]
            assert curve[0] == pytest.approx(1.0)   # solo run is the run
            assert curve[-1] > 1.5                   # 4 cores really contend

    def test_frfcfs_beats_fcfs_on_row_hits(self, result):
        assert result["frfcfs_hit_rate_wins"]

    def test_latency_sensitive_cores_are_the_victims(self, result):
        detail = result["details"]["4core-fr-fcfs"]
        per_core = dict(zip(detail["mix"], detail["slowdowns"]))
        # The MLP-less chase suffers more than the bandwidth streams,
        # and the store stream (writebacks deprioritized behind reads)
        # is the overall victim — so contention is genuinely unfair.
        assert per_core["pointer_chase"] > per_core["stream"]
        assert detail["unfairness"] > 1.2

    def test_report_renders(self, result):
        text = fig16_core_contention.report(result)
        assert "slowdown monotone" in text
        assert "FR-FCFS row-hit rate >= FCFS" in text


@pytest.mark.slow  # the 20-point frontier sweep dominates this file (~28 s)
class TestFig17:
    @pytest.fixture(scope="class")
    def result(self):
        return fig17_scheduler_frontier.run()

    def test_grid_is_complete(self, result):
        assert len(result["rows"]) == 20          # 5 sched x 2 mix x 2 topo
        assert result["schedulers"] == ["atlas", "batch", "bliss", "fcfs",
                                        "fr-fcfs"]
        assert len(result["groups"]) == 4

    def test_every_group_has_a_frontier(self, result):
        for key in result["groups"]:
            frontier = result["frontiers"][key]
            assert frontier, f"{key} has an empty frontier"
            assert set(frontier) <= set(result["schedulers"])

    def test_frontier_points_are_non_dominated(self, result):
        eps = fig17_scheduler_frontier.EPS
        for key in result["groups"]:
            members = {s: (result["weighted_speedup"][f"{key}/{s}"],
                           result["max_slowdown"][f"{key}/{s}"])
                       for s in result["schedulers"]}
            for winner in result["frontiers"][key]:
                ws_w, sd_w = members[winner]
                for other, (ws_o, sd_o) in members.items():
                    if other == winner:
                        continue
                    dominated = (ws_o >= ws_w - eps and sd_o <= sd_w + eps
                                 and (ws_o > ws_w + eps or sd_o < sd_w - eps))
                    assert not dominated, (key, winner, other)

    def test_paper_default_lands_on_a_frontier(self, result):
        assert result["frfcfs_on_frontier"]
        assert result["frfcfs_frontier_groups"]

    def test_fairness_aware_policies_trade_on_single_channel(self, result):
        # On the contended single-channel groups, the attained-service
        # ranking both raises throughput and lowers the worst slowdown.
        for mix in ("copy-init-chase", "copy-chase"):
            key = f"ddr4-1ch/{mix}"
            assert "atlas" in result["frontiers"][key]
            ws = result["weighted_speedup"]
            sd = result["max_slowdown"]
            assert ws[f"{key}/atlas"] > ws[f"{key}/fr-fcfs"]
            assert sd[f"{key}/atlas"] < sd[f"{key}/fr-fcfs"]

    def test_metrics_are_sane(self, result):
        for point in result["details"].values():
            assert 0.0 < point["weighted_speedup"] <= point["cores"]
            assert point["max_slowdown"] >= 1.0
            assert point["unfairness"] >= 1.0
            assert len(point["slowdowns"]) == point["cores"]

    def test_report_renders(self, result):
        text = fig17_scheduler_frontier.report(result)
        assert "scheduler frontier" in text
        assert "frontier =" in text
        assert "fr-fcfs is on the frontier" in text


class TestTab01:
    def test_table_rows_and_rates(self):
        result = tab01_platforms.run(kernel="gemm", size="mini")
        assert len(result["rows"]) == 6
        assert result["easydram_fpga_rate_hz"] > 1e6  # ~10M paper target
        text = tab01_platforms.report(result)
        assert "EasyDRAM (this work)" in text
