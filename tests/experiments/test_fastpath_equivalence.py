"""Every experiment artifact is bit-identical with the fast path on/off.

``REPRO_FASTPATH=0`` reproduces the PR 2 object pipeline (per-access
processing, staged programs, object-based timing checks); ``1`` enables
the array-native frontend, flat timing state, and program pooling.  The
fast path is a pure host-time optimization, so each artifact's result
dict must not change by a single bit.  Sweeps run at the smallest
meaningful scale — the shared machinery is identical at any size.

fig14 is the exception by construction: it reports *host* simulation
rates, which legitimately change with the fast path; its equivalence is
pinned on the underlying emulated run instead.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.experiments import (
    ablations,
    fig02_breakdown,
    fig08_latency_profile,
    fig10_rowclone_noflush,
    fig11_rowclone_clflush,
    fig12_trcd_heatmap,
    fig13_trcd_speedup,
    sec6_validation,
    tab01_platforms,
)
from repro.workloads import polybench

# The full artifact-by-artifact sweep is the single heaviest suite in
# the tree (~35 s); it runs on CI's dedicated `slow` leg.
pytestmark = pytest.mark.slow


def _strip_fig02_wall(result):
    # ``details`` embeds full RunResults; wall_seconds is host time.
    details = {}
    for name, run in result["details"].items():
        run = dataclasses.asdict(run)
        run.pop("wall_seconds")
        details[name] = run
    return result | {"details": details}


def _strip_tab01_rates(result):
    # The baseline simulator's cycles/s is measured on this host.
    stripped = {k: v for k, v in result.items()
                if k not in ("ramulator_rate_hz", "rows")}
    stripped["rows"] = [
        tuple("host-rate" if "measured, this host" in str(cell) else cell
              for cell in row)
        for row in result["rows"]]
    return stripped


def run_both(monkeypatch, fn, *args, **kwargs):
    """The artifact under all three serve paths.

    Returns (slow, fast, kernel): the object pipeline, the flat
    closures with the batch kernel disabled, and the batch kernel at
    its knob default.  Callers normalize all three the same way before
    asserting equality.
    """
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    slow = fn(*args, **kwargs)
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    monkeypatch.setenv("REPRO_KERNEL", "0")
    fast = fn(*args, **kwargs)
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    kernel = fn(*args, **kwargs)
    return slow, fast, kernel


@pytest.mark.parametrize("name,call,normalize", [
    ("fig02", lambda: fig02_breakdown.run(accesses=800), _strip_fig02_wall),
    ("fig08", lambda: fig08_latency_profile.run(
        sizes_kib=(16, 1024), max_accesses=1500), None),
    ("fig10", lambda: fig10_rowclone_noflush.run(sizes=(8 * 1024, 64 * 1024)),
     None),
    ("fig11", lambda: fig11_rowclone_clflush.run(sizes=(8 * 1024, 64 * 1024)),
     None),
    ("fig12", lambda: fig12_trcd_heatmap.run(banks=1, rows=48), None),
    ("fig13", lambda: fig13_trcd_speedup.run(
        kernels=("trisolv",), size="mini"), None),
    ("tab01", lambda: tab01_platforms.run(kernel="durbin", size="mini"),
     _strip_tab01_rates),
    ("sec6", lambda: sec6_validation.run(kernels=["durbin"], size="mini"),
     None),
    ("ablations", lambda: ablations.run(), None),
])
def test_artifact_bit_identical(monkeypatch, name, call, normalize):
    slow, fast, kernel = run_both(monkeypatch, call)
    if normalize is not None:
        slow, fast, kernel = normalize(slow), normalize(fast), \
            normalize(kernel)
    assert slow == fast, f"{name}: fast path changed the artifact"
    assert fast == kernel, f"{name}: batch kernel changed the artifact"


def test_fig15_emulated_quantities_bit_identical(monkeypatch):
    """fig15's emulated columns (not its host-MHz axis) match.

    Multi-channel topologies must honor the same contract as the paper's
    single-channel system: the fast path only changes host time.
    """
    from repro.experiments import fig15_channel_scaling

    def emulated():
        result = fig15_channel_scaling.run(total_lines=2048)
        return {
            "channels": result["channels"],
            "gbps": result["gbps"],
            "speedups": result["speedups"],
            "requests_per_channel": result["requests_per_channel"],
            "monotonic": result["monotonic"],
        }

    slow, fast, kernel = run_both(monkeypatch, emulated)
    assert slow == fast == kernel


def test_fig17_bit_identical_across_fastpath_and_engines(monkeypatch):
    """fig17 (scheduler frontier) is a pure emulated artifact.

    A reduced grid — two schedulers (one stateful), one mix, one
    topology — runs under fastpath off/on and both engines; the result
    dict must not change by a single bit, proving the stateful-scheduler
    select-once contract holds on every serve path.
    """
    from repro.experiments import fig17_scheduler_frontier

    def reduced():
        return fig17_scheduler_frontier.run(
            schedulers=("fr-fcfs", "atlas"), mixes=("copy-chase",),
            topologies=("ddr4-1ch",))

    slow, fast, kernel = run_both(monkeypatch, reduced)
    assert slow == fast == kernel
    monkeypatch.setenv("REPRO_ENGINE", "cycle")
    assert reduced() == fast
    monkeypatch.setenv("REPRO_ENGINE", "event")
    assert reduced() == fast


def test_fig14_emulated_run_bit_identical(monkeypatch):
    """fig14's emulated quantities (not its wall-clock rates) match."""
    def emulated(kernel="durbin"):
        results = []
        for engine in ("event", "cycle"):
            system = EasyDRAMSystem(jetson_nano_time_scaling(), engine=engine)
            run = system.run(polybench.trace_blocks(kernel, "mini"), kernel)
            result = dataclasses.asdict(run)
            result.pop("wall_seconds")
            result.pop("estimated_fpga_seconds", None)
            results.append(result)
        assert results[0] == results[1]  # engines agree at this setting too
        return results[0]

    slow, fast, kernel = run_both(monkeypatch, emulated)
    assert slow == fast == kernel
