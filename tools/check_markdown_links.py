#!/usr/bin/env python3
"""Verify that relative links in the repo's Markdown files resolve.

Scans every ``*.md`` file (excluding caches and results) for inline
``[text](target)`` links and checks that each *local* target exists
relative to the file that references it.  External links (``http(s)://``,
``mailto:``) and pure in-page anchors are skipped — CI should not fail
on somebody else's outage — but a local target's ``#anchor`` suffix is
stripped before the existence check.

Exit status: 0 when every local link resolves, 1 otherwise (with one
line per broken link).  Used by the ``docs`` CI job so the architecture
and experiment docs cannot rot silently; run locally with
``python tools/check_markdown_links.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SKIP_DIRS = {".git", ".repro-cache", "results", "__pycache__", ".ruff_cache"}

#: Scraped reference dumps (paper/related-work text with figure links
#: that only existed in the original PDFs) — not docs we maintain.
SKIP_FILES = {"PAPERS.md", "SNIPPETS.md", "PAPER.md"}

#: Inline Markdown links; deliberately simple — our docs do not use
#: reference-style links or angle-bracket targets.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files(root: Path) -> list[Path]:
    """Every Markdown file under ``root``, skipping caches and results."""
    return [
        path for path in sorted(root.rglob("*.md"))
        if not (set(path.relative_to(root).parts[:-1]) & SKIP_DIRS)
        and path.name not in SKIP_FILES
    ]


def broken_links(path: Path, root: Path) -> list[str]:
    """Local link targets in ``path`` that do not exist."""
    problems = []
    for target in LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):  # in-page anchor
            continue
        local = target.split("#", 1)[0]
        resolved = (path.parent / local).resolve()
        if not resolved.exists():
            problems.append(
                f"{path.relative_to(root)}: broken link -> {target}")
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    problems: list[str] = []
    files = markdown_files(root)
    for path in files:
        problems.extend(broken_links(path, root))
    for line in problems:
        print(line, file=sys.stderr)
    print(f"checked {len(files)} markdown files:"
          f" {len(problems)} broken local links")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
