#!/usr/bin/env python3
"""End-to-end smoke of the `repro serve` service for CI.

Boots a real `repro serve` subprocess on an ephemeral port, then — via
the same HTTP surface the CLI verbs use — submits the same artifact
twice, asserts the second response is a store cache hit carrying a
payload bit-identical (``payloads_equal``) to the first, and runs one
SQL assertion through `/query`.  Exit status 0 means the service
contract held end to end.

Usage::

    python tools/service_smoke.py [--artifact fig02] [--overrides JSON]
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))

#: CI-scale defaults: a real paper artifact, shrunk to run in seconds.
DEFAULT_ARTIFACT = "fig02"
DEFAULT_OVERRIDES = {"accesses": 2000, "working_set": 262144}


def _payloads_equal():
    spec = importlib.util.spec_from_file_location(
        "compare_results_for_smoke",
        os.path.join(ROOT, "tools", "compare_results.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.payloads_equal


def _request(url: str, body: dict | None = None, timeout: float = 300.0):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _wait_for_health(base: str, deadline: float = 60.0) -> dict:
    start = time.monotonic()
    while True:
        try:
            return _request(f"{base}/health", timeout=5.0)
        except (urllib.error.URLError, ConnectionError, OSError):
            if time.monotonic() - start > deadline:
                raise SystemExit(
                    f"service at {base} never became healthy") from None
            time.sleep(0.25)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact", default=DEFAULT_ARTIFACT)
    parser.add_argument("--overrides", default=None,
                        help="JSON overrides (default: CI-scale preset)")
    parser.add_argument("--port", type=int, default=18642)
    args = parser.parse_args(argv)
    overrides = (json.loads(args.overrides) if args.overrides
                 else DEFAULT_OVERRIDES)
    payloads_equal = _payloads_equal()

    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        store = os.path.join(tmp, "results.db")
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", str(args.port), "--store", store],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        base = f"http://127.0.0.1:{args.port}"
        try:
            health = _wait_for_health(base)
            print(f"service up: backend={health['backend']}"
                  f" workers={health['workers']}")

            body = {"artifact": args.artifact, "overrides": overrides,
                    "wait": 300}
            first = _request(f"{base}/submit", body)
            assert first["state"] == "done", first
            assert not first["cached"], "first submission must execute"
            print(f"first submit:  {first['job_id']} executed"
                  f" (fingerprint {first['fingerprint']})")

            second = _request(f"{base}/submit", body)
            assert second["state"] == "done", second
            assert second["cached"], \
                "second identical submission must be a store cache hit"
            assert second["fingerprint"] == first["fingerprint"]
            assert payloads_equal(second["result"], first["result"]), \
                "cached payload differs from the executed one"
            print(f"second submit: {second['job_id']} store cache hit,"
                  " payload bit-identical")

            table = _request(f"{base}/query", {
                "sql": "SELECT artifact, count(*) AS points FROM points"
                       " WHERE stale = 0 GROUP BY artifact"})
            assert table["columns"] == ["artifact", "points"], table
            assert len(table["rows"]) == 1, table
            row_artifact, points = table["rows"][0]
            assert row_artifact == args.artifact, table
            assert points > 0, "no point rows landed in the store"
            print(f"query: {points} point row(s) stored for"
                  f" {row_artifact}")

            stats = _request(f"{base}/health")["queue"]
            assert stats["executed"] == 1 and stats["cached"] == 1, stats
            print("service smoke OK")
            return 0
        finally:
            server.terminate()
            try:
                output = server.communicate(timeout=10)[0]
            except subprocess.TimeoutExpired:
                server.kill()
                output = server.communicate()[0]
            if output:
                print("--- server log ---")
                print(output.rstrip())


if __name__ == "__main__":
    raise SystemExit(main())
