#!/usr/bin/env python3
"""Assert two ``repro run --format json`` output trees are bit-identical.

The ``sweep-shards`` CI matrix proves the sharding contract with this
tool: after the shard jobs fill a shared cache, the merge job combines
artifacts twice — once from the merged cache, once fresh with
``--no-cache`` — and the two result payloads must match exactly.  Only
the ``result`` key of each artifact file is compared: the surrounding
manifest fields (seconds, cache_hits) legitimately differ between a
cached and a cold run.

Usage::

    python tools/compare_results.py DIR_A DIR_B
    python tools/compare_results.py --assert-all-cached DIR

``--assert-all-cached`` instead checks a single run's ``manifest.json``:
every artifact must have combined (not partial) with every point served
from the cache — the merge job runs it first, so a missing shard upload
fails loudly instead of silently recomputing.
"""

from __future__ import annotations

import argparse
import json
import struct
import sys
from pathlib import Path

_SKIP_PREFIXES = ("manifest", "shard-")


def payloads_equal(a, b) -> bool:
    """Bit-identity for JSON-normalized result payloads.

    Stricter than ``==`` on types (``1`` and ``1.0`` differ, as do
    ``True`` and ``1``) and float bits (``-0.0 != 0.0``), but NaN
    compares equal to itself — plain ``==`` would call two genuinely
    identical payloads different the moment a sweep emits a NaN, which
    is exactly when a comparison tool must not cry wolf.
    """
    if type(a) is not type(b):
        return False
    if isinstance(a, float):
        return struct.pack("<d", a) == struct.pack("<d", b)
    if isinstance(a, list):
        return len(a) == len(b) and all(
            payloads_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(
            payloads_equal(value, b[key]) for key, value in a.items())
    return a == b


def artifact_files(directory: Path) -> dict[str, Path]:
    return {path.name: path for path in sorted(directory.glob("*.json"))
            if not path.name.startswith(_SKIP_PREFIXES)}


def compare(dir_a: Path, dir_b: Path) -> list[str]:
    files_a, files_b = artifact_files(dir_a), artifact_files(dir_b)
    problems = []
    for name in sorted(set(files_a) ^ set(files_b)):
        where = dir_a if name in files_a else dir_b
        problems.append(f"{name}: only present under {where}")
    for name in sorted(set(files_a) & set(files_b)):
        payload_a = json.loads(files_a[name].read_text())
        payload_b = json.loads(files_b[name].read_text())
        if not payloads_equal(payload_a.get("result"),
                              payload_b.get("result")):
            problems.append(f"{name}: result payloads differ")
    return problems


def assert_all_cached(directory: Path) -> list[str]:
    manifest = directory / "manifest.json"
    if not manifest.is_file():
        return [f"{manifest}: not found (run with --format json)"]
    entries = json.loads(manifest.read_text()).get("artifacts", [])
    if not entries:
        return [f"{manifest}: no artifacts recorded"]
    problems = []
    for entry in entries:
        name = entry.get("artifact", "?")
        if not entry.get("ok"):
            problems.append(f"{name}: run failed")
        elif entry.get("partial"):
            problems.append(f"{name}: partial run (no combine)")
        elif entry.get("cache_hits") != entry.get("points"):
            problems.append(
                f"{name}: only {entry.get('cache_hits')} of"
                f" {entry.get('points')} points came from the cache —"
                " a shard's partials are missing")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("dirs", nargs="+", metavar="DIR",
                        help="one dir with --assert-all-cached, else two")
    parser.add_argument("--assert-all-cached", action="store_true",
                        help="check DIR's manifest.json instead of"
                             " comparing two trees")
    args = parser.parse_args(argv)
    if args.assert_all_cached:
        if len(args.dirs) != 1:
            parser.error("--assert-all-cached takes exactly one DIR")
        problems = assert_all_cached(Path(args.dirs[0]))
    else:
        if len(args.dirs) != 2:
            parser.error("comparison takes exactly two DIRs")
        problems = compare(Path(args.dirs[0]), Path(args.dirs[1]))
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if problems:
        return 1
    print("all-cached manifest OK" if args.assert_all_cached
          else "result payloads are bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
