#!/usr/bin/env python3
"""Generate ``docs/KNOBS.md``: every ``REPRO_*`` knob and ``repro`` flag.

Two sources, neither hand-maintained in the doc itself:

* **Environment variables** are discovered by scanning ``src/repro`` for
  ``os.environ`` reads of ``REPRO_*`` names.  Each discovered variable
  must have a curated entry in :data:`ENV_DOCS` below — a new knob
  without one (or a stale entry whose knob disappeared from the source)
  fails the run, so the reference cannot drift silently.
* **CLI flags** come from the ``repro`` argparse parser itself
  (:func:`repro.runner.cli._parser`); the help strings *are* the
  documentation, so this section can never disagree with ``--help``.

Usage::

    python tools/gen_knob_docs.py            # rewrite docs/KNOBS.md
    python tools/gen_knob_docs.py --check    # fail if KNOBS.md is stale

``--check`` runs in the docs CI job next to the markdown link checker.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
OUT = ROOT / "docs" / "KNOBS.md"

#: Curated default + one-line effect per environment variable.  The
#: scanner enforces that this dict and the source tree agree exactly.
ENV_DOCS: dict[str, tuple[str, str]] = {
    "REPRO_BLOCK_SIZE": (
        "4096",
        "Accesses per workload `AccessBlock` chunk on the fast path; any"
        " positive value produces the same emulation."),
    "REPRO_CACHE_DIR": (
        "`.repro-cache/`",
        "Sweep-point result cache root used by `repro run` (keyed on"
        " parameters + source fingerprint)."),
    "REPRO_CC": (
        "`cc`/`gcc`/`clang` probe",
        "C compiler used to build the batch serve kernel; unset probes"
        " `cc`, `gcc`, `clang` in order.  No compiler means the kernel"
        " disengages (bit-identical fallback)."),
    "REPRO_ENGINE": (
        "`event`",
        "Emulation engine: `event` (skip-ahead, >=2x faster) or `cycle`"
        " (the reference); results are bit-identical either way."),
    "REPRO_FASTPATH": (
        "on",
        "`0` disables the array-native fast path (block traces, blocked"
        " cache, flat timing-state, plan memoization) and reproduces the"
        " object pipeline — bit-identical artifacts, ~3x slower."),
    "REPRO_FULL": (
        "off",
        "`1` switches every sweep to paper-scale problem sizes (slow);"
        " same as `repro run --full`."),
    "REPRO_JOBS": (
        "1",
        "Default worker-process count for `repro run` sweeps (same as"
        " `--jobs`)."),
    "REPRO_KERNEL": (
        "`auto`",
        "Batch serve kernel: `auto` compiles the C inner loop (whole"
        " critical-mode batches in one call), `0` disables it, `py`"
        " forces the pure-Python mirror, `c` requires the compiled"
        " backend.  Artifacts are bit-identical in every mode."),
    "REPRO_PREFETCH": (
        "off",
        "Stream prefetcher at every core boundary: `1` enables the"
        " defaults, `degree:distance` (e.g. `4:8`) tunes the window;"
        " prefetches are tagged and excluded from demand attribution."),
    "REPRO_MC_MATERIALIZE": (
        "on",
        "`0` stops multi-core workload mixes from materializing each"
        " workload's blocks once for reuse across the solo-baseline and"
        " contended runs; results are identical either way."),
    "REPRO_RESULTS_DIR": (
        "`results/`",
        "Default `--out` directory for `repro run --format json|csv`."),
    "REPRO_SCHEDULER": (
        "config (`fr-fcfs`)",
        "Overrides the controller's scheduling policy at construction:"
        " `atlas`, `batch`, `bliss`, `fcfs`, or `fr-fcfs` (see"
        " `repro.core.schedulers.SCHEDULERS`)."),
    "REPRO_SERVE_BACKEND": (
        "`auto`",
        "SQL backend for the `repro serve` result store: `auto` uses"
        " duckdb when installed and falls back to stdlib sqlite,"
        " `duckdb`/`sqlite` force one (forcing an unavailable backend"
        " is a startup error)."),
    "REPRO_SERVE_PORT": (
        "8642",
        "TCP port `repro serve` listens on and clients default to"
        " (same as `repro serve --port`)."),
    "REPRO_SERVE_STORE": (
        "`.repro-serve/results.db`",
        "Result-store database file backing `repro serve` (same as"
        " `repro serve --store`); holds every sweep-point row and job"
        " payload, keyed on parameters + source fingerprint."),
    "REPRO_SERVE_URL": (
        "`http://127.0.0.1:8642`",
        "Service base URL the `repro submit` / `repro query` clients"
        " talk to (same as their `--url`)."),
    "REPRO_SERVE_WORKERS": (
        "2",
        "Job-queue worker threads in `repro serve` (same as"
        " `repro serve --workers`); each miss runs its sweep on one"
        " worker, deduped by run fingerprint."),
}

_ENV_READ = re.compile(r"environ[^\n]*?[\"'](REPRO_[A-Z0-9_]+)[\"']")


def scan_env_vars() -> dict[str, list[str]]:
    """``{variable: [repo-relative files that read it]}`` under src/repro."""
    found: dict[str, set[str]] = {}
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in _ENV_READ.finditer(text):
            found.setdefault(match.group(1), set()).add(
                str(path.relative_to(ROOT)))
    return {name: sorted(files) for name, files in sorted(found.items())}


def check_coverage(found: dict[str, list[str]]) -> list[str]:
    """Drift between the scan and :data:`ENV_DOCS` (empty = in sync)."""
    problems = []
    for name in found:
        if name not in ENV_DOCS:
            problems.append(
                f"undocumented environment variable {name} (read by"
                f" {', '.join(found[name])}); add it to ENV_DOCS in"
                f" tools/gen_knob_docs.py")
    for name in ENV_DOCS:
        if name not in found:
            problems.append(
                f"ENV_DOCS documents {name} but nothing under src/repro"
                f" reads it; remove the stale entry")
    return problems


def _flag_rows(parser: argparse.ArgumentParser) -> list[tuple[str, str, str]]:
    rows = []
    for action in parser._actions:
        if not action.option_strings or action.help == argparse.SUPPRESS:
            continue
        flags = ", ".join(f"`{opt}`" for opt in action.option_strings)
        if action.default in (None, False, argparse.SUPPRESS) \
                or action.option_strings == ["-h", "--help"]:
            default = ""
        else:
            default = f"`{action.default}`"
        help_text = (action.help or "").replace("%%", "%")
        rows.append((flags, default, " ".join(help_text.split())))
    return rows


def cli_sections() -> list[tuple[str, list[tuple[str, str, str]]]]:
    """(subcommand, flag rows) for every ``repro`` subcommand.

    The parser is built under a scrubbed environment: some argparse
    defaults are env-derived (``--jobs`` reads ``REPRO_JOBS`` at parser
    construction), and the reference must document the canonical
    defaults — not whatever the generating shell happened to export —
    or ``--check`` would flap on CI/batch hosts.
    """
    import os

    sys.path.insert(0, str(ROOT / "src"))
    from repro.runner.cli import _parser

    scrubbed = {name: os.environ.pop(name) for name in list(os.environ)
                if name.startswith("REPRO_")}
    try:
        parser = _parser()
    finally:
        os.environ.update(scrubbed)
    sections = []
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                sections.append((name, _flag_rows(sub)))
    return sections


def render() -> str:
    found = scan_env_vars()
    problems = check_coverage(found)
    if problems:
        for line in problems:
            print(f"error: {line}", file=sys.stderr)
        raise SystemExit(2)
    lines = [
        "# Knob reference",
        "",
        "<!-- Generated by `python tools/gen_knob_docs.py`; do not edit"
        " by hand. `--check` runs in CI and fails when this file is"
        " stale. -->",
        "",
        "Every environment variable the reproduction reads and every"
        " `repro` CLI flag, in one place. Environment knobs are read when"
        " a component is constructed (system, session, sweep), never per"
        " access, so tests can flip them per system.",
        "",
        "## Environment variables",
        "",
        "| Variable | Default | Effect | Read by |",
        "| --- | --- | --- | --- |",
    ]
    for name, files in found.items():
        default, effect = ENV_DOCS[name]
        readers = ", ".join(f"`{f}`" for f in files)
        lines.append(f"| `{name}` | {default} | {effect} | {readers} |")
    lines += [
        "",
        "## `repro` CLI",
        "",
        "The unified entry point (`repro ...` once installed, or"
        " `python -m repro ...` from a checkout). Flags below are"
        " extracted from the live argparse parser, so they always match"
        " `repro <command> --help`.",
    ]
    for name, rows in cli_sections():
        lines += [
            "",
            f"### `repro {name}`",
            "",
            "| Flag | Default | Effect |",
            "| --- | --- | --- |",
        ]
        for flags, default, help_text in rows:
            lines.append(f"| {flags} | {default} | {help_text} |")
    lines += [
        "",
        "See [EXPERIMENTS.md](EXPERIMENTS.md) for which artifacts honor"
        " which knobs, [TUTORIAL.md](TUTORIAL.md) for a guided tour, and"
        " [ARCHITECTURE.md](ARCHITECTURE.md) for the module map.",
        "",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="verify docs/KNOBS.md matches the source tree; do not write")
    args = parser.parse_args(argv)
    content = render()
    if args.check:
        on_disk = OUT.read_text(encoding="utf-8") if OUT.exists() else ""
        if on_disk != content:
            print("error: docs/KNOBS.md is stale; regenerate it with"
                  " `python tools/gen_knob_docs.py`", file=sys.stderr)
            return 1
        print("docs/KNOBS.md is up to date")
        return 0
    OUT.write_text(content, encoding="utf-8")
    print(f"wrote {OUT.relative_to(ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
