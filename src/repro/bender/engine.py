"""Cycle-exact Bender program execution.

The engine is the model of DRAM Bender's sequencer: it walks a program
instruction by instruction, issuing each DDR command to the device on an
interface clock edge and honouring WAITs exactly as programmed.  It
returns what the real platform returns to the software memory controller:
the captured read data and *the number of cycles the execution took* —
the quantity time scaling converts into emulated processor cycles
(Figure 5, step 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bender.buffers import ReadbackBuffer
from repro.bender.isa import Opcode
from repro.bender.program import BenderProgram
from repro.dram.commands import CommandKind
from repro.dram.device import DramDevice


@dataclass
class ExecResult:
    """What DRAM Bender reports back after running a program."""

    elapsed_ps: int
    interface_cycles: int
    reads: int
    commands_issued: int
    #: Lines captured by RD commands, in program order.
    readback: list[bytes] = field(default_factory=list)
    #: Reliability flag per readback line (False = cell model corrupted it).
    reliable: list[bool] = field(default_factory=list)

    @property
    def all_reliable(self) -> bool:
        """Whether every readback line passed the cell model intact."""
        return all(self.reliable)


class ProgramError(Exception):
    """Malformed Bender program (bad loop nesting, missing END, ...)."""


class BenderEngine:
    """Executes Bender programs against a :class:`DramDevice`."""

    #: Safety valve against runaway programs in user controllers.
    MAX_DYNAMIC_INSTRUCTIONS = 50_000_000

    def __init__(self, device: DramDevice,
                 readback: ReadbackBuffer | None = None) -> None:
        self.device = device
        self.readback = readback if readback is not None else ReadbackBuffer()
        self.programs_run = 0
        self.total_interface_cycles = 0

    def execute(self, program: BenderProgram, start_ps: int = 0) -> ExecResult:
        """Run ``program`` starting at absolute device time ``start_ps``."""
        instructions = program.instructions
        if not instructions:
            return ExecResult(0, 0, 0, 0)
        tck = self.device.timing.tCK
        time_ps = start_ps
        pc = 0
        # Loop stack holds (begin_pc, remaining_iterations).
        loop_stack: list[tuple[int, int]] = []
        readback: list[bytes] = []
        reliable: list[bool] = []
        commands = 0
        reads = 0
        executed = 0
        n = len(instructions)
        while pc < n:
            executed += 1
            if executed > self.MAX_DYNAMIC_INSTRUCTIONS:
                raise ProgramError(
                    "program exceeded the dynamic instruction limit"
                    f" ({self.MAX_DYNAMIC_INSTRUCTIONS}); missing END or"
                    " a runaway loop?")
            ins = instructions[pc]
            if ins.opcode is Opcode.DDR:
                assert ins.command is not None
                result = self.device.issue(ins.command, time_ps)
                commands += 1
                if ins.command.kind is CommandKind.RD:
                    assert result is not None
                    reads += 1
                    readback.append(result.data)
                    reliable.append(result.reliable)
                    self.readback.push(result.data, result.reliable)
                time_ps += tck
            elif ins.opcode is Opcode.WAIT:
                time_ps += ins.operand * tck
            elif ins.opcode is Opcode.LOOP_BEGIN:
                loop_stack.append((pc, ins.operand))
            elif ins.opcode is Opcode.LOOP_END:
                if not loop_stack:
                    raise ProgramError(f"LOOP_END without LOOP_BEGIN at pc={pc}")
                begin_pc, remaining = loop_stack[-1]
                remaining -= 1
                if remaining > 0:
                    loop_stack[-1] = (begin_pc, remaining)
                    pc = begin_pc  # will +1 below, landing on loop body
                else:
                    loop_stack.pop()
            elif ins.opcode is Opcode.END:
                break
            pc += 1
        else:
            raise ProgramError("program ran off the end without END")
        if loop_stack:
            raise ProgramError("program ended with an unclosed loop")
        elapsed = time_ps - start_ps
        cycles = -(-elapsed // tck) if elapsed else 0
        self.programs_run += 1
        self.total_interface_cycles += cycles
        return ExecResult(
            elapsed_ps=elapsed,
            interface_cycles=cycles,
            reads=reads,
            commands_issued=commands,
            readback=readback,
            reliable=reliable,
        )
