"""EasyTile hardware buffers around DRAM Bender.

The paper's EasyTile (Section 5.1) places a *command buffer* between the
programmable core and DRAM Bender — DRAM commands accumulate there and
execute as a timing-preserving batch — and a *readback buffer* that holds
data returned by RD commands until the core consumes it.

Both are modeled as bounded FIFOs; capacity limits matter because the
software memory controller must flush before overflowing, which is a
real constraint users of the platform hit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.bender.isa import Instruction


class BufferOverflow(Exception):
    """A bounded hardware buffer was pushed beyond its capacity."""


@dataclass
class CommandBuffer:
    """Bounded staging FIFO for Bender instructions (EasyTile part 7)."""

    capacity: int = 8192
    _items: deque = field(default_factory=deque)

    def push(self, instruction: Instruction) -> None:
        """Stage one instruction; raises :class:`BufferOverflow` when full."""
        if len(self._items) >= self.capacity:
            raise BufferOverflow(
                f"command buffer full ({self.capacity} instructions);"
                " flush_commands() before queueing more")
        self._items.append(instruction)

    def drain(self) -> list[Instruction]:
        """Remove and return all staged instructions in order."""
        out = list(self._items)
        self._items.clear()
        return out

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        """Whether no instructions are staged."""
        return not self._items


@dataclass
class ReadbackBuffer:
    """Bounded FIFO of cache lines returned by RD commands (part 8)."""

    capacity: int = 4096
    _lines: deque = field(default_factory=deque)

    def push(self, line: bytes, reliable: bool) -> None:
        """Capture one RD line plus its cell-model reliability flag."""
        if len(self._lines) >= self.capacity:
            raise BufferOverflow(
                f"readback buffer full ({self.capacity} lines)")
        self._lines.append((line, reliable))

    def pop(self) -> tuple[bytes, bool]:
        """Pop the oldest captured line and its reliability flag."""
        if not self._lines:
            raise IndexError("readback buffer is empty")
        return self._lines.popleft()

    def pop_line(self) -> bytes:
        """Pop and return only the data (common case)."""
        return self.pop()[0]

    def clear(self) -> None:
        """Discard every captured line."""
        self._lines.clear()

    def __len__(self) -> int:
        return len(self._lines)

    @property
    def empty(self) -> bool:
        """Whether no captured lines are waiting."""
        return not self._lines
