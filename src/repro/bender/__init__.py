"""DRAM Bender substrate: ISA, program builder, buffers, and the engine.

EasyDRAM reuses DRAM Bender to execute DRAM command batches with exact
timing (Section 4.2).  This package is our model of that sequencer; the
software memory controller interacts with it only through
:class:`~repro.bender.program.BenderProgram` and
:class:`~repro.bender.engine.BenderEngine`.
"""

from repro.bender.buffers import BufferOverflow, CommandBuffer, ReadbackBuffer
from repro.bender.engine import BenderEngine, ExecResult, ProgramError
from repro.bender.isa import Instruction, Opcode, ddr, end, loop_begin, loop_end, wait
from repro.bender.program import BenderProgram

__all__ = [
    "BenderEngine",
    "BenderProgram",
    "BufferOverflow",
    "CommandBuffer",
    "ExecResult",
    "Instruction",
    "Opcode",
    "ProgramError",
    "ReadbackBuffer",
    "ddr",
    "end",
    "loop_begin",
    "loop_end",
    "wait",
]
