"""DRAM Bender instruction set.

DRAM Bender (Olgun et al., TCAD 2023) is the FPGA command sequencer that
EasyDRAM reuses to issue DRAM commands with cycle-exact spacing.  The
software memory controller never touches the DDRx interface directly: it
assembles a *program* of Bender instructions and hands it to the engine.

The subset modeled here covers everything the paper's case studies need:

``DDR``    issue one DRAM command (ACT/PRE/RD/WR/REF/...);
``WAIT``   idle a number of DRAM interface cycles;
``LOOP``   repeat a block a fixed number of times (used by clonability
           testing and characterization sweeps);
``END``    terminate the program.

Read data is captured automatically into the readback buffer, mirroring
the real platform's behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.commands import Command


class Opcode(enum.Enum):
    """Bender instruction opcodes."""

    DDR = "DDR"
    WAIT = "WAIT"
    LOOP_BEGIN = "LOOP_BEGIN"
    LOOP_END = "LOOP_END"
    END = "END"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class Instruction:
    """One Bender instruction.

    * ``DDR``: ``command`` holds the DRAM command to issue.
    * ``WAIT``: ``operand`` holds the number of DRAM interface cycles.
    * ``LOOP_BEGIN``: ``operand`` holds the iteration count.
    * ``LOOP_END`` / ``END``: no operands.
    """

    opcode: Opcode
    command: Command | None = None
    operand: int = 0

    def __post_init__(self) -> None:
        if self.opcode is Opcode.DDR and self.command is None:
            raise ValueError("DDR instruction requires a command")
        if self.opcode is Opcode.WAIT and self.operand < 0:
            raise ValueError("WAIT cycles must be non-negative")
        if self.opcode is Opcode.LOOP_BEGIN and self.operand < 1:
            raise ValueError("LOOP iteration count must be >= 1")

    def short(self) -> str:
        """Compact disassembly, used in logs and test assertions."""
        if self.opcode is Opcode.DDR:
            assert self.command is not None
            return f"DDR {self.command.short()}"
        if self.opcode is Opcode.WAIT:
            return f"WAIT {self.operand}"
        if self.opcode is Opcode.LOOP_BEGIN:
            return f"LOOP {self.operand} {{"
        if self.opcode is Opcode.LOOP_END:
            return "}"
        return "END"


def ddr(command: Command) -> Instruction:
    """Build a DDR (issue-command) instruction."""
    return Instruction(Opcode.DDR, command=command)


def wait(cycles: int) -> Instruction:
    """Build a WAIT instruction (DRAM interface cycles)."""
    return Instruction(Opcode.WAIT, operand=cycles)


def loop_begin(count: int) -> Instruction:
    """Build a LOOP_BEGIN instruction repeating its block ``count`` times."""
    return Instruction(Opcode.LOOP_BEGIN, operand=count)


def loop_end() -> Instruction:
    """Build the LOOP_END instruction closing the innermost loop."""
    return Instruction(Opcode.LOOP_END)


def end() -> Instruction:
    """Build the END instruction terminating a program."""
    return Instruction(Opcode.END)
