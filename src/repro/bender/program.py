"""Bender program builder.

:class:`BenderProgram` is a convenience assembler over the instruction
set: EasyAPI calls like ``ddr_activate()`` append to a program under
construction, and ``flush_commands()`` ships the finished program to the
engine.  Waits are expressed in picoseconds by the caller and converted
to DRAM interface cycles here (rounded up — commands can only be issued
on clock edges, which is exactly what the real sequencer does).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bender import isa
from repro.bender.isa import Instruction, Opcode
from repro.dram.commands import Command, CommandKind
from repro.dram.timing import TimingParams


@dataclass
class BenderProgram:
    """A mutable sequence of Bender instructions."""

    timing: TimingParams
    instructions: list[Instruction] = field(default_factory=list)
    _loop_depth: int = 0

    def __len__(self) -> int:
        return len(self.instructions)

    # -- raw appends ----------------------------------------------------------

    def emit(self, instruction: Instruction) -> "BenderProgram":
        """Append one raw instruction."""
        self.instructions.append(instruction)
        return self

    def command(self, cmd: Command) -> "BenderProgram":
        """Append a DDR instruction issuing ``cmd``."""
        return self.emit(isa.ddr(cmd))

    def wait_cycles(self, cycles: int) -> "BenderProgram":
        """Append a WAIT of ``cycles`` interface cycles (if positive)."""
        if cycles > 0:
            self.emit(isa.wait(cycles))
        return self

    def wait_ps(self, duration_ps: int) -> "BenderProgram":
        """Wait at least ``duration_ps`` (rounded up to interface cycles)."""
        if duration_ps <= 0:
            return self
        cycles = -(-duration_ps // self.timing.tCK)
        return self.wait_cycles(cycles)

    # -- structured helpers -----------------------------------------------------

    def activate(self, bank: int, row: int) -> "BenderProgram":
        """Stage ACT opening ``row`` of ``bank``."""
        return self.command(Command(CommandKind.ACT, bank=bank, row=row))

    def precharge(self, bank: int) -> "BenderProgram":
        """Stage PRE closing ``bank``."""
        return self.command(Command(CommandKind.PRE, bank=bank))

    def precharge_all(self) -> "BenderProgram":
        """Stage PREA closing every bank."""
        return self.command(Command(CommandKind.PREA))

    def read(self, bank: int, col: int) -> "BenderProgram":
        """Stage RD of column ``col`` from ``bank``'s open row."""
        return self.command(Command(CommandKind.RD, bank=bank, col=col))

    def write(self, bank: int, col: int, data: bytes | None = None) -> "BenderProgram":
        """Stage WR of ``data`` (or the filler pattern) into ``bank``."""
        return self.command(Command(CommandKind.WR, bank=bank, col=col, data=data))

    def refresh(self) -> "BenderProgram":
        """Stage REF (all banks must be precharged when it executes)."""
        return self.command(Command(CommandKind.REF))

    def loop(self, count: int) -> "BenderProgram":
        """Open a LOOP block repeated ``count`` times."""
        self._loop_depth += 1
        return self.emit(isa.loop_begin(count))

    def end_loop(self) -> "BenderProgram":
        """Close the innermost LOOP block."""
        if self._loop_depth == 0:
            raise ValueError("end_loop() without a matching loop()")
        self._loop_depth -= 1
        return self.emit(isa.loop_end())

    def finish(self) -> "BenderProgram":
        """Seal the program with END; validates loop nesting."""
        if self._loop_depth != 0:
            raise ValueError(f"{self._loop_depth} unclosed loop(s)")
        if not self.instructions or self.instructions[-1].opcode is not Opcode.END:
            self.emit(isa.end())
        return self

    # -- inspection -----------------------------------------------------------

    def reads(self) -> int:
        """Static count of RD instructions (one iteration of loops)."""
        return sum(
            1 for ins in self.instructions
            if ins.opcode is Opcode.DDR
            and ins.command is not None
            and ins.command.kind is CommandKind.RD)

    def disassemble(self) -> str:
        """Human-readable listing (used by the quickstart example)."""
        lines = []
        indent = 0
        for ins in self.instructions:
            if ins.opcode is Opcode.LOOP_END:
                indent = max(0, indent - 1)
            lines.append("  " * indent + ins.short())
            if ins.opcode is Opcode.LOOP_BEGIN:
                indent += 1
        return "\n".join(lines)

    def clear(self) -> None:
        """Drop all staged instructions and reset loop nesting."""
        self.instructions.clear()
        self._loop_depth = 0
