"""Bloom filter for weak-row tracking (Section 8.2).

Storing a minimum tRCD per cache line does not scale with DRAM
capacity, so EasyDRAM tracks *weak rows* in a Bloom filter, RAIDR-style:
weak rows are the keys, so a false positive only makes the controller
use the (safe) nominal tRCD on a strong row — never a reduced tRCD on a
weak one.

The filter is generated on the host and loaded into the software memory
controller before emulation begins; lookups cost controller cycles via
the cost model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

_MASK64 = (1 << 64) - 1


def _mix(x: int, seed: int) -> int:
    """64-bit splitmix-style hash with a seed."""
    x = (x + seed + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


@dataclass
class BloomFilter:
    """A classic m-bit, k-hash Bloom filter over integer keys."""

    num_bits: int
    num_hashes: int
    seed: int = 0xB100F
    _bits: bytearray = None  # type: ignore[assignment]
    _count: int = 0

    def __post_init__(self) -> None:
        if self.num_bits < 8:
            raise ValueError("num_bits must be >= 8")
        if self.num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        if self._bits is None:
            self._bits = bytearray(-(-self.num_bits // 8))

    @classmethod
    def sized_for(cls, expected_keys: int, fp_rate: float = 0.01,
                  seed: int = 0xB100F) -> "BloomFilter":
        """Optimally size the filter for ``expected_keys`` at ``fp_rate``."""
        if expected_keys < 1:
            expected_keys = 1
        if not (0.0 < fp_rate < 1.0):
            raise ValueError("fp_rate must be in (0, 1)")
        m = math.ceil(-expected_keys * math.log(fp_rate) / (math.log(2) ** 2))
        k = max(1, round(m / expected_keys * math.log(2)))
        return cls(num_bits=max(8, m), num_hashes=k, seed=seed)

    def _positions(self, key: int):
        h1 = _mix(key, self.seed)
        h2 = _mix(key, self.seed ^ 0xDEADBEEF) | 1
        for i in range(self.num_hashes):
            yield ((h1 + i * h2) & _MASK64) % self.num_bits

    def add(self, key: int) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self._count += 1

    def __contains__(self, key: int) -> bool:
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7))
            for pos in self._positions(key))

    def __len__(self) -> int:
        """Number of keys added (not distinct keys)."""
        return self._count

    @property
    def fill_ratio(self) -> float:
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self.num_bits

    def estimated_fp_rate(self) -> float:
        """Theoretical false-positive probability at the current fill."""
        return self.fill_ratio ** self.num_hashes

    @property
    def size_bytes(self) -> int:
        return len(self._bits)
