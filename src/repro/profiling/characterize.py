"""DRAM access-latency characterization (Section 8.1, Figure 12).

The characterization extends the software memory controller with
*profiling requests*: for a target cache line and a candidate tRCD, the
controller (1) initializes the line with a known pattern, (2) reads it
back using the candidate tRCD, and (3) reports whether the data came
back intact.  The processor sweeps rows/cache lines/banks and candidate
tRCD values, recording the minimum reliable tRCD per row.

Profiling runs through the same EasyAPI/Bender path as normal requests,
so the measured values come from the (synthetic) cell model exactly the
way a real chip would produce them.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.system import Session
from repro.dram.address import DramAddress
from repro.dram.timing import ns

#: Candidate tRCD values swept by Figure 12 (ns, ascending).
DEFAULT_TRCD_CANDIDATES_PS = tuple(ns(v) for v in
                                   (8.0, 8.5, 9.0, 9.5, 10.0, 10.5, 11.0))

_PATTERN = bytes(range(64))


@dataclass
class RowProfile:
    """Per-row characterization outcome."""

    bank: int
    row: int
    min_trcd_ps: int

    def is_strong(self, threshold_ps: int = ns(9.0)) -> bool:
        return self.min_trcd_ps <= threshold_ps


@dataclass
class CharacterizationResult:
    """Minimum reliable tRCD for every profiled row."""

    profiles: dict[tuple[int, int], RowProfile] = field(default_factory=dict)
    nominal_trcd_ps: int = ns(13.5)

    def min_trcd(self, bank: int, row: int) -> int:
        profile = self.profiles.get((bank, row))
        return profile.min_trcd_ps if profile else self.nominal_trcd_ps

    def weak_rows(self, threshold_ps: int = ns(9.0)) -> list[tuple[int, int]]:
        return [key for key, p in self.profiles.items()
                if p.min_trcd_ps > threshold_ps]

    def strong_fraction(self, threshold_ps: int = ns(9.0)) -> float:
        if not self.profiles:
            return 0.0
        strong = sum(1 for p in self.profiles.values()
                     if p.min_trcd_ps <= threshold_ps)
        return strong / len(self.profiles)

    def heatmap(self, bank: int, rows: int, group: int = 64) -> list[list[float]]:
        """Figure 12's layout: rows grouped into ``group``-row tiles.

        Returns a 2D list (group id x row id within group) of minimum
        tRCD in nanoseconds.
        """
        out: list[list[float]] = []
        for g in range(-(-rows // group)):
            line = []
            for r in range(group):
                row = g * group + r
                if row >= rows:
                    break
                line.append(self.min_trcd(bank, row) / 1000.0)
            out.append(line)
        return out


def profile_line(session: Session, dram: DramAddress, trcd_ps: int,
                 samples: int = 1) -> bool:
    """One profiling request: can this line be read at ``trcd_ps``?

    Mirrors the three-step flow of Section 8.1; ``samples`` repeats the
    check (real campaigns repeat to catch marginal cells).
    """
    ok = True
    for _ in range(samples):
        def stage(api, dram=dram, trcd_ps=trcd_ps):
            t = api.tile.config.timing
            api.charge(api.costs.profile_op)
            # Step 1: initialize the target cache line with a known pattern.
            api.write_sequence(dram, data=_PATTERN)
            api.ddr_wait_ps(t.tCWL + t.tBL + t.tWR)   # write recovery
            api.ddr_precharge(dram.bank)
            api.wait_after_command_ps(t.tRP)
            # Step 2: access it with the candidate tRCD.
            api.ddr_activate(dram.bank, dram.row)
            api.wait_after_command_ps(trcd_ps)
            api.ddr_read(dram.bank, dram.col)

        session.technique_op(stage, respect_timing=True)
        data, reliable = session.system.tile.readback.pop()
        # Step 3: report correctness to the processor.
        if not reliable or data != _PATTERN:
            ok = False
    return ok


def profile_row(session: Session, bank: int, row: int,
                candidates_ps=DEFAULT_TRCD_CANDIDATES_PS,
                cols_per_row_sampled: int = 4) -> RowProfile:
    """Minimum reliable tRCD of a row = its weakest sampled cache line.

    Section 8.2's first strategy: the weakest cache line's tRCD becomes
    the row's tRCD.  ``cols_per_row_sampled`` spreads samples across the
    row (profiling every column is possible but slow).
    """
    geometry = session.system.config.geometry
    nominal = session.system.config.timing.tRCD
    step = max(1, geometry.columns_per_row // cols_per_row_sampled)
    cols = range(0, geometry.columns_per_row, step)
    for trcd_ps in sorted(candidates_ps):
        if trcd_ps >= nominal:
            break
        if all(profile_line(session, DramAddress(bank, row, col), trcd_ps)
               for col in cols):
            return RowProfile(bank=bank, row=row, min_trcd_ps=trcd_ps)
    return RowProfile(bank=bank, row=row, min_trcd_ps=nominal)


def characterize(session: Session, banks: range, rows: range,
                 candidates_ps=DEFAULT_TRCD_CANDIDATES_PS,
                 cols_per_row_sampled: int = 2) -> CharacterizationResult:
    """Sweep banks x rows and build the characterization table."""
    result = CharacterizationResult(
        nominal_trcd_ps=session.system.config.timing.tRCD)
    for bank in banks:
        for row in rows:
            profile = profile_row(
                session, bank, row, candidates_ps, cols_per_row_sampled)
            result.profiles[(bank, row)] = profile
    return result


# ---------------------------------------------------------------------------
# Host-time layer profiling (where does the emulation's wall time go?)
# ---------------------------------------------------------------------------


class LayerTimes:
    """Accumulated host seconds per emulation layer."""

    __slots__ = ("trace_gen", "cache", "smc", "device", "kernel", "total",
                 "kernel_fallbacks", "_smc_depth", "_device_depth",
                 "_kernel_smc")

    def __init__(self) -> None:
        self.trace_gen = 0.0
        self.cache = 0.0
        self.smc = 0.0       # inclusive (device time is subtracted on report)
        self.device = 0.0
        self.kernel = 0.0    # compiled serve kernel (both entry points)
        self.total = 0.0
        #: Why kernel serves fell back to the Python paths: reason -> count.
        self.kernel_fallbacks: dict = {}
        self._smc_depth = 0
        self._device_depth = 0
        self._kernel_smc = 0.0   # kernel time nested inside an SMC episode

    def as_dict(self) -> dict:
        """JSON-ready breakdown; ``smc_s`` excludes nested device/kernel time.

        ``kernel_s`` is the compiled serve kernel's inclusive time across
        both entries (per-gate batches and whole-trace block replay);
        ``kernel_fallbacks`` counts the serves it declined, by reason, so
        a disengaged kernel is visible rather than just absent.
        """
        smc_exclusive = max(0.0, self.smc - self.device - self._kernel_smc)
        kernel_outside_smc = self.kernel - self._kernel_smc
        other = max(0.0, self.total
                    - (self.trace_gen + self.cache + self.smc
                       + kernel_outside_smc))
        return {
            "trace_gen_s": round(self.trace_gen, 4),
            "cache_s": round(self.cache, 4),
            "smc_s": round(smc_exclusive, 4),
            "device_s": round(self.device, 4),
            "kernel_s": round(self.kernel, 4),
            "kernel_fallbacks": dict(self.kernel_fallbacks),
            "other_s": round(other, 4),
            "total_s": round(self.total, 4),
        }


def _timed(fn, acc: LayerTimes, layer: str, depth_attr: str | None):
    """Wrap ``fn`` to accumulate its inclusive wall time into ``acc``."""
    import time as _time

    perf = _time.perf_counter

    def wrapper(*args, **kwargs):
        if depth_attr is not None:
            depth = getattr(acc, depth_attr)
            setattr(acc, depth_attr, depth + 1)
            if depth:
                try:
                    return fn(*args, **kwargs)
                finally:
                    setattr(acc, depth_attr, depth)
        start = perf()
        try:
            return fn(*args, **kwargs)
        finally:
            setattr(acc, layer, getattr(acc, layer) + (perf() - start))
            if depth_attr is not None:
                setattr(acc, depth_attr, depth)

    return wrapper


@contextmanager
def measure_layers():
    """Instrument the emulation layers for the dynamic extent of a run.

    Patches the layer entry points at class level — trace generation
    (the iterator/block stream consumed by ``Session.run_trace``), the
    cache filter, the software memory controller's critical-mode
    episodes, and the DRAM device's issue paths — and yields the
    :class:`LayerTimes` accumulator.  Systems must be *constructed
    inside* the context so their hoisted bound methods pick up the
    instrumented functions.
    """
    import time as _time

    from repro.core.smc import SoftwareMemoryController
    from repro.core.system import Session
    from repro.cpu.blocks import BlockTrace
    from repro.cpu.cache import CacheHierarchy
    from repro.dram.device import DramDevice
    from repro.dram.kernel import blockrun

    acc = LayerTimes()
    perf = _time.perf_counter
    patches: list[tuple[type, str, object]] = []

    def patch(cls, name, layer, depth_attr=None):
        original = getattr(cls, name)
        patches.append((cls, name, original))
        setattr(cls, name, _timed(original, acc, layer, depth_attr))

    patch(CacheHierarchy, "access", "cache")
    patch(CacheHierarchy, "access_block", "cache")
    patch(SoftwareMemoryController, "service_pending", "smc", "_smc_depth")
    patch(SoftwareMemoryController, "service_pending_batched", "smc",
          "_smc_depth")
    patch(SoftwareMemoryController, "technique_episode", "smc", "_smc_depth")
    for name in ("issue", "issue_discard", "issue_fast", "issue_col",
                 "issue_plan"):
        patch(DramDevice, name, "device", "_device_depth")

    def timed_kernel(fn, smc_index):
        """Kernel entry wrapper: time plus declined-serve reason counts."""
        def wrapper(*args, **kwargs):
            start = perf()
            engaged = fn(*args, **kwargs)
            span = perf() - start
            acc.kernel += span
            if acc._smc_depth:
                acc._kernel_smc += span
            if not engaged:
                reason = (getattr(args[smc_index],
                                  "kernel_fallback_reason", None)
                          or "kernel state not resolved")
                acc.kernel_fallbacks[reason] = \
                    acc.kernel_fallbacks.get(reason, 0) + 1
            return engaged
        return wrapper

    patches.append((SoftwareMemoryController, "service_pending_kernel",
                    SoftwareMemoryController.service_pending_kernel))
    SoftwareMemoryController.service_pending_kernel = timed_kernel(
        SoftwareMemoryController.service_pending_kernel, 0)
    patches.append((blockrun, "run_gated_kernel", blockrun.run_gated_kernel))
    blockrun.run_gated_kernel = timed_kernel(blockrun.run_gated_kernel, 3)

    original_run_trace = Session.run_trace
    patches.append((Session, "run_trace", original_run_trace))

    def timed_run_trace(self, trace):
        if isinstance(trace, BlockTrace):
            inner = iter(trace)

            def blocks():
                while True:
                    start = perf()
                    block = next(inner, None)
                    acc.trace_gen += perf() - start
                    if block is None:
                        return
                    yield block

            return original_run_trace(self, BlockTrace(blocks()))
        inner = iter(trace)

        def accesses():
            while True:
                start = perf()
                access = next(inner, None)
                acc.trace_gen += perf() - start
                if access is None:
                    return
                yield access

        return original_run_trace(self, accesses())

    Session.run_trace = timed_run_trace

    start = perf()
    try:
        yield acc
    finally:
        acc.total = perf() - start
        for cls, name, original in patches:
            setattr(cls, name, original)


def layer_breakdown(run_fn, *args, **kwargs) -> dict:
    """Run ``run_fn`` under :func:`measure_layers`; return the breakdown."""
    with measure_layers() as acc:
        run_fn(*args, **kwargs)
    return acc.as_dict()


def layer_breakdown_for_artifact(artifact: str) -> dict:
    """Per-layer host-time breakdown of one experiment artifact's point.

    Profiles the artifact's *last* registered sweep point (for the
    figure sweeps that is the largest configuration — the one that
    dominates the sweep's wall time) serially in-process.  Used by
    ``repro profile`` to attribute emulation wall time to the block
    pipeline's stages.
    """
    from repro.runner import registry

    spec = registry.get(artifact)
    points = spec.build_points()
    if not points:
        raise KeyError(f"artifact {artifact!r} has no sweep points")
    point = points[-1]
    fn = point.resolve()
    breakdown = layer_breakdown(fn, **point.params)
    breakdown["artifact"] = artifact
    breakdown["point_id"] = point.point_id
    return breakdown


def oracle_characterize(system_cells, geometry, banks: range,
                        rows: range, tck_ps: int = 1500) -> CharacterizationResult:
    """Fast characterization directly from the cell model.

    Produces the same table as :func:`characterize` (the profiling flow
    is deterministic) without paying per-line emulation cost; tests
    assert the two agree.  Because the sequencer can only place the read
    on interface-clock edges, a candidate tRCD is *realized* as
    ``ceil(candidate / tCK) * tCK`` — the oracle applies the same
    quantization the emulated path experiences.
    """
    result = CharacterizationResult()
    candidates = sorted(DEFAULT_TRCD_CANDIDATES_PS)
    for bank in banks:
        for row in rows:
            true_min = system_cells.row_min_trcd_ps(bank, row)
            chosen = next(
                (c for c in candidates
                 if -(-c // tck_ps) * tck_ps >= true_min),
                result.nominal_trcd_ps)
            result.profiles[(bank, row)] = RowProfile(bank, row, chosen)
    return result
