"""DRAM access-latency characterization (Section 8.1, Figure 12).

The characterization extends the software memory controller with
*profiling requests*: for a target cache line and a candidate tRCD, the
controller (1) initializes the line with a known pattern, (2) reads it
back using the candidate tRCD, and (3) reports whether the data came
back intact.  The processor sweeps rows/cache lines/banks and candidate
tRCD values, recording the minimum reliable tRCD per row.

Profiling runs through the same EasyAPI/Bender path as normal requests,
so the measured values come from the (synthetic) cell model exactly the
way a real chip would produce them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.system import Session
from repro.dram.address import DramAddress
from repro.dram.timing import ns

#: Candidate tRCD values swept by Figure 12 (ns, ascending).
DEFAULT_TRCD_CANDIDATES_PS = tuple(ns(v) for v in
                                   (8.0, 8.5, 9.0, 9.5, 10.0, 10.5, 11.0))

_PATTERN = bytes(range(64))


@dataclass
class RowProfile:
    """Per-row characterization outcome."""

    bank: int
    row: int
    min_trcd_ps: int

    def is_strong(self, threshold_ps: int = ns(9.0)) -> bool:
        return self.min_trcd_ps <= threshold_ps


@dataclass
class CharacterizationResult:
    """Minimum reliable tRCD for every profiled row."""

    profiles: dict[tuple[int, int], RowProfile] = field(default_factory=dict)
    nominal_trcd_ps: int = ns(13.5)

    def min_trcd(self, bank: int, row: int) -> int:
        profile = self.profiles.get((bank, row))
        return profile.min_trcd_ps if profile else self.nominal_trcd_ps

    def weak_rows(self, threshold_ps: int = ns(9.0)) -> list[tuple[int, int]]:
        return [key for key, p in self.profiles.items()
                if p.min_trcd_ps > threshold_ps]

    def strong_fraction(self, threshold_ps: int = ns(9.0)) -> float:
        if not self.profiles:
            return 0.0
        strong = sum(1 for p in self.profiles.values()
                     if p.min_trcd_ps <= threshold_ps)
        return strong / len(self.profiles)

    def heatmap(self, bank: int, rows: int, group: int = 64) -> list[list[float]]:
        """Figure 12's layout: rows grouped into ``group``-row tiles.

        Returns a 2D list (group id x row id within group) of minimum
        tRCD in nanoseconds.
        """
        out: list[list[float]] = []
        for g in range(-(-rows // group)):
            line = []
            for r in range(group):
                row = g * group + r
                if row >= rows:
                    break
                line.append(self.min_trcd(bank, row) / 1000.0)
            out.append(line)
        return out


def profile_line(session: Session, dram: DramAddress, trcd_ps: int,
                 samples: int = 1) -> bool:
    """One profiling request: can this line be read at ``trcd_ps``?

    Mirrors the three-step flow of Section 8.1; ``samples`` repeats the
    check (real campaigns repeat to catch marginal cells).
    """
    ok = True
    for _ in range(samples):
        def stage(api, dram=dram, trcd_ps=trcd_ps):
            t = api.tile.config.timing
            api.charge(api.costs.profile_op)
            # Step 1: initialize the target cache line with a known pattern.
            api.write_sequence(dram, data=_PATTERN)
            api.ddr_wait_ps(t.tCWL + t.tBL + t.tWR)   # write recovery
            api.ddr_precharge(dram.bank)
            api.wait_after_command_ps(t.tRP)
            # Step 2: access it with the candidate tRCD.
            api.ddr_activate(dram.bank, dram.row)
            api.wait_after_command_ps(trcd_ps)
            api.ddr_read(dram.bank, dram.col)

        session.technique_op(stage, respect_timing=True)
        data, reliable = session.system.tile.readback.pop()
        # Step 3: report correctness to the processor.
        if not reliable or data != _PATTERN:
            ok = False
    return ok


def profile_row(session: Session, bank: int, row: int,
                candidates_ps=DEFAULT_TRCD_CANDIDATES_PS,
                cols_per_row_sampled: int = 4) -> RowProfile:
    """Minimum reliable tRCD of a row = its weakest sampled cache line.

    Section 8.2's first strategy: the weakest cache line's tRCD becomes
    the row's tRCD.  ``cols_per_row_sampled`` spreads samples across the
    row (profiling every column is possible but slow).
    """
    geometry = session.system.config.geometry
    nominal = session.system.config.timing.tRCD
    step = max(1, geometry.columns_per_row // cols_per_row_sampled)
    cols = range(0, geometry.columns_per_row, step)
    for trcd_ps in sorted(candidates_ps):
        if trcd_ps >= nominal:
            break
        if all(profile_line(session, DramAddress(bank, row, col), trcd_ps)
               for col in cols):
            return RowProfile(bank=bank, row=row, min_trcd_ps=trcd_ps)
    return RowProfile(bank=bank, row=row, min_trcd_ps=nominal)


def characterize(session: Session, banks: range, rows: range,
                 candidates_ps=DEFAULT_TRCD_CANDIDATES_PS,
                 cols_per_row_sampled: int = 2) -> CharacterizationResult:
    """Sweep banks x rows and build the characterization table."""
    result = CharacterizationResult(
        nominal_trcd_ps=session.system.config.timing.tRCD)
    for bank in banks:
        for row in rows:
            profile = profile_row(
                session, bank, row, candidates_ps, cols_per_row_sampled)
            result.profiles[(bank, row)] = profile
    return result


def oracle_characterize(system_cells, geometry, banks: range,
                        rows: range, tck_ps: int = 1500) -> CharacterizationResult:
    """Fast characterization directly from the cell model.

    Produces the same table as :func:`characterize` (the profiling flow
    is deterministic) without paying per-line emulation cost; tests
    assert the two agree.  Because the sequencer can only place the read
    on interface-clock edges, a candidate tRCD is *realized* as
    ``ceil(candidate / tCK) * tCK`` — the oracle applies the same
    quantization the emulated path experiences.
    """
    result = CharacterizationResult()
    candidates = sorted(DEFAULT_TRCD_CANDIDATES_PS)
    for bank in banks:
        for row in rows:
            true_min = system_cells.row_min_trcd_ps(bank, row)
            chosen = next(
                (c for c in candidates
                 if -(-c // tck_ps) * tck_ps >= true_min),
                result.nominal_trcd_ps)
            result.profiles[(bank, row)] = RowProfile(bank, row, chosen)
    return result
