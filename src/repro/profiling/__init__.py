"""DRAM characterization and weak-row tracking."""

from repro.profiling.bloom import BloomFilter
from repro.profiling.characterize import (
    DEFAULT_TRCD_CANDIDATES_PS,
    CharacterizationResult,
    RowProfile,
    characterize,
    oracle_characterize,
    profile_line,
    profile_row,
)

__all__ = [
    "BloomFilter",
    "CharacterizationResult",
    "DEFAULT_TRCD_CANDIDATES_PS",
    "RowProfile",
    "characterize",
    "oracle_characterize",
    "profile_line",
    "profile_row",
]
