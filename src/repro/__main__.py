"""``python -m repro`` — the unified artifact-reproduction CLI."""

from repro.runner.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
