"""repro: a Python reproduction of EasyDRAM (DSN 2025).

EasyDRAM is an FPGA-based framework for fast and accurate end-to-end
evaluation of DRAM techniques on real DRAM chips.  This package rebuilds
the full system in simulation: the DDR4 device substrate, the DRAM
Bender command sequencer, the programmable software memory controller
with its EasyAPI, the time-scaling emulation engine, the RowClone and
tRCD-reduction case studies, and a cycle-level baseline simulator for
comparison.  See DESIGN.md for the system inventory and EXPERIMENTS.md
for the paper-vs-measured record.

Quickstart::

    from repro import jetson_nano_time_scaling, EasyDRAMSystem
    from repro.workloads import polybench

    system = EasyDRAMSystem(jetson_nano_time_scaling())
    result = system.run(polybench.trace("gemm"), workload_name="gemm")
    print(result.summary())
"""

from repro.core import (
    TOPOLOGIES,
    EasyDRAMSystem,
    RunResult,
    Session,
    SystemConfig,
    cortex_a57_reference,
    jetson_nano_time_scaling,
    pidram_no_time_scaling,
    preset,
    topology,
    validation_reference,
    validation_time_scaled,
)

__version__ = "1.0.0"

__all__ = [
    "EasyDRAMSystem",
    "TOPOLOGIES",
    "RunResult",
    "Session",
    "SystemConfig",
    "__version__",
    "cortex_a57_reference",
    "jetson_nano_time_scaling",
    "pidram_no_time_scaling",
    "preset",
    "topology",
    "validation_reference",
    "validation_time_scaled",
]
