"""Terminal charts for regenerating the paper's figures as text.

The benchmark harness has no plotting stack, so figures are rendered as
aligned ASCII bar and line charts — enough to eyeball the shapes the
paper reports (who wins, by what factor, where crossovers fall).
"""

from __future__ import annotations

import math
from typing import Sequence


def bar_chart(labels: Sequence[str], series: dict[str, Sequence[float]],
              width: int = 50, log: bool = False,
              title: str | None = None) -> str:
    """Grouped horizontal bars: one group per label, one bar per series."""
    all_vals = [v for vals in series.values() for v in vals if v > 0]
    if not all_vals:
        return title or ""
    vmax = max(all_vals)
    vmin = min(all_vals)
    lines = [title] if title else []
    label_w = max(len(label) for label in labels)
    name_w = max(len(n) for n in series)
    for i, label in enumerate(labels):
        for name, vals in series.items():
            value = vals[i]
            lines.append(
                f"{label.rjust(label_w)} {name.ljust(name_w)} "
                f"|{_bar(value, vmin, vmax, width, log)} {value:.2f}")
        lines.append("")
    return "\n".join(lines).rstrip()


def _bar(value: float, vmin: float, vmax: float, width: int, log: bool) -> str:
    if value <= 0:
        return ""
    if log:
        lo, hi = math.log10(max(vmin, 1e-12)), math.log10(vmax)
        frac = 1.0 if hi == lo else (math.log10(value) - lo) / (hi - lo)
        frac = max(0.02, frac)
    else:
        frac = value / vmax
    return "#" * max(1, int(round(frac * width)))


def line_chart(xs: Sequence[float], series: dict[str, Sequence[float]],
               height: int = 16, width: int = 70,
               title: str | None = None, ylabel: str = "") -> str:
    """Plot y-series against x on a character grid (Figure 8 style)."""
    all_y = [y for ys in series.values() for y in ys]
    if not all_y:
        return title or ""
    ymax = max(all_y) * 1.05
    ymin = 0.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@"
    for s_idx, (name, ys) in enumerate(series.items()):
        marker = markers[s_idx % len(markers)]
        for i, y in enumerate(ys):
            col = int(i / max(1, len(xs) - 1) * (width - 1))
            row = height - 1 - int((y - ymin) / (ymax - ymin) * (height - 1))
            row = min(height - 1, max(0, row))
            grid[row][col] = marker
    lines = [title] if title else []
    for r, row in enumerate(grid):
        y_val = ymax - r * (ymax - ymin) / (height - 1)
        lines.append(f"{y_val:8.1f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series))
    lines.append(" " * 10 + legend)
    if ylabel:
        lines.append(f"(y: {ylabel}; x: {xs[0]} .. {xs[-1]})")
    return "\n".join(lines)


def heatmap(grid: Sequence[Sequence[float]], title: str | None = None,
            vmin: float | None = None, vmax: float | None = None) -> str:
    """Render a 2D value grid with density characters (Figure 12 style)."""
    flat = [v for row in grid for v in row]
    if not flat:
        return title or ""
    lo = vmin if vmin is not None else min(flat)
    hi = vmax if vmax is not None else max(flat)
    ramp = " .:-=+*#%@"
    lines = [title] if title else []
    for row in grid:
        chars = []
        for v in row:
            frac = 0.0 if hi == lo else (v - lo) / (hi - lo)
            chars.append(ramp[min(len(ramp) - 1, int(frac * (len(ramp) - 1)))])
        lines.append("".join(chars))
    lines.append(f"scale: '{ramp[0]}'={lo:.2f} .. '{ramp[-1]}'={hi:.2f}")
    return "\n".join(lines)
