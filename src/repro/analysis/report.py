"""Result tables, geometric means, and CSV output for experiments."""

from __future__ import annotations

import csv
import json
import math
import os
from typing import Iterable, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's standard aggregate)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def arith_mean(values: Iterable[float]) -> float:
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Render an aligned text table (every experiment prints these)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def write_csv(path: str, headers: Sequence[str],
              rows: Sequence[Sequence]) -> None:
    """Persist experiment rows (benchmarks save into results/)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(headers)
        writer.writerows(rows)


def write_json(path: str, payload) -> None:
    """Persist a machine-readable result (the CLI's ``--format json``).

    Tuples serialize as lists and non-JSON values (dataclasses, custom
    objects) fall back to ``str``, so any artifact dict can be written.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True, default=str)
        f.write("\n")


def results_dir() -> str:
    """Default output directory for experiment CSVs."""
    return os.environ.get("REPRO_RESULTS_DIR", "results")
