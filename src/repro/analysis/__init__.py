"""Reporting and charting helpers for experiments and benchmarks."""

from repro.analysis.ascii_chart import bar_chart, heatmap, line_chart
from repro.analysis.report import (
    arith_mean,
    format_table,
    geomean,
    results_dir,
    write_csv,
    write_json,
)

__all__ = [
    "arith_mean",
    "bar_chart",
    "format_table",
    "geomean",
    "heatmap",
    "line_chart",
    "results_dir",
    "write_csv",
    "write_json",
]
