"""Baseline evaluation platforms the paper compares against."""

from repro.baselines.ramulator import BaselineResult, RamulatorConfig, RamulatorSim

__all__ = ["BaselineResult", "RamulatorConfig", "RamulatorSim"]
