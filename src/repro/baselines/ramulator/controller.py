"""Hardware FR-FCFS controller for the cycle-level baseline.

A conventional read-priority FR-FCFS controller ticked every memory
cycle: it holds read and write queues, walks the FSM of the selected
request (PRE -> ACT -> RD/WR), and completes fills when the data burst
ends.  Unlike EasyDRAM's software memory controller it has no software
cost model — it is "hardware", which is exactly the difference the
paper's comparison exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.baselines.ramulator.dram_model import DramTimingModel
from repro.dram.address import AddressMapper, DramAddress


@dataclass
class MemRequest:
    """One DRAM-bound request inside the baseline simulator."""

    rid: int
    dram: DramAddress
    is_write: bool
    arrive_cycle: int
    complete_cycle: int | None = None
    on_complete: Callable[["MemRequest"], None] | None = None


@dataclass
class ControllerStats:
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    total_read_latency: int = 0


class FrFcfsController:
    """Read-priority FR-FCFS with write draining and refresh."""

    def __init__(self, model: DramTimingModel, mapper: AddressMapper,
                 read_queue_depth: int = 32, write_queue_depth: int = 32,
                 write_drain_threshold: int = 16,
                 trcd_cycles_for: Callable[[int, int], int] | None = None) -> None:
        self.model = model
        self.mapper = mapper
        self.read_q: list[MemRequest] = []
        self.write_q: list[MemRequest] = []
        self.read_queue_depth = read_queue_depth
        self.write_queue_depth = write_queue_depth
        self.write_drain_threshold = write_drain_threshold
        self.stats = ControllerStats()
        self._in_flight: list[tuple[int, MemRequest]] = []
        self._refreshing_until = 0
        #: Optional per-row tRCD override (the tRCD-reduction baseline).
        self.trcd_cycles_for = trcd_cycles_for

    # -- enqueue ---------------------------------------------------------------

    def can_accept(self, is_write: bool) -> bool:
        queue = self.write_q if is_write else self.read_q
        depth = self.write_queue_depth if is_write else self.read_queue_depth
        return len(queue) < depth

    def enqueue(self, request: MemRequest) -> None:
        if request.is_write:
            self.write_q.append(request)
        else:
            self.read_q.append(request)

    @property
    def busy(self) -> bool:
        return bool(self.read_q or self.write_q or self._in_flight)

    # -- per-cycle tick ------------------------------------------------------------

    def tick(self, now: int) -> None:
        self._complete_bursts(now)
        if now < self._refreshing_until:
            return
        if self.model.refresh_due(now):
            self._do_refresh(now)
            return
        request = self._select(now)
        if request is not None:
            self._advance(request, now)

    def _complete_bursts(self, now: int) -> None:
        if not self._in_flight:
            return
        still = []
        for done_cycle, request in self._in_flight:
            if done_cycle <= now:
                request.complete_cycle = done_cycle
                if request.on_complete is not None:
                    request.on_complete(request)
                if not request.is_write:
                    self.stats.total_read_latency += done_cycle - request.arrive_cycle
            else:
                still.append((done_cycle, request))
        self._in_flight = still

    def _do_refresh(self, now: int) -> None:
        model = self.model
        if not model.all_banks_closed():
            for bank in range(len(model.banks)):
                if model.can_precharge(bank, now):
                    model.precharge(bank, now)
            return
        self._refreshing_until = model.refresh(now)
        self.stats.refreshes += 1

    def _select(self, now: int) -> MemRequest | None:
        """Read priority with write draining above a threshold."""
        drain_writes = (len(self.write_q) >= self.write_drain_threshold
                        or not self.read_q)
        primary = self.write_q if (drain_writes and self.write_q) else self.read_q
        if not primary:
            return None
        # FR-FCFS: first row hit, else the oldest request.
        for request in primary:
            fsm = self.model.banks[request.dram.bank]
            if fsm.open_row == request.dram.row:
                return request
        return primary[0]

    def _advance(self, request: MemRequest, now: int) -> None:
        """Issue the next command the selected request needs (one/cycle)."""
        model = self.model
        bank, row = request.dram.bank, request.dram.row
        fsm = model.banks[bank]
        if fsm.open_row == row:
            if request.is_write and model.can_write(bank, row, now):
                done = model.write(bank, now)
                self.write_q.remove(request)
                self._in_flight.append((done, request))
                self.stats.writes += 1
                model.row_hits += 1
            elif not request.is_write and model.can_read(bank, row, now):
                done = model.read(bank, now)
                self.read_q.remove(request)
                self._in_flight.append((done, request))
                self.stats.reads += 1
                model.row_hits += 1
        elif fsm.open_row is None:
            if model.can_activate(bank, now):
                if self.trcd_cycles_for is not None:
                    model.activate_with_trcd_cycles(
                        bank, row, now, self.trcd_cycles_for(bank, row))
                else:
                    model.activate(bank, row, now)
                model.row_misses += 1
        else:
            if model.can_precharge(bank, now):
                model.precharge(bank, now)
                model.row_conflicts += 1
