"""Cycle-level baseline simulator ("Ramulator 2.0"-like comparator)."""

from repro.baselines.ramulator.controller import (
    ControllerStats,
    FrFcfsController,
    MemRequest,
)
from repro.baselines.ramulator.dram_model import BankFSM, DramTimingModel
from repro.baselines.ramulator.frontend import CoreFrontend, FrontendStats
from repro.baselines.ramulator.sim import BaselineResult, RamulatorConfig, RamulatorSim

__all__ = [
    "BankFSM",
    "BaselineResult",
    "ControllerStats",
    "CoreFrontend",
    "DramTimingModel",
    "FrFcfsController",
    "FrontendStats",
    "MemRequest",
    "RamulatorConfig",
    "RamulatorSim",
]
