"""Simple out-of-order core frontend for the cycle-level baseline.

The paper configures Ramulator 2.0 with "a simple out-of-order core and
a last-level cache" (footnote 5) and notes its processor model differs
significantly from EasyDRAM's real BOOM implementation — that difference
is part of what Figures 10/11/13 show.  This frontend executes at most
one memory access per CPU cycle, tracks a bounded number of outstanding
misses, and blocks when the oldest miss gates further progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.cpu.cache import CacheHierarchy
from repro.cpu.memtrace import FLAG_DEPENDENT, FLAG_WRITE, Access, Trace


@dataclass
class FrontendStats:
    accesses: int = 0
    loads: int = 0
    stores: int = 0
    stall_cycles: int = 0
    llc_misses: int = 0
    writebacks: int = 0


class CoreFrontend:
    """Trace-driven OoO core ticked at the CPU clock."""

    def __init__(self, hierarchy: CacheHierarchy, trace: Trace,
                 issue_miss: Callable[[int, bool, "CoreFrontend"], object],
                 mlp: int = 8) -> None:
        self.hierarchy = hierarchy
        self._trace: Iterator[Access] = iter(trace)
        self._issue_miss = issue_miss
        self.mlp = mlp
        self.stats = FrontendStats()
        self._gap_left = 0
        self._wait_cycles = 0
        self._pending: Access | None = None
        self._outstanding: list[object] = []   # requests, oldest first
        self._done = False
        self._stalled_on_queue = False

    @property
    def done(self) -> bool:
        return self._done and not self._outstanding

    def notify_complete(self, request: object) -> None:
        if request in self._outstanding:
            self._outstanding.remove(request)
        self._stalled_on_queue = False

    def tick(self, now: int) -> None:
        """Advance one CPU cycle."""
        if self.done:
            return
        if self._wait_cycles > 0:
            self._wait_cycles -= 1
            self.stats.stall_cycles += 1
            return
        if self._gap_left > 0:
            self._gap_left -= 1
            return
        if self._pending is None:
            self._pending = next(self._trace, None)
            if self._pending is None:
                self._done = True
                if self._outstanding:
                    self.stats.stall_cycles += 1
                return
            if self._pending.gap:
                self._gap_left = self._pending.gap
                return
        access = self._pending
        if (access.flags & FLAG_DEPENDENT) and self._outstanding:
            self.stats.stall_cycles += 1
            return
        if len(self._outstanding) >= self.mlp:
            self.stats.stall_cycles += 1
            return
        self._pending = None
        self._execute(access)

    def _execute(self, access: Access) -> None:
        stats = self.stats
        stats.accesses += 1
        is_write = bool(access.flags & FLAG_WRITE)
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1
        traffic = self.hierarchy.access(access.addr, is_write)
        # Hit-path latency consumes pipeline cycles.
        self._wait_cycles = max(0, traffic.latency - 1)
        for wb_addr in traffic.writebacks:
            stats.writebacks += 1
            self._issue_miss(wb_addr, True, self)
        if traffic.fill_line is not None:
            stats.llc_misses += 1
            request = self._issue_miss(traffic.fill_line, False, self)
            if request is not None:
                self._outstanding.append(request)
