"""Cycle-level DDR4 timing model for the baseline simulator.

The baseline ("Ramulator 2.0"-like) models DRAM with per-bank state
machines and next-allowed-cycle bookkeeping, ticked at the memory clock.
It reuses the repository's JEDEC timing parameters but none of the
event-driven emulation machinery — it is an independent, deliberately
conventional cycle-level implementation, which is exactly what the paper
compares EasyDRAM against (including its lower simulation speed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.address import Geometry
from repro.dram.timing import TimingParams


def _cyc(ps: int, tck: int) -> int:
    """Picoseconds -> whole memory-clock cycles (rounded up)."""
    return -(-ps // tck)


@dataclass
class BankFSM:
    """Per-bank row state and earliest-next-command cycles."""

    open_row: int | None = None
    next_act: int = 0
    next_pre: int = 0
    next_rd: int = 0
    next_wr: int = 0


@dataclass
class DramTimingModel:
    """Next-allowed-cycle tables over all banks of one rank."""

    timing: TimingParams
    geometry: Geometry
    banks: list[BankFSM] = field(default_factory=list)
    next_ref: int = 0
    ref_deadline: int = 0
    #: Sliding window of recent ACT cycles (tFAW).
    recent_acts: list[int] = field(default_factory=list)
    #: Rank-level CAS gating (tCCD / bus turnaround).
    next_rd_any: int = 0
    next_wr_any: int = 0
    acts: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0

    def __post_init__(self) -> None:
        if not self.banks:
            self.banks = [BankFSM() for _ in range(self.geometry.num_banks)]
        t = self.timing
        tck = t.tCK
        self.c_rcd = _cyc(t.tRCD, tck)
        self.c_rp = _cyc(t.tRP, tck)
        self.c_ras = _cyc(t.tRAS, tck)
        self.c_rc = _cyc(t.tRC, tck)
        self.c_cl = _cyc(t.tCL, tck)
        self.c_cwl = _cyc(t.tCWL, tck)
        self.c_bl = _cyc(t.tBL, tck)
        self.c_rtp = _cyc(t.tRTP, tck)
        self.c_wr = _cyc(t.tWR, tck)
        self.c_wtr = _cyc(t.tWTR, tck)
        self.c_ccd = _cyc(t.tCCD_L, tck)
        self.c_rrd = _cyc(t.tRRD_L, tck)
        self.c_faw = _cyc(t.tFAW, tck)
        self.c_rfc = _cyc(t.tRFC, tck)
        self.c_refi = _cyc(t.tREFI, tck)
        self.ref_deadline = self.c_refi

    # -- command legality ----------------------------------------------------

    def can_activate(self, bank: int, now: int) -> bool:
        fsm = self.banks[bank]
        if fsm.open_row is not None or now < fsm.next_act:
            return False
        if len(self.recent_acts) >= 4 and now < self.recent_acts[-4] + self.c_faw:
            return False
        return True

    def can_precharge(self, bank: int, now: int) -> bool:
        fsm = self.banks[bank]
        return fsm.open_row is not None and now >= fsm.next_pre

    def can_read(self, bank: int, row: int, now: int) -> bool:
        fsm = self.banks[bank]
        return (fsm.open_row == row and now >= fsm.next_rd
                and now >= self.next_rd_any)

    def can_write(self, bank: int, row: int, now: int) -> bool:
        fsm = self.banks[bank]
        return (fsm.open_row == row and now >= fsm.next_wr
                and now >= self.next_wr_any)

    # -- command effects -------------------------------------------------------

    def activate(self, bank: int, row: int, now: int) -> None:
        fsm = self.banks[bank]
        fsm.open_row = row
        fsm.next_pre = now + self.c_ras
        fsm.next_rd = now + self.c_rcd
        fsm.next_wr = now + self.c_rcd
        fsm.next_act = now + self.c_rc
        self.recent_acts.append(now)
        if len(self.recent_acts) > 8:
            del self.recent_acts[:4]
        for other_bank, other in enumerate(self.banks):
            if other_bank != bank:
                other.next_act = max(other.next_act, now + self.c_rrd)
        self.acts += 1

    def activate_with_trcd_cycles(self, bank: int, row: int, now: int,
                                  trcd_cycles: int) -> None:
        """Activate using a (possibly reduced) tRCD (Figure 13 baseline)."""
        self.activate(bank, row, now)
        fsm = self.banks[bank]
        fsm.next_rd = now + trcd_cycles
        fsm.next_wr = now + trcd_cycles

    def precharge(self, bank: int, now: int) -> None:
        fsm = self.banks[bank]
        fsm.open_row = None
        fsm.next_act = max(fsm.next_act, now + self.c_rp)

    def read(self, bank: int, now: int) -> int:
        """Issue RD; returns the cycle the data burst completes."""
        fsm = self.banks[bank]
        fsm.next_pre = max(fsm.next_pre, now + self.c_rtp)
        self.next_rd_any = now + self.c_ccd
        # Read-to-write turnaround: the write burst must not collide.
        self.next_wr_any = max(self.next_wr_any,
                               now + self.c_cl + self.c_bl - self.c_cwl + 1)
        return now + self.c_cl + self.c_bl

    def write(self, bank: int, now: int) -> int:
        fsm = self.banks[bank]
        data_end = now + self.c_cwl + self.c_bl
        fsm.next_pre = max(fsm.next_pre, data_end + self.c_wr)
        self.next_wr_any = now + self.c_ccd
        self.next_rd_any = max(self.next_rd_any, data_end + self.c_wtr)
        return data_end

    # -- refresh -------------------------------------------------------------

    def refresh_due(self, now: int) -> bool:
        return now >= self.ref_deadline

    def all_banks_closed(self) -> bool:
        return all(b.open_row is None for b in self.banks)

    def refresh(self, now: int) -> int:
        """Perform REF (banks must be closed); returns completion cycle."""
        done = now + self.c_rfc
        for fsm in self.banks:
            fsm.next_act = max(fsm.next_act, done)
        self.ref_deadline += self.c_refi
        return done
