"""Cycle loop of the baseline simulator.

Ticks the DRAM controller every memory-clock cycle and the core at the
CPU/memory clock ratio, exactly the structure of a conventional
cycle-level DRAM simulator.  The per-cycle stepping is what makes the
baseline slower than EasyDRAM's event-driven emulation — the property
Figure 14 measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.ramulator.controller import FrFcfsController, MemRequest
from repro.baselines.ramulator.dram_model import DramTimingModel
from repro.baselines.ramulator.frontend import CoreFrontend
from repro.cpu.cache import Cache, CacheHierarchy
from repro.cpu.memtrace import Trace, take
from repro.dram.address import AddressMapper, Geometry
from repro.dram.timing import TimingParams, ddr4_1333


@dataclass
class RamulatorConfig:
    """Configuration of the baseline simulated system."""

    name: str = "Ramulator2.0-like"
    cpu_freq_hz: float = 1.43e9
    timing: TimingParams = field(default_factory=ddr4_1333)
    geometry: Geometry = field(default_factory=Geometry)
    mapping_scheme: str = "row-bank-col-skew"
    l1_size: int = 32 * 1024
    l1_assoc: int = 4
    l2_size: int = 512 * 1024
    l2_assoc: int = 8
    mlp: int = 8
    #: Simulate at most this many accesses (partial-workload simulation,
    #: the baseline's standard methodology per Section 8.3).  None = all.
    max_accesses: int | None = None

    @property
    def mem_freq_hz(self) -> float:
        # Command clock: half the data rate.
        return self.timing.data_rate_mts * 1e6 / 2


@dataclass
class BaselineResult:
    """What one baseline simulation reports."""

    config_name: str
    workload_name: str
    cpu_cycles: int
    mem_cycles: int
    accesses: int
    llc_misses: int
    stall_cycles: int
    reads: int
    writes: int
    refreshes: int
    avg_read_latency_mem_cycles: float
    wall_seconds: float

    @property
    def emulated_seconds(self) -> float:
        return self.mem_cycles / (1.43e9 / 2.15)  # informational only

    @property
    def sim_speed_hz(self) -> float:
        """Simulated CPU cycles per wall second (Figure 14's metric)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.cpu_cycles / self.wall_seconds


class RamulatorSim:
    """One baseline simulation instance."""

    def __init__(self, config: RamulatorConfig | None = None) -> None:
        self.config = config or RamulatorConfig()
        cfg = self.config
        self.model = DramTimingModel(cfg.timing, cfg.geometry)
        self.mapper = AddressMapper(cfg.geometry, cfg.mapping_scheme)
        self.controller = FrFcfsController(self.model, self.mapper)
        l1 = Cache("L1D", cfg.l1_size, cfg.l1_assoc, 64, 2)
        l2 = Cache("L2", cfg.l2_size, cfg.l2_assoc, 64, 12)
        self.hierarchy = CacheHierarchy(l1, l2)
        self._rid = 0
        self._mem_now = 0
        self._retry: list[MemRequest] = []

    # -- core -> controller ------------------------------------------------------

    def _issue_miss(self, addr: int, is_write: bool,
                    core: CoreFrontend | None):
        """Create (and enqueue, space permitting) one DRAM request.

        Requests that find a full queue park in a retry list and enter
        the queue as soon as space frees up.
        """
        self._rid += 1
        request = MemRequest(
            rid=self._rid,
            dram=self.mapper.to_dram(addr),
            is_write=is_write,
            arrive_cycle=self._mem_now,
        )
        if core is not None and not is_write:
            request.on_complete = core.notify_complete
        if self.controller.can_accept(is_write):
            self.controller.enqueue(request)
        else:
            self._retry.append(request)
        return request if not is_write else None

    # -- main loop ----------------------------------------------------------------

    def run(self, trace: Trace, workload_name: str = "workload") -> BaselineResult:
        cfg = self.config
        if cfg.max_accesses is not None:
            trace = take(trace, cfg.max_accesses)
        core = CoreFrontend(self.hierarchy, trace, self._issue_miss, mlp=cfg.mlp)
        ratio = cfg.cpu_freq_hz / cfg.mem_freq_hz
        wall_start = time.perf_counter()
        cpu_cycles = 0
        cpu_credit = 0.0
        guard = 0
        while not (core.done and not self.controller.busy):
            self._mem_now += 1
            self.controller.tick(self._mem_now)
            self._drain_retries()
            cpu_credit += ratio
            while cpu_credit >= 1.0:
                cpu_credit -= 1.0
                core.tick(cpu_cycles)
                cpu_cycles += 1
            guard += 1
            if guard > 2_000_000_000:  # pragma: no cover - safety valve
                raise RuntimeError("baseline simulation did not terminate")
        wall = time.perf_counter() - wall_start
        stats = self.controller.stats
        reads = max(1, stats.reads)
        return BaselineResult(
            config_name=cfg.name,
            workload_name=workload_name,
            cpu_cycles=cpu_cycles,
            mem_cycles=self._mem_now,
            accesses=core.stats.accesses,
            llc_misses=core.stats.llc_misses,
            stall_cycles=core.stats.stall_cycles,
            reads=stats.reads,
            writes=stats.writes,
            refreshes=stats.refreshes,
            avg_read_latency_mem_cycles=stats.total_read_latency / reads,
            wall_seconds=wall,
        )

    def _drain_retries(self) -> None:
        if not self._retry:
            return
        still = []
        for request in self._retry:
            if self.controller.can_accept(request.is_write):
                self.controller.enqueue(request)
            else:
                still.append(request)
        self._retry = still

    # -- idealized RowClone (Figures 10/11's Ramulator series) ----------------------

    def rowclone_rows_cycles(self, n_rows: int) -> int:
        """Memory cycles an idealized RowClone of ``n_rows`` takes.

        The baseline has no real-chip characterization: every pair
        clones successfully (Section 7.2), so the cost is just the
        ACT -> PRE -> ACT -> tRAS -> PRE sequence per row.
        """
        m = self.model
        per_row = 2 + m.c_ras + m.c_rp  # ACT,PRE,ACT back to back + settle
        return n_rows * per_row
