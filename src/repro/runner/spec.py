"""Declarative sweep descriptions for the experiment runner.

Every paper artifact (a table, a figure, or the ablation bundle) is a
*sweep*: a set of independent measurement points (config x workload x
technique) whose results are combined into the artifact's result dict.
Each experiment module declares its sweep once as a :class:`SweepSpec`;
the scheduler (``repro.runner.scheduler``) can then execute the points
serially, across a process pool, or straight out of the on-disk cache —
all three produce bit-identical artifact dicts.

Two properties make that work:

* **Points are addressable.**  A :class:`SweepPoint` names a module-level
  function (``"package.module:function"``) plus JSON-serializable keyword
  arguments, so it can be pickled to a worker process and hashed into a
  cache key.
* **Point results are JSON-normalized.**  :func:`evaluate_point` passes
  every result through a JSON round-trip, so an in-process result, a
  subprocess result, and a cache hit are indistinguishable (tuples become
  lists, dict keys become strings) before ``combine`` ever sees them.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping


@dataclass(frozen=True)
class SweepPoint:
    """One independent measurement of a sweep.

    ``fn`` is a ``"module.path:function"`` reference to a module-level
    callable and ``params`` its keyword arguments; both must survive
    pickling and JSON serialization so the point can run in a worker
    process and key the result cache.
    """

    artifact: str
    point_id: str
    fn: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def resolve(self) -> Callable[..., Any]:
        module_name, _, attr = self.fn.partition(":")
        if not attr:
            raise ValueError(f"point fn {self.fn!r} is not 'module:function'")
        module = importlib.import_module(module_name)
        return getattr(module, attr)


def json_normalize(value: Any) -> Any:
    """Round-trip ``value`` through JSON.

    This is the canonical representation of a point result: tuples become
    lists and mapping keys become strings, exactly as they would after a
    cache hit, so every execution path yields identical objects.
    """
    return json.loads(json.dumps(value))


def evaluate_point(point: SweepPoint) -> Any:
    """Execute one point and return its JSON-normalized result."""
    return json_normalize(point.resolve()(**dict(point.params)))


@dataclass(frozen=True)
class SweepSpec:
    """A paper artifact expressed as a sweep of independent points.

    ``build_points`` accepts keyword overrides (shrunk sizes, kernel
    subsets...) so tests and the CLI can scale a sweep without editing
    the experiment module; with no arguments it must build the artifact's
    default (CI-scale, or paper-scale under ``REPRO_FULL``) point set.
    ``combine`` receives ``{point_id: normalized result}`` for every
    point, in build order, and returns the artifact's result dict.
    """

    artifact: str
    title: str
    module: str
    build_points: Callable[..., tuple[SweepPoint, ...]]
    combine: Callable[[dict[str, Any]], dict]
    csv_headers: tuple[str, ...] | None = None
    #: One-line human description shown by ``repro list`` so users can
    #: pick artifacts without grepping ``experiments/``.
    description: str = ""
    #: Rough default (CI-scale, cold-cache, single-job) runtime, e.g.
    #: ``"~45 s"``; also shown by ``repro list``.
    runtime: str = ""
    #: False for sweeps whose points measure host wall time (e.g. the
    #: Figure 14 simulation-speed rates): running them concurrently
    #: would let worker contention skew the measured numbers, so the
    #: scheduler keeps them serial regardless of ``--jobs``.
    parallel_safe: bool = True

    def report(self, result: dict) -> str:
        """Render the artifact's ASCII report via its experiment module."""
        module = importlib.import_module(self.module)
        return module.report(result)
