"""Registry of every artifact's :class:`~repro.runner.spec.SweepSpec`.

Experiment modules register their sweep at import time::

    SWEEP = SweepSpec(artifact="fig10", ...)
    register(SWEEP)

and consumers look sweeps up by artifact id (``"fig10"``) without caring
which module implements them.  :func:`all_specs` imports the experiment
modules lazily, so importing :mod:`repro.runner` stays cheap.
"""

from __future__ import annotations

import difflib
import fnmatch
import importlib

from repro.runner.spec import SweepSpec

#: Artifact ids in the order ``run_all`` has always printed them.
ARTIFACT_ORDER = (
    "tab01",
    "fig02",
    "sec6",
    "fig08",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "ablations",
)

#: Experiment modules that define sweeps (imported on first lookup).
_EXPERIMENT_MODULES = (
    "repro.experiments.tab01_platforms",
    "repro.experiments.fig02_breakdown",
    "repro.experiments.sec6_validation",
    "repro.experiments.fig08_latency_profile",
    "repro.experiments.fig10_rowclone_noflush",
    "repro.experiments.fig11_rowclone_clflush",
    "repro.experiments.fig12_trcd_heatmap",
    "repro.experiments.fig13_trcd_speedup",
    "repro.experiments.fig14_sim_speed",
    "repro.experiments.fig15_channel_scaling",
    "repro.experiments.fig16_core_contention",
    "repro.experiments.fig17_scheduler_frontier",
    "repro.experiments.ablations",
)

_REGISTRY: dict[str, SweepSpec] = {}
_LOADED = False


def register(spec: SweepSpec) -> SweepSpec:
    """Register ``spec`` under its artifact id (idempotent per module)."""
    existing = _REGISTRY.get(spec.artifact)
    if spec.module == "__main__" and existing is not None:
        # ``python -m repro.experiments.<name>``: runpy re-executes an
        # already-imported module under ``__name__ == "__main__"``.
        # Keep the importable registration — its point-function
        # references must stay resolvable in worker processes.
        return existing
    if existing is not None and existing.module != spec.module:
        raise ValueError(
            f"artifact {spec.artifact!r} already registered by"
            f" {existing.module}")
    _REGISTRY[spec.artifact] = spec
    return spec


def _load() -> None:
    global _LOADED
    if _LOADED:
        return
    for module in _EXPERIMENT_MODULES:
        importlib.import_module(module)
    _LOADED = True


def closest(name: str, known: list[str]) -> str | None:
    """The best did-you-mean candidate for ``name``, quoted, or None."""
    matches = difflib.get_close_matches(name, known, n=1, cutoff=0.5)
    return repr(matches[0]) if matches else None


def get(artifact: str) -> SweepSpec:
    """Look up one artifact's sweep; raises ``KeyError`` with options."""
    _load()
    try:
        return _REGISTRY[artifact]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        close = closest(artifact, sorted(_REGISTRY))
        hint = f" — did you mean {close}?" if close else ""
        raise KeyError(
            f"unknown artifact {artifact!r}{hint} (known: {known})") \
            from None


def resolve(selector: str) -> list[str]:
    """Artifact ids matching ``selector`` (exact id or fnmatch glob).

    Globs (``fig1*``) expand in canonical artifact order and must match
    at least one artifact; exact names raise the same did-you-mean
    ``KeyError`` as :func:`get`.
    """
    _load()
    if any(ch in selector for ch in "*?["):
        matches = [name for name in all_specs()
                   if fnmatch.fnmatch(name, selector)]
        if not matches:
            known = ", ".join(all_specs())
            raise KeyError(f"artifact pattern {selector!r} matches nothing"
                           f" (known: {known})")
        return matches
    get(selector)
    return [selector]


def all_specs() -> dict[str, SweepSpec]:
    """Every registered sweep, keyed by artifact id, in canonical order."""
    _load()
    ordered = {a: _REGISTRY[a] for a in ARTIFACT_ORDER if a in _REGISTRY}
    for artifact, spec in _REGISTRY.items():
        ordered.setdefault(artifact, spec)
    return ordered
