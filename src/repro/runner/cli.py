"""The unified ``repro`` command-line interface.

``repro run`` (also ``python -m repro run``) regenerates paper artifacts
through the parallel sweep runner::

    repro run --artifacts fig10,fig13 --jobs 4 --format json --out results/

Every artifact's ASCII report is printed to stdout (the reproduction
log); ``--format json|csv`` additionally writes machine-readable results
under ``--out`` together with a ``manifest.json`` of per-artifact
statistics.  A failing artifact never aborts the sweep: the failure is
reported, the remaining artifacts still run, and the exit status is
nonzero.  ``repro list`` shows the registered artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from repro.analysis.report import results_dir, write_csv, write_json
from repro.experiments.common import default_jobs
from repro.runner import registry
from repro.runner.cache import NullCache, ResultCache, default_cache_dir
from repro.runner.scheduler import SweepOutcome, run_sweep


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's artifacts (tables and figures).")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run artifact sweeps (parallel, cached)")
    run.add_argument(
        "--artifacts", default="all",
        help="comma-separated artifact ids, or 'all'"
             f" (known: {', '.join(registry.ARTIFACT_ORDER)})")
    run.add_argument(
        "--jobs", type=int, default=default_jobs(), metavar="N",
        help="worker processes per sweep (default: $REPRO_JOBS or 1)")
    run.add_argument(
        "--format", choices=("ascii", "json", "csv"), default="ascii",
        help="machine-readable output written under --out"
             " (ascii prints the reports only)")
    run.add_argument(
        "--out", default=None, metavar="DIR",
        help="output directory for json/csv results"
             " (default: $REPRO_RESULTS_DIR or results/)")
    run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="point-result cache directory"
             " (default: $REPRO_CACHE_DIR or .repro-cache/)")
    run.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point; do not read or write the cache")
    run.add_argument(
        "--full", action="store_true",
        help="paper-scale sweeps (sets REPRO_FULL=1)")
    run.add_argument(
        "--quiet", action="store_true",
        help="suppress the ASCII reports (progress lines only)")

    lst = sub.add_parser("list", help="list registered artifacts")
    lst.add_argument("--verbose", action="store_true",
                     help="include implementing module and point counts")
    return parser


def _select_artifacts(selector: str) -> list[str]:
    if selector.strip().lower() in ("all", ""):
        return list(registry.all_specs())
    names = [name.strip() for name in selector.split(",") if name.strip()]
    for name in names:
        registry.get(name)  # raises KeyError with the known ids
    return names


def _run_command(args: argparse.Namespace) -> int:
    if args.full:
        os.environ["REPRO_FULL"] = "1"
    try:
        artifacts = _select_artifacts(args.artifacts)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    cache = NullCache() if args.no_cache else ResultCache(
        args.cache_dir or default_cache_dir())
    out_dir = args.out or results_dir()

    outcomes: list[SweepOutcome] = []
    for name in artifacts:
        spec = registry.get(name)
        print("=" * 72)
        print(f"{spec.title} ({spec.module})")
        print("=" * 72)
        outcome = run_sweep(spec, jobs=args.jobs, cache=cache)
        outcomes.append(outcome)
        if outcome.ok:
            if not args.quiet:
                print(spec.report(outcome.result))
            print(f"\n[{spec.title}: {outcome.points} points,"
                  f" {outcome.cache_hits} cached,"
                  f" {outcome.seconds:.1f}s]\n")
            _write_outputs(args, out_dir, spec, outcome)
        else:
            print(f"\nFAILED {spec.artifact}: see stderr\n")
            print(f"--- {spec.artifact} failed "
                  f"({spec.module}) ---\n{outcome.error}", file=sys.stderr)
    if args.format != "ascii":
        write_json(os.path.join(out_dir, "manifest.json"),
                   {"artifacts": [_manifest_entry(o) for o in outcomes]})
    return _summarize(outcomes)


def _write_outputs(args: argparse.Namespace, out_dir: str,
                   spec, outcome: SweepOutcome) -> None:
    if args.format == "json":
        write_json(os.path.join(out_dir, f"{spec.artifact}.json"),
                   _manifest_entry(outcome) | {"result": outcome.result})
    elif args.format == "csv":
        table = _csv_table(spec, outcome.result)
        if table is None:
            print(f"note: {spec.artifact}: no tabular shape for CSV;"
                  " skipped (use --format json)", file=sys.stderr)
        else:
            headers, rows = table
            write_csv(os.path.join(out_dir, f"{spec.artifact}.csv"),
                      headers, rows)


def _csv_table(spec, result: dict) -> tuple[tuple, list] | None:
    """The artifact's main table as (headers, rows), if it has one."""
    for key in ("rows", "summary_rows"):  # fig12's "rows" is a count
        if isinstance(result.get(key), list):
            rows = result[key]
            headers = spec.csv_headers or tuple(
                f"col{i}" for i in range(len(rows[0]) if rows else 0))
            return headers, rows
    series = result.get("series")
    if isinstance(series, dict):  # fig08
        sizes = result.get("sizes_kib") or result.get("sizes") or []
        return (("size_kib",) + tuple(series),
                [[size] + [series[name][i] for name in series]
                 for i, size in enumerate(sizes)])
    if isinstance(result.get("copy"), dict):  # fig10/fig11: long format
        rows = [(workload, size, name, result[workload][name][i])
                for workload in ("copy", "init")
                for name in result[workload]
                for i, size in enumerate(result["sizes"])]
        return ("workload", "size_bytes", "series", "speedup"), rows
    return None


def _manifest_entry(outcome: SweepOutcome) -> dict:
    return {
        "artifact": outcome.artifact,
        "title": outcome.title,
        "ok": outcome.ok,
        "points": outcome.points,
        "cache_hits": outcome.cache_hits,
        "seconds": round(outcome.seconds, 3),
        "error": (outcome.error or "").splitlines()[-1:] or None,
    }


def _summarize(outcomes: list[SweepOutcome]) -> int:
    failed = [o for o in outcomes if not o.ok]
    total = sum(o.seconds for o in outcomes)
    points = sum(o.points for o in outcomes)
    hits = sum(o.cache_hits for o in outcomes)
    print("=" * 72)
    print(f"{len(outcomes)} artifacts, {points} points"
          f" ({hits} cached) in {total:.1f}s")
    if failed:
        names = ", ".join(o.artifact for o in failed)
        print(f"FAILED ({len(failed)}): {names}", file=sys.stderr)
        return 1
    print("all artifacts regenerated")
    return 0


def _list_command(args: argparse.Namespace) -> int:
    for name, spec in registry.all_specs().items():
        if args.verbose:
            points = len(spec.build_points())
            print(f"{name:10s} {spec.title:25s} {points:3d} points"
                  f"  {spec.module}")
        else:
            print(f"{name:10s} {spec.title}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.command == "run":
        return _run_command(args)
    return _list_command(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
