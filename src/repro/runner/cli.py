"""The unified ``repro`` command-line interface.

``repro run`` (also ``python -m repro run``) regenerates paper artifacts
through the parallel sweep runner::

    repro run --artifacts fig10,fig13 --jobs 4 --format json --out results/

Every artifact's ASCII report is printed to stdout (the reproduction
log); ``--format json|csv`` additionally writes machine-readable results
under ``--out`` together with a ``manifest.json`` of per-artifact
statistics.  A failing artifact never aborts the sweep: the failure is
reported, the remaining artifacts still run, and the exit status is
nonzero.  ``repro list`` shows the registered artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from repro.analysis.report import results_dir, write_csv, write_json
from repro.experiments.common import default_jobs
from repro.runner import registry
from repro.runner.cache import NullCache, ResultCache, default_cache_dir
from repro.runner.scheduler import SweepOutcome, run_sweep


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's artifacts (tables and figures).")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run artifact sweeps (parallel, cached)")
    run.add_argument(
        "--artifacts", default="all",
        help="comma-separated artifact ids, or 'all'"
             f" (known: {', '.join(registry.ARTIFACT_ORDER)})")
    run.add_argument(
        "--jobs", type=int, default=default_jobs(), metavar="N",
        help="worker processes per sweep (default: $REPRO_JOBS or 1)")
    run.add_argument(
        "--format", choices=("ascii", "json", "csv"), default="ascii",
        help="machine-readable output written under --out"
             " (ascii prints the reports only)")
    run.add_argument(
        "--out", default=None, metavar="DIR",
        help="output directory for json/csv results"
             " (default: $REPRO_RESULTS_DIR or results/)")
    run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="point-result cache directory"
             " (default: $REPRO_CACHE_DIR or .repro-cache/)")
    run.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point; do not read or write the cache")
    run.add_argument(
        "--full", action="store_true",
        help="paper-scale sweeps (sets REPRO_FULL=1)")
    run.add_argument(
        "--quiet", action="store_true",
        help="suppress the ASCII reports (progress lines only)")
    run.add_argument(
        "--bench", action="store_true",
        help="run the emulation-speed benchmark harness instead of"
             " artifact sweeps; writes BENCH_emulation.json under --out"
             " and fails on >20%% speedup regression vs the checked-in"
             " baseline")
    run.add_argument(
        "--list", action="store_true", dest="list_artifacts",
        help="list the registered artifacts (with descriptions and"
             " default runtimes) instead of running anything")

    lst = sub.add_parser(
        "list",
        help="list registered artifacts with descriptions and runtimes")
    lst.add_argument("--verbose", action="store_true",
                     help="include implementing module and point counts")

    prof = sub.add_parser(
        "profile",
        help="host-time layer breakdown (trace gen / cache / SMC / device)")
    prof.add_argument(
        "--artifact", default="fig08",
        help="experiment artifact to profile (default: fig08)")
    prof.add_argument(
        "--json", action="store_true", help="emit the breakdown as JSON")
    return parser


def _load_bench_harness():
    """Import ``benchmarks/harness.py`` from the repository checkout.

    The benchmark harness intentionally lives next to the benchmark
    suite (not inside the installed package); resolve it relative to the
    working directory or the source tree.
    """
    import importlib.util

    here = os.path.dirname(os.path.abspath(__file__))
    candidates = [
        os.path.join(os.getcwd(), "benchmarks", "harness.py"),
        os.path.normpath(os.path.join(
            here, "..", "..", "..", "benchmarks", "harness.py")),
    ]
    for path in candidates:
        if os.path.exists(path):
            spec = importlib.util.spec_from_file_location(
                "repro_bench_harness", path)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            return module
    raise FileNotFoundError(
        "benchmarks/harness.py not found; run from a repository checkout")


def _bench_command(args: argparse.Namespace) -> int:
    try:
        harness = _load_bench_harness()
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out_dir = args.out or results_dir()
    os.makedirs(out_dir, exist_ok=True)
    out_path = os.path.join(out_dir, "BENCH_emulation.json")
    return harness.main(["--out", out_path, "--check"])


def _profile_command(args: argparse.Namespace) -> int:
    from repro.profiling.characterize import layer_breakdown_for_artifact

    try:
        breakdown = layer_breakdown_for_artifact(args.artifact)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(breakdown, indent=2))
        return 0
    total = breakdown["total_s"]
    print(f"host-time layer breakdown — {args.artifact}"
          f" ({breakdown['point_id']}, {total:.3f}s total)")
    for layer in ("trace_gen", "cache", "smc", "device", "other"):
        seconds = breakdown[f"{layer}_s"]
        share = 100.0 * seconds / total if total else 0.0
        print(f"  {layer:10s} {seconds:8.3f}s  {share:5.1f}%")
    return 0


def _select_artifacts(selector: str) -> list[str]:
    if selector.strip().lower() in ("all", ""):
        return list(registry.all_specs())
    names = [name.strip() for name in selector.split(",") if name.strip()]
    for name in names:
        registry.get(name)  # raises KeyError with the known ids
    return names


def _run_command(args: argparse.Namespace) -> int:
    if args.list_artifacts:
        return _list_command(argparse.Namespace(verbose=False))
    if args.bench:
        return _bench_command(args)
    if args.full:
        os.environ["REPRO_FULL"] = "1"
    try:
        artifacts = _select_artifacts(args.artifacts)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    cache = NullCache() if args.no_cache else ResultCache(
        args.cache_dir or default_cache_dir())
    out_dir = args.out or results_dir()

    outcomes: list[SweepOutcome] = []
    for name in artifacts:
        spec = registry.get(name)
        print("=" * 72)
        print(f"{spec.title} ({spec.module})")
        print("=" * 72)
        outcome = run_sweep(spec, jobs=args.jobs, cache=cache)
        outcomes.append(outcome)
        if outcome.ok:
            if not args.quiet:
                print(spec.report(outcome.result))
            print(f"\n[{spec.title}: {outcome.points} points,"
                  f" {outcome.cache_hits} cached,"
                  f" {outcome.seconds:.1f}s]\n")
            _write_outputs(args, out_dir, spec, outcome)
        else:
            print(f"\nFAILED {spec.artifact}: see stderr\n")
            print(f"--- {spec.artifact} failed "
                  f"({spec.module}) ---\n{outcome.error}", file=sys.stderr)
    if args.format != "ascii":
        write_json(os.path.join(out_dir, "manifest.json"),
                   {"artifacts": [_manifest_entry(o) for o in outcomes]})
    return _summarize(outcomes)


def _write_outputs(args: argparse.Namespace, out_dir: str,
                   spec, outcome: SweepOutcome) -> None:
    if args.format == "json":
        write_json(os.path.join(out_dir, f"{spec.artifact}.json"),
                   _manifest_entry(outcome) | {"result": outcome.result})
    elif args.format == "csv":
        table = _csv_table(spec, outcome.result)
        if table is None:
            print(f"note: {spec.artifact}: no tabular shape for CSV;"
                  " skipped (use --format json)", file=sys.stderr)
        else:
            headers, rows = table
            write_csv(os.path.join(out_dir, f"{spec.artifact}.csv"),
                      headers, rows)


def _csv_table(spec, result: dict) -> tuple[tuple, list] | None:
    """The artifact's main table as (headers, rows), if it has one."""
    for key in ("rows", "summary_rows"):  # fig12's "rows" is a count
        if isinstance(result.get(key), list):
            rows = result[key]
            headers = spec.csv_headers or tuple(
                f"col{i}" for i in range(len(rows[0]) if rows else 0))
            return headers, rows
    series = result.get("series")
    if isinstance(series, dict):  # fig08
        sizes = result.get("sizes_kib") or result.get("sizes") or []
        return (("size_kib",) + tuple(series),
                [[size] + [series[name][i] for name in series]
                 for i, size in enumerate(sizes)])
    if isinstance(result.get("copy"), dict):  # fig10/fig11: long format
        rows = [(workload, size, name, result[workload][name][i])
                for workload in ("copy", "init")
                for name in result[workload]
                for i, size in enumerate(result["sizes"])]
        return ("workload", "size_bytes", "series", "speedup"), rows
    return None


def _manifest_entry(outcome: SweepOutcome) -> dict:
    return {
        "artifact": outcome.artifact,
        "title": outcome.title,
        "ok": outcome.ok,
        "points": outcome.points,
        "cache_hits": outcome.cache_hits,
        "seconds": round(outcome.seconds, 3),
        "error": (outcome.error or "").splitlines()[-1:] or None,
    }


def _summarize(outcomes: list[SweepOutcome]) -> int:
    failed = [o for o in outcomes if not o.ok]
    total = sum(o.seconds for o in outcomes)
    points = sum(o.points for o in outcomes)
    hits = sum(o.cache_hits for o in outcomes)
    print("=" * 72)
    print(f"{len(outcomes)} artifacts, {points} points"
          f" ({hits} cached) in {total:.1f}s")
    if failed:
        names = ", ".join(o.artifact for o in failed)
        print(f"FAILED ({len(failed)}): {names}", file=sys.stderr)
        return 1
    print("all artifacts regenerated")
    return 0


def _list_command(args: argparse.Namespace) -> int:
    """One line per artifact: id, title, runtime, and description.

    The point of the listing is that nobody should have to grep
    ``experiments/`` to learn what an artifact regenerates or roughly
    how long a cold run takes.
    """
    specs = registry.all_specs()
    title_width = max(len(spec.title) for spec in specs.values())
    for name, spec in specs.items():
        runtime = spec.runtime or "?"
        line = (f"{name:10s} {spec.title:{title_width}s} {runtime:>6s}"
                f"  {spec.description}")
        print(line.rstrip())
        if args.verbose:
            points = len(spec.build_points())
            print(f"{'':10s} {points} points, {spec.module}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.command == "run":
        return _run_command(args)
    if args.command == "profile":
        return _profile_command(args)
    return _list_command(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
