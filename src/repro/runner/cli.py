"""The unified ``repro`` command-line interface.

``repro run`` (also ``python -m repro run``) regenerates paper artifacts
through the parallel sweep runner::

    repro run --artifacts fig10,fig13 --jobs 4 --format json --out results/
    repro run --spec specs/default.yaml --shard 2/3

Every artifact's ASCII report is printed to stdout (the reproduction
log); ``--format json|csv`` additionally writes machine-readable results
under ``--out`` together with a ``manifest.json`` of per-artifact
statistics.  A failing artifact never aborts the sweep: the failure is
reported, the remaining artifacts still run, and the exit status is
nonzero.  ``repro list`` shows the registered artifacts.

Declarative specs (``specs/*.yaml``) get their own verbs: ``validate``
(schema + knob/registry cross-checks), ``plan`` (points, cache hits,
estimated runtime — without running), ``diff`` (semantic delta between
two specs), and ``hash`` (content address + lockfile drift gate).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from repro.analysis.report import results_dir, write_csv, write_json
from repro.experiments.common import default_jobs
from repro.runner import registry
from repro.runner.cache import NullCache, ResultCache, default_cache_dir
from repro.runner.scheduler import SweepOutcome, run_sweep

_EPILOG = """\
verbs:
  run        execute artifact sweeps (ad-hoc --artifacts or --spec, with
             optional --shard k/N slicing into a shared result cache)
  list       describe every registered artifact
  profile    host-time layer breakdown of one artifact
  validate   schema- and cross-check experiment specs (file:line errors)
  plan       preview a spec: points, cache hits, estimated runtime
  diff       semantic delta between two specs
  hash       spec content address + run fingerprint; --check gates
             specs/HASHES.json like the KNOBS.md drift gate
  serve      long-running HTTP service: async job queue + SQL result
             store (submissions dedupe by run fingerprint)
  submit     send an artifact or spec to a running service
  query      read-only SQL over the service's result store

Specs are documented in docs/EXPERIMENTS.md; knobs in docs/KNOBS.md;
the service in docs/SERVICE.md."""


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's artifacts (tables and figures).",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run artifact sweeps (parallel, cached)")
    run.add_argument(
        "--artifacts", default="all",
        help="comma-separated artifact ids or globs ('fig1*'), or 'all'"
             f" (known: {', '.join(registry.ARTIFACT_ORDER)})")
    run.add_argument(
        "--spec", default=None, metavar="FILE",
        help="run a declarative experiment spec (specs/*.yaml) instead"
             " of --artifacts")
    run.add_argument(
        "--shard", default=None, metavar="K/N",
        help="with --spec: evaluate only the k-th of N deterministic"
             " point slices into the shared cache (no combine); merge by"
             " re-running the spec unsharded over the same cache")
    run.add_argument(
        "--jobs", type=int, default=default_jobs(), metavar="N",
        help="worker processes per sweep (default: $REPRO_JOBS or 1)")
    run.add_argument(
        "--format", choices=("ascii", "json", "csv"), default="ascii",
        help="machine-readable output written under --out"
             " (ascii prints the reports only)")
    run.add_argument(
        "--out", default=None, metavar="DIR",
        help="output directory for json/csv results"
             " (default: $REPRO_RESULTS_DIR or results/)")
    run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="point-result cache directory"
             " (default: $REPRO_CACHE_DIR or .repro-cache/)")
    run.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point; do not read or write the cache")
    run.add_argument(
        "--full", action="store_true",
        help="paper-scale sweeps (sets REPRO_FULL=1)")
    run.add_argument(
        "--quiet", action="store_true",
        help="suppress the ASCII reports (progress lines only)")
    run.add_argument(
        "--bench", action="store_true",
        help="run the emulation-speed benchmark harness instead of"
             " artifact sweeps; writes BENCH_emulation.json under --out"
             " and fails on >20%% speedup regression vs the checked-in"
             " baseline")
    run.add_argument(
        "--list", action="store_true", dest="list_artifacts",
        help="list the registered artifacts (with descriptions and"
             " default runtimes) instead of running anything")

    lst = sub.add_parser(
        "list",
        help="list registered artifacts with descriptions and runtimes")
    lst.add_argument("--verbose", action="store_true",
                     help="include implementing module and point counts")

    prof = sub.add_parser(
        "profile",
        help="host-time layer breakdown (trace gen / cache / SMC / device)")
    prof.add_argument(
        "--artifact", default="fig08",
        help="experiment artifact to profile (default: fig08)")
    prof.add_argument(
        "--json", action="store_true", help="emit the breakdown as JSON")

    val = sub.add_parser(
        "validate",
        help="schema-check experiment specs and cross-check them against"
             " the artifact registry and knob inventory")
    val.add_argument("specs", nargs="+", metavar="SPEC",
                     help="spec files (specs/*.yaml)")

    plan = sub.add_parser(
        "plan",
        help="preview a spec: enumerated points, cache hits, and"
             " estimated runtime, without running anything")
    plan.add_argument("spec", metavar="SPEC", help="spec file to plan")
    plan.add_argument(
        "--shard", default=None, metavar="K/N",
        help="plan one deterministic shard slice instead of the full run")
    plan.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache to probe for hits (default: $REPRO_CACHE_DIR or"
             " .repro-cache/)")
    plan.add_argument(
        "--json", action="store_true", help="emit the plan as JSON")

    dif = sub.add_parser(
        "diff", help="semantic delta between two experiment specs"
                     " (exit 1 when they differ)")
    dif.add_argument("spec_a", metavar="SPEC_A", help="old spec file")
    dif.add_argument("spec_b", metavar="SPEC_B", help="new spec file")

    hsh = sub.add_parser(
        "hash",
        help="content addresses of experiment specs; --check fails on"
             " stale specs/HASHES.json entries (like the KNOBS.md gate)")
    hsh.add_argument("specs", nargs="+", metavar="SPEC",
                     help="spec files (specs/*.yaml)")
    mode = hsh.add_mutually_exclusive_group()
    mode.add_argument(
        "--check", action="store_true",
        help="verify the recorded hashes match; do not write")
    mode.add_argument(
        "--update", action="store_true",
        help="rewrite the HASHES.json lockfile(s) next to the specs")
    hsh.add_argument(
        "--json", action="store_true", help="emit the hashes as JSON")

    srv = sub.add_parser(
        "serve",
        help="run the persistent simulation service (HTTP job queue"
             " over a DuckDB/sqlite result store)")
    srv.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: loopback only)")
    srv.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="port to listen on (default: $REPRO_SERVE_PORT or 8642;"
             " 0 picks an ephemeral port)")
    srv.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="job-queue worker threads"
             " (default: $REPRO_SERVE_WORKERS or 2)")
    srv.add_argument(
        "--store", default=None, metavar="FILE",
        help="result-store database file (default: $REPRO_SERVE_STORE"
             " or .repro-serve/results.db)")
    srv.add_argument(
        "--backend", choices=("auto", "duckdb", "sqlite"), default=None,
        help="SQL backend (default: $REPRO_SERVE_BACKEND or auto ="
             " duckdb when installed, else stdlib sqlite)")
    srv.add_argument(
        "--verbose", action="store_true",
        help="log every HTTP request to stderr")

    sbm = sub.add_parser(
        "submit",
        help="submit an artifact or spec to a running `repro serve`")
    sbm.add_argument(
        "--url", default=None, metavar="URL",
        help="service base URL (default: $REPRO_SERVE_URL or"
             " http://127.0.0.1:8642)")
    sbm.add_argument(
        "--artifact", default=None, metavar="ID",
        help="artifact id to run (see `repro list`)")
    sbm.add_argument(
        "--spec", default=None, metavar="FILE",
        help="spec file to submit (its YAML text is posted)")
    sbm.add_argument(
        "--overrides", default=None, metavar="JSON",
        help="JSON object of point-builder overrides,"
             " e.g. '{\"sizes\": [8192]}'")
    sbm.add_argument(
        "--point", action="append", default=None, metavar="ID",
        help="run only this point id (repeatable); the response carries"
             " per-point values instead of the combined artifact")
    sbm.add_argument(
        "--no-wait", action="store_true",
        help="return the job id immediately instead of blocking for"
             " the payload")
    sbm.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="seconds to wait for completion (with the default"
             " blocking submit)")
    sbm.add_argument(
        "--json", action="store_true",
        help="print the raw response JSON (including the payload)")

    qry = sub.add_parser(
        "query",
        help="read-only SQL over a running service's result store")
    qry.add_argument("sql", metavar="SQL",
                     help="a single SELECT-shaped statement, e.g."
                          " \"SELECT artifact, count(*) FROM points"
                          " GROUP BY artifact\"")
    qry.add_argument(
        "--url", default=None, metavar="URL",
        help="service base URL (default: $REPRO_SERVE_URL or"
             " http://127.0.0.1:8642)")
    qry.add_argument(
        "--json", action="store_true",
        help="emit {columns, rows} as JSON instead of an ASCII table")
    return parser


def _load_bench_harness():
    """Import ``benchmarks/harness.py`` from the repository checkout.

    The benchmark harness intentionally lives next to the benchmark
    suite (not inside the installed package); resolve it relative to the
    working directory or the source tree.
    """
    import importlib.util

    here = os.path.dirname(os.path.abspath(__file__))
    candidates = [
        os.path.join(os.getcwd(), "benchmarks", "harness.py"),
        os.path.normpath(os.path.join(
            here, "..", "..", "..", "benchmarks", "harness.py")),
    ]
    for path in candidates:
        if os.path.exists(path):
            spec = importlib.util.spec_from_file_location(
                "repro_bench_harness", path)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            return module
    raise FileNotFoundError(
        "benchmarks/harness.py not found; run from a repository checkout")


def _bench_command(args: argparse.Namespace) -> int:
    try:
        harness = _load_bench_harness()
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out_dir = args.out or results_dir()
    os.makedirs(out_dir, exist_ok=True)
    out_path = os.path.join(out_dir, "BENCH_emulation.json")
    return harness.main(["--out", out_path, "--check"])


def _profile_command(args: argparse.Namespace) -> int:
    from repro.profiling.characterize import layer_breakdown_for_artifact

    try:
        breakdown = layer_breakdown_for_artifact(args.artifact)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(breakdown, indent=2))
        return 0
    total = breakdown["total_s"]
    print(f"host-time layer breakdown — {args.artifact}"
          f" ({breakdown['point_id']}, {total:.3f}s total)")
    for layer in ("trace_gen", "cache", "smc", "device", "kernel", "other"):
        seconds = breakdown[f"{layer}_s"]
        share = 100.0 * seconds / total if total else 0.0
        print(f"  {layer:10s} {seconds:8.3f}s  {share:5.1f}%")
    fallbacks = breakdown.get("kernel_fallbacks") or {}
    for reason, count in sorted(fallbacks.items(), key=lambda kv: -kv[1]):
        print(f"  kernel fallback: {reason} ({count} serves)")
    return 0


def _select_artifacts(selector: str) -> list[str]:
    """Expand a comma-separated list of ids and globs, in given order."""
    if selector.strip().lower() in ("all", ""):
        return list(registry.all_specs())
    names: list[str] = []
    for token in selector.split(","):
        token = token.strip()
        if not token:
            continue
        for name in registry.resolve(token):  # KeyError: did-you-mean
            if name not in names:
                names.append(name)
    return names


def _print_outcome(args: argparse.Namespace, out_dir: str, spec,
                   outcome: SweepOutcome) -> None:
    """Report one finished sweep (full, partial, or failed) to the user."""
    if not outcome.ok:
        print(f"\nFAILED {spec.artifact}: see stderr\n")
        print(f"--- {spec.artifact} failed "
              f"({spec.module}) ---\n{outcome.error}", file=sys.stderr)
        return
    if outcome.partial:
        print(f"[{spec.title}: partial, {outcome.selected}/{outcome.points}"
              f" points evaluated ({outcome.cache_hits} cached),"
              f" {outcome.seconds:.1f}s — no combine]\n")
        return
    if not args.quiet:
        print(spec.report(outcome.result))
    print(f"\n[{spec.title}: {outcome.points} points,"
          f" {outcome.cache_hits} cached,"
          f" {outcome.seconds:.1f}s]\n")
    _write_outputs(args, out_dir, spec, outcome)


def _run_command(args: argparse.Namespace) -> int:
    if args.list_artifacts:
        return _list_command(argparse.Namespace(verbose=False))
    if args.bench:
        return _bench_command(args)
    if args.full:
        os.environ["REPRO_FULL"] = "1"
    if args.spec is not None:
        return _run_spec_command(args)
    if args.shard is not None:
        print("error: --shard requires --spec (shards are deterministic"
              " slices of a spec's point enumeration)", file=sys.stderr)
        return 2
    try:
        artifacts = _select_artifacts(args.artifacts)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    cache = NullCache() if args.no_cache else ResultCache(
        args.cache_dir or default_cache_dir())
    out_dir = args.out or results_dir()

    outcomes: list[SweepOutcome] = []
    for name in artifacts:
        spec = registry.get(name)
        print("=" * 72)
        print(f"{spec.title} ({spec.module})")
        print("=" * 72)
        outcome = run_sweep(spec, jobs=args.jobs, cache=cache)
        outcomes.append(outcome)
        _print_outcome(args, out_dir, spec, outcome)
    if args.format != "ascii":
        write_json(os.path.join(out_dir, "manifest.json"),
                   {"artifacts": [_manifest_entry(o) for o in outcomes]})
    return _summarize(outcomes)


def _load_compiled(path: str):
    """Load + compile a spec, printing every problem; None on failure."""
    from repro.specs import SpecLoadError, SpecValidationError, \
        load_and_compile

    try:
        return load_and_compile(path)
    except SpecLoadError as exc:
        print(f"error: {exc}", file=sys.stderr)
    except SpecValidationError as exc:
        for problem in exc.problems:
            print(f"error: {problem}", file=sys.stderr)
    return None


def _parse_shard_arg(text: str) -> tuple[int, int] | None:
    from repro.specs import parse_shard

    try:
        return parse_shard(text)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _run_spec_command(args: argparse.Namespace) -> int:
    from repro.specs import applied_env, run_fingerprint, shard_selection, \
        spec_hash

    compiled = _load_compiled(args.spec)
    if compiled is None:
        return 2
    shard = None
    if args.shard is not None:
        shard = _parse_shard_arg(args.shard)
        if shard is None:
            return 2
        if args.no_cache:
            print("error: --shard needs the result cache (its whole"
                  " output is content-addressed partials); drop"
                  " --no-cache", file=sys.stderr)
            return 2
    cache = NullCache() if args.no_cache else ResultCache(
        args.cache_dir or default_cache_dir())
    out_dir = args.out or results_dir()
    spec_doc = compiled.spec
    selection = shard_selection(compiled, *shard) if shard else None

    outcomes: list[SweepOutcome] = []
    with applied_env(spec_doc.env):
        for entry in compiled.entries:
            sweep = entry.sweep
            if selection is not None:
                only = selection[sweep.artifact]
                do_combine = False
            else:
                only = tuple(p.point_id for p in entry.selected) \
                    if entry.filtered else None
                do_combine = True
            print("=" * 72)
            print(f"{sweep.title} ({sweep.module})"
                  + (f" [shard {args.shard}]" if shard else ""))
            print("=" * 72)
            outcome = run_sweep(sweep, jobs=args.jobs, cache=cache,
                                overrides=entry.overrides, only=only,
                                do_combine=do_combine)
            outcomes.append(outcome)
            _print_outcome(args, out_dir, sweep, outcome)
    manifest = {
        "spec": spec_doc.name,
        "spec_path": spec_doc.path,
        "spec_hash": spec_hash(spec_doc),
        "run_fingerprint": run_fingerprint(spec_doc),
        "shard": args.shard,
        "artifacts": [_manifest_entry(o) for o in outcomes],
    }
    if shard is not None:
        index, count = shard
        manifest["points"] = {
            name: list(ids) for name, ids in selection.items()}
        path = os.path.join(out_dir,
                            f"shard-{index}-of-{count}.json")
        write_json(path, manifest)
        print(f"wrote shard manifest {path}")
    elif args.format != "ascii":
        write_json(os.path.join(out_dir, "manifest.json"), manifest)
    return _summarize(outcomes)


def _validate_command(args: argparse.Namespace) -> int:
    rc = 0
    from repro.specs import spec_hash

    for path in args.specs:
        compiled = _load_compiled(path)
        if compiled is None:
            rc = 2
            continue
        print(f"OK {path}: spec {compiled.spec.name!r}"
              f" ({len(compiled.entries)} artifacts,"
              f" {compiled.total_points()} points,"
              f" hash {spec_hash(compiled.spec)})")
    return rc


def _plan_command(args: argparse.Namespace) -> int:
    from repro.specs import plan_spec, shard_selection

    compiled = _load_compiled(args.spec)
    if compiled is None:
        return 2
    selection = None
    if args.shard is not None:
        shard = _parse_shard_arg(args.shard)
        if shard is None:
            return 2
        selection = shard_selection(compiled, *shard)
    cache = ResultCache(args.cache_dir or default_cache_dir())
    report = plan_spec(compiled, cache, selection)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    label = f"plan — {report['spec']} ({report['path']})"
    if args.shard:
        label += f", shard {args.shard}"
    print(label)
    print(f"spec hash {report['spec_hash']}, run fingerprint"
          f" {report['run_fingerprint']}")
    print(f"{'artifact':10s} {'points':>7s} {'cached':>7s} {'to run':>7s}"
          f"  {'est':>8s}")
    for row in report["artifacts"]:
        est = f"~{row['est_seconds']:.0f}s" if row["est_seconds"] else "-"
        print(f"{row['artifact']:10s} {row['selected']:7d}"
              f" {row['cached']:7d} {row['to_run']:7d}  {est:>8s}")
    est_total = report["est_seconds"]
    est_text = f", est ~{est_total:.0f}s to run" if est_total else ""
    print(f"total: {report['total_selected']} points,"
          f" {report['total_cached']} cached,"
          f" {report['total_to_run']} to run{est_text}")
    return 0


def _diff_command(args: argparse.Namespace) -> int:
    from repro.specs import SpecLoadError, SpecValidationError, \
        diff_specs, load_spec

    specs = []
    for path in (args.spec_a, args.spec_b):
        try:
            specs.append(load_spec(path))
        except SpecLoadError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except SpecValidationError as exc:
            for problem in exc.problems:
                print(f"error: {problem}", file=sys.stderr)
            return 2
    changes = diff_specs(*specs)
    if not changes:
        print(f"{args.spec_a} and {args.spec_b} are semantically"
              " identical")
        return 0
    for line in changes:
        print(line)
    return 1


def _hash_command(args: argparse.Namespace) -> int:
    # Hashing is schema-level on purpose: a spec's address must not
    # depend on which artifacts this checkout happens to register.
    from repro.specs import SpecLoadError, SpecValidationError, \
        check_hash, load_spec, run_fingerprint, spec_hash, update_hashes

    specs = []
    rc = 0
    for path in args.specs:
        try:
            specs.append(load_spec(path))
        except SpecLoadError as exc:
            print(f"error: {exc}", file=sys.stderr)
            rc = 2
        except SpecValidationError as exc:
            for problem in exc.problems:
                print(f"error: {problem}", file=sys.stderr)
            rc = 2
    if rc:
        return rc
    if args.update:
        for lock in update_hashes(specs):
            print(f"wrote {lock}")
        return 0
    if args.check:
        problems = [p for p in (check_hash(s) for s in specs) if p]
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"{len(specs)} spec hash(es) up to date")
        return 0
    if args.json:
        print(json.dumps([{
            "path": s.path,
            "spec_hash": spec_hash(s),
            "run_fingerprint": run_fingerprint(s),
        } for s in specs], indent=2))
        return 0
    for spec in specs:
        print(f"{spec_hash(spec)}  {run_fingerprint(spec)}  {spec.path}")
    return 0


def _serve_command(args: argparse.Namespace) -> int:
    from repro.serve import ResultStore, StoreError, refresh_staleness
    from repro.serve.server import make_server

    try:
        store = ResultStore(args.store, backend=args.backend)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = refresh_staleness(store)
    if report.flagged:
        print(f"note: flagged {report.points_flagged} point row(s) and"
              f" {report.jobs_flagged} job row(s) stale (computed by"
              " other source trees; still queryable)")
    server = make_server(args.host, args.port, store=store,
                         workers=args.workers, verbose=args.verbose)
    print(f"repro serve listening on {server.url}")
    print(f"  store   {store.path} ({store.backend})")
    print(f"  workers {server.queue.workers}, code fingerprint"
          f" {store.code()}")
    print("  endpoints: POST /submit, GET /status/<job>,"
          " GET /result/<job>, POST /query, GET /health")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.close()
    return 0


def _submit_command(args: argparse.Namespace) -> int:
    from repro.serve import ServiceClient, ServiceError

    if bool(args.artifact) == bool(args.spec):
        print("error: pass exactly one of --artifact ID or --spec FILE",
              file=sys.stderr)
        return 2
    overrides = None
    if args.overrides:
        try:
            overrides = json.loads(args.overrides)
        except ValueError as exc:
            print(f"error: --overrides is not valid JSON: {exc}",
                  file=sys.stderr)
            return 2
    spec_text = None
    if args.spec:
        try:
            with open(args.spec, encoding="utf-8") as handle:
                spec_text = handle.read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    client = ServiceClient(args.url, timeout=args.timeout + 30.0)
    try:
        response = client.submit(
            artifact=args.artifact, spec_text=spec_text,
            overrides=overrides, points=args.point,
            wait=None if args.no_wait else args.timeout)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(response, indent=2))
    else:
        state = response.get("state")
        source = "store cache hit" if response.get("cached") else (
            "coalesced onto an in-flight run"
            if response.get("coalesced") else "executed")
        print(f"{response.get('job_id')}: {state} ({source},"
              f" fingerprint {response.get('fingerprint')})")
        if state == "done" and "result" in response:
            print(json.dumps(response["result"], indent=2))
    if response.get("state") == "failed":
        print(f"error: job failed:\n{response.get('error')}",
              file=sys.stderr)
        return 1
    return 0


def _query_command(args: argparse.Namespace) -> int:
    from repro.serve import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        table = client.query(args.sql)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2 if exc.status in (0, 404) else 1
    if args.json:
        print(json.dumps(table, indent=2))
        return 0
    columns, rows = table.get("columns", []), table.get("rows", [])
    widths = [max([len(str(c))] + [len(str(r[i])) for r in rows])
              for i, c in enumerate(columns)]
    print("  ".join(str(c).ljust(w) for c, w in zip(columns, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    print(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    return 0


def _write_outputs(args: argparse.Namespace, out_dir: str,
                   spec, outcome: SweepOutcome) -> None:
    if args.format == "json":
        write_json(os.path.join(out_dir, f"{spec.artifact}.json"),
                   _manifest_entry(outcome) | {"result": outcome.result})
    elif args.format == "csv":
        table = _csv_table(spec, outcome.result)
        if table is None:
            print(f"note: {spec.artifact}: no tabular shape for CSV;"
                  " skipped (use --format json)", file=sys.stderr)
        else:
            headers, rows = table
            write_csv(os.path.join(out_dir, f"{spec.artifact}.csv"),
                      headers, rows)


def _csv_table(spec, result: dict) -> tuple[tuple, list] | None:
    """The artifact's main table as (headers, rows), if it has one."""
    for key in ("rows", "summary_rows"):  # fig12's "rows" is a count
        if isinstance(result.get(key), list):
            rows = result[key]
            headers = spec.csv_headers or tuple(
                f"col{i}" for i in range(len(rows[0]) if rows else 0))
            return headers, rows
    series = result.get("series")
    if isinstance(series, dict):  # fig08
        sizes = result.get("sizes_kib") or result.get("sizes") or []
        return (("size_kib",) + tuple(series),
                [[size] + [series[name][i] for name in series]
                 for i, size in enumerate(sizes)])
    if isinstance(result.get("copy"), dict):  # fig10/fig11: long format
        rows = [(workload, size, name, result[workload][name][i])
                for workload in ("copy", "init")
                for name in result[workload]
                for i, size in enumerate(result["sizes"])]
        return ("workload", "size_bytes", "series", "speedup"), rows
    return None


def _manifest_entry(outcome: SweepOutcome) -> dict:
    return {
        "artifact": outcome.artifact,
        "title": outcome.title,
        "ok": outcome.ok,
        "points": outcome.points,
        "selected": outcome.selected,
        "partial": outcome.partial,
        "cache_hits": outcome.cache_hits,
        "seconds": round(outcome.seconds, 3),
        "error": (outcome.error or "").splitlines()[-1:] or None,
    }


def _summarize(outcomes: list[SweepOutcome]) -> int:
    failed = [o for o in outcomes if not o.ok]
    partial = [o for o in outcomes if o.ok and o.partial]
    total = sum(o.seconds for o in outcomes)
    points = sum(o.selected if o.partial else o.points for o in outcomes)
    hits = sum(o.cache_hits for o in outcomes)
    print("=" * 72)
    print(f"{len(outcomes)} artifacts, {points} points"
          f" ({hits} cached) in {total:.1f}s")
    if failed:
        names = ", ".join(o.artifact for o in failed)
        print(f"FAILED ({len(failed)}): {names}", file=sys.stderr)
        return 1
    if partial:
        print(f"all points evaluated ({len(partial)} partial sweeps;"
              " combine by re-running unsharded over the same cache)")
    else:
        print("all artifacts regenerated")
    return 0


def _list_command(args: argparse.Namespace) -> int:
    """One line per artifact: id, title, runtime, and description.

    The point of the listing is that nobody should have to grep
    ``experiments/`` to learn what an artifact regenerates or roughly
    how long a cold run takes.
    """
    specs = registry.all_specs()
    title_width = max(len(spec.title) for spec in specs.values())
    for name, spec in specs.items():
        runtime = spec.runtime or "?"
        line = (f"{name:10s} {spec.title:{title_width}s} {runtime:>6s}"
                f"  {spec.description}")
        print(line.rstrip())
        if args.verbose:
            points = len(spec.build_points())
            print(f"{'':10s} {points} points, {spec.module}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    commands = {
        "run": _run_command,
        "profile": _profile_command,
        "validate": _validate_command,
        "plan": _plan_command,
        "diff": _diff_command,
        "hash": _hash_command,
        "list": _list_command,
        "serve": _serve_command,
        "submit": _submit_command,
        "query": _query_command,
    }
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
