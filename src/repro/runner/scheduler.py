"""Parallel sweep execution with cached results.

:func:`run_sweep` executes one artifact's sweep: cached points are read
back from disk, the remaining points run either in-process (``jobs=1``)
or sharded across a ``ProcessPoolExecutor`` (experiments are
deterministic and every point builds its own fresh systems, so points
are embarrassingly parallel), and the combined artifact dict is returned
together with execution statistics.  :func:`run_artifacts` drives a list
of sweeps and never lets one failing artifact abort the rest — the
failure is captured in its outcome and reported at the end.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Collection, Iterable, Mapping

from repro.runner.cache import NullCache
from repro.runner.spec import SweepPoint, SweepSpec, evaluate_point


@dataclass
class SweepOutcome:
    """What happened when one artifact's sweep ran."""

    artifact: str
    title: str
    result: dict | None = None
    error: str | None = None
    points: int = 0
    cache_hits: int = 0
    seconds: float = 0.0
    point_ids: tuple[str, ...] = field(default=())
    #: True for shard slices: only a subset of the sweep's points was
    #: evaluated (into the cache) and ``combine`` never ran, so
    #: ``result`` is None even though the run succeeded.
    partial: bool = False
    #: Points actually evaluated or read back (== ``points`` unless the
    #: run was restricted with ``only``).
    selected: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


def _check_points(spec: SweepSpec,
                  points: Iterable[SweepPoint]) -> tuple[SweepPoint, ...]:
    points = tuple(points)
    if not points:
        raise ValueError(f"sweep {spec.artifact!r} built no points")
    seen: set[str] = set()
    for point in points:
        if point.artifact != spec.artifact:
            raise ValueError(
                f"point {point.point_id!r} belongs to {point.artifact!r},"
                f" not {spec.artifact!r}")
        if point.point_id in seen:
            raise ValueError(
                f"sweep {spec.artifact!r} built duplicate point"
                f" {point.point_id!r}")
        seen.add(point.point_id)
    return points


def run_sweep(spec: SweepSpec, jobs: int = 1, cache: NullCache | None = None,
              overrides: Mapping[str, Any] | None = None,
              only: Collection[str] | None = None,
              do_combine: bool = True) -> SweepOutcome:
    """Execute one sweep and combine its artifact dict.

    ``jobs`` bounds the worker processes; ``cache`` (a ``ResultCache`` or
    ``NullCache``) supplies and absorbs point results; ``overrides`` are
    keyword arguments forwarded to the spec's point builder.

    ``only`` restricts execution to the named point ids (a shard slice or
    a spec's point filter); with ``do_combine=False`` the results go to
    the cache but ``combine`` is skipped and the outcome is marked
    ``partial`` — the mode shard workers run in, leaving the final
    cache-fed combine to the merge step.
    """
    cache = cache if cache is not None else NullCache()
    start = time.perf_counter()
    outcome = SweepOutcome(artifact=spec.artifact, title=spec.title)
    try:
        points = _check_points(spec, spec.build_points(**dict(overrides or {})))
        outcome.points = len(points)
        outcome.point_ids = tuple(p.point_id for p in points)
        chosen = points if only is None else tuple(
            p for p in points if p.point_id in set(only))
        outcome.selected = len(chosen)
        values: dict[str, Any] = {}
        missing: list[SweepPoint] = []
        for point in chosen:
            cached = cache.get(point)
            if cache.is_hit(cached):
                values[point.point_id] = cached
            else:
                missing.append(point)
        outcome.cache_hits = len(chosen) - len(missing)
        # Wall-clock-measuring sweeps stay serial: concurrent workers
        # would contend for cores and skew (then cache) the timings.
        effective_jobs = jobs if spec.parallel_safe else 1
        for point, value in _evaluate(missing, effective_jobs):
            cache.put(point, value)
            values[point.point_id] = value
        if do_combine and len(chosen) == len(points):
            outcome.result = spec.combine(
                {p.point_id: values[p.point_id] for p in points})
        else:
            outcome.partial = True
    except Exception:
        outcome.error = traceback.format_exc()
    outcome.seconds = time.perf_counter() - start
    return outcome


def _evaluate(points: list[SweepPoint],
              jobs: int) -> Iterable[tuple[SweepPoint, Any]]:
    """Yield ``(point, result)`` as points finish (order unspecified)."""
    if not points:
        return
    if jobs <= 1 or len(points) == 1:
        for point in points:
            yield point, evaluate_point(point)
        return
    failure: BaseException | None = None
    with ProcessPoolExecutor(max_workers=min(jobs, len(points))) as pool:
        pending = {pool.submit(evaluate_point, p): p for p in points}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                point = pending.pop(future)
                try:
                    value = future.result()
                except Exception as exc:
                    # Cancel queued points, but keep draining the ones
                    # already running so their results still reach the
                    # cache; the failure is re-raised once drained.
                    if failure is None:
                        failure = exc
                        for queued in [f for f in pending if f.cancel()]:
                            pending.pop(queued)
                else:
                    yield point, value
    if failure is not None:
        raise failure
