"""Content-addressed on-disk cache for sweep-point results.

A point's cache key hashes everything that determines its result: the
function reference, its parameters, the artifact/point ids, and a
fingerprint of the ``repro`` package's source code — so editing the
simulator invalidates every cached result while re-runs of an unchanged
tree hit the cache.  Values are the JSON-normalized point results, one
file per point under ``<cache root>/<artifact>/<key>.json``.

The cache root defaults to ``.repro-cache`` and can be moved with the
``REPRO_CACHE_DIR`` environment variable or the CLI's ``--cache-dir``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path

from repro.runner.spec import SweepPoint

_MISS = object()


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``.py`` file in the installed ``repro`` package."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def default_cache_dir() -> str:
    """Resolve the cache root (``REPRO_CACHE_DIR`` or ``.repro-cache``)."""
    return os.environ.get("REPRO_CACHE_DIR", "") or ".repro-cache"


def point_key(point: SweepPoint, code: str | None = None) -> str:
    """Content-hash cache key of one sweep point.

    Hashes everything that determines the point's result — the function
    reference, its parameters, the artifact/point ids, and the source
    ``code`` fingerprint (current tree when omitted) — so the same
    scheme keys both the on-disk JSON cache and the service's DuckDB
    result store (``repro.serve.store``): a code edit moves every key,
    which is what makes stale results unservable by construction.
    """
    payload = json.dumps({
        "artifact": point.artifact,
        "point_id": point.point_id,
        "fn": point.fn,
        "params": dict(point.params),
        "code": code if code is not None else code_fingerprint(),
    }, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


class NullCache:
    """Cache interface that never stores anything (``--no-cache``)."""

    def get(self, point: SweepPoint):
        return _MISS

    def has(self, point: SweepPoint) -> bool:
        """Whether ``get`` would hit, without reading the value
        (``repro plan``'s probe)."""
        return False

    def put(self, point: SweepPoint, value) -> None:
        pass

    @staticmethod
    def is_hit(value) -> bool:
        return value is not _MISS


class ResultCache(NullCache):
    """Directory-backed point-result cache."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root) if root else Path(default_cache_dir())

    def key(self, point: SweepPoint) -> str:
        return point_key(point)

    def _path(self, point: SweepPoint) -> Path:
        return self.root / point.artifact / f"{self.key(point)}.json"

    def get(self, point: SweepPoint):
        """The cached value for ``point``, or the miss sentinel."""
        path = self._path(point)
        try:
            with open(path) as f:
                entry = json.load(f)
        except (OSError, ValueError):
            return _MISS
        if entry.get("point_id") != point.point_id:
            return _MISS
        return entry.get("value")

    def has(self, point: SweepPoint) -> bool:
        return self.is_hit(self.get(point))

    def put(self, point: SweepPoint, value) -> None:
        """Persist ``value`` (already JSON-normalized) for ``point``.

        The write goes through a uniquely-named temp file + rename so
        concurrent invocations sharing a cache directory (CI shards)
        can never interleave into a corrupt entry.
        """
        path = self._path(point)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump({
                    "point_id": point.point_id,
                    "fn": point.fn,
                    "params": dict(point.params),
                    "value": value,
                }, f)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
