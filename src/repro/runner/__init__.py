"""Parallel sweep runner: declarative specs, process-pool scheduling,
content-hashed result caching, and the unified ``repro`` CLI."""

from repro.runner.cache import NullCache, ResultCache, code_fingerprint
from repro.runner.registry import ARTIFACT_ORDER, all_specs, get, register
from repro.runner.scheduler import SweepOutcome, run_sweep
from repro.runner.spec import (
    SweepPoint,
    SweepSpec,
    evaluate_point,
    json_normalize,
)

__all__ = [
    "ARTIFACT_ORDER",
    "NullCache",
    "ResultCache",
    "SweepOutcome",
    "SweepPoint",
    "SweepSpec",
    "all_specs",
    "code_fingerprint",
    "evaluate_point",
    "get",
    "json_normalize",
    "register",
    "run_sweep",
]
