"""Fast-path configuration knobs.

The array-native frontend (block traces, the blocked cache pipeline, the
flat timing-state queries, and conventional-program pooling) is a pure
host-time optimization: results are bit-identical with the knobs on or
off, which the equivalence tests enforce.  Two environment variables
control it:

``REPRO_FASTPATH``
    ``0``/``false`` disables every fast path and reproduces the PR 2
    object-based pipeline exactly (the baseline the benchmark harness
    measures speedups against).  Default: enabled.

``REPRO_BLOCK_SIZE``
    Accesses per :class:`~repro.cpu.blocks.AccessBlock` chunk emitted by
    the workload generators (default 4096).  Any positive value produces
    the same emulation; the default amortizes per-block overhead without
    hurting locality.

``REPRO_MC_MATERIALIZE``
    Multi-core workload mixes (:mod:`repro.core.workload_mix`) run each
    workload at least twice — solo for the slowdown baseline and again
    under contention.  By default the mix runner materializes each
    workload's access blocks once (:class:`~repro.cpu.blocks.
    MaterializedBlocks`) and replays them for every run; ``0`` falls
    back to regenerating the trace per run.  Results are identical
    either way.

All knobs are read when a component is *constructed* (system, session,
processor feed, mix run), never per access, so tests can flip them per
system via ``monkeypatch.setenv`` without reloading modules.
"""

from __future__ import annotations

import os

#: Default accesses per workload block (see ``REPRO_BLOCK_SIZE``).
DEFAULT_BLOCK_ACCESSES = 4096

_FALSE = ("0", "false", "no", "off")


def fastpath_enabled() -> bool:
    """Whether the array-native fast paths are active (default: yes)."""
    return os.environ.get("REPRO_FASTPATH", "").strip().lower() not in _FALSE


def mix_materialize_enabled() -> bool:
    """Whether workload mixes pre-materialize block traces (default: yes)."""
    return os.environ.get("REPRO_MC_MATERIALIZE", "").strip().lower() \
        not in _FALSE


def block_accesses() -> int:
    """Accesses per workload block (``REPRO_BLOCK_SIZE``, default 4096)."""
    raw = os.environ.get("REPRO_BLOCK_SIZE", "").strip()
    if not raw:
        return DEFAULT_BLOCK_ACCESSES
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_BLOCK_ACCESSES
    return value if value > 0 else DEFAULT_BLOCK_ACCESSES
