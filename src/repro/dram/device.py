"""Behavioural DDR4 device model.

:class:`DramDevice` is the stand-in for the real DRAM chips behind DRAM
Bender.  It executes the DDR4 command stream, keeps actual row data, and
— crucially for DRAM techniques — models what the silicon does when the
controller *violates* manufacturer timings:

* an ``ACT`` issued right after a premature ``PRE`` (the FPM RowClone
  sequence) copies the previously open row into the newly activated row,
  subject to the cell model's subarray and pair-reliability rules;
* a ``RD`` issued before the row's minimum reliable ``tRCD`` returns
  deterministically corrupted data;
* reads from rows whose refresh window lapsed can return corrupted data
  when retention modeling is enabled.

The device never decides policy; it only answers "what would the chip
do".  Timing legality is delegated to :class:`TimingChecker` running in
permissive mode by default (techniques intentionally violate timings).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.address import Geometry
from repro.dram.bank import BankState, RankState
from repro.dram.cells import CellArrayModel
from repro.dram.commands import Command, CommandKind
from repro.dram.flat_timing import (
    K_ACT,
    K_PRE,
    K_PREA,
    K_RD,
    K_REF,
    K_WR,
    KIND_NAMES,
    FlatTimingState,
)
from repro.dram.timing import TimingParams
from repro.dram.timing_checker import TimingChecker

#: Flat kind code -> CommandKind (for the rare fallback that needs a
#: real Command object, e.g. recording a timing violation).
_KIND_OF_CODE = (CommandKind.ACT, CommandKind.PRE, CommandKind.PREA,
                 CommandKind.RD, CommandKind.WR, CommandKind.REF)


@dataclass
class ReadResult:
    """Outcome of a RD command: one cache line and its integrity."""

    data: bytes
    reliable: bool
    bank: int
    row: int
    col: int


@dataclass
class DeviceStats:
    """Command counts and technique-relevant event counts."""

    commands: dict[str, int] = field(default_factory=dict)
    rowclone_attempts: int = 0
    rowclone_successes: int = 0
    unreliable_reads: int = 0
    retention_failures: int = 0

    def count(self, kind: CommandKind) -> None:
        """Record one issued command of ``kind``."""
        key = kind.value
        self.commands[key] = self.commands.get(key, 0) + 1

    def total_commands(self) -> int:
        """Total DDR commands issued across all kinds."""
        return sum(self.commands.values())


class DramDevice:
    """Single-channel, single-rank DDR4 device with real data contents."""

    #: An ACT arriving within this fraction of tRP after a PRE triggers
    #: the in-DRAM copy path (the PRE interrupted the previous row's
    #: precharge, so both wordlines share charge — FPM RowClone).
    ROWCLONE_PRE_TO_ACT_FRACTION = 0.6

    def __init__(self, timing: TimingParams, geometry: Geometry,
                 cells: CellArrayModel | None = None,
                 strict_timing: bool = False,
                 retention_modeling: bool = False,
                 track_row_activations: bool = False,
                 refresh_rank: int | None = None) -> None:
        self.timing = timing
        self.geometry = geometry
        if refresh_rank is not None and not (0 <= refresh_rank < geometry.ranks):
            raise ValueError(
                f"refresh_rank {refresh_rank} out of range for"
                f" {geometry.ranks} rank(s)")
        #: When set, REF commands reset the retention epoch of this rank
        #: only (a per-rank refresh storm starves the other ranks'
        #: retention bookkeeping).  ``last_ref`` stays channel-global on
        #: every rank — REF occupies the shared command bus, so timing
        #: legality is unchanged by the scoping.
        self._refresh_rank = refresh_rank
        #: Per-(bank, row) ACT counts for RowHammer-style pressure
        #: accounting; ``None`` (the default) keeps the ACT hot paths
        #: counter-free.
        self.row_activations: dict[tuple[int, int], int] | None = (
            {} if track_row_activations else None)
        self.cells = cells or CellArrayModel(geometry)
        # One channel's worth of state: ranks are flattened into the bank
        # dimension (rank r owns banks [r*num_banks, (r+1)*num_banks)).
        self.banks = [BankState(i) for i in range(geometry.total_banks)]
        self.ranks = [RankState() for _ in range(geometry.ranks)]
        #: Single-rank alias (rank 0); multi-rank callers index `ranks`.
        self.rank = self.ranks[0]
        self._rank_of = tuple(geometry.rank_of(b)
                              for b in range(geometry.total_banks))
        #: What the timing checker receives as rank state: the bare
        #: RankState on the paper's single-rank topology (bit-identical
        #: call shape), the per-rank list otherwise.
        self.checker_rank = self.rank if geometry.ranks == 1 else self.ranks
        #: Array-native twin of the bank/rank state, updated on every
        #: command; the fast issue path answers timing queries from it.
        self.flat = FlatTimingState(timing, geometry)
        # The cell model's per-row minimum-tRCD memo, hoisted so the
        # fast issue path can answer reliability checks with one dict get.
        self._trcd_cache = self.cells._row_trcd_cache
        self._rowclone_gap_ps = int(timing.tRP * self.ROWCLONE_PRE_TO_ACT_FRACTION)
        self._write_burst_ps = timing.tCWL + timing.tBL
        # Non-leading plan commands check their legality inline against
        # the flat aggregates when the two-term reductions are exact.
        self._inline_earliest = (self.flat._rrd_two_term
                                 and self.flat._ccd_two_term)
        self._tp = (timing.tRCD, timing.tCCD_S, timing.tCCD_L, timing.tWTR,
                    timing.tRC, timing.tRP, timing.tRRD_S, timing.tRRD_L,
                    timing.tFAW, timing.tRFC)
        self.checker = TimingChecker(timing, geometry, strict=strict_timing)
        self.retention_modeling = retention_modeling
        self.stats = DeviceStats()
        self._rows: dict[tuple[int, int], bytearray] = {}
        self._last_issue_ps = -1
        self._rowclone_attempt_counter = 0
        self._handlers = {
            CommandKind.ACT: self._do_act,
            CommandKind.PRE: self._do_pre,
            CommandKind.PREA: self._do_prea,
            CommandKind.RD: self._do_rd,
            CommandKind.WR: self._do_wr,
            CommandKind.REF: self._do_ref,
            CommandKind.NOP: self._do_nop,
        }

    # -- command execution -------------------------------------------------

    def issue(self, cmd: Command, time_ps: int) -> ReadResult | None:
        """Execute one command at ``time_ps`` (must be non-decreasing)."""
        if time_ps < self._last_issue_ps:
            raise ValueError(
                f"command stream went backwards: {time_ps} < {self._last_issue_ps}")
        self._last_issue_ps = time_ps
        self._validate(cmd)
        self.checker.check(cmd, time_ps, self.banks, self.checker_rank)
        self.stats.count(cmd.kind)
        return self._handlers[cmd.kind](cmd, time_ps)

    def issue_discard(self, cmd: Command, time_ps: int,
                      precleared: bool = False) -> None:
        """Execute one command whose read data (if any) would be discarded.

        The event-driven engine's conventional read/write service path
        never consumes the captured cache line — the cycle engine pops it
        from the readback buffer and throws it away — so this variant
        skips materializing row contents while keeping every observable
        side effect of :meth:`issue` identical: the monotonicity check,
        the (batched) timing validation with its violation records, bank
        and rank state updates, command counts, RowClone detection, and
        the reliability/retention statistics.

        ``precleared=True`` skips the timing check: the caller already
        computed this command's earliest legal time against the *current*
        device state and chose ``time_ps`` at or after it, so the check
        could neither raise nor record anything.
        """
        if time_ps < self._last_issue_ps:
            raise ValueError(
                f"command stream went backwards: {time_ps} < {self._last_issue_ps}")
        self._last_issue_ps = time_ps
        if not precleared:
            self.checker.check_fast(cmd, time_ps, self.banks,
                                    self.checker_rank)
        self.stats.count(cmd.kind)
        kind = cmd.kind
        if kind is CommandKind.RD:
            bank = self.banks[cmd.bank]
            if bank.open_row is None:
                raise RuntimeError(
                    f"RD to bank {cmd.bank} with no open row at {time_ps} ps")
            row = bank.open_row
            bank.read(time_ps)
            self.flat.read(cmd.bank, time_ps)
            trcd_used = time_ps - bank.last_act
            if not self.cells.read_is_reliable(cmd.bank, row, trcd_used):
                self.stats.unreliable_reads += 1
            elif self.retention_modeling and self._retention_lapsed(time_ps):
                if self._row_is_leaky(cmd.bank, row):
                    self.stats.retention_failures += 1
            return None
        if kind is CommandKind.WR:
            bank = self.banks[cmd.bank]
            if bank.open_row is None:
                raise RuntimeError(
                    f"WR to bank {cmd.bank} with no open row at {time_ps} ps")
            row = bank.open_row
            data = cmd.data
            if data is not None:
                self._write_line(cmd.bank, row, cmd.col, data)
            elif (cmd.bank, row) in self._rows:
                # A conventional writeback stores the power-on filler
                # pattern (the caches are tag-only); that only changes
                # anything if a technique already materialized this row.
                self._write_line(cmd.bank, row, cmd.col,
                                 self.default_line(cmd.bank, row, cmd.col))
            data_end = time_ps + self.timing.tCWL + self.timing.tBL
            bank.write(time_ps, data_end)
            self.flat.write(cmd.bank, time_ps, data_end)
            return None
        self._handlers[kind](cmd, time_ps)
        return None

    def issue_fast(self, kind: int, bank_index: int, row: int, col: int,
                   time_ps: int, precleared: bool) -> None:
        """:meth:`issue_discard` for a flat-coded command (no objects).

        ``kind`` is a :mod:`repro.dram.flat_timing` code; timing
        legality is answered by :meth:`FlatTimingState.earliest` (which
        computes exactly what the object checker computes), and the rare
        violating command falls back to the object checker so the
        violation record / strict-mode exception is bit-identical.
        Every observable side effect matches :meth:`issue_discard`:
        monotonicity, statistics, bank+rank state (object and flat views
        both), RowClone detection, reliability and retention modeling.
        """
        if time_ps < self._last_issue_ps:
            raise ValueError(
                f"command stream went backwards: {time_ps} < {self._last_issue_ps}")
        self._last_issue_ps = time_ps
        flat = self.flat
        if not precleared and time_ps < flat.earliest(kind, bank_index):
            # Bit-identical violation handling (record or strict raise).
            ck = _KIND_OF_CODE[kind]
            self.checker.check(Command(ck, bank=bank_index, row=row, col=col),
                               time_ps, self.banks, self.checker_rank)
        commands = self.stats.commands
        name = KIND_NAMES[kind]
        commands[name] = commands.get(name, 0) + 1
        if kind == K_RD:
            open_row = flat.open_row[bank_index]
            if open_row < 0:
                raise RuntimeError(
                    f"RD to bank {bank_index} with no open row at {time_ps} ps")
            bank = self.banks[bank_index]
            trcd_used = time_ps - bank.last_act
            bank.read(time_ps)
            flat.read(bank_index, time_ps)
            min_trcd = self._trcd_cache.get((bank_index, open_row))
            if min_trcd is None:
                min_trcd = self.cells.row_min_trcd_ps(bank_index, open_row)
            if trcd_used < min_trcd:
                self.stats.unreliable_reads += 1
            elif self.retention_modeling and self._retention_lapsed(time_ps):
                if self._row_is_leaky(bank_index, open_row):
                    self.stats.retention_failures += 1
        elif kind == K_WR:
            open_row = flat.open_row[bank_index]
            if open_row < 0:
                raise RuntimeError(
                    f"WR to bank {bank_index} with no open row at {time_ps} ps")
            if (bank_index, open_row) in self._rows:
                self._write_line(bank_index, open_row, col,
                                 self.default_line(bank_index, open_row, col))
            data_end = time_ps + self.timing.tCWL + self.timing.tBL
            self.banks[bank_index].write(time_ps, data_end)
            flat.write(bank_index, time_ps, data_end)
        elif kind == K_ACT:
            bank = self.banks[bank_index]
            self._maybe_rowclone(bank, row, time_ps)
            bank.activate(row, time_ps)
            self.ranks[self._rank_of[bank_index]].record_act(
                time_ps, self.timing.tFAW)
            flat.act(bank_index, row, time_ps)
            acts_map = self.row_activations
            if acts_map is not None:
                key = (bank_index, row)
                acts_map[key] = acts_map.get(key, 0) + 1
        elif kind == K_PRE:
            self.banks[bank_index].precharge(time_ps)
            flat.pre(bank_index, time_ps)
        elif kind == K_PREA:
            for bank in self.banks:
                bank.precharge(time_ps)
            flat.prea(time_ps)
        elif kind == K_REF:
            self._apply_ref(time_ps)
            flat.ref(time_ps)
        else:
            raise ValueError(f"unknown flat command kind {kind}")

    def issue_col(self, kind: int, bank_index: int, col: int,
                  time_ps: int) -> None:
        """Issue one precleared column command (the row-hit plan body).

        :meth:`issue_plan` specialized for the single-command case —
        no loop, no offset math.  ``kind`` is :data:`K_RD` or
        :data:`K_WR`.
        """
        if time_ps < self._last_issue_ps:
            raise ValueError(
                f"command stream went backwards: {time_ps} <"
                f" {self._last_issue_ps}")
        self._last_issue_ps = time_ps
        flat = self.flat
        open_row = flat.open_row[bank_index]
        commands = self.stats.commands
        group = flat.group_of[bank_index]
        bank = self.banks[bank_index]
        if kind == K_RD:
            if open_row < 0:
                raise RuntimeError(
                    f"RD to bank {bank_index} with no open row at"
                    f" {time_ps} ps")
            commands["RD"] = commands.get("RD", 0) + 1
            trcd_used = time_ps - bank.last_act
            bank.last_read = time_ps
            flat.last_read[bank_index] = time_ps
            if time_ps > flat.group_max_cas[group]:
                flat.group_max_cas[group] = time_ps
            if time_ps > flat.max_cas_all:
                flat.max_cas_all = time_ps
            min_trcd = self._trcd_cache.get((bank_index, open_row))
            if min_trcd is None:
                min_trcd = self.cells.row_min_trcd_ps(bank_index, open_row)
            if trcd_used < min_trcd:
                self.stats.unreliable_reads += 1
            elif self.retention_modeling and self._retention_lapsed(time_ps):
                if self._row_is_leaky(bank_index, open_row):
                    self.stats.retention_failures += 1
        else:
            if open_row < 0:
                raise RuntimeError(
                    f"WR to bank {bank_index} with no open row at"
                    f" {time_ps} ps")
            commands["WR"] = commands.get("WR", 0) + 1
            if (bank_index, open_row) in self._rows:
                self._write_line(bank_index, open_row, col,
                                 self.default_line(bank_index, open_row, col))
            data_end = time_ps + self._write_burst_ps
            bank.last_write = time_ps
            bank.last_write_data_end = data_end
            flat.last_write[bank_index] = time_ps
            if time_ps > flat.group_max_cas[group]:
                flat.group_max_cas[group] = time_ps
            if time_ps > flat.max_cas_all:
                flat.max_cas_all = time_ps
            flat.last_write_end[bank_index] = data_end
            if data_end > flat.max_write_end:
                flat.max_write_end = data_end

    def issue_plan(self, kinds: tuple[int, ...], offsets: tuple[int, ...],
                   bank_index: int, row: int, col: int, start_ps: int,
                   tck: int) -> None:
        """Issue a memoized conventional plan in one fused pass.

        Equivalent to calling :meth:`issue_fast` per planned command —
        ``kinds[0]`` precleared at ``start_ps``, the rest at
        ``start_ps + offsets[i] * tck`` with flat timing checks — but
        with the per-command state updates inlined over local views of
        the flat arrays and the single target :class:`BankState`.
        Conventional plans only contain PRE/ACT/RD/WR.
        """
        if start_ps < self._last_issue_ps:
            raise ValueError(
                f"command stream went backwards: {start_ps} <"
                f" {self._last_issue_ps}")
        flat = self.flat
        bank = self.banks[bank_index]
        commands = self.stats.commands
        get = commands.get
        group = flat.group_of[bank_index]
        inline = self._inline_earliest
        (tRCD, tCCD_S, tCCD_L, tWTR, tRC, tRP,
         tRRD_S, tRRD_L, tFAW, tRFC) = self._tp
        t = start_ps
        first = True
        for i, kind in enumerate(kinds):
            t = start_ps + offsets[i] * tck
            if not first:
                # Legality of a non-leading command: the inline branch
                # computes exactly flat.earliest for RD/WR/ACT (the only
                # kinds that follow another command in a plan).
                if inline:
                    if kind == K_ACT:
                        e = flat.last_act[bank_index] + tRC
                        v = flat.last_pre[bank_index] + tRP
                        if v > e:
                            e = v
                        v = flat.max_act_all + tRRD_S
                        if v > e:
                            e = v
                        v = flat.group_max_act[group] + tRRD_L
                        if v > e:
                            e = v
                        acts = flat.recent_acts
                        n_acts = len(acts)
                        if n_acts >= 4:
                            v = acts[n_acts - 4] + tFAW
                            if v > e:
                                e = v
                        v = flat.last_ref + tRFC
                        if v > e:
                            e = v
                    else:  # K_RD / K_WR
                        e = flat.last_act[bank_index] + tRCD
                        v = flat.max_cas_all + tCCD_S
                        if v > e:
                            e = v
                        v = flat.group_max_cas[group] + tCCD_L
                        if v > e:
                            e = v
                        if kind == K_RD:
                            v = flat.max_write_end + tWTR
                            if v > e:
                                e = v
                else:
                    e = flat.earliest(kind, bank_index)
                if t < e:
                    ck = _KIND_OF_CODE[kind]
                    self.checker.check(
                        Command(ck, bank=bank_index, row=row, col=col),
                        t, self.banks, self.checker_rank)
            first = False
            name = KIND_NAMES[kind]
            commands[name] = get(name, 0) + 1
            if kind == K_RD:
                open_row = flat.open_row[bank_index]
                if open_row < 0:
                    raise RuntimeError(
                        f"RD to bank {bank_index} with no open row at {t} ps")
                trcd_used = t - bank.last_act
                bank.last_read = t                      # bank.read(t)
                flat.last_read[bank_index] = t          # flat.read(...)
                if t > flat.group_max_cas[group]:
                    flat.group_max_cas[group] = t
                if t > flat.max_cas_all:
                    flat.max_cas_all = t
                min_trcd = self._trcd_cache.get((bank_index, open_row))
                if min_trcd is None:
                    min_trcd = self.cells.row_min_trcd_ps(bank_index, open_row)
                if trcd_used < min_trcd:
                    self.stats.unreliable_reads += 1
                elif self.retention_modeling and self._retention_lapsed(t):
                    if self._row_is_leaky(bank_index, open_row):
                        self.stats.retention_failures += 1
            elif kind == K_ACT:
                prev = flat.prev_open_row[bank_index]
                if (prev >= 0 and prev != row
                        and t - flat.last_pre[bank_index]
                        < self._rowclone_gap_ps):
                    self._maybe_rowclone(bank, row, t)
                bank.open_row = row                     # bank.activate(row, t)
                bank.last_act = t
                bank.act_count += 1
                cutoff = t - self.timing.tFAW
                # rank.record_act, in place: timestamps are monotonic,
                # so the window filter is a drop-from-front (same list
                # contents as the reference's rebuild).
                rank_acts = self.ranks[self._rank_of[bank_index]].recent_acts
                rank_acts.append(t)
                while rank_acts[0] <= cutoff:
                    rank_acts.pop(0)
                flat.last_act[bank_index] = t           # flat.act(...)
                if t > flat.group_max_act[group]:
                    flat.group_max_act[group] = t
                if t > flat.max_act_all:
                    flat.max_act_all = t
                if flat.open_row[bank_index] < 0:
                    flat.open_count += 1
                flat.open_row[bank_index] = row
                acts = flat.recent_acts
                acts.append(t)
                while acts[0] <= cutoff:
                    acts.popleft()
                acts_map = self.row_activations
                if acts_map is not None:
                    key = (bank_index, row)
                    acts_map[key] = acts_map.get(key, 0) + 1
            elif kind == K_PRE:
                open_row = flat.open_row[bank_index]
                bank.previously_open_row = bank.open_row  # bank.precharge(t)
                bank.open_row = None
                bank.last_pre = t
                flat.prev_open_row[bank_index] = open_row  # flat.pre(...)
                if open_row >= 0:
                    flat.open_count -= 1
                    flat.open_row[bank_index] = -1
                flat.last_pre[bank_index] = t
                if t > flat.max_pre:
                    flat.max_pre = t
            else:  # K_WR
                open_row = flat.open_row[bank_index]
                if open_row < 0:
                    raise RuntimeError(
                        f"WR to bank {bank_index} with no open row at {t} ps")
                if (bank_index, open_row) in self._rows:
                    self._write_line(bank_index, open_row, col,
                                     self.default_line(bank_index, open_row,
                                                       col))
                data_end = t + self._write_burst_ps
                bank.last_write = t                 # bank.write(t, data_end)
                bank.last_write_data_end = data_end
                flat.last_write[bank_index] = t     # flat.write(...)
                if t > flat.group_max_cas[group]:
                    flat.group_max_cas[group] = t
                if t > flat.max_cas_all:
                    flat.max_cas_all = t
                flat.last_write_end[bank_index] = data_end
                if data_end > flat.max_write_end:
                    flat.max_write_end = data_end
        self._last_issue_ps = t

    def _do_act(self, cmd: Command, t: int) -> None:
        """ACT: open a row (detecting the RowClone ACT-PRE-ACT pattern)."""
        bank = self.banks[cmd.bank]
        self._maybe_rowclone(bank, cmd.row, t)
        bank.activate(cmd.row, t)
        self.ranks[self._rank_of[cmd.bank]].record_act(t, self.timing.tFAW)
        self.flat.act(cmd.bank, cmd.row, t)
        acts_map = self.row_activations
        if acts_map is not None:
            key = (cmd.bank, cmd.row)
            acts_map[key] = acts_map.get(key, 0) + 1
        return None

    def _do_pre(self, cmd: Command, t: int) -> None:
        """PRE: close the addressed bank's open row."""
        self.banks[cmd.bank].precharge(t)
        self.flat.pre(cmd.bank, t)
        return None

    def _do_prea(self, cmd: Command, t: int) -> None:
        """PREA: close every bank's open row."""
        for bank in self.banks:
            bank.precharge(t)
        self.flat.prea(t)
        return None

    def _do_rd(self, cmd: Command, t: int) -> ReadResult:
        """RD: return one cache line, applying cell-model corruption."""
        bank = self.banks[cmd.bank]
        if bank.open_row is None:
            raise RuntimeError(
                f"RD to bank {cmd.bank} with no open row at {t} ps")
        row = bank.open_row
        bank.read(t)
        self.flat.read(cmd.bank, t)
        line = self._read_line(cmd.bank, row, cmd.col)
        reliable = True
        trcd_used = t - bank.last_act
        if not self.cells.read_is_reliable(cmd.bank, row, trcd_used):
            line = self.cells.corrupt(line, cmd.bank, row, salt=t & 0xFFFF)
            reliable = False
            self.stats.unreliable_reads += 1
        elif self.retention_modeling and self._retention_lapsed(t):
            if self._row_is_leaky(cmd.bank, row):
                line = self.cells.corrupt(line, cmd.bank, row, salt=0xDECA)
                reliable = False
                self.stats.retention_failures += 1
        return ReadResult(data=line, reliable=reliable,
                          bank=cmd.bank, row=row, col=cmd.col)

    def _do_wr(self, cmd: Command, t: int) -> None:
        """WR: store one cache line into the open row."""
        bank = self.banks[cmd.bank]
        if bank.open_row is None:
            raise RuntimeError(
                f"WR to bank {cmd.bank} with no open row at {t} ps")
        row = bank.open_row
        data = cmd.data
        if data is None:
            data = self.default_line(cmd.bank, row, cmd.col)
        self._write_line(cmd.bank, row, cmd.col, data)
        data_end = t + self.timing.tCWL + self.timing.tBL
        bank.write(t, data_end)
        self.flat.write(cmd.bank, t, data_end)
        return None

    def _do_ref(self, cmd: Command, t: int) -> None:
        """REF: refresh every rank, resetting the retention epoch."""
        self._apply_ref(t)
        self.flat.ref(t)
        return None

    def _apply_ref(self, t: int) -> None:
        """REF side effects on rank state (both issue paths).

        ``last_ref`` advances on every rank unconditionally — REF holds
        the shared command bus, so its timing shadow is channel-global
        and must stay identical whether or not the retention scoping
        knob is set (the flat timing state keeps one channel-wide
        ``last_ref`` too).  Only the *retention* epoch is scoped when a
        per-rank refresh storm targets one rank.
        """
        target = self._refresh_rank
        if target is None:
            for rank_state in self.ranks:
                rank_state.last_ref = t
                rank_state.refresh_epoch_ps = t
        else:
            for index, rank_state in enumerate(self.ranks):
                rank_state.last_ref = t
                if index == target:
                    rank_state.refresh_epoch_ps = t

    def _do_nop(self, cmd: Command, t: int) -> None:
        """NOP: consume one interface cycle."""
        return None

    # -- RowClone semantics ---------------------------------------------------

    def _maybe_rowclone(self, bank: BankState, dst_row: int, t: int) -> None:
        """Detect the ACT-PRE-ACT FPM sequence and perform the in-DRAM copy."""
        src_row = bank.previously_open_row
        if src_row is None or src_row == dst_row:
            return
        gap = t - bank.last_pre
        if gap >= int(self.timing.tRP * self.ROWCLONE_PRE_TO_ACT_FRACTION):
            return
        self.stats.rowclone_attempts += 1
        self._rowclone_attempt_counter += 1
        src_data = self._row(bank.index, src_row)
        ok = self.cells.rowclone_copy_succeeds(
            bank.index, src_row, dst_row, self._rowclone_attempt_counter)
        if ok:
            self._rows[(bank.index, dst_row)] = bytearray(src_data)
            self.stats.rowclone_successes += 1
        else:
            corrupted = self.cells.corrupt(
                bytes(src_data), bank.index, dst_row,
                salt=self._rowclone_attempt_counter)
            self._rows[(bank.index, dst_row)] = bytearray(corrupted)

    # -- data storage ---------------------------------------------------------

    def default_line(self, bank: int, row: int, col: int) -> bytes:
        """Deterministic power-on filler pattern for an untouched line."""
        tag = (bank * 0x1000003 + row * 0x10001 + col * 0x101) & 0xFFFFFFFF
        unit = tag.to_bytes(4, "little")
        return unit * (self.geometry.line_bytes // 4)

    def _row(self, bank: int, row: int) -> bytearray:
        """Materialize (lazily) and return a row's backing storage."""
        key = (bank, row)
        data = self._rows.get(key)
        if data is None:
            g = self.geometry
            data = bytearray()
            for col in range(g.columns_per_row):
                data += self.default_line(bank, row, col)
            self._rows[key] = data
        return data

    def _read_line(self, bank: int, row: int, col: int) -> bytes:
        """Copy one cache line out of a row."""
        line = self.geometry.line_bytes
        data = self._row(bank, row)
        return bytes(data[col * line:(col + 1) * line])

    def _write_line(self, bank: int, row: int, col: int, payload: bytes) -> None:
        """Store one cache line into a row (validating its size)."""
        line = self.geometry.line_bytes
        if len(payload) != line:
            raise ValueError(
                f"WR payload must be {line} bytes, got {len(payload)}")
        data = self._row(bank, row)
        data[col * line:(col + 1) * line] = payload

    def row_data(self, bank: int, row: int) -> bytes:
        """Whole-row contents (inspection helper for tests and profiling)."""
        return bytes(self._row(bank, row))

    def preload_row(self, bank: int, row: int, data: bytes) -> None:
        """Host-side preload of a full row (e.g. test patterns)."""
        if len(data) != self.geometry.row_bytes:
            raise ValueError(
                f"row preload must be {self.geometry.row_bytes} bytes,"
                f" got {len(data)}")
        self._rows[(bank, row)] = bytearray(data)

    # -- activation pressure --------------------------------------------------

    def hammer_report(self, top: int = 8) -> list[dict[str, int]]:
        """Rank victim rows by neighbouring activation pressure.

        Requires ``track_row_activations``; returns up to ``top``
        entries ``{"bank", "row", "pressure", "own_acts"}`` where
        ``pressure`` is the summed ACT count of the row's physical
        neighbours (rows ``r-1`` and ``r+1`` in the same bank) — the
        RowHammer disturbance proxy — and ``own_acts`` is the victim's
        own ACT count.  Sorted by descending pressure, then (bank, row)
        for determinism.  No bit flips are modelled; this is
        observability only.
        """
        acts = self.row_activations
        if acts is None:
            raise RuntimeError(
                "hammer_report requires track_row_activations=True")
        victims: dict[tuple[int, int], int] = {}
        rows_per_bank = self.geometry.rows_per_bank
        for (bank, row), count in acts.items():
            for victim_row in (row - 1, row + 1):
                if 0 <= victim_row < rows_per_bank:
                    key = (bank, victim_row)
                    victims[key] = victims.get(key, 0) + count
        ranked = sorted(victims.items(), key=lambda kv: (-kv[1], kv[0]))
        return [{"bank": bank, "row": row, "pressure": pressure,
                 "own_acts": acts.get((bank, row), 0)}
                for (bank, row), pressure in ranked[:top]]

    # -- retention ------------------------------------------------------------

    def _retention_lapsed(self, t: int) -> bool:
        """Whether the rank has gone longer than tREFW without refresh."""
        return t - self.rank.refresh_epoch_ps > self.timing.tREFW

    def _row_is_leaky(self, bank: int, row: int) -> bool:
        """~1% of rows lose data first when the refresh window lapses."""
        mix = (bank * 2654435761 + row * 40503) & 0xFFFF
        return mix % 100 == 0

    # -- misc -------------------------------------------------------------------

    def _validate(self, cmd: Command) -> None:
        """Range-check the command's bank/row/column coordinates."""
        g = self.geometry
        if cmd.targets_bank and not (0 <= cmd.bank < g.total_banks):
            raise ValueError(f"bank {cmd.bank} out of range for {cmd.short()}")
        if cmd.kind is CommandKind.ACT and not (0 <= cmd.row < g.rows_per_bank):
            raise ValueError(f"row {cmd.row} out of range for {cmd.short()}")
        if cmd.kind in (CommandKind.RD, CommandKind.WR):
            if not (0 <= cmd.col < g.columns_per_row):
                raise ValueError(f"col {cmd.col} out of range for {cmd.short()}")

    def reset(self) -> None:
        """Power-cycle: bank state cleared, data retained (like a warm boot)."""
        for bank in self.banks:
            bank.reset()
        self.ranks = [RankState() for _ in self.ranks]
        self.rank = self.ranks[0]
        self.checker_rank = (self.rank if self.geometry.ranks == 1
                             else self.ranks)
        self.flat.reset()
        self._last_issue_ps = -1
        if self.row_activations is not None:
            self.row_activations = {}
