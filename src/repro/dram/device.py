"""Behavioural DDR4 device model.

:class:`DramDevice` is the stand-in for the real DRAM chips behind DRAM
Bender.  It executes the DDR4 command stream, keeps actual row data, and
— crucially for DRAM techniques — models what the silicon does when the
controller *violates* manufacturer timings:

* an ``ACT`` issued right after a premature ``PRE`` (the FPM RowClone
  sequence) copies the previously open row into the newly activated row,
  subject to the cell model's subarray and pair-reliability rules;
* a ``RD`` issued before the row's minimum reliable ``tRCD`` returns
  deterministically corrupted data;
* reads from rows whose refresh window lapsed can return corrupted data
  when retention modeling is enabled.

The device never decides policy; it only answers "what would the chip
do".  Timing legality is delegated to :class:`TimingChecker` running in
permissive mode by default (techniques intentionally violate timings).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.address import Geometry
from repro.dram.bank import BankState, RankState
from repro.dram.cells import CellArrayModel
from repro.dram.commands import Command, CommandKind
from repro.dram.timing import TimingParams
from repro.dram.timing_checker import TimingChecker


@dataclass
class ReadResult:
    """Outcome of a RD command: one cache line and its integrity."""

    data: bytes
    reliable: bool
    bank: int
    row: int
    col: int


@dataclass
class DeviceStats:
    """Command counts and technique-relevant event counts."""

    commands: dict[str, int] = field(default_factory=dict)
    rowclone_attempts: int = 0
    rowclone_successes: int = 0
    unreliable_reads: int = 0
    retention_failures: int = 0

    def count(self, kind: CommandKind) -> None:
        """Record one issued command of ``kind``."""
        key = kind.value
        self.commands[key] = self.commands.get(key, 0) + 1

    def total_commands(self) -> int:
        """Total DDR commands issued across all kinds."""
        return sum(self.commands.values())


class DramDevice:
    """Single-channel, single-rank DDR4 device with real data contents."""

    #: An ACT arriving within this fraction of tRP after a PRE triggers
    #: the in-DRAM copy path (the PRE interrupted the previous row's
    #: precharge, so both wordlines share charge — FPM RowClone).
    ROWCLONE_PRE_TO_ACT_FRACTION = 0.6

    def __init__(self, timing: TimingParams, geometry: Geometry,
                 cells: CellArrayModel | None = None,
                 strict_timing: bool = False,
                 retention_modeling: bool = False) -> None:
        self.timing = timing
        self.geometry = geometry
        self.cells = cells or CellArrayModel(geometry)
        self.banks = [BankState(i) for i in range(geometry.num_banks)]
        self.rank = RankState()
        self.checker = TimingChecker(timing, geometry, strict=strict_timing)
        self.retention_modeling = retention_modeling
        self.stats = DeviceStats()
        self._rows: dict[tuple[int, int], bytearray] = {}
        self._last_issue_ps = -1
        self._rowclone_attempt_counter = 0
        self._handlers = {
            CommandKind.ACT: self._do_act,
            CommandKind.PRE: self._do_pre,
            CommandKind.PREA: self._do_prea,
            CommandKind.RD: self._do_rd,
            CommandKind.WR: self._do_wr,
            CommandKind.REF: self._do_ref,
            CommandKind.NOP: self._do_nop,
        }

    # -- command execution -------------------------------------------------

    def issue(self, cmd: Command, time_ps: int) -> ReadResult | None:
        """Execute one command at ``time_ps`` (must be non-decreasing)."""
        if time_ps < self._last_issue_ps:
            raise ValueError(
                f"command stream went backwards: {time_ps} < {self._last_issue_ps}")
        self._last_issue_ps = time_ps
        self._validate(cmd)
        self.checker.check(cmd, time_ps, self.banks, self.rank)
        self.stats.count(cmd.kind)
        return self._handlers[cmd.kind](cmd, time_ps)

    def issue_discard(self, cmd: Command, time_ps: int,
                      precleared: bool = False) -> None:
        """Execute one command whose read data (if any) would be discarded.

        The event-driven engine's conventional read/write service path
        never consumes the captured cache line — the cycle engine pops it
        from the readback buffer and throws it away — so this variant
        skips materializing row contents while keeping every observable
        side effect of :meth:`issue` identical: the monotonicity check,
        the (batched) timing validation with its violation records, bank
        and rank state updates, command counts, RowClone detection, and
        the reliability/retention statistics.

        ``precleared=True`` skips the timing check: the caller already
        computed this command's earliest legal time against the *current*
        device state and chose ``time_ps`` at or after it, so the check
        could neither raise nor record anything.
        """
        if time_ps < self._last_issue_ps:
            raise ValueError(
                f"command stream went backwards: {time_ps} < {self._last_issue_ps}")
        self._last_issue_ps = time_ps
        if not precleared:
            self.checker.check_fast(cmd, time_ps, self.banks, self.rank)
        self.stats.count(cmd.kind)
        kind = cmd.kind
        if kind is CommandKind.RD:
            bank = self.banks[cmd.bank]
            if bank.open_row is None:
                raise RuntimeError(
                    f"RD to bank {cmd.bank} with no open row at {time_ps} ps")
            row = bank.open_row
            bank.read(time_ps)
            trcd_used = time_ps - bank.last_act
            if not self.cells.read_is_reliable(cmd.bank, row, trcd_used):
                self.stats.unreliable_reads += 1
            elif self.retention_modeling and self._retention_lapsed(time_ps):
                if self._row_is_leaky(cmd.bank, row):
                    self.stats.retention_failures += 1
            return None
        if kind is CommandKind.WR:
            bank = self.banks[cmd.bank]
            if bank.open_row is None:
                raise RuntimeError(
                    f"WR to bank {cmd.bank} with no open row at {time_ps} ps")
            row = bank.open_row
            data = cmd.data
            if data is not None:
                self._write_line(cmd.bank, row, cmd.col, data)
            elif (cmd.bank, row) in self._rows:
                # A conventional writeback stores the power-on filler
                # pattern (the caches are tag-only); that only changes
                # anything if a technique already materialized this row.
                self._write_line(cmd.bank, row, cmd.col,
                                 self.default_line(cmd.bank, row, cmd.col))
            bank.write(time_ps, time_ps + self.timing.tCWL + self.timing.tBL)
            return None
        self._handlers[kind](cmd, time_ps)
        return None

    def _do_act(self, cmd: Command, t: int) -> None:
        """ACT: open a row (detecting the RowClone ACT-PRE-ACT pattern)."""
        bank = self.banks[cmd.bank]
        self._maybe_rowclone(bank, cmd.row, t)
        bank.activate(cmd.row, t)
        self.rank.record_act(t, self.timing.tFAW)
        return None

    def _do_pre(self, cmd: Command, t: int) -> None:
        """PRE: close the addressed bank's open row."""
        self.banks[cmd.bank].precharge(t)
        return None

    def _do_prea(self, cmd: Command, t: int) -> None:
        """PREA: close every bank's open row."""
        for bank in self.banks:
            bank.precharge(t)
        return None

    def _do_rd(self, cmd: Command, t: int) -> ReadResult:
        """RD: return one cache line, applying cell-model corruption."""
        bank = self.banks[cmd.bank]
        if bank.open_row is None:
            raise RuntimeError(
                f"RD to bank {cmd.bank} with no open row at {t} ps")
        row = bank.open_row
        bank.read(t)
        line = self._read_line(cmd.bank, row, cmd.col)
        reliable = True
        trcd_used = t - bank.last_act
        if not self.cells.read_is_reliable(cmd.bank, row, trcd_used):
            line = self.cells.corrupt(line, cmd.bank, row, salt=t & 0xFFFF)
            reliable = False
            self.stats.unreliable_reads += 1
        elif self.retention_modeling and self._retention_lapsed(t):
            if self._row_is_leaky(cmd.bank, row):
                line = self.cells.corrupt(line, cmd.bank, row, salt=0xDECA)
                reliable = False
                self.stats.retention_failures += 1
        return ReadResult(data=line, reliable=reliable,
                          bank=cmd.bank, row=row, col=cmd.col)

    def _do_wr(self, cmd: Command, t: int) -> None:
        """WR: store one cache line into the open row."""
        bank = self.banks[cmd.bank]
        if bank.open_row is None:
            raise RuntimeError(
                f"WR to bank {cmd.bank} with no open row at {t} ps")
        row = bank.open_row
        data = cmd.data
        if data is None:
            data = self.default_line(cmd.bank, row, cmd.col)
        self._write_line(cmd.bank, row, cmd.col, data)
        bank.write(t, t + self.timing.tCWL + self.timing.tBL)
        return None

    def _do_ref(self, cmd: Command, t: int) -> None:
        """REF: refresh the rank, resetting the retention epoch."""
        self.rank.last_ref = t
        self.rank.refresh_epoch_ps = t
        return None

    def _do_nop(self, cmd: Command, t: int) -> None:
        """NOP: consume one interface cycle."""
        return None

    # -- RowClone semantics ---------------------------------------------------

    def _maybe_rowclone(self, bank: BankState, dst_row: int, t: int) -> None:
        """Detect the ACT-PRE-ACT FPM sequence and perform the in-DRAM copy."""
        src_row = bank.previously_open_row
        if src_row is None or src_row == dst_row:
            return
        gap = t - bank.last_pre
        if gap >= int(self.timing.tRP * self.ROWCLONE_PRE_TO_ACT_FRACTION):
            return
        self.stats.rowclone_attempts += 1
        self._rowclone_attempt_counter += 1
        src_data = self._row(bank.index, src_row)
        ok = self.cells.rowclone_copy_succeeds(
            bank.index, src_row, dst_row, self._rowclone_attempt_counter)
        if ok:
            self._rows[(bank.index, dst_row)] = bytearray(src_data)
            self.stats.rowclone_successes += 1
        else:
            corrupted = self.cells.corrupt(
                bytes(src_data), bank.index, dst_row,
                salt=self._rowclone_attempt_counter)
            self._rows[(bank.index, dst_row)] = bytearray(corrupted)

    # -- data storage ---------------------------------------------------------

    def default_line(self, bank: int, row: int, col: int) -> bytes:
        """Deterministic power-on filler pattern for an untouched line."""
        tag = (bank * 0x1000003 + row * 0x10001 + col * 0x101) & 0xFFFFFFFF
        unit = tag.to_bytes(4, "little")
        return unit * (self.geometry.line_bytes // 4)

    def _row(self, bank: int, row: int) -> bytearray:
        """Materialize (lazily) and return a row's backing storage."""
        key = (bank, row)
        data = self._rows.get(key)
        if data is None:
            g = self.geometry
            data = bytearray()
            for col in range(g.columns_per_row):
                data += self.default_line(bank, row, col)
            self._rows[key] = data
        return data

    def _read_line(self, bank: int, row: int, col: int) -> bytes:
        """Copy one cache line out of a row."""
        line = self.geometry.line_bytes
        data = self._row(bank, row)
        return bytes(data[col * line:(col + 1) * line])

    def _write_line(self, bank: int, row: int, col: int, payload: bytes) -> None:
        """Store one cache line into a row (validating its size)."""
        line = self.geometry.line_bytes
        if len(payload) != line:
            raise ValueError(
                f"WR payload must be {line} bytes, got {len(payload)}")
        data = self._row(bank, row)
        data[col * line:(col + 1) * line] = payload

    def row_data(self, bank: int, row: int) -> bytes:
        """Whole-row contents (inspection helper for tests and profiling)."""
        return bytes(self._row(bank, row))

    def preload_row(self, bank: int, row: int, data: bytes) -> None:
        """Host-side preload of a full row (e.g. test patterns)."""
        if len(data) != self.geometry.row_bytes:
            raise ValueError(
                f"row preload must be {self.geometry.row_bytes} bytes,"
                f" got {len(data)}")
        self._rows[(bank, row)] = bytearray(data)

    # -- retention ------------------------------------------------------------

    def _retention_lapsed(self, t: int) -> bool:
        """Whether the rank has gone longer than tREFW without refresh."""
        return t - self.rank.refresh_epoch_ps > self.timing.tREFW

    def _row_is_leaky(self, bank: int, row: int) -> bool:
        """~1% of rows lose data first when the refresh window lapses."""
        mix = (bank * 2654435761 + row * 40503) & 0xFFFF
        return mix % 100 == 0

    # -- misc -------------------------------------------------------------------

    def _validate(self, cmd: Command) -> None:
        """Range-check the command's bank/row/column coordinates."""
        g = self.geometry
        if cmd.targets_bank and not (0 <= cmd.bank < g.num_banks):
            raise ValueError(f"bank {cmd.bank} out of range for {cmd.short()}")
        if cmd.kind is CommandKind.ACT and not (0 <= cmd.row < g.rows_per_bank):
            raise ValueError(f"row {cmd.row} out of range for {cmd.short()}")
        if cmd.kind in (CommandKind.RD, CommandKind.WR):
            if not (0 <= cmd.col < g.columns_per_row):
                raise ValueError(f"col {cmd.col} out of range for {cmd.short()}")

    def reset(self) -> None:
        """Power-cycle: bank state cleared, data retained (like a warm boot)."""
        for bank in self.banks:
            bank.reset()
        self.rank = RankState()
        self._last_issue_ps = -1
