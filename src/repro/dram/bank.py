"""Per-bank DRAM state.

Each bank tracks its row-buffer state and the timestamps of the most
recent commands that matter for timing constraints.  The timing checker
reads these timestamps; the device model updates them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

NEVER = -(10 ** 18)


@dataclass
class BankState:
    """Row-buffer and command-history state of one DRAM bank."""

    index: int
    open_row: int | None = None
    #: Timestamps (ps) of the latest command of each kind.
    last_act: int = NEVER
    last_pre: int = NEVER
    last_read: int = NEVER
    last_write: int = NEVER
    #: End of the most recent write burst (for tWR accounting).
    last_write_data_end: int = NEVER
    #: Row that was open before the latest PRE (RowClone detection).
    previously_open_row: int | None = None
    #: Total activations, used by refresh/row-hit statistics.
    act_count: int = 0

    def activate(self, row: int, time_ps: int) -> None:
        """Record an ACT command opening ``row`` at ``time_ps``."""
        self.open_row = row
        self.last_act = time_ps
        self.act_count += 1

    def precharge(self, time_ps: int) -> None:
        """Record a PRE command closing the bank at ``time_ps``."""
        self.previously_open_row = self.open_row
        self.open_row = None
        self.last_pre = time_ps

    def read(self, time_ps: int) -> None:
        """Record a RD command at ``time_ps``."""
        self.last_read = time_ps

    def write(self, time_ps: int, data_end_ps: int) -> None:
        """Record a WR command and the end of its data burst."""
        self.last_write = time_ps
        self.last_write_data_end = data_end_ps

    @property
    def is_open(self) -> bool:
        """Whether a row is currently latched in the row buffer."""
        return self.open_row is not None

    def reset(self) -> None:
        """Return the bank to its power-on state."""
        self.open_row = None
        self.previously_open_row = None
        self.last_act = NEVER
        self.last_pre = NEVER
        self.last_read = NEVER
        self.last_write = NEVER
        self.last_write_data_end = NEVER
        self.act_count = 0


@dataclass
class RankState:
    """Rank-wide state: tFAW activation window and refresh bookkeeping."""

    #: Timestamps of recent ACTs anywhere in the rank (for tFAW).
    recent_acts: list[int] = field(default_factory=list)
    last_ref: int = NEVER
    #: Per-row last refresh/activation time for retention modeling.
    refresh_epoch_ps: int = 0

    def record_act(self, time_ps: int, window_ps: int) -> None:
        """Append an ACT and drop entries older than the tFAW window."""
        self.recent_acts.append(time_ps)
        cutoff = time_ps - window_ps
        # The list stays tiny (<= 4 live entries) so a filter pass is fine.
        self.recent_acts = [t for t in self.recent_acts if t > cutoff]

    def acts_in_window(self, time_ps: int, window_ps: int) -> int:
        """ACTs recorded within ``window_ps`` before ``time_ps``."""
        cutoff = time_ps - window_ps
        return sum(1 for t in self.recent_acts if t > cutoff)
