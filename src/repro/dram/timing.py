"""DRAM timing parameters.

All durations are stored as integer picoseconds so that timing arithmetic
is exact.  The values for the DDR4 presets follow JESD79-4 and the Micron
EDY4016A datasheet that the paper's test module uses (nominal
``tRCD = 13.5 ns``).

The :class:`TimingParams` dataclass is the single source of truth for the
device model (:mod:`repro.dram.device`), the timing checker
(:mod:`repro.dram.timing_checker`), the Bender engine, and the cycle-level
baseline simulator.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds."""
    return int(round(value * PS_PER_NS))


def us(value: float) -> int:
    """Convert microseconds to integer picoseconds."""
    return int(round(value * PS_PER_US))


def ms(value: float) -> int:
    """Convert milliseconds to integer picoseconds."""
    return int(round(value * PS_PER_MS))


def period_ps(freq_hz: float) -> int:
    """Clock period in picoseconds for a frequency in Hz (>= 1 kHz)."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return int(round(PS_PER_S / freq_hz))


def cycles_for_ps(duration_ps: int, freq_hz: float) -> int:
    """Number of whole clock cycles needed to cover ``duration_ps``.

    This is the quantization primitive of time scaling: a duration is
    rounded *up* to the FPGA clock grid before it is converted to
    emulated cycles, which is the source of the small (<0.1 %) error the
    paper measures in Section 6.
    """
    if duration_ps <= 0:
        return 0
    period = period_ps(freq_hz)
    return -(-duration_ps // period)  # ceil division


@dataclass(frozen=True)
class TimingParams:
    """JEDEC-style DRAM timing parameters (integer picoseconds).

    Only the parameters the evaluation exercises are modeled; they cover
    activation, column access, precharge, refresh, and the inter-command
    constraints that a FR-FCFS controller must respect.
    """

    name: str
    # Interface
    tCK: int            # DRAM interface clock period
    data_rate_mts: int  # transfers per second (10^6), e.g. 1333
    # Bank access
    tRCD: int           # ACT -> RD/WR same bank
    tRP: int            # PRE -> ACT same bank
    tRAS: int           # ACT -> PRE same bank (minimum)
    tRC: int            # ACT -> ACT same bank
    tCL: int            # RD -> first data (CAS latency)
    tCWL: int           # WR -> first data (CAS write latency)
    tBL: int            # burst duration on the data bus
    tWR: int            # end of write burst -> PRE
    tRTP: int           # RD -> PRE
    tWTR: int           # end of write burst -> RD (same rank)
    # Inter-bank
    tRRD_S: int         # ACT -> ACT different bank group
    tRRD_L: int         # ACT -> ACT same bank group
    tCCD_S: int         # CAS -> CAS different bank group
    tCCD_L: int         # CAS -> CAS same bank group
    tFAW: int           # rolling window for four ACTs
    # Refresh
    tRFC: int           # REF -> any command
    tREFI: int          # average refresh command interval
    tREFW: int          # refresh window (retention requirement)
    # Inter-rank (only consulted by multi-rank topologies)
    tCS: int = 0        # CAS -> CAS rank-to-rank bus turnaround

    @property
    def read_latency(self) -> int:
        """ACT-to-data latency for a closed-row read (tRCD + tCL + tBL)."""
        return self.tRCD + self.tCL + self.tBL

    @property
    def row_cycle(self) -> int:
        """Back-to-back activation period of one bank."""
        return self.tRC

    @property
    def peak_bandwidth_bytes_per_s(self) -> float:
        """Peak data-bus bandwidth assuming a 64-bit channel."""
        return self.data_rate_mts * 1_000_000 * 8

    def scaled(self, **overrides: int) -> "TimingParams":
        """Return a copy with some parameters replaced.

        Used by DRAM techniques that deliberately violate manufacturer
        timings (e.g. reduced-tRCD access, RowClone's premature PRE).
        """
        return dataclasses.replace(self, **overrides)


def ddr4_1333() -> TimingParams:
    """DDR4-1333 as used by EasyDRAM's memory system (1333 MT/s).

    ``tRCD`` is 13.5 ns, matching the Micron EDY4016A module the paper
    profiles in Section 8.
    """
    tck = ns(1.5)
    return TimingParams(
        name="DDR4-1333",
        tCK=tck,
        data_rate_mts=1333,
        tRCD=ns(13.5),
        tRP=ns(13.5),
        tRAS=ns(36.0),
        tRC=ns(49.5),
        tCL=ns(13.5),
        tCWL=ns(10.5),
        tBL=4 * tck,  # BL8 on a double-data-rate bus = 4 clocks
        tWR=ns(15.0),
        tRTP=ns(7.5),
        tWTR=ns(7.5),
        tRRD_S=ns(6.0),
        tRRD_L=ns(7.5),
        tCCD_S=4 * tck,
        tCCD_L=ns(7.5),
        tFAW=ns(30.0),
        tRFC=ns(350.0),
        tREFI=us(7.8),
        tREFW=ms(64.0),
        tCS=2 * tck,
    )


def ddr4_2400() -> TimingParams:
    """DDR4-2400, a faster speed grade used in configuration tests."""
    tck = ns(0.833)
    return TimingParams(
        name="DDR4-2400",
        tCK=tck,
        data_rate_mts=2400,
        tRCD=ns(13.32),
        tRP=ns(13.32),
        tRAS=ns(32.0),
        tRC=ns(45.32),
        tCL=ns(13.32),
        tCWL=ns(10.0),
        tBL=4 * tck,
        tWR=ns(15.0),
        tRTP=ns(7.5),
        tWTR=ns(7.5),
        tRRD_S=ns(3.3),
        tRRD_L=ns(4.9),
        tCCD_S=4 * tck,
        tCCD_L=ns(5.0),
        tFAW=ns(21.0),
        tRFC=ns(350.0),
        tREFI=us(7.8),
        tREFW=ms(64.0),
        tCS=2 * tck,
    )


PRESETS = {
    "DDR4-1333": ddr4_1333,
    "DDR4-2400": ddr4_2400,
}


def preset(name: str) -> TimingParams:
    """Look up a timing preset by name."""
    try:
        return PRESETS[name]()
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown timing preset {name!r}; known: {known}") from None
