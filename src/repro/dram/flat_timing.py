"""Flat (array-native) DRAM timing state: the hot-path twin of BankState.

:class:`~repro.dram.timing_checker.TimingChecker` answers "when may this
command issue?" by scanning :class:`~repro.dram.bank.BankState` objects
— an attribute access per (bank, field) pair.  On the software memory
controller's batched service path that scan *is* the remaining host
work, so :class:`FlatTimingState` keeps the same information as
preallocated per-bank integer arrays plus incrementally maintained
rank-wide aggregates, and answers every query with integer arithmetic:
no ``_Constraint`` objects, no dataclass attribute walks, no ``sorted``
calls.

The device (:class:`~repro.dram.device.DramDevice`) updates the flat
state alongside the object state on every command, so both views are
always coherent; the object-based checker remains the oracle the
randomized cross-check tests compare against.

Aggregates and why they are exact:

* ``group_max_act[g]`` / ``group_max_cas[g]`` — per-bank-group maxima of
  the last ACT / last column command.  tCCD scans all banks (the bank
  itself included), so the group maximum is the scan's answer directly.
  tRRD excludes the bank itself, but including it is harmless whenever
  ``tRRD_{L,S} <= tRC``: the bank's own ``last_act + tRC`` bound always
  dominates its ``last_act + tRRD`` term.  Every real DDRx parameter set
  satisfies that (tRC = tRAS + tRP >> tRRD); the constructor checks it
  and falls back to a per-bank scan otherwise.
* ``max_write_end`` / ``max_pre`` — rank-wide maxima for tWTR and the
  refresh precondition.  Command timestamps are monotonic, so maxima
  only grow and never need recomputation.
* ``recent_acts`` — the tFAW window as a deque.  Issue times are
  non-decreasing, so the deque is sorted by construction: expiring old
  ACTs is ``popleft`` and the 4th-most-recent ACT is ``deque[len - 4]``,
  exactly ``sorted(acts)[-4]``.

Command kinds are small integers here (:data:`K_ACT` ...); the planner
in :mod:`repro.core.smc` and :meth:`DramDevice.issue_fast` speak them to
avoid constructing :class:`~repro.dram.commands.Command` objects on the
conventional service path.
"""

from __future__ import annotations

from collections import deque

from repro.dram.address import Geometry
from repro.dram.bank import NEVER
from repro.dram.timing import TimingParams

#: Integer command-kind codes used by the fast issue path.
K_ACT = 0
K_PRE = 1
K_PREA = 2
K_RD = 3
K_WR = 4
K_REF = 5

#: Flat-code -> CommandKind value string (device statistics keys).
KIND_NAMES = ("ACT", "PRE", "PREA", "RD", "WR", "REF")

_FAR_FUTURE = 1 << 62


class FlatTimingState:
    """Per-bank timestamps and rank aggregates as flat integer arrays."""

    def __init__(self, timing: TimingParams, geometry: Geometry) -> None:
        self.timing = timing
        self.geometry = geometry
        self.num_banks = geometry.total_banks
        self.num_groups = geometry.total_bank_groups
        self.group_of = tuple(geometry.bank_group_of(b)
                              for b in range(self.num_banks))
        # Rank topology: flat bank index rank-major, so rank r owns the
        # contiguous slice [r * banks_per_rank, (r + 1) * banks_per_rank).
        self.num_ranks = geometry.ranks
        self.multi_rank = geometry.ranks > 1
        self.rank_of = tuple(geometry.rank_of(b) for b in range(self.num_banks))
        self._banks_per_rank = geometry.num_banks
        #: Per-rank tFAW windows (multi-rank only; rank 0 aliases the
        #: channel-wide deque in the single-rank layout).
        self.rank_recent_acts: list[deque[int]] = [
            deque() for _ in range(self.num_ranks)]
        # The group-maximum tRRD shortcut is exact only while a bank's
        # own tRC bound dominates its tRRD bound (see module docstring).
        # Both aggregate shortcuts mix banks of every rank, so they are
        # only usable on single-rank topologies; multi-rank queries take
        # the explicit rank-aware scans below.
        self._rrd_by_group = (not self.multi_rank
                              and timing.tRRD_L <= timing.tRC
                              and timing.tRRD_S <= timing.tRC)
        # Two-term reduction of the per-group scans: with the short
        # (other-group) gap no larger than the long (same-group) gap,
        #   max_g(gmax[g] + gap(g)) == max(max_all + short,
        #                                  gmax[own] + long)
        # — the rank-wide maximum either sits in the own group (its
        # short term is then dominated by the long term, which the
        # right side keeps) or in another group (then it IS the scan's
        # short-gap answer, and every remaining short term is smaller).
        self._rrd_two_term = (self._rrd_by_group
                              and timing.tRRD_S <= timing.tRRD_L)
        self._ccd_two_term = (not self.multi_rank
                              and timing.tCCD_S <= timing.tCCD_L)
        n = self.num_banks
        g = self.num_groups
        self.last_act = [NEVER] * n
        self.last_pre = [NEVER] * n
        self.last_read = [NEVER] * n
        self.last_write = [NEVER] * n
        self.last_write_end = [NEVER] * n
        self.open_row = [-1] * n           # -1 = precharged
        self.prev_open_row = [-1] * n      # row open before the last PRE
        self.group_max_act = [NEVER] * g
        self.group_max_cas = [NEVER] * g
        self.recent_acts: deque[int] = deque()
        self.reset()

    def reset(self) -> None:
        """Power-on state (mirrors BankState.reset + a fresh RankState).

        In-place: consumers cache references to the per-bank arrays, so
        a reset must keep the list identities stable.
        """
        n = self.num_banks
        g = self.num_groups
        self.last_act[:] = [NEVER] * n
        self.last_pre[:] = [NEVER] * n
        self.last_read[:] = [NEVER] * n
        self.last_write[:] = [NEVER] * n
        self.last_write_end[:] = [NEVER] * n
        self.open_row[:] = [-1] * n
        self.prev_open_row[:] = [-1] * n
        self.group_max_act[:] = [NEVER] * g
        self.group_max_cas[:] = [NEVER] * g
        self.max_act_all = NEVER
        self.max_cas_all = NEVER
        self.max_write_end = NEVER
        self.max_pre = NEVER
        self.open_count = 0
        self.recent_acts.clear()
        for acts in self.rank_recent_acts:
            acts.clear()
        self.last_ref = NEVER

    # -- state updates (called by the device on every command) --------------

    def act(self, bank: int, row: int, t: int) -> None:
        self.last_act[bank] = t
        group = self.group_of[bank]
        if t > self.group_max_act[group]:
            self.group_max_act[group] = t
        if t > self.max_act_all:
            self.max_act_all = t
        if self.open_row[bank] < 0:
            self.open_count += 1
        self.open_row[bank] = row
        acts = self.recent_acts
        acts.append(t)
        cutoff = t - self.timing.tFAW
        while acts and acts[0] <= cutoff:
            acts.popleft()
        if self.multi_rank:
            racts = self.rank_recent_acts[self.rank_of[bank]]
            racts.append(t)
            while racts and racts[0] <= cutoff:
                racts.popleft()

    def pre(self, bank: int, t: int) -> None:
        row = self.open_row[bank]
        self.prev_open_row[bank] = row
        if row >= 0:
            self.open_count -= 1
            self.open_row[bank] = -1
        self.last_pre[bank] = t
        if t > self.max_pre:
            self.max_pre = t

    def prea(self, t: int) -> None:
        for bank in range(self.num_banks):
            self.pre(bank, t)

    def read(self, bank: int, t: int) -> None:
        self.last_read[bank] = t
        group = self.group_of[bank]
        if t > self.group_max_cas[group]:
            self.group_max_cas[group] = t
        if t > self.max_cas_all:
            self.max_cas_all = t

    def write(self, bank: int, t: int, data_end: int) -> None:
        self.last_write[bank] = t
        group = self.group_of[bank]
        if t > self.group_max_cas[group]:
            self.group_max_cas[group] = t
        if t > self.max_cas_all:
            self.max_cas_all = t
        self.last_write_end[bank] = data_end
        if data_end > self.max_write_end:
            self.max_write_end = data_end

    def ref(self, t: int) -> None:
        self.last_ref = t

    # -- queries (bit-identical to TimingChecker.earliest_ps) ---------------

    def earliest(self, kind: int, bank: int) -> int:
        """Earliest legal issue time of a ``kind`` command on ``bank``.

        Computes the exact value of
        :meth:`repro.dram.timing_checker.TimingChecker.earliest_ps`
        for the corresponding command, using the flat arrays.
        """
        t = self.timing
        e = 0
        if self.multi_rank and kind in (K_ACT, K_RD, K_WR):
            return self._earliest_multi_rank(kind, bank)
        if kind == K_ACT:
            e = self.last_act[bank] + t.tRC
            v = self.last_pre[bank] + t.tRP
            if v > e:
                e = v
            grp = self.group_of[bank]
            if self._rrd_two_term:
                v = self.max_act_all + t.tRRD_S
                if v > e:
                    e = v
                v = self.group_max_act[grp] + t.tRRD_L
                if v > e:
                    e = v
            elif self._rrd_by_group:
                rrd_l, rrd_s = t.tRRD_L, t.tRRD_S
                for g, gmax in enumerate(self.group_max_act):
                    v = gmax + (rrd_l if g == grp else rrd_s)
                    if v > e:
                        e = v
            else:
                last_act = self.last_act
                group_of = self.group_of
                rrd_l, rrd_s = t.tRRD_L, t.tRRD_S
                for other in range(self.num_banks):
                    if other == bank:
                        continue
                    v = last_act[other] + (rrd_l if group_of[other] == grp
                                           else rrd_s)
                    if v > e:
                        e = v
            acts = self.recent_acts
            if len(acts) >= 4:
                v = acts[len(acts) - 4] + t.tFAW
                if v > e:
                    e = v
            v = self.last_ref + t.tRFC
            if v > e:
                e = v
        elif kind == K_RD or kind == K_WR:
            e = self.last_act[bank] + t.tRCD
            grp = self.group_of[bank]
            if self._ccd_two_term:
                v = self.max_cas_all + t.tCCD_S
                if v > e:
                    e = v
                v = self.group_max_cas[grp] + t.tCCD_L
                if v > e:
                    e = v
            else:
                ccd_l, ccd_s = t.tCCD_L, t.tCCD_S
                for g, gmax in enumerate(self.group_max_cas):
                    v = gmax + (ccd_l if g == grp else ccd_s)
                    if v > e:
                        e = v
            if kind == K_RD:
                v = self.max_write_end + t.tWTR
                if v > e:
                    e = v
        elif kind == K_PRE:
            e = self.last_act[bank] + t.tRAS
            v = self.last_read[bank] + t.tRTP
            if v > e:
                e = v
            v = self.last_write_end[bank] + t.tWR
            if v > e:
                e = v
        elif kind == K_PREA:
            tras, trtp, twr = t.tRAS, t.tRTP, t.tWR
            last_act, last_read = self.last_act, self.last_read
            last_write_end = self.last_write_end
            for b in range(self.num_banks):
                v = last_act[b] + tras
                if v > e:
                    e = v
                v = last_read[b] + trtp
                if v > e:
                    e = v
                v = last_write_end[b] + twr
                if v > e:
                    e = v
        elif kind == K_REF:
            e = self.max_pre + t.tRP
            v = self.last_ref + t.tRFC
            if v > e:
                e = v
            if self.open_count:
                e = _FAR_FUTURE
        return e if e > 0 else 0

    def _earliest_multi_rank(self, kind: int, bank: int) -> int:
        """Rank-aware earliest-time query (topologies with ranks > 1).

        tRRD/tFAW and tCCD/tWTR couple banks *within* a rank; commands
        to different ranks only see the rank-to-rank bus turnaround
        ``tCS`` after another rank's column access (and, for reads, the
        end of another rank's write burst).  REF refreshes all ranks of
        the channel at once, so tRFC still reads the channel-wide
        ``last_ref``.
        """
        t = self.timing
        rk = self.rank_of[bank]
        bpr = self._banks_per_rank
        lo = rk * bpr
        hi = lo + bpr
        last_act = self.last_act
        if kind == K_ACT:
            e = last_act[bank] + t.tRC
            v = self.last_pre[bank] + t.tRP
            if v > e:
                e = v
            grp = self.group_of[bank]
            group_of = self.group_of
            rrd_l, rrd_s = t.tRRD_L, t.tRRD_S
            for other in range(lo, hi):
                if other == bank:
                    continue
                v = last_act[other] + (rrd_l if group_of[other] == grp
                                       else rrd_s)
                if v > e:
                    e = v
            acts = self.rank_recent_acts[rk]
            if len(acts) >= 4:
                v = acts[len(acts) - 4] + t.tFAW
                if v > e:
                    e = v
            v = self.last_ref + t.tRFC
            if v > e:
                e = v
        else:  # K_RD / K_WR
            e = last_act[bank] + t.tRCD
            grp = self.group_of[bank]
            group_of = self.group_of
            last_read = self.last_read
            last_write = self.last_write
            last_write_end = self.last_write_end
            ccd_l, ccd_s, tcs = t.tCCD_L, t.tCCD_S, t.tCS
            is_read = kind == K_RD
            twtr = t.tWTR
            for other in range(self.num_banks):
                last_cas = last_read[other]
                w = last_write[other]
                if w > last_cas:
                    last_cas = w
                if lo <= other < hi:
                    gap = ccd_l if group_of[other] == grp else ccd_s
                    v = last_cas + gap
                    if v > e:
                        e = v
                    if is_read:
                        v = last_write_end[other] + twtr
                        if v > e:
                            e = v
                else:
                    v = last_cas + tcs
                    if v > e:
                        e = v
                    if is_read:
                        v = last_write_end[other] + tcs
                        if v > e:
                            e = v
        return e if e > 0 else 0
