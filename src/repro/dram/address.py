"""Physical-address to DRAM-address translation.

The memory controller translates processor physical addresses into
``<channel, rank, bank, row, column>`` coordinates (Section 2.3).
EasyAPI exposes the same mappers to user code so that, e.g., the
RowClone allocator can reserve whole DRAM rows (Section 7.1, "alignment
problem").

The paper's evaluated system is a single channel / single rank of DDR4
(footnote 5); that remains the default :class:`Geometry`.  The mapper
additionally supports config-driven multi-channel / multi-rank
topologies with pluggable channel-interleaving schemes:

* ``row-bank-col`` ("RoBaCo"): consecutive rows map to the same bank; a
  row's bytes are contiguous in the physical address space.  This is the
  scheme the RowClone allocator prefers because whole rows are trivially
  alignable.  With more than one channel, channels are *channel-major*
  (each channel owns a contiguous slab of the address space).
* ``bank-interleaved`` ("BaRoCo" at cache-line granularity): consecutive
  cache lines rotate across banks, maximizing bank-level parallelism for
  streaming workloads.  Channel-major like ``row-bank-col``.
* ``channel-line``: consecutive cache lines rotate across channels
  (maximum channel-level parallelism for streams); within a channel the
  layout is ``row-bank-col``.
* ``channel-row``: consecutive row-sized spans rotate across channels —
  whole DRAM rows stay physically contiguous (RowClone-friendly) while
  large footprints still spread over every channel.
* ``channel-xor``: line-granularity channel interleaving with the
  channel index hashed by higher address bits (the classic XOR channel
  hash), which keeps power-of-two-strided streams from camping on one
  channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Geometry:
    """Shape of the modeled memory system (channels x ranks x banks).

    The paper's system is a single channel / single rank of DDR4 with 4
    bank groups x 4 banks and 32K rows (footnote 5); the default geometry
    here scales the row count down for tractable experiments while tests
    cover the full-size configuration too.  ``channels`` and ``ranks``
    default to 1, which reproduces the paper's topology exactly.
    """

    bank_groups: int = 4
    banks_per_group: int = 4
    rows_per_bank: int = 4096
    columns_per_row: int = 128       # cache lines per row
    line_bytes: int = 64
    subarray_rows: int = 512
    ranks: int = 1                   # ranks per channel
    channels: int = 1

    def __post_init__(self) -> None:
        for name in ("bank_groups", "banks_per_group", "rows_per_bank",
                     "columns_per_row", "line_bytes", "subarray_rows",
                     "ranks", "channels"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.subarray_rows > self.rows_per_bank:
            raise ValueError("subarray_rows cannot exceed rows_per_bank")

    @property
    def num_banks(self) -> int:
        """Banks in one rank (groups x banks per group)."""
        return self.bank_groups * self.banks_per_group

    @property
    def banks_per_rank(self) -> int:
        """Alias of :attr:`num_banks` (banks in one rank)."""
        return self.num_banks

    @property
    def total_banks(self) -> int:
        """Banks in one channel across all of its ranks.

        Channel-local state (device bank arrays, flat timing state) is
        indexed by this flat bank index; rank ``r`` owns the contiguous
        slice ``[r * num_banks, (r + 1) * num_banks)``.
        """
        return self.ranks * self.num_banks

    @property
    def total_bank_groups(self) -> int:
        """Bank groups in one channel across all of its ranks."""
        return self.ranks * self.bank_groups

    @property
    def row_bytes(self) -> int:
        """Bytes per DRAM row (columns x line size)."""
        return self.columns_per_row * self.line_bytes

    @property
    def bank_bytes(self) -> int:
        """Bytes per bank."""
        return self.rows_per_bank * self.row_bytes

    @property
    def channel_bytes(self) -> int:
        """Bytes in one channel (all ranks)."""
        return self.total_banks * self.bank_bytes

    @property
    def total_bytes(self) -> int:
        """Bytes in the whole modeled memory system (all channels)."""
        return self.channels * self.channel_bytes

    @property
    def subarrays_per_bank(self) -> int:
        """Subarrays per bank (RowClone works intra-subarray only)."""
        return -(-self.rows_per_bank // self.subarray_rows)

    def bank_group_of(self, bank: int) -> int:
        """Bank-group index for a channel-local flat bank index.

        Group ids are unique across ranks (rank ``r``'s groups occupy
        ``[r * bank_groups, (r + 1) * bank_groups)``), so same-group
        timing constraints (tCCD_L/tRRD_L) never couple banks of
        different ranks.
        """
        return bank // self.banks_per_group

    def rank_of(self, bank: int) -> int:
        """Rank index for a channel-local flat bank index."""
        return bank // self.num_banks

    def subarray_of(self, row: int) -> int:
        """Subarray index of a row (RowClone is intra-subarray only)."""
        return row // self.subarray_rows


@dataclass(frozen=True, slots=True)
class DramAddress:
    """A fully decoded DRAM coordinate.

    ``bank`` is the channel-local *flat* bank index (rank-major:
    ``rank * banks_per_rank + bank_in_rank``), which is what the
    per-channel device and controller index their state by; ``rank`` and
    ``channel`` carry the topology coordinates explicitly.  The paper's
    single-channel / single-rank system always has ``channel == rank
    == 0``.
    """

    bank: int
    row: int
    col: int
    channel: int = 0
    rank: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ch{self.channel} rk{self.rank} b{self.bank} r{self.row} c{self.col}>"


class AddressMapper:
    """Bidirectional physical-address <-> DRAM-address mapper.

    ``row-bank-col-skew`` is ``row-bank-col`` with the bank index skewed
    by a hash of the row, the standard controller trick that keeps
    power-of-two-strided streams (e.g. a copy's source and destination
    arrays) from ping-ponging between two rows of one bank.

    ``strict`` (default on) raises on physical addresses beyond the
    topology's capacity instead of silently wrapping them — silent
    aliasing turned out-of-range workload footprints into impossible
    row-buffer behavior.  ``strict=False`` restores the wrap for callers
    that genuinely model a smaller-than-address-space window.

    The per-address decode memo is capped at :attr:`DECODE_CACHE_LIMIT`
    entries so multi-channel-scale footprints cannot grow it without
    bound; past the cap, decodes simply recompute (the bulk
    :meth:`prime` path is unaffected for everything under the cap).
    """

    SCHEMES = ("row-bank-col", "row-bank-col-skew", "bank-interleaved",
               "channel-line", "channel-row", "channel-xor")

    #: Channel-interleaving schemes (within-channel layout is row-major).
    CHANNEL_SCHEMES = ("channel-line", "channel-row", "channel-xor")

    #: Decoded-address memo cap (entries).  1M entries cover a 64 MiB
    #: footprint of 64-byte lines — far beyond every experiment sweep —
    #: while bounding the memo's host memory on pathological traces.
    DECODE_CACHE_LIMIT = 1 << 20

    def __init__(self, geometry: Geometry, scheme: str = "row-bank-col",
                 strict: bool = True,
                 cache_limit: int | None = None) -> None:
        if scheme not in self.SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; known: {self.SCHEMES}")
        self.geometry = geometry
        self.scheme = scheme
        self.strict = strict
        self.cache_limit = (self.DECODE_CACHE_LIMIT if cache_limit is None
                            else cache_limit)
        # Decoded-address memo: workloads revisit the same cache lines
        # (pointer chases loop, kernels stream repeatedly), the decode is
        # pure, and DramAddress is frozen — so sharing instances is safe.
        self._decode_cache: dict[int, DramAddress] = {}
        # Geometry scalars hoisted out of the property chain: decode
        # misses are a hot path when a workload first touches its
        # footprint.
        self._total_bytes = geometry.total_bytes
        self._line_bytes = geometry.line_bytes
        self._columns = geometry.columns_per_row
        self._num_banks = geometry.total_banks
        self._banks_per_rank = geometry.num_banks
        self._rows = geometry.rows_per_bank
        self._channels = geometry.channels
        self._lines_per_channel = geometry.channel_bytes // geometry.line_bytes
        self._row_major = scheme != "bank-interleaved"
        self._skewed = scheme == "row-bank-col-skew"
        self._ch_mode = scheme if scheme in self.CHANNEL_SCHEMES else None
        # XOR channel hash: true XOR for power-of-two channel counts,
        # additive skew otherwise (both are invertible per base line).
        self._ch_pow2 = (self._channels & (self._channels - 1)) == 0

    # -- decode ------------------------------------------------------------

    def _check_range(self, phys_addr: int) -> int:
        """Range-check (strict) or wrap (permissive) a byte address."""
        if phys_addr < 0:
            raise ValueError(f"negative physical address {phys_addr:#x}")
        if phys_addr >= self._total_bytes:
            if self.strict:
                raise ValueError(
                    f"physical address {phys_addr:#x} beyond the"
                    f" {self._total_bytes:#x}-byte topology"
                    f" (pass strict=False to the AddressMapper to wrap)")
            return phys_addr % self._total_bytes
        return phys_addr

    def _split_channel(self, line: int) -> tuple[int, int]:
        """Split a global line index into (channel, within-channel line)."""
        if self._channels == 1:
            return 0, line
        mode = self._ch_mode
        if mode is None:  # legacy schemes: channel-major slabs
            return line // self._lines_per_channel, line % self._lines_per_channel
        if mode == "channel-line":
            return line % self._channels, line // self._channels
        if mode == "channel-row":
            span, col_part = divmod(line, self._columns)
            ch = span % self._channels
            return ch, (span // self._channels) * self._columns + col_part
        # channel-xor
        base, slot = divmod(line, self._channels)
        h = self._channel_hash(base)
        if self._ch_pow2:
            ch = slot ^ (h & (self._channels - 1))
        else:
            ch = (slot + h) % self._channels
        return ch, base

    @staticmethod
    def _channel_hash(base: int) -> int:
        """Line-index hash feeding the XOR channel interleave."""
        return base ^ (base >> 3) ^ (base >> 7)

    def to_dram(self, phys_addr: int) -> DramAddress:
        """Decode a physical byte address into a DRAM coordinate."""
        cached = self._decode_cache.get(phys_addr)
        if cached is not None:
            return cached
        line = self._check_range(phys_addr) // self._line_bytes
        channel, line = self._split_channel(line)
        if self._row_major:
            col = line % self._columns
            block = line // self._columns
            bank = block % self._num_banks
            row = (block // self._num_banks) % self._rows
            if self._skewed:
                bank = (bank + self._skew(row)) % self._num_banks
        else:  # bank-interleaved
            bank = line % self._num_banks
            line //= self._num_banks
            col = line % self._columns
            row = (line // self._columns) % self._rows
        decoded = DramAddress(bank=bank, row=row, col=col, channel=channel,
                              rank=bank // self._banks_per_rank)
        if len(self._decode_cache) < self.cache_limit:
            self._decode_cache[phys_addr] = decoded
        return decoded

    def channel_of(self, phys_addr: int) -> int:
        """Channel index of a physical byte address (no full decode)."""
        line = self._check_range(phys_addr) // self._line_bytes
        if self._channels == 1:
            return 0
        return self._split_channel(line)[0]

    @staticmethod
    def _skew(row: int) -> int:
        """Row-dependent bank skew (folds the row bits down)."""
        return row ^ (row >> 4) ^ (row >> 8)

    def prime(self, *addr_lists: list[int]) -> None:
        """Bulk-decode byte addresses into the memo (vectorized).

        The block frontend knows every DRAM-bound address of a block the
        moment the cache filter returns, so the decode math runs once
        over a NumPy array instead of per request; negative entries
        (the block path's "no fill" sentinel) are skipped.  Decoded
        values are exactly :meth:`to_dram`'s; entries past the memo cap
        are skipped (they recompute on demand).
        """
        cache = self._decode_cache
        room = self.cache_limit - len(cache)
        if room <= 0:
            return
        missing = [a for addrs in addr_lists for a in addrs
                   if a >= 0 and a not in cache]
        if not missing:
            return
        if len(missing) > room:
            missing = missing[:room]
        if self.strict:
            worst = max(missing)
            if worst >= self._total_bytes:
                # Re-raise through the scalar path for the exact message.
                self._check_range(worst)
        arr = np.asarray(missing, dtype=np.int64)
        line = (arr % self._total_bytes) // self._line_bytes
        channels = self._channels
        if channels == 1:
            channel = np.zeros(len(missing), dtype=np.int64)
        elif self._ch_mode is None:
            channel = line // self._lines_per_channel
            line = line % self._lines_per_channel
        elif self._ch_mode == "channel-line":
            channel = line % channels
            line = line // channels
        elif self._ch_mode == "channel-row":
            span = line // self._columns
            col_part = line % self._columns
            channel = span % channels
            line = (span // channels) * self._columns + col_part
        else:  # channel-xor
            base = line // channels
            slot = line % channels
            h = base ^ (base >> 3) ^ (base >> 7)
            if self._ch_pow2:
                channel = slot ^ (h & (channels - 1))
            else:
                channel = (slot + h) % channels
            line = base
        if self._row_major:
            col = line % self._columns
            block = line // self._columns
            bank = block % self._num_banks
            row = (block // self._num_banks) % self._rows
            if self._skewed:
                bank = (bank + (row ^ (row >> 4) ^ (row >> 8))) % self._num_banks
        else:  # bank-interleaved
            bank = line % self._num_banks
            line //= self._num_banks
            col = line % self._columns
            row = (line // self._columns) % self._rows
        rank = bank // self._banks_per_rank
        for a, b, r, c, ch, rk in zip(missing, bank.tolist(), row.tolist(),
                                      col.tolist(), channel.tolist(),
                                      rank.tolist()):
            cache[a] = DramAddress(b, r, c, ch, rk)

    # -- encode ------------------------------------------------------------

    def to_physical(self, addr: DramAddress) -> int:
        """Encode a DRAM coordinate back into a physical byte address."""
        g = self.geometry
        self._check(addr)
        num_banks = self._num_banks
        if self._row_major:
            bank = addr.bank
            if self._skewed:
                bank = (bank - self._skew(addr.row)) % num_banks
            line = (addr.row * num_banks + bank) * self._columns + addr.col
        else:
            line = (addr.row * self._columns + addr.col) * num_banks + addr.bank
        channels = self._channels
        if channels > 1:
            mode = self._ch_mode
            if mode is None:
                line = addr.channel * self._lines_per_channel + line
            elif mode == "channel-line":
                line = line * channels + addr.channel
            elif mode == "channel-row":
                span_in, col_part = divmod(line, self._columns)
                line = (span_in * channels + addr.channel) * self._columns \
                    + col_part
            else:  # channel-xor
                h = self._channel_hash(line)
                if self._ch_pow2:
                    slot = addr.channel ^ (h & (channels - 1))
                else:
                    slot = (addr.channel - h) % channels
                line = line * channels + slot
        return line * g.line_bytes

    def row_base_physical(self, bank: int, row: int, channel: int = 0) -> int:
        """Physical address of the first byte of a DRAM row."""
        return self.to_physical(DramAddress(
            bank=bank, row=row, col=0, channel=channel,
            rank=bank // self._banks_per_rank))

    def row_is_contiguous(self) -> bool:
        """Whether a DRAM row occupies contiguous physical addresses."""
        if self.scheme == "bank-interleaved":
            return False
        if self._channels > 1 and self._ch_mode in ("channel-line",
                                                    "channel-xor"):
            return False
        return True

    def _check(self, addr: DramAddress) -> None:
        """Range-check a DRAM coordinate against the geometry."""
        g = self.geometry
        if not (0 <= addr.bank < self._num_banks):
            raise ValueError(
                f"bank {addr.bank} out of range 0..{self._num_banks - 1}")
        if not (0 <= addr.row < g.rows_per_bank):
            raise ValueError(f"row {addr.row} out of range 0..{g.rows_per_bank - 1}")
        if not (0 <= addr.col < g.columns_per_row):
            raise ValueError(
                f"col {addr.col} out of range 0..{g.columns_per_row - 1}")
        if not (0 <= addr.channel < self._channels):
            raise ValueError(
                f"channel {addr.channel} out of range 0..{self._channels - 1}")
        if not (0 <= addr.rank < g.ranks):
            raise ValueError(f"rank {addr.rank} out of range 0..{g.ranks - 1}")
