"""Physical-address to DRAM-address translation.

The memory controller translates processor physical addresses into
``<bank, row, column>`` triplets (Section 2.3).  EasyAPI exposes the same
mappers to user code so that, e.g., the RowClone allocator can reserve
whole DRAM rows (Section 7.1, "alignment problem").

Two mapping schemes are provided:

* ``row-bank-col`` ("RoBaCo"): consecutive rows map to the same bank; a
  row's bytes are contiguous in the physical address space.  This is the
  scheme the RowClone allocator prefers because whole rows are trivially
  alignable.
* ``bank-interleaved`` ("BaRoCo" at cache-line granularity): consecutive
  cache lines rotate across banks, maximizing bank-level parallelism for
  streaming workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Geometry:
    """Shape of the modeled single-channel, single-rank DRAM system.

    The paper's system is a single channel / single rank of DDR4 with 4
    bank groups x 4 banks and 32K rows (footnote 5); the default geometry
    here scales the row count down for tractable experiments while tests
    cover the full-size configuration too.
    """

    bank_groups: int = 4
    banks_per_group: int = 4
    rows_per_bank: int = 4096
    columns_per_row: int = 128       # cache lines per row
    line_bytes: int = 64
    subarray_rows: int = 512

    def __post_init__(self) -> None:
        for name in ("bank_groups", "banks_per_group", "rows_per_bank",
                     "columns_per_row", "line_bytes", "subarray_rows"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.subarray_rows > self.rows_per_bank:
            raise ValueError("subarray_rows cannot exceed rows_per_bank")

    @property
    def num_banks(self) -> int:
        """Total banks in the rank (groups x banks per group)."""
        return self.bank_groups * self.banks_per_group

    @property
    def row_bytes(self) -> int:
        """Bytes per DRAM row (columns x line size)."""
        return self.columns_per_row * self.line_bytes

    @property
    def bank_bytes(self) -> int:
        """Bytes per bank."""
        return self.rows_per_bank * self.row_bytes

    @property
    def total_bytes(self) -> int:
        """Bytes in the modeled rank."""
        return self.num_banks * self.bank_bytes

    @property
    def subarrays_per_bank(self) -> int:
        """Subarrays per bank (RowClone works intra-subarray only)."""
        return -(-self.rows_per_bank // self.subarray_rows)

    def bank_group_of(self, bank: int) -> int:
        """Bank group index for a flat bank index."""
        return bank // self.banks_per_group

    def subarray_of(self, row: int) -> int:
        """Subarray index of a row (RowClone is intra-subarray only)."""
        return row // self.subarray_rows


@dataclass(frozen=True, slots=True)
class DramAddress:
    """A fully decoded DRAM coordinate (single channel / rank modeled)."""

    bank: int
    row: int
    col: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<b{self.bank} r{self.row} c{self.col}>"


class AddressMapper:
    """Bidirectional physical-address <-> DRAM-address mapper.

    ``row-bank-col-skew`` is ``row-bank-col`` with the bank index skewed
    by a hash of the row, the standard controller trick that keeps
    power-of-two-strided streams (e.g. a copy's source and destination
    arrays) from ping-ponging between two rows of one bank.
    """

    SCHEMES = ("row-bank-col", "row-bank-col-skew", "bank-interleaved")

    def __init__(self, geometry: Geometry, scheme: str = "row-bank-col") -> None:
        if scheme not in self.SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; known: {self.SCHEMES}")
        self.geometry = geometry
        self.scheme = scheme
        # Decoded-address memo: workloads revisit the same cache lines
        # (pointer chases loop, kernels stream repeatedly), the decode is
        # pure, and DramAddress is frozen — so sharing instances is safe.
        self._decode_cache: dict[int, DramAddress] = {}
        # Geometry scalars hoisted out of the property chain: decode
        # misses are a hot path when a workload first touches its
        # footprint.
        self._total_bytes = geometry.total_bytes
        self._line_bytes = geometry.line_bytes
        self._columns = geometry.columns_per_row
        self._num_banks = geometry.num_banks
        self._rows = geometry.rows_per_bank
        self._row_major = scheme in ("row-bank-col", "row-bank-col-skew")
        self._skewed = scheme == "row-bank-col-skew"

    def to_dram(self, phys_addr: int) -> DramAddress:
        """Decode a physical byte address into a DRAM coordinate."""
        cached = self._decode_cache.get(phys_addr)
        if cached is not None:
            return cached
        if phys_addr < 0:
            raise ValueError(f"negative physical address {phys_addr:#x}")
        line = (phys_addr % self._total_bytes) // self._line_bytes
        if self._row_major:
            col = line % self._columns
            block = line // self._columns
            bank = block % self._num_banks
            row = (block // self._num_banks) % self._rows
            if self._skewed:
                bank = (bank + self._skew(row)) % self._num_banks
        else:  # bank-interleaved
            bank = line % self._num_banks
            line //= self._num_banks
            col = line % self._columns
            row = (line // self._columns) % self._rows
        decoded = DramAddress(bank=bank, row=row, col=col)
        self._decode_cache[phys_addr] = decoded
        return decoded

    @staticmethod
    def _skew(row: int) -> int:
        """Row-dependent bank skew (folds the row bits down)."""
        return row ^ (row >> 4) ^ (row >> 8)

    def prime(self, *addr_lists: list[int]) -> None:
        """Bulk-decode byte addresses into the memo (vectorized).

        The block frontend knows every DRAM-bound address of a block the
        moment the cache filter returns, so the decode math runs once
        over a NumPy array instead of per request; negative entries
        (the block path's "no fill" sentinel) are skipped.  Decoded
        values are exactly :meth:`to_dram`'s.
        """
        cache = self._decode_cache
        missing = [a for addrs in addr_lists for a in addrs
                   if a >= 0 and a not in cache]
        if not missing:
            return
        arr = np.asarray(missing, dtype=np.int64)
        line = (arr % self._total_bytes) // self._line_bytes
        if self._row_major:
            col = line % self._columns
            block = line // self._columns
            bank = block % self._num_banks
            row = (block // self._num_banks) % self._rows
            if self._skewed:
                bank = (bank + (row ^ (row >> 4) ^ (row >> 8))) % self._num_banks
        else:  # bank-interleaved
            bank = line % self._num_banks
            line //= self._num_banks
            col = line % self._columns
            row = (line // self._columns) % self._rows
        for a, b, r, c in zip(missing, bank.tolist(), row.tolist(),
                              col.tolist()):
            cache[a] = DramAddress(b, r, c)

    def to_physical(self, addr: DramAddress) -> int:
        """Encode a DRAM coordinate back into a physical byte address."""
        g = self.geometry
        self._check(addr)
        if self.scheme in ("row-bank-col", "row-bank-col-skew"):
            bank = addr.bank
            if self.scheme == "row-bank-col-skew":
                bank = (bank - self._skew(addr.row)) % g.num_banks
            line = (addr.row * g.num_banks + bank) * g.columns_per_row + addr.col
        else:
            line = (addr.row * g.columns_per_row + addr.col) * g.num_banks + addr.bank
        return line * g.line_bytes

    def row_base_physical(self, bank: int, row: int) -> int:
        """Physical address of the first byte of a DRAM row."""
        return self.to_physical(DramAddress(bank=bank, row=row, col=0))

    def row_is_contiguous(self) -> bool:
        """Whether a DRAM row occupies contiguous physical addresses."""
        return self.scheme in ("row-bank-col", "row-bank-col-skew")

    def _check(self, addr: DramAddress) -> None:
        """Range-check a DRAM coordinate against the geometry."""
        g = self.geometry
        if not (0 <= addr.bank < g.num_banks):
            raise ValueError(f"bank {addr.bank} out of range 0..{g.num_banks - 1}")
        if not (0 <= addr.row < g.rows_per_bank):
            raise ValueError(f"row {addr.row} out of range 0..{g.rows_per_bank - 1}")
        if not (0 <= addr.col < g.columns_per_row):
            raise ValueError(
                f"col {addr.col} out of range 0..{g.columns_per_row - 1}")
