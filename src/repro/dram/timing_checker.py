"""JEDEC inter-command timing validation.

The checker computes, for a candidate command, the earliest legal issue
time given the bank/rank command history.  It is used in two modes:

* **strict** — raise :class:`TimingViolation` when a command is issued
  early.  This is how the conventional memory-controller path runs; it
  guarantees the software memory controller never silently corrupts data.
* **permissive** — report violations but let the command through.  DRAM
  techniques (RowClone's premature PRE/ACT, reduced-tRCD reads) work by
  deliberately violating timings; the *cell model* then decides what the
  real chip would do with the violating sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.address import Geometry
from repro.dram.bank import NEVER, BankState, RankState
from repro.dram.commands import Command, CommandKind
from repro.dram.timing import TimingParams


class TimingViolation(Exception):
    """A DRAM command was issued before its earliest legal time.

    Raised only when the owning :class:`TimingChecker` runs in **strict**
    mode (``strict=True``): the conventional memory-controller path uses
    strict checking as a correctness guard — a violating command means
    the software memory controller itself is buggy, so emulation stops
    rather than silently corrupting data.  In **permissive** mode
    (``strict=False``, the EasyTile default) the same condition is
    recorded as a :class:`ViolationRecord` and the command proceeds;
    the cell model then decides what the silicon would do with the
    violating sequence (DRAM techniques rely on this).
    """

    def __init__(self, command: Command, time_ps: int, earliest_ps: int,
                 constraint: str) -> None:
        self.command = command
        self.time_ps = time_ps
        self.earliest_ps = earliest_ps
        self.constraint = constraint
        short = command.short()
        super().__init__(
            f"{short} issued at {time_ps} ps, earliest legal {earliest_ps} ps"
            f" (violates {constraint}, short by {earliest_ps - time_ps} ps)")


@dataclass
class ViolationRecord:
    """A permissive-mode violation observation."""

    command: Command
    time_ps: int
    earliest_ps: int
    constraint: str

    @property
    def slack_ps(self) -> int:
        """How early the command was (positive = violation magnitude)."""
        return self.earliest_ps - self.time_ps


@dataclass
class _Constraint:
    """One candidate lower bound on a command's issue time."""

    earliest_ps: int
    name: str


@dataclass
class TimingChecker:
    """Stateless constraint evaluator over bank/rank state.

    The checker does not own the state; :class:`repro.dram.device.DramDevice`
    passes its bank and rank state in.  This keeps checker logic pure and
    lets the baseline simulator reuse it.
    """

    timing: TimingParams
    geometry: Geometry
    strict: bool = True
    violations: list[ViolationRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Precomputed bank -> bank-group / rank tables so the batched
        # query path never calls into the geometry per bank.
        n = self.geometry.total_banks
        self._group_of = tuple(
            self.geometry.bank_group_of(b) for b in range(n))
        self._rank_of = tuple(self.geometry.rank_of(b) for b in range(n))
        self._multi_rank = self.geometry.ranks > 1

    @staticmethod
    def _rank_states(rank) -> tuple[RankState, ...]:
        """Normalize the rank argument (one state or one per rank)."""
        if isinstance(rank, RankState):
            return (rank,)
        return tuple(rank)

    def _same_rank(self, bank_a: int, bank_b: int) -> bool:
        return self._rank_of[bank_a] == self._rank_of[bank_b]

    def earliest_issue(self, cmd: Command, banks: list[BankState],
                       rank: RankState) -> tuple[int, str]:
        """Earliest legal issue time for ``cmd`` and the binding constraint."""
        t = self.timing
        rank_states = self._rank_states(rank)
        candidates: list[_Constraint] = [_Constraint(0, "power-on")]
        if cmd.kind is CommandKind.ACT:
            bank = banks[cmd.bank]
            candidates.append(_Constraint(bank.last_act + t.tRC, "tRC"))
            candidates.append(_Constraint(bank.last_pre + t.tRP, "tRP"))
            candidates.extend(self._act_to_act(cmd, banks))
            own_rank = rank_states[min(self._rank_of[cmd.bank],
                                       len(rank_states) - 1)]
            candidates.append(self._faw(own_rank))
            candidates.append(_Constraint(
                self._last_ref(rank_states) + t.tRFC, "tRFC"))
        elif cmd.kind in (CommandKind.PRE, CommandKind.PREA):
            targets = banks if cmd.kind is CommandKind.PREA else [banks[cmd.bank]]
            for bank in targets:
                candidates.append(_Constraint(bank.last_act + t.tRAS, "tRAS"))
                candidates.append(_Constraint(bank.last_read + t.tRTP, "tRTP"))
                candidates.append(
                    _Constraint(bank.last_write_data_end + t.tWR, "tWR"))
        elif cmd.kind is CommandKind.RD:
            bank = banks[cmd.bank]
            candidates.append(_Constraint(bank.last_act + t.tRCD, "tRCD"))
            candidates.extend(self._cas_to_cas(cmd, banks))
            candidates.append(
                _Constraint(self._last_write_end(cmd.bank, banks, same_rank=True)
                            + t.tWTR, "tWTR"))
            if self._multi_rank:
                candidates.append(_Constraint(
                    self._last_write_end(cmd.bank, banks, same_rank=False)
                    + t.tCS, "tCS"))
        elif cmd.kind is CommandKind.WR:
            bank = banks[cmd.bank]
            candidates.append(_Constraint(bank.last_act + t.tRCD, "tRCD"))
            candidates.extend(self._cas_to_cas(cmd, banks))
        elif cmd.kind is CommandKind.REF:
            for bank in banks:
                candidates.append(_Constraint(bank.last_pre + t.tRP, "tRP"))
                if bank.is_open:
                    # All banks must be precharged before refresh.
                    candidates.append(_Constraint((1 << 62), "banks-open"))
            candidates.append(_Constraint(
                self._last_ref(rank_states) + t.tRFC, "tRFC"))
        binding = max(candidates, key=lambda c: c.earliest_ps)
        return binding.earliest_ps, binding.name

    def check(self, cmd: Command, time_ps: int, banks: list[BankState],
              rank: RankState) -> int:
        """Validate ``cmd`` at ``time_ps``; return the violation slack (ps).

        Returns 0 when the command is legal.  In strict mode an early
        command raises; in permissive mode it is recorded and the positive
        slack is returned so the device can model the consequences.
        """
        earliest, constraint = self.earliest_issue(cmd, banks, rank)
        if time_ps >= earliest:
            return 0
        if self.strict:
            raise TimingViolation(cmd, time_ps, earliest, constraint)
        # Snapshot the command: pooled conventional programs reuse and
        # re-patch their Command objects in place, and a record must
        # describe the command as it was at violation time.
        self.violations.append(ViolationRecord(
            Command(cmd.kind, cmd.bank, cmd.row, cmd.col, cmd.data),
            time_ps, earliest, constraint))
        return earliest - time_ps

    # -- batched per-bank queries (event-engine fast path) -----------------

    def earliest_ps(self, cmd: Command, banks: list[BankState],
                    rank: RankState) -> int:
        """Earliest legal issue time for ``cmd``, without the constraint name.

        Computes exactly the same value as :meth:`earliest_issue` but in
        one fused pass over the bank states — a single *batched* query
        per bank instead of one candidate object per (bank, constraint)
        pair.  The software memory controller's bank-parallel service
        path calls this once per command, so the per-bank constraint
        scans are the only O(banks) work left on the hot path.
        """
        t = self.timing
        kind = cmd.kind
        rank_states = self._rank_states(rank)
        multi_rank = self._multi_rank
        rank_of = self._rank_of
        e = 0  # the "power-on" floor
        if kind is CommandKind.ACT:
            bank = banks[cmd.bank]
            e = bank.last_act + t.tRC
            v = bank.last_pre + t.tRP
            if v > e:
                e = v
            group_of = self._group_of
            grp = group_of[cmd.bank]
            own_rank = rank_of[cmd.bank]
            rrd_l, rrd_s = t.tRRD_L, t.tRRD_S
            self_index = cmd.bank
            for other in banks:
                if other.index == self_index:
                    continue
                if multi_rank and rank_of[other.index] != own_rank:
                    continue
                gap = rrd_l if group_of[other.index] == grp else rrd_s
                v = other.last_act + gap
                if v > e:
                    e = v
            acts = rank_states[min(own_rank, len(rank_states) - 1)].recent_acts
            if len(acts) >= 4:
                v = sorted(acts)[-4] + t.tFAW
                if v > e:
                    e = v
            v = self._last_ref(rank_states) + t.tRFC
            if v > e:
                e = v
        elif kind in (CommandKind.PRE, CommandKind.PREA):
            targets = banks if kind is CommandKind.PREA else (banks[cmd.bank],)
            tras, trtp, twr = t.tRAS, t.tRTP, t.tWR
            for bank in targets:
                v = bank.last_act + tras
                if v > e:
                    e = v
                v = bank.last_read + trtp
                if v > e:
                    e = v
                v = bank.last_write_data_end + twr
                if v > e:
                    e = v
        elif kind is CommandKind.RD or kind is CommandKind.WR:
            bank = banks[cmd.bank]
            e = bank.last_act + t.tRCD
            group_of = self._group_of
            grp = group_of[cmd.bank]
            own_rank = rank_of[cmd.bank]
            ccd_l, ccd_s, tcs = t.tCCD_L, t.tCCD_S, t.tCS
            write_end = NEVER
            other_write_end = NEVER
            for other in banks:
                last_cas = other.last_read
                if other.last_write > last_cas:
                    last_cas = other.last_write
                if multi_rank and rank_of[other.index] != own_rank:
                    v = last_cas + tcs
                    if v > e:
                        e = v
                    if other.last_write_data_end > other_write_end:
                        other_write_end = other.last_write_data_end
                    continue
                gap = ccd_l if group_of[other.index] == grp else ccd_s
                v = last_cas + gap
                if v > e:
                    e = v
                if other.last_write_data_end > write_end:
                    write_end = other.last_write_data_end
            if kind is CommandKind.RD:
                v = write_end + t.tWTR
                if v > e:
                    e = v
                if multi_rank:
                    v = other_write_end + tcs
                    if v > e:
                        e = v
        elif kind is CommandKind.REF:
            trp = t.tRP
            for bank in banks:
                v = bank.last_pre + trp
                if v > e:
                    e = v
                if bank.open_row is not None:
                    e = 1 << 62  # all banks must be precharged first
            v = self._last_ref(rank_states) + t.tRFC
            if v > e:
                e = v
        return e if e > 0 else 0

    def check_fast(self, cmd: Command, time_ps: int, banks: list[BankState],
                   rank: RankState) -> int:
        """Validate ``cmd`` using the batched query; identical to :meth:`check`.

        The legal case (the overwhelmingly common one on the conventional
        controller path) costs one :meth:`earliest_ps` pass.  A violation
        falls back to the full candidate enumeration so the binding
        constraint name — and therefore the strict-mode exception and the
        permissive-mode :class:`ViolationRecord` — is bit-identical to
        what :meth:`check` produces.
        """
        if time_ps >= self.earliest_ps(cmd, banks, rank):
            return 0
        return self.check(cmd, time_ps, banks, rank)

    # -- helpers ----------------------------------------------------------

    def _act_to_act(self, cmd: Command, banks: list[BankState]) -> list[_Constraint]:
        """tRRD constraints of an ACT against same-rank banks' last ACTs.

        tRRD is a rank-internal constraint: ACTs to different ranks of a
        channel are only coupled through the shared command bus, which
        this model does not bottleneck on.
        """
        t = self.timing
        group = self._group_of[cmd.bank]
        rank_of = self._rank_of
        rank = rank_of[cmd.bank]
        out = []
        for other in banks:
            if other.index == cmd.bank or rank_of[other.index] != rank:
                continue
            same_group = self._group_of[other.index] == group
            gap = t.tRRD_L if same_group else t.tRRD_S
            name = "tRRD_L" if same_group else "tRRD_S"
            out.append(_Constraint(other.last_act + gap, name))
        return out

    def _cas_to_cas(self, cmd: Command, banks: list[BankState]) -> list[_Constraint]:
        """tCCD constraints of a column command against every bank's last CAS.

        Same-rank banks see tCCD_L/tCCD_S; banks of *other* ranks see the
        rank-to-rank bus turnaround tCS instead.
        """
        t = self.timing
        group = self._group_of[cmd.bank]
        rank_of = self._rank_of
        rank = rank_of[cmd.bank]
        out = []
        for other in banks:
            last_cas = max(other.last_read, other.last_write)
            if rank_of[other.index] == rank:
                same_group = self._group_of[other.index] == group
                gap = t.tCCD_L if same_group else t.tCCD_S
                name = "tCCD_L" if same_group else "tCCD_S"
            else:
                gap = t.tCS
                name = "tCS"
            out.append(_Constraint(last_cas + gap, name))
        return out

    def _faw(self, rank: RankState) -> _Constraint:
        """Four-activation-window bound (at most 4 ACTs per tFAW)."""
        t = self.timing
        if len(rank.recent_acts) < 4:
            return _Constraint(0, "tFAW")
        # The 4th-most-recent ACT pins the window.
        fourth = sorted(rank.recent_acts)[-4]
        return _Constraint(fourth + t.tFAW, "tFAW")

    def _last_write_end(self, bank_index: int, banks: list[BankState],
                        same_rank: bool) -> int:
        """End of the most recent write burst in (or outside) the rank."""
        rank_of = self._rank_of
        rank = rank_of[bank_index]
        best = NEVER
        for b in banks:
            if (rank_of[b.index] == rank) == same_rank:
                if b.last_write_data_end > best:
                    best = b.last_write_data_end
        return best

    @staticmethod
    def _last_ref(rank_states: tuple[RankState, ...]) -> int:
        """Most recent refresh across the channel's ranks."""
        best = rank_states[0].last_ref
        for state in rank_states[1:]:
            if state.last_ref > best:
                best = state.last_ref
        return best
