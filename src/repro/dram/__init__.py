"""DDR4 device substrate: timings, commands, banks, cells, and the device.

This package replaces the real DRAM chips of the paper's testbed (see
DESIGN.md, Section 1).  The public surface is:

* :class:`~repro.dram.timing.TimingParams` and the ``ddr4_1333`` /
  ``ddr4_2400`` presets;
* :class:`~repro.dram.commands.Command` / ``CommandKind``;
* :class:`~repro.dram.address.Geometry`, ``DramAddress``, ``AddressMapper``;
* :class:`~repro.dram.cells.CellArrayModel` — the synthetic silicon;
* :class:`~repro.dram.device.DramDevice` — the executable chip model;
* :class:`~repro.dram.timing_checker.TimingChecker` and
  :class:`~repro.dram.timing_checker.TimingViolation`.
"""

from repro.dram.address import AddressMapper, DramAddress, Geometry
from repro.dram.cells import CellArrayModel, CellModelConfig
from repro.dram.commands import Command, CommandKind, IssuedCommand
from repro.dram.device import DramDevice, DeviceStats, ReadResult
from repro.dram.timing import TimingParams, ddr4_1333, ddr4_2400, ns, preset, us
from repro.dram.timing_checker import TimingChecker, TimingViolation, ViolationRecord

__all__ = [
    "AddressMapper",
    "CellArrayModel",
    "CellModelConfig",
    "Command",
    "CommandKind",
    "DramAddress",
    "DramDevice",
    "DeviceStats",
    "Geometry",
    "IssuedCommand",
    "ReadResult",
    "TimingChecker",
    "TimingParams",
    "TimingViolation",
    "ViolationRecord",
    "ddr4_1333",
    "ddr4_2400",
    "ns",
    "preset",
    "us",
]
