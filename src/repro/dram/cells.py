"""Synthetic DRAM cell-behaviour model.

The paper evaluates DRAM techniques on *real* chips; what the chips
contribute is analog cell behaviour: per-row access-latency margins
(Section 8, Figure 12) and the reliability of RowClone copies between row
pairs (Section 7.1, "mapping problem").  Since this reproduction has no
hardware, this module provides a deterministic synthetic model with the
statistical structure the paper reports:

* every row operates correctly below the nominal ``tRCD`` (13.5 ns);
* about 84.5 % of rows are *strong* (reliable at <= 9.0 ns) and the rest
  are *weak* (9.0 ns < min tRCD <= ~10.5 ns);
* weak rows are spatially clustered within specific banks and areas;
* RowClone succeeds only within one subarray, and a small fraction of
  intra-subarray pairs is unreliable (they fail some of the 1000 test
  copies PiDRAM-style clonability testing performs).

Everything is derived from a seed via the splitmix64 mixer, so profiling
the "chip" twice gives identical results — like re-testing real silicon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.address import Geometry
from repro.dram.timing import ns

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """Deterministic 64-bit mixer (splitmix64 finalizer)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _unit(x: int) -> float:
    """Map a 64-bit hash to [0, 1)."""
    return _splitmix64(x) / float(1 << 64)


@dataclass(frozen=True)
class CellModelConfig:
    """Tunables of the synthetic cell model (defaults match Figure 12)."""

    seed: int = 0xEA5D_0D12
    #: Strong rows are reliable at/below this tRCD (paper threshold 9.0 ns).
    strong_trcd_ps: int = ns(9.0)
    #: Fraction of rows that end up weak (paper: 15.5 %).
    weak_fraction: float = 0.155
    #: Range of minimum tRCD for strong rows.
    strong_min_ps: int = ns(8.2)
    strong_max_ps: int = ns(9.0)
    #: Range of minimum tRCD for weak rows.
    weak_min_ps: int = ns(9.5)
    weak_max_ps: int = ns(10.5)
    #: Rows per spatial cluster tile (weakness is correlated in tiles).
    cluster_rows: int = 64
    #: Fraction of intra-subarray row pairs that cannot RowClone reliably.
    #: Copy allocations route around these (the allocator tests pairs);
    #: prescribed init targets cannot, which is footnote 6's fallback
    #: overhead.
    rowclone_pair_fail_rate: float = 0.30
    #: Per-copy failure probability of an unreliable pair.
    unreliable_pair_error_rate: float = 0.05


class CellArrayModel:
    """Deterministic per-row strength and RowClone-reliability oracle."""

    #: Per-row minimum-tRCD memo cap (entries).  1M (bank, row) pairs
    #: cover every experiment topology outright; on larger synthetic
    #: geometries long multi-mix sweeps stop inserting past the cap and
    #: recompute instead (the derivation is pure), so the memo's host
    #: memory stays bounded.  Skipped inserts are counted and surfaced
    #: as ``SmcStats.trcd_memo_capped``.
    TRCD_CACHE_LIMIT = 1 << 20

    def __init__(self, geometry: Geometry,
                 config: CellModelConfig | None = None,
                 cache_limit: int | None = None) -> None:
        self.geometry = geometry
        self.config = config or CellModelConfig()
        self.cache_limit = (self.TRCD_CACHE_LIMIT if cache_limit is None
                            else cache_limit)
        self._row_trcd_cache: dict[tuple[int, int], int] = {}
        #: Inserts skipped because the memo was at :attr:`cache_limit`.
        self.trcd_memo_capped = 0

    # -- access-latency margins -------------------------------------------

    def row_min_trcd_ps(self, bank: int, row: int) -> int:
        """Minimum tRCD (ps) at which every cell in ``row`` reads correctly.

        Weakness is decided at cluster-tile granularity first (so weak rows
        cluster spatially, as in Figure 12), then per-row jitter is added.
        """
        key = (bank, row)
        cached = self._row_trcd_cache.get(key)
        if cached is not None:
            return cached
        cfg = self.config
        tile = row // cfg.cluster_rows
        # Bank-level bias: some banks are weaker overall (Figure 12 shows
        # weak cells concentrated in specific banks/areas).
        bank_bias = _unit(cfg.seed ^ (bank * 0x51ED270) ^ 0xB1A5)
        tile_draw = _unit(cfg.seed ^ (bank << 32) ^ (tile * 0x9E37) ^ 0x7135)
        # Mix the bank bias in: weak tiles are ~2x likelier in weak banks.
        weak_threshold = cfg.weak_fraction * (0.5 + bank_bias)
        is_weak = tile_draw < weak_threshold
        jitter = _unit(cfg.seed ^ (bank << 40) ^ (row * 0xC2B2) ^ 0x1F123)
        if is_weak:
            lo, hi = cfg.weak_min_ps, cfg.weak_max_ps
        else:
            lo, hi = cfg.strong_min_ps, cfg.strong_max_ps
        value = lo + int(jitter * (hi - lo))
        if len(self._row_trcd_cache) < self.cache_limit:
            self._row_trcd_cache[key] = value
        else:
            self.trcd_memo_capped += 1
        return value

    def row_is_strong(self, bank: int, row: int) -> bool:
        """A row is strong when it tolerates the paper's 9.0 ns threshold."""
        return self.row_min_trcd_ps(bank, row) <= self.config.strong_trcd_ps

    def read_is_reliable(self, bank: int, row: int, trcd_used_ps: int) -> bool:
        """Would a read after ``trcd_used_ps`` of activation return good data?"""
        return trcd_used_ps >= self.row_min_trcd_ps(bank, row)

    def strong_fraction(self, banks: int | None = None) -> float:
        """Fraction of strong rows across ``banks`` (defaults to all)."""
        n_banks = banks if banks is not None else self.geometry.num_banks
        rows = self.geometry.rows_per_bank
        strong = sum(
            1
            for bank in range(n_banks)
            for row in range(rows)
            if self.row_is_strong(bank, row)
        )
        return strong / float(n_banks * rows)

    # -- RowClone reliability ----------------------------------------------

    def rowclone_pair_reliable(self, bank: int, src_row: int, dst_row: int) -> bool:
        """Whether (src, dst) can *always* complete a RowClone copy.

        Pairs spanning subarrays can never copy (FPM RowClone is an
        intra-subarray operation).  A deterministic per-pair draw marks a
        small fraction of intra-subarray pairs unreliable.
        """
        if src_row == dst_row:
            return True
        g = self.geometry
        if g.subarray_of(src_row) != g.subarray_of(dst_row):
            return False
        cfg = self.config
        lo, hi = min(src_row, dst_row), max(src_row, dst_row)
        draw = _unit(cfg.seed ^ (bank << 48) ^ (lo << 24) ^ hi ^ 0xA0C1)
        return draw >= cfg.rowclone_pair_fail_rate

    def rowclone_copy_succeeds(self, bank: int, src_row: int, dst_row: int,
                               attempt: int) -> bool:
        """Outcome of one RowClone copy attempt (attempt index varies it).

        Reliable pairs always succeed; unreliable intra-subarray pairs fail
        a deterministic pseudo-random subset of attempts, so a 1000-attempt
        clonability test (Section 7.1) flags them with high probability.
        """
        g = self.geometry
        if src_row != dst_row and g.subarray_of(src_row) != g.subarray_of(dst_row):
            return False
        if self.rowclone_pair_reliable(bank, src_row, dst_row):
            return True
        cfg = self.config
        draw = _unit(cfg.seed ^ (bank << 52) ^ (src_row << 30)
                     ^ (dst_row << 12) ^ attempt ^ 0x5EED)
        return draw >= cfg.unreliable_pair_error_rate

    # -- data corruption -----------------------------------------------------

    def corrupt(self, data: bytes, bank: int, row: int, salt: int) -> bytes:
        """Deterministically corrupt ``data`` as a failed technique op would.

        A handful of byte positions (derived from the seed) are flipped;
        the result differs from the input so equality checks catch it.
        """
        if not data:
            return data
        out = bytearray(data)
        base = self.config.seed ^ (bank << 44) ^ (row << 20) ^ salt
        n_flips = 1 + _splitmix64(base) % 4
        for i in range(n_flips):
            pos = _splitmix64(base ^ (i * 0x9E3779B9)) % len(out)
            flip = (_splitmix64(base ^ 0xF11B ^ i) % 255) + 1
            out[pos] ^= flip
        return bytes(out)
