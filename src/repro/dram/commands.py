"""DRAM command vocabulary.

The command set mirrors what a DDR4 memory controller (and DRAM Bender)
can issue.  Commands are plain records; the device model interprets them
and the timing checker validates inter-command spacing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CommandKind(enum.Enum):
    """DDR4 command types modeled by the device."""

    ACT = "ACT"      # activate (open) a row
    PRE = "PRE"      # precharge (close) one bank
    PREA = "PREA"    # precharge all banks
    RD = "RD"        # column read (burst)
    WR = "WR"        # column write (burst)
    REF = "REF"      # refresh
    NOP = "NOP"      # no operation / deselect

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Commands that target a specific bank.
BANK_COMMANDS = frozenset({CommandKind.ACT, CommandKind.PRE, CommandKind.RD, CommandKind.WR})

#: Commands that carry a row address.
ROW_COMMANDS = frozenset({CommandKind.ACT})

#: Commands that carry a column address.
COLUMN_COMMANDS = frozenset({CommandKind.RD, CommandKind.WR})


@dataclass
class Command:
    """A single DRAM command with its target coordinates.

    ``bank`` is a flat bank index (bank group folded in); the device and
    checker derive the bank group with the device geometry when they need
    the _S/_L timing distinction.
    """

    kind: CommandKind
    bank: int = 0
    row: int = 0
    col: int = 0
    #: Optional 64-byte payload for WR commands.  ``None`` writes a
    #: deterministic filler pattern derived from the address.
    data: bytes | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.bank < 0 or self.row < 0 or self.col < 0:
            raise ValueError(f"negative address component in {self!r}")

    @property
    def targets_bank(self) -> bool:
        """Whether this command addresses a specific bank."""
        return self.kind in BANK_COMMANDS

    def short(self) -> str:
        """Compact human-readable rendering, used in logs and tests."""
        if self.kind in ROW_COMMANDS:
            return f"{self.kind} b{self.bank} r{self.row}"
        if self.kind in COLUMN_COMMANDS:
            return f"{self.kind} b{self.bank} c{self.col}"
        if self.kind is CommandKind.PRE:
            return f"PRE b{self.bank}"
        return str(self.kind)


@dataclass
class IssuedCommand:
    """A command paired with the picosecond timestamp it was issued at."""

    command: Command
    time_ps: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.command.short()} @ {self.time_ps}ps>"
