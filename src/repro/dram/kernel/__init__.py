"""Batch serve kernel: the SMC inner loop out of Python-per-command.

The kernel compiles :class:`~repro.dram.flat_timing.FlatTimingState` and
the memoized command plans into struct-of-arrays int64 tables
(:mod:`~repro.dram.kernel.state`) and executes an entire drained request
batch — plan offsets, earliest-time resolution, issue, row-state
transitions, refresh interleave, and per-core/prefetch stat attribution
— in one compiled call (:mod:`~repro.dram.kernel.cbackend`), or a whole
block-replay burst when the event engine runs single-core block traces.
A pure-Python mirror (:mod:`~repro.dram.kernel.pykernel`) is the
executable spec and the ``REPRO_KERNEL=py`` backend.

``REPRO_KERNEL``
    ``0``/``false``/``off`` disables the kernel entirely (the fastpath
    closures serve every batch).  ``py`` forces the pure-Python mirror
    (batch entry only — useful for differential debugging; slower than
    the closures).  ``c`` requires the compiled backend and disengages
    with a recorded reason when it cannot load.  Default (``auto``):
    use the compiled backend when a C compiler is available, otherwise
    disengage — results are bit-identical either way, which the
    equivalence suites enforce.

Resolution happens per *call site* via :func:`resolve_backend`; the
serve path records why the kernel disengaged (stateful scheduler,
technique episode, backend unavailable, ...) so ``repro profile`` can
report it.
"""

from __future__ import annotations

import os

_FALSE = ("0", "false", "no", "off")


class PyKernel:
    """Backend facade over the pure-Python mirror (batch entry only)."""

    info = {"backend": "py", "compiler": "pure-python",
            "build_seconds": 0.0, "compiled_this_process": False}
    run_block = None
    finish_trace = None

    def serve_batch(self, table) -> int:  # pragma: no cover - thin shim
        raise TypeError("PyKernel.serve_batch takes a KernelState; "
                        "use serve_batch_state")

    @staticmethod
    def serve_batch_state(ks) -> int:
        from repro.dram.kernel import pykernel
        return pykernel.serve_batch(ks)


_PY_KERNEL = PyKernel()


def kernel_mode() -> str:
    """The requested kernel mode: ``off``, ``py``, ``c``, or ``auto``."""
    raw = os.environ.get("REPRO_KERNEL", "").strip().lower()
    if raw in _FALSE:
        return "off"
    if raw in ("py", "python", "pure"):
        return "py"
    if raw == "c":
        return "c"
    return "auto"


def resolve_backend() -> tuple[object | None, str]:
    """The active kernel backend and a reason string.

    Returns ``(backend, "ok")`` when engaged; ``(None, reason)`` when
    the kernel should disengage and let the fastpath closures serve.
    """
    mode = kernel_mode()
    if mode == "off":
        return None, "disabled (REPRO_KERNEL=0)"
    if mode == "py":
        return _PY_KERNEL, "ok"
    from repro.dram.kernel import cbackend
    kernel, reason = cbackend.load()
    if kernel is None:
        return None, reason
    return kernel, "ok"


def backend_info() -> dict:
    """Provenance for the bench harness (compiler, warm-up seconds)."""
    backend, reason = resolve_backend()
    if backend is None:
        return {"backend": "none", "reason": reason}
    info = dict(backend.info)
    info["reason"] = reason
    return info
