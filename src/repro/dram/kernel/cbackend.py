"""Compile and load the C batch kernel (gcc + ctypes).

The container bakes in a C toolchain but no numba/Cython, so the
compiled backend is plain C: :func:`load` renders the layout
``#define`` header from :mod:`repro.dram.kernel.state`, prepends it to
``kernel.c``, and builds a shared object with ``cc -O2 -shared -fPIC``
into a source-hash-keyed cache under ``_cache/`` (gitignored).  A warm
cache makes load a single ``dlopen``.

Everything degrades gracefully: no compiler, a failed compile, or a
stale ABI all surface as ``(None, reason)`` so the caller can fall back
to the pure-Python mirror or disengage the kernel entirely.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import time
from pathlib import Path

from repro.dram.kernel import state

#: Bumped when the entry-point contract changes; checked against the
#: compiled object's ``repro_abi_version`` so a stale cached build from
#: an older checkout can never be called with the wrong layout.
ABI_VERSION = 2

_HERE = Path(__file__).resolve().parent
_SOURCE = _HERE / "kernel.c"
_CACHE_DIR = _HERE / "_cache"

#: Load outcome, memoized for the process: (lib or None, reason string,
#: info dict for the bench/profile layers).
_loaded: tuple | None = None


class CKernel:
    """The loaded shared object with typed entry points."""

    def __init__(self, lib: ctypes.CDLL, info: dict) -> None:
        self.lib = lib
        self.info = info
        p64 = ctypes.POINTER(ctypes.c_int64)
        table_t = ctypes.POINTER(p64)
        for name in ("repro_serve_batch", "repro_run_block",
                     "repro_finish_trace"):
            fn = getattr(lib, name)
            fn.argtypes = [table_t]
            fn.restype = ctypes.c_int64
        self.serve_batch = lib.repro_serve_batch
        self.run_block = lib.repro_run_block
        self.finish_trace = lib.repro_finish_trace


def compiler() -> list[str] | None:
    """The C compiler command, or ``None`` when unavailable."""
    override = os.environ.get("REPRO_CC", "")
    candidates = [override] if override else ["cc", "gcc", "clang"]
    for cand in candidates:
        try:
            subprocess.run([cand, "--version"], capture_output=True,
                           check=True, timeout=30)
            return [cand]
        except (OSError, subprocess.SubprocessError):
            continue
    return None


def compiler_version(cmd: list[str] | None = None) -> str:
    """First line of ``cc --version`` (bench provenance)."""
    cmd = cmd if cmd is not None else compiler()
    if cmd is None:
        return "unavailable"
    try:
        out = subprocess.run(cmd + ["--version"], capture_output=True,
                             check=True, timeout=30, text=True).stdout
        return out.splitlines()[0].strip() if out else cmd[0]
    except (OSError, subprocess.SubprocessError):
        return cmd[0]


def _render_source() -> str:
    return state.render_defines() + "\n" + _SOURCE.read_text()


def load() -> tuple[CKernel | None, str]:
    """Build (or reuse) and load the kernel; ``(None, reason)`` on failure.

    The result is memoized per process — the serve path asks on every
    eligibility check.
    """
    global _loaded
    if _loaded is not None:
        return _loaded[0], _loaded[1]
    kernel, reason = _load_uncached()
    _loaded = (kernel, reason)
    return kernel, reason


def _load_uncached() -> tuple[CKernel | None, str]:
    try:
        source = _render_source()
    except OSError as exc:
        return None, f"kernel source unreadable: {exc}"
    cmd = compiler()
    version = compiler_version(cmd)
    key = hashlib.sha256(
        f"{version}\n{ABI_VERSION}\n{source}".encode()).hexdigest()[:16]
    so_path = _CACHE_DIR / f"kernel-{key}.so"
    build_seconds = 0.0
    built = False
    if not so_path.exists():
        if cmd is None:
            return None, "no C compiler available (cc/gcc/clang)"
        c_path = _CACHE_DIR / f"kernel-{key}.c"
        begin = time.perf_counter()
        try:
            _CACHE_DIR.mkdir(parents=True, exist_ok=True)
            c_path.write_text(source)
            proc = subprocess.run(
                cmd + ["-O2", "-shared", "-fPIC", "-o", str(so_path),
                       str(c_path)],
                capture_output=True, text=True, timeout=300)
        except (OSError, subprocess.SubprocessError) as exc:
            return None, f"kernel compile failed: {exc}"
        if proc.returncode != 0:
            tail = (proc.stderr or "").strip().splitlines()[-3:]
            return None, "kernel compile failed: " + " | ".join(tail)
        build_seconds = time.perf_counter() - begin
        built = True
    try:
        lib = ctypes.CDLL(str(so_path))
        fn = lib.repro_abi_version
        fn.restype = ctypes.c_int64
        fn.argtypes = []
        got = int(fn())
    except (OSError, AttributeError) as exc:
        return None, f"kernel load failed: {exc}"
    if got != ABI_VERSION:
        return None, f"kernel ABI mismatch (built {got}, want {ABI_VERSION})"
    info = {
        "backend": "c",
        "compiler": version,
        "build_seconds": round(build_seconds, 6),
        "compiled_this_process": built,
        "cache_path": str(so_path),
    }
    return CKernel(lib, info), "ok"


def reset_for_tests() -> None:
    """Drop the memoized load result (tests poke REPRO_CC)."""
    global _loaded
    _loaded = None
