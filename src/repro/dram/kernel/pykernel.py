"""Pure-Python mirror of the C batch kernel (the executable spec).

Runs the same episode over the same :class:`~repro.dram.kernel.state`
arrays with the same integer semantics, so the differential tests can
pin the kernel logic even on hosts without a C compiler, and
``REPRO_KERNEL=py`` can force it for debugging.  Only the batch entry
exists here: the block-replay entry is a host-speed optimization, and
its pure-Python equivalent is the existing gated replay loop the
driver falls back to.

This file intentionally reads like ``kernel.c``; when editing one,
edit the other.
"""

from __future__ import annotations

from repro.dram.kernel.state import (
    FLAG_PREFETCH,
    FLAG_WRITEBACK,
    KERN_OK,
    KERR_DECODE_RANGE,
    KERR_FAW_OVERFLOW,
    KERR_VIOL_OVERFLOW,
    Cfg,
    St,
    TBL_STRIDE,
    VIOL_STRIDE,
    WRHIT_STRIDE,
)

_FAR_FUTURE = 1 << 62
_NEVER = -(10 ** 18)

# Constraint codes, in CONSTRAINT_NAMES order.
(_POWER_ON, _TRC, _TRP, _TRRD_L, _TRRD_S, _TFAW, _TRFC, _TRCD, _TCCD_L,
 _TCCD_S, _TWTR, _BANKS_OPEN) = range(12)

# Flat command-kind codes.
_K_ACT, _K_PRE, _K_PREA, _K_RD, _K_WR, _K_REF = range(6)


class _Ctx:
    """Python ints for the scalar state; numpy arrays for the rest."""

    def __init__(self, ks) -> None:
        self.ks = ks
        self.cfg = [int(v) for v in ks.cfg]
        self.st = [int(v) for v in ks.st]
        self.last_act = ks.last_act
        self.last_pre = ks.last_pre
        self.last_read = ks.last_read
        self.last_write = ks.last_write
        self.last_write_end = ks.last_write_end
        self.open_row = ks.open_row
        self.prev_open_row = ks.prev_open_row
        self.act_count = ks.act_count
        self.group_of = ks.group_of
        self.gmax_act = ks.gmax_act
        self.gmax_cas = ks.gmax_cas
        self.faw_ring = ks.faw_ring
        self.plan_n = ks.plan_n
        self.plan_kinds = ks.plan_kinds
        self.plan_offsets = ks.plan_offsets
        self.plan_cycles = ks.plan_cycles
        self.plan_charge = ks.plan_charge
        self.plan_measured = ks.plan_measured
        self.plan_postflush = ks.plan_postflush
        self.viol = ks.viol
        self.mat_keys = ks.mat_keys
        self.wrhit = ks.wrhit
        self.tracker = ks.tracker_out
        self.tbl = ks.tbl

    def flush(self) -> None:
        self.ks.st[:] = self.st


def _decode(k: _Ctx, addr: int):
    cfg = k.cfg
    total = cfg[Cfg.TOTAL_BYTES]
    if addr < 0 or (addr >= total and cfg[Cfg.STRICT_DECODE]):
        k.st[St.ERR_ADDR] = addr
        return KERR_DECODE_RANGE, 0, 0, 0
    if addr >= total:
        addr %= total
    line = addr // cfg[Cfg.LINE_BYTES]
    channels = cfg[Cfg.CHANNELS]
    if channels > 1:
        mode = cfg[Cfg.CH_MODE]
        if mode == 0:
            line %= cfg[Cfg.LINES_PER_CHANNEL]
        elif mode == 1:
            line //= channels
        elif mode == 2:
            columns = cfg[Cfg.COLUMNS]
            span, col_part = divmod(line, columns)
            line = (span // channels) * columns + col_part
        else:
            line //= channels
    if cfg[Cfg.ROW_MAJOR]:
        columns = cfg[Cfg.COLUMNS]
        nb = cfg[Cfg.DEC_BANKS]
        col = line % columns
        block = line // columns
        bank = block % nb
        row = (block // nb) % cfg[Cfg.ROWS]
        if cfg[Cfg.SKEWED]:
            bank = (bank + (row ^ (row >> 4) ^ (row >> 8))) % nb
    else:
        nb = cfg[Cfg.DEC_BANKS]
        columns = cfg[Cfg.COLUMNS]
        bank = line % nb
        line //= nb
        col = line % columns
        row = (line // columns) % cfg[Cfg.ROWS]
    return KERN_OK, bank, row, col


def _viol_push(k: _Ctx, kind, bank, row, col, t, earliest, code):
    st = k.st
    if st[St.VIOL_COUNT] >= st[St.VIOL_CAP]:
        return KERR_VIOL_OVERFLOW
    base = VIOL_STRIDE * st[St.VIOL_COUNT]
    k.viol[base:base + VIOL_STRIDE] = (kind, bank, row, col, t, earliest,
                                       code)
    st[St.VIOL_COUNT] += 1
    return KERN_OK


def _enum_act(k: _Ctx, bank: int):
    cfg, st = k.cfg, k.st
    cands = [(0, _POWER_ON),
             (int(k.last_act[bank]) + cfg[Cfg.TRC], _TRC),
             (int(k.last_pre[bank]) + cfg[Cfg.TRP], _TRP)]
    grp = int(k.group_of[bank])
    for ob in range(cfg[Cfg.NBANKS]):
        if ob == bank:
            continue
        if int(k.group_of[ob]) == grp:
            cands.append((int(k.last_act[ob]) + cfg[Cfg.TRRD_L], _TRRD_L))
        else:
            cands.append((int(k.last_act[ob]) + cfg[Cfg.TRRD_S], _TRRD_S))
    length = st[St.FAW_LEN]
    if length < 4:
        cands.append((0, _TFAW))
    else:
        cap = cfg[Cfg.FAW_CAP]
        idx = (st[St.FAW_HEAD] + length - 4) % cap
        cands.append((int(k.faw_ring[idx]) + cfg[Cfg.TFAW], _TFAW))
    cands.append((st[St.LAST_REF] + cfg[Cfg.TRFC], _TRFC))
    return max(cands, key=lambda c: c[0])


def _enum_cas(k: _Ctx, bank: int, is_write: bool):
    cfg = k.cfg
    cands = [(0, _POWER_ON),
             (int(k.last_act[bank]) + cfg[Cfg.TRCD], _TRCD)]
    grp = int(k.group_of[bank])
    for ob in range(cfg[Cfg.NBANKS]):
        cas = max(int(k.last_read[ob]), int(k.last_write[ob]))
        if int(k.group_of[ob]) == grp:
            cands.append((cas + cfg[Cfg.TCCD_L], _TCCD_L))
        else:
            cands.append((cas + cfg[Cfg.TCCD_S], _TCCD_S))
    if not is_write:
        we = max(int(k.last_write_end[ob])
                 for ob in range(cfg[Cfg.NBANKS]))
        cands.append((we + cfg[Cfg.TWTR], _TWTR))
    return max(cands, key=lambda c: c[0])


def _enum_ref(k: _Ctx):
    cfg, st = k.cfg, k.st
    cands = [(0, _POWER_ON)]
    for b in range(cfg[Cfg.NBANKS]):
        cands.append((int(k.last_pre[b]) + cfg[Cfg.TRP], _TRP))
        if int(k.open_row[b]) >= 0:
            cands.append((_FAR_FUTURE, _BANKS_OPEN))
    cands.append((st[St.LAST_REF] + cfg[Cfg.TRFC], _TRFC))
    return max(cands, key=lambda c: c[0])


def _note_wr_hit(k: _Ctx, bank: int, row: int, col: int):
    st = k.st
    n = st[St.NMAT]
    if not n or row < 0:
        return KERN_OK
    key = (bank << 32) | row
    lo, hi = 0, n - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        v = int(k.mat_keys[mid])
        if v == key:
            if st[St.WRHIT_COUNT] >= st[St.WRHIT_CAP]:
                return KERR_VIOL_OVERFLOW
            base = WRHIT_STRIDE * st[St.WRHIT_COUNT]
            k.wrhit[base:base + WRHIT_STRIDE] = (bank, row, col)
            st[St.WRHIT_COUNT] += 1
            return KERN_OK
        if v < key:
            lo = mid + 1
        else:
            hi = mid - 1
    return KERN_OK


def _apply_act(k: _Ctx, bank: int, row: int, t: int):
    cfg, st = k.cfg, k.st
    grp = int(k.group_of[bank])
    k.last_act[bank] = t
    k.act_count[bank] += 1
    if int(k.open_row[bank]) < 0:
        st[St.OPEN_COUNT] += 1
    k.open_row[bank] = row
    if t > int(k.gmax_act[grp]):
        k.gmax_act[grp] = t
    if t > st[St.MAX_ACT_ALL]:
        st[St.MAX_ACT_ALL] = t
    cap = cfg[Cfg.FAW_CAP]
    length = st[St.FAW_LEN]
    head = st[St.FAW_HEAD]
    if length >= cap:
        return KERR_FAW_OVERFLOW
    k.faw_ring[(head + length) % cap] = t
    length += 1
    cutoff = t - cfg[Cfg.TFAW]
    while length and int(k.faw_ring[head]) <= cutoff:
        head = (head + 1) % cap
        length -= 1
    st[St.FAW_HEAD] = head
    st[St.FAW_LEN] = length
    st[St.CMD_ACT] += 1
    return KERN_OK


def _apply_pre(k: _Ctx, bank: int, t: int) -> None:
    st = k.st
    k.prev_open_row[bank] = k.open_row[bank]
    if int(k.open_row[bank]) >= 0:
        st[St.OPEN_COUNT] -= 1
        k.open_row[bank] = -1
    k.last_pre[bank] = t
    if t > st[St.MAX_PRE]:
        st[St.MAX_PRE] = t
    st[St.CMD_PRE] += 1


def _apply_rd(k: _Ctx, bank: int, t: int) -> None:
    st = k.st
    grp = int(k.group_of[bank])
    k.last_read[bank] = t
    if t > int(k.gmax_cas[grp]):
        k.gmax_cas[grp] = t
    if t > st[St.MAX_CAS_ALL]:
        st[St.MAX_CAS_ALL] = t
    st[St.CMD_RD] += 1


def _apply_wr(k: _Ctx, bank: int, col: int, t: int):
    err = _note_wr_hit(k, bank, int(k.open_row[bank]), col)
    if err:
        return err
    cfg, st = k.cfg, k.st
    grp = int(k.group_of[bank])
    data_end = t + cfg[Cfg.WRITE_BURST]
    k.last_write[bank] = t
    k.last_write_end[bank] = data_end
    if t > int(k.gmax_cas[grp]):
        k.gmax_cas[grp] = t
    if t > st[St.MAX_CAS_ALL]:
        st[St.MAX_CAS_ALL] = t
    if data_end > st[St.MAX_WRITE_END]:
        st[St.MAX_WRITE_END] = data_end
    st[St.CMD_WR] += 1
    return KERN_OK


def _flat_earliest(k: _Ctx, kind: int, bank: int) -> int:
    cfg, st = k.cfg, k.st
    grp = int(k.group_of[bank])
    if kind == _K_ACT:
        e = int(k.last_act[bank]) + cfg[Cfg.TRC]
        e = max(e, int(k.last_pre[bank]) + cfg[Cfg.TRP],
                st[St.MAX_ACT_ALL] + cfg[Cfg.TRRD_S],
                int(k.gmax_act[grp]) + cfg[Cfg.TRRD_L],
                st[St.LAST_REF] + cfg[Cfg.TRFC])
        length = st[St.FAW_LEN]
        if length >= 4:
            cap = cfg[Cfg.FAW_CAP]
            idx = (st[St.FAW_HEAD] + length - 4) % cap
            e = max(e, int(k.faw_ring[idx]) + cfg[Cfg.TFAW])
        return e
    e = max(int(k.last_act[bank]) + cfg[Cfg.TRCD],
            st[St.MAX_CAS_ALL] + cfg[Cfg.TCCD_S],
            int(k.gmax_cas[grp]) + cfg[Cfg.TCCD_L])
    if kind == _K_RD:
        e = max(e, st[St.MAX_WRITE_END] + cfg[Cfg.TWTR])
    return e


def _issue_plan(k: _Ctx, p: int, bank: int, row: int, col: int, start: int):
    cfg, st = k.cfg, k.st
    n = int(k.plan_n[p])
    tck = cfg[Cfg.TCK]
    t = start
    for i in range(n):
        kind = int(k.plan_kinds[3 * p + i])
        t = start + int(k.plan_offsets[3 * p + i]) * tck
        if i:
            e = _flat_earliest(k, kind, bank)
            if t < e:
                if kind == _K_ACT:
                    ee, code = _enum_act(k, bank)
                else:
                    ee, code = _enum_cas(k, bank, kind == _K_WR)
                err = _viol_push(k, kind, bank, row, col, t, ee, code)
                if err:
                    return err
        if kind == _K_ACT:
            err = _apply_act(k, bank, row, t)
        elif kind == _K_PRE:
            _apply_pre(k, bank, t)
            err = KERN_OK
        elif kind == _K_RD:
            _apply_rd(k, bank, t)
            err = KERN_OK
        else:
            err = _apply_wr(k, bank, col, t)
        if err:
            return err
    st[St.LAST_ISSUE] = t
    return KERN_OK


def _refresh_episode(k: _Ctx):
    cfg, st = k.cfg, k.st
    nb = cfg[Cfg.NBANKS]
    while st[St.NEXT_REFRESH] <= st[St.SCHED_CURSOR]:
        st[St.CHARGED] = 0
        anchor = st[St.SCHED_CURSOR]
        st[St.EXEC_ANCHOR] = anchor
        start = anchor if anchor >= st[St.DRAM_CURSOR] else st[St.DRAM_CURSOR]
        e = 0
        for b in range(nb):
            v = max(int(k.last_act[b]) + cfg[Cfg.TRAS],
                    int(k.last_read[b]) + cfg[Cfg.TRTP],
                    int(k.last_write_end[b]) + cfg[Cfg.TWR])
            if v > e:
                e = v
        if e > start:
            start = e
        for b in range(nb):
            k.prev_open_row[b] = k.open_row[b]
            if int(k.open_row[b]) >= 0:
                st[St.OPEN_COUNT] -= 1
                k.open_row[b] = -1
            k.last_pre[b] = start
        if start > st[St.MAX_PRE]:
            st[St.MAX_PRE] = start
        st[St.CMD_PREA] += 1
        st[St.LAST_ISSUE] = start
        t2 = start + cfg[Cfg.REF_OFFSET]
        er = max(st[St.MAX_PRE] + cfg[Cfg.TRP],
                 st[St.LAST_REF] + cfg[Cfg.TRFC])
        if st[St.OPEN_COUNT]:
            er = _FAR_FUTURE
        if er < 0:
            er = 0
        if t2 < er:
            ee, code = _enum_ref(k)
            err = _viol_push(k, _K_REF, 0, 0, 0, t2, ee, code)
            if err:
                return err
        st[St.LAST_REF] = t2
        st[St.CMD_REF] += 1
        st[St.LAST_ISSUE] = t2
        st[St.B_PROGRAMS] += 1
        st[St.B_CYCLES] += cfg[Cfg.REF_CYCLES]
        st[St.DRAM_CURSOR] = start + cfg[Cfg.REF_MEASURED]
        st[St.T_DRAM_BUSY] += cfg[Cfg.REF_MEASURED]
        st[St.S_BATCHES] += 1
        st[St.CHARGED] = 0
        st[St.S_REFRESHES] += 1
        st[St.T_REFRESHES] += 1
        if cfg[Cfg.STORM_FACTOR] > 1:
            st[St.REFRESH_INDEX] += 1
            if st[St.REFRESH_INDEX] % cfg[Cfg.STORM_FACTOR]:
                st[St.S_STORM] += 1
        st[St.NEXT_REFRESH] += cfg[Cfg.REFRESH_INTERVAL]
        if not cfg[Cfg.PIPELINED] and st[St.DRAM_CURSOR] > st[St.SCHED_CURSOR]:
            st[St.SCHED_CURSOR] = st[St.DRAM_CURSOR]
    return KERN_OK


def _serve_one(k: _Ctx, bank, row, col, is_wb, is_pref, core):
    cfg, st = k.cfg, k.st
    sched_start = st[St.SCHED_CURSOR]
    open_row = int(k.open_row[bank])
    if open_row == row:
        st[St.T_HITS] += 1
        cse = 0
    elif open_row < 0:
        st[St.T_MISSES] += 1
        cse = 1
    else:
        st[St.T_CONFLICTS] += 1
        cse = 2
    if cfg[Cfg.HAS_TRACKER]:
        base = 6 * core
        if is_pref:
            k.tracker[base + 2] += 1
        else:
            k.tracker[base + (1 if is_wb else 0)] += 1
            k.tracker[base + 3 + cse] += 1
    p = 2 * cse + is_wb
    sched_cycles = st[St.CHARGED] + int(k.plan_charge[p])
    st[St.CHARGED] = 0
    st[St.S_SCHED_CYCLES] += sched_cycles
    sched_ps = sched_cycles * cfg[Cfg.MC_PERIOD]
    st[St.T_SCHED_PS] += sched_ps
    start = sched_start + sched_ps
    st[St.EXEC_ANCHOR] = start
    if st[St.DRAM_CURSOR] > start:
        start = st[St.DRAM_CURSOR]
    grp = int(k.group_of[bank])
    if cse == 0:
        e = max(int(k.last_act[bank]) + cfg[Cfg.TRCD],
                st[St.MAX_CAS_ALL] + cfg[Cfg.TCCD_S],
                int(k.gmax_cas[grp]) + cfg[Cfg.TCCD_L])
        if not is_wb:
            e = max(e, st[St.MAX_WRITE_END] + cfg[Cfg.TWTR])
    elif cse == 2:
        e = max(int(k.last_act[bank]) + cfg[Cfg.TRAS],
                int(k.last_read[bank]) + cfg[Cfg.TRTP],
                int(k.last_write_end[bank]) + cfg[Cfg.TWR])
    else:
        e = _flat_earliest(k, _K_ACT, bank)
    if e > start:
        start = e
    if cse:
        err = _issue_plan(k, p, bank, row, col, start)
    else:
        kind = int(k.plan_kinds[3 * p])
        if kind == _K_RD:
            _apply_rd(k, bank, start)
            err = KERN_OK
        else:
            err = _apply_wr(k, bank, col, start)
        if not err:
            st[St.LAST_ISSUE] = start
    if err:
        return err, 0, 0
    st[St.B_PROGRAMS] += 1
    st[St.B_CYCLES] += int(k.plan_cycles[p])
    measured = int(k.plan_measured[p])
    dram_end = start + measured
    st[St.DRAM_CURSOR] = dram_end
    st[St.T_DRAM_BUSY] += measured
    st[St.S_BATCHES] += 1
    release_ps = (dram_end
                  + (cfg[Cfg.LAT_WR] if is_wb else cfg[Cfg.LAT_RD])
                  + cfg[Cfg.RESP_BUS])
    release = -(-release_ps // cfg[Cfg.PROC_PERIOD])
    service = dram_end - sched_start
    if is_wb:
        st[St.S_WRITES] += 1
    elif is_pref:
        st[St.S_PREFETCHES] += 1
    else:
        st[St.S_READS] += 1
    st[St.CHARGED] = 0
    st[St.T_RESPONSES] += 1
    if cfg[Cfg.PIPELINED]:
        occupied = sched_start + cfg[Cfg.OCCUPANCY]
        if occupied > st[St.SCHED_CURSOR]:
            st[St.SCHED_CURSOR] = occupied
    else:
        cursor = sched_start + sched_ps + int(k.plan_postflush[p])
        if dram_end > cursor:
            cursor = dram_end
        st[St.SCHED_CURSOR] = cursor
    return KERN_OK, release, service


def serve_batch(ks) -> int:
    """Run one critical-mode episode over the loaded batch arrays."""
    k = _Ctx(ks)
    cfg, st = k.cfg, k.st
    n = st[St.N_REQ]
    tag = ks.req_tag
    addr = ks.req_addr
    flags = ks.req_flags
    core = ks.req_core
    release = ks.req_release
    service = ks.req_service
    if not st[St.CNT_CRITICAL]:
        st[St.CNT_CRITICAL] = 1
        st[St.CNT_CRIT_ENTRIES] += 1
        st[St.CNT_LOCKED_AT] = st[St.CNT_PROC]
    st[St.CHARGED] += cfg[Cfg.TOGGLE]
    st[St.CRITICAL] = 1
    pp = cfg[Cfg.PROC_PERIOD]
    bus = cfg[Cfg.REQ_BUS]
    now = int(tag[0]) * pp + bus
    if st[St.SCHED_CURSOR] > now:
        now = st[St.SCHED_CURSOR]
    st[St.SCHED_CURSOR] = now
    pos = 0
    tcount = 0
    tbl = k.tbl
    frfcfs = cfg[Cfg.SCHED_FRFCFS]
    while pos < n or tcount:
        cursor = st[St.SCHED_CURSOR]
        while pos < n:
            arrival = int(tag[pos]) * pp + bus
            if arrival <= cursor or not tcount:
                st[St.T_REQUESTS] += 1
                st[St.CHARGED] += cfg[Cfg.TRANSFER_CHARGE]
                err, bank, row, col = _decode(k, int(addr[pos]))
                if err:
                    k.flush()
                    return err
                base = TBL_STRIDE * tcount
                tbl[base:base + TBL_STRIDE] = (
                    st[St.ARRIVAL_COUNTER], pos, bank, row, col,
                    int(flags[pos]) & FLAG_WRITEBACK)
                st[St.ARRIVAL_COUNTER] += 1
                tcount += 1
                if arrival > cursor:
                    cursor = arrival
                pos += 1
            else:
                break
        st[St.SCHED_CURSOR] = cursor
        if not tcount:
            next_arrival = int(tag[pos]) * pp + bus
            if next_arrival > cursor:
                st[St.SCHED_CURSOR] = next_arrival
            continue
        if cfg[Cfg.REFRESH_ENABLED] and st[St.NEXT_REFRESH] <= st[St.SCHED_CURSOR]:
            err = _refresh_episode(k)
            if err:
                k.flush()
                return err
        st[St.CHARGED] += cfg[Cfg.DECISION_BASE] + cfg[Cfg.DECISION_PER] * tcount
        pick = 0
        if tcount > 1 and frfcfs:
            first = tbl[0:TBL_STRIDE]
            last = tbl[TBL_STRIDE * (tcount - 1):TBL_STRIDE * tcount]
            age_cap = cfg[Cfg.AGE_CAP]
            if age_cap >= 0 and int(last[0]) - int(first[0]) >= age_cap:
                pick = 0
            elif not int(first[5]) and int(k.open_row[int(first[2])]) == int(first[3]):
                pick = 0
            else:
                best_key = 1 << 63
                for j in range(tcount):
                    base = TBL_STRIDE * j
                    key = int(tbl[base])
                    if int(tbl[base + 5]):
                        key += 2 << 60
                    if int(k.open_row[int(tbl[base + 2])]) != int(tbl[base + 3]):
                        key += 1 << 60
                    if key < best_key:
                        best_key = key
                        pick = j
        base = TBL_STRIDE * pick
        idx = int(tbl[base + 1])
        fl = int(flags[idx])
        err, rel, svc = _serve_one(
            k, int(tbl[base + 2]), int(tbl[base + 3]), int(tbl[base + 4]),
            int(tbl[base + 5]), 1 if fl & FLAG_PREFETCH else 0,
            int(core[idx]) if core.size else 0)
        if err:
            k.flush()
            return err
        release[idx] = rel
        service[idx] = svc
        if pick < tcount - 1:
            tbl[base:TBL_STRIDE * (tcount - 1)] = \
                tbl[base + TBL_STRIDE:TBL_STRIDE * tcount].copy()
        tcount -= 1
    st[St.CHARGED] += cfg[Cfg.TOGGLE]
    st[St.CRITICAL] = 0
    point = max(st[St.SCHED_CURSOR], st[St.DRAM_CURSOR])
    cycle = point // pp
    if cycle > st[St.CNT_MC]:
        st[St.CNT_MC] = cycle
    st[St.CNT_CRITICAL] = 0
    if st[St.CNT_MC] > st[St.CNT_PROC]:
        st[St.CNT_CATCHUP] += st[St.CNT_MC] - st[St.CNT_PROC]
        st[St.CNT_PROC] = st[St.CNT_MC]
    k.flush()
    return KERN_OK
