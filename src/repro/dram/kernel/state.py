"""Struct-of-arrays export of the SMC serve state for the batch kernel.

The kernel executes whole critical-mode episodes outside Python, so every
piece of state the serve loop reads or writes must cross the boundary as
flat ``int64`` storage.  This module is the single source of truth for
that layout:

* :data:`CFG_FIELDS` — run-constant scalars (timing parameters, cost
  model charges, decode geometry, scheduler policy).  Compiled into the
  C backend as ``#define`` constants and into :class:`Cfg` /
  :class:`St` / :class:`Ptr` index namespaces for the pure-Python
  mirror, so the two backends can never disagree about the layout.
* :data:`ST_FIELDS` — mutable scalars (cursors, counters, statistics).
  Loaded from the live objects before a kernel call and stored back
  after; the object state remains authoritative between calls.
* :data:`PTR_FIELDS` — the array slot table.  A kernel entry point
  receives one ``int64*[]`` indexed by these names, covering the
  per-bank timing arrays, the memoized plans, the request batch, the
  violation/latency logs and (block mode) the replay inputs, the
  pending-request buffers and the event heap.

:class:`KernelState` owns the arrays and the load/store marshalling; it
is deliberately dumb — every formula lives in the kernel itself (C or
:mod:`repro.dram.kernel.pykernel`), this file only moves values.
"""

from __future__ import annotations

import numpy as np

from repro.dram.bank import NEVER

#: Run-constant scalar slots (``cfg[]``).
CFG_FIELDS = (
    # timing parameters (ps)
    "TCK", "TRCD", "TCCD_S", "TCCD_L", "TWTR", "TRC", "TRP",
    "TRRD_S", "TRRD_L", "TRAS", "TRTP", "TWR", "TFAW", "TRFC",
    "LAT_RD", "LAT_WR", "WRITE_BURST",
    # clock domains / bus charges (ps except the cycle counts)
    "PROC_PERIOD", "MC_PERIOD", "REQ_BUS", "RESP_BUS",
    "OCCUPANCY", "PIPELINED",
    # cost model (controller cycles)
    "TRANSFER_CHARGE", "TOGGLE", "DECISION_BASE", "DECISION_PER",
    # scheduler: 0 = FCFS, 1 = FR-FCFS; AGE_CAP < 0 = uncapped
    "SCHED_FRFCFS", "AGE_CAP",
    # refresh cadence
    "REFRESH_ENABLED", "REFRESH_INTERVAL", "STORM_FACTOR",
    "REF_CYCLES", "REF_OFFSET", "REF_MEASURED",
    # topology
    "NBANKS", "NGROUPS", "FAW_CAP",
    # per-core attribution
    "HAS_TRACKER", "NCORES",
    # address decode (mirrors AddressMapper)
    "STRICT_DECODE", "LINE_BYTES", "TOTAL_BYTES", "COLUMNS", "ROWS",
    "DEC_BANKS", "ROW_MAJOR", "SKEWED",
    "CHANNELS", "CH_MODE", "LINES_PER_CHANNEL", "CH_POW2",
    # processor replay (block mode)
    "MLP", "WINDOW",
    # cache hierarchy (block mode, HAS_CACHE): geometry and latencies
    "C1_SETS", "C1_ASSOC", "C1_HIT", "C2_SETS", "C2_ASSOC", "C2_HIT12",
    "C_MISS_LAT", "C_LINE_BYTES",
)

#: Channel-interleave codes for ``CFG.CH_MODE`` (see AddressMapper).
CH_SLAB, CH_LINE, CH_ROW, CH_XOR = 0, 1, 2, 3

#: Mutable scalar slots (``st[]``), loaded/stored around every call.
ST_FIELDS = (
    # call arguments and buffer cursors
    "N_REQ", "BLK_N", "BLK_NWB", "POS", "WB_PTR", "DONE",
    "PEND_COUNT", "PEND_CAP", "OUT_COUNT", "HEAP_LEN", "HEAP_CAP",
    "VIOL_COUNT", "VIOL_CAP", "LAT_COUNT",
    "WRHIT_COUNT", "WRHIT_CAP", "NMAT", "FAW_HEAD", "FAW_LEN", "NEXT_RID",
    "TBL_CAP",
    # controller cursors (SoftwareMemoryController)
    "SCHED_CURSOR", "DRAM_CURSOR", "EXEC_ANCHOR", "NEXT_REFRESH",
    "REFRESH_INDEX", "ARRIVAL_COUNTER", "CHARGED", "CRITICAL",
    # flat timing aggregates (FlatTimingState)
    "MAX_ACT_ALL", "MAX_CAS_ALL", "MAX_WRITE_END", "MAX_PRE",
    "LAST_REF", "OPEN_COUNT", "LAST_ISSUE",
    # time-scaling counters
    "CNT_PROC", "CNT_MC", "CNT_CRIT_ENTRIES", "CNT_CATCHUP",
    "CNT_LOCKED_AT", "CNT_CRITICAL",
    # SmcStats
    "S_READS", "S_WRITES", "S_PREFETCHES", "S_REFRESHES", "S_STORM",
    "S_SCHED_CYCLES", "S_BATCHES",
    # TileStats
    "T_REQUESTS", "T_RESPONSES", "T_REFRESHES", "T_SCHED_PS",
    "T_DRAM_BUSY", "T_HITS", "T_MISSES", "T_CONFLICTS",
    # Bender engine accounting
    "B_PROGRAMS", "B_CYCLES",
    # device command counts (indexed by flat kind code)
    "CMD_ACT", "CMD_PRE", "CMD_PREA", "CMD_RD", "CMD_WR", "CMD_REF",
    # EngineStats + event-queue sequence (block mode)
    "E_GATES", "E_RELEASES", "E_REFRESHES", "E_BATCHED", "E_SKIPPED",
    "QSEQ",
    # processor replay counters (block mode)
    "P_CYCLES", "P_ACCESSES", "P_LOADS", "P_STORES", "P_COMPUTE",
    "P_STALLS", "P_LLC_MISS", "P_WB_REQ",
    # error reporting / remaining capacities
    "ERR_ADDR", "LAT_CAP",
    # resident cache filter (block mode): ticks and CacheStats counters
    "HAS_CACHE", "C1_TICK", "C2_TICK",
    "C1_HITS", "C1_MISSES", "C1_WB", "C2_HITS", "C2_MISSES", "C2_WB",
)

#: Array slots handed to the kernel as one ``int64*[]``.
PTR_FIELDS = (
    "CFG", "ST",
    # per-bank timing state (FlatTimingState + BankState.act_count)
    "LAST_ACT", "LAST_PRE", "LAST_READ", "LAST_WRITE", "LAST_WRITE_END",
    "OPEN_ROW", "PREV_OPEN_ROW", "ACT_COUNT",
    "GROUP_OF", "GMAX_ACT", "GMAX_CAS", "FAW_RING",
    # memoized conventional plans, indexed [2 * case + is_write]
    "PLAN_N", "PLAN_KINDS", "PLAN_OFFSETS", "PLAN_CYCLES",
    "PLAN_CHARGE", "PLAN_MEASURED", "PLAN_POSTFLUSH",
    # logs: violations (stride VIOL_STRIDE), materialized rows, WR hits
    "VIOL", "MAT_KEYS", "WRHIT",
    # request batch (serve_batch entry; sorted by tag)
    "REQ_TAG", "REQ_ADDR", "REQ_FLAGS", "REQ_CORE",
    "REQ_RELEASE", "REQ_SERVICE", "TRACKER",
    # request-table scratch (stride TBL_STRIDE)
    "TBL",
    # block replay inputs (run_block entry)
    "BLK_FLAGS", "BLK_GAP", "BLK_LAT", "BLK_FILL",
    "BLK_WBIDX", "BLK_WBADDR",
    # pending requests created since the last gate
    "PEND_TAG", "PEND_ADDR", "PEND_FLAGS", "PEND_RID", "PEND_RELEASE",
    # MLP window of outstanding fills
    "OUT_TAG", "OUT_ISSUE", "OUT_RELEASE", "OUT_RID",
    # event heap (stride 4: time, seq, kind, payload) + latency log
    "HEAP", "LATENCIES",
    # resident cache filter (block mode): byte addresses per access and
    # per-level way state (tags/dirty/stamps [set*assoc], count/mru [set])
    "BLK_ADDR",
    "C1_TAGS", "C1_DIRTY", "C1_STAMPS", "C1_COUNT", "C1_MRU",
    "C2_TAGS", "C2_DIRTY", "C2_STAMPS", "C2_COUNT", "C2_MRU",
)

#: Violation log record: kind, bank, row, col, time_ps, earliest_ps, code.
VIOL_STRIDE = 7

#: Request-table scratch record: order, req_index, bank, row, col, is_wb.
TBL_STRIDE = 6

#: WR-hit log record: bank, row, col.
WRHIT_STRIDE = 3

#: Constraint-code -> constraint-name table (TimingChecker vocabulary).
CONSTRAINT_NAMES = (
    "power-on", "tRC", "tRP", "tRRD_L", "tRRD_S", "tFAW", "tRFC",
    "tRCD", "tCCD_L", "tCCD_S", "tWTR", "banks-open",
)

#: Request flag bits in REQ_FLAGS / PEND_FLAGS.
FLAG_WRITEBACK = 1
FLAG_PREFETCH = 2

#: Kernel return codes (shared by the C and pure-Python backends).
KERN_OK = 0
KERR_FAW_OVERFLOW = -1      # tFAW ring exceeded FAW_CAP (unreachable)
KERR_VIOL_OVERFLOW = -2     # violation log full
KERR_HEAP_OVERFLOW = -3     # event heap full (pathological storm)
KERR_PEND_OVERFLOW = -4     # pending-request buffer full
KERR_DECODE_RANGE = -5      # strict decode out of range (pre-scan)
KERR_DEADLOCK = -6          # gate with no pending requests
KERR_BAD_KIND = -7          # plan contained an unexpected command kind

#: tFAW ring capacity; far beyond the <= 4 live entries the window holds.
FAW_RING_CAP = 512


def _index_namespace(name: str, fields: tuple[str, ...]):
    return type(name, (), {f: i for i, f in enumerate(fields)})


Cfg = _index_namespace("Cfg", CFG_FIELDS)
St = _index_namespace("St", ST_FIELDS)
Ptr = _index_namespace("Ptr", PTR_FIELDS)


def render_defines() -> str:
    """The ``#define`` header the C backend compiles against."""
    lines = ["/* generated from repro.dram.kernel.state -- do not edit */"]
    for i, f in enumerate(CFG_FIELDS):
        lines.append(f"#define CFG_{f} {i}")
    for i, f in enumerate(ST_FIELDS):
        lines.append(f"#define ST_{f} {i}")
    for i, f in enumerate(PTR_FIELDS):
        lines.append(f"#define P_{f} {i}")
    lines += [
        f"#define VIOL_STRIDE {VIOL_STRIDE}",
        f"#define TBL_STRIDE {TBL_STRIDE}",
        f"#define WRHIT_STRIDE {WRHIT_STRIDE}",
        f"#define KERN_OK {KERN_OK}",
        f"#define KERR_FAW_OVERFLOW {KERR_FAW_OVERFLOW}",
        f"#define KERR_VIOL_OVERFLOW {KERR_VIOL_OVERFLOW}",
        f"#define KERR_HEAP_OVERFLOW {KERR_HEAP_OVERFLOW}",
        f"#define KERR_PEND_OVERFLOW {KERR_PEND_OVERFLOW}",
        f"#define KERR_DECODE_RANGE {KERR_DECODE_RANGE}",
        f"#define KERR_DEADLOCK {KERR_DEADLOCK}",
        f"#define KERR_BAD_KIND {KERR_BAD_KIND}",
        f"#define NEVER_PS ({NEVER}LL)",
        "#define FAR_FUTURE (1LL << 62)",
        "",
    ]
    return "\n".join(lines)


def _arr(n: int) -> np.ndarray:
    return np.zeros(n, dtype=np.int64)


class KernelState:
    """Owns the kernel's arrays and marshals object state in and out.

    One instance is attached per :class:`SoftwareMemoryController` the
    first time its kernel path engages.  ``load``/``store`` cover the
    *controller-side* state (cursors, flat timing arrays, statistics);
    the block-mode driver additionally syncs the processor/engine fields
    it owns.
    """

    def __init__(self, smc) -> None:
        self.smc = smc
        config = smc.config
        t = config.timing
        cc = config.controller
        costs = smc.api.costs
        device = smc._device
        flat = smc._flat
        mapper = smc._mapper
        geo = mapper.geometry
        scheduler = smc.scheduler
        n = flat.num_banks
        self.nbanks = n

        cfg = _arr(len(CFG_FIELDS))
        cfg[Cfg.TCK] = t.tCK
        cfg[Cfg.TRCD] = t.tRCD
        cfg[Cfg.TCCD_S] = t.tCCD_S
        cfg[Cfg.TCCD_L] = t.tCCD_L
        cfg[Cfg.TWTR] = t.tWTR
        cfg[Cfg.TRC] = t.tRC
        cfg[Cfg.TRP] = t.tRP
        cfg[Cfg.TRRD_S] = t.tRRD_S
        cfg[Cfg.TRRD_L] = t.tRRD_L
        cfg[Cfg.TRAS] = t.tRAS
        cfg[Cfg.TRTP] = t.tRTP
        cfg[Cfg.TWR] = t.tWR
        cfg[Cfg.TFAW] = t.tFAW
        cfg[Cfg.TRFC] = t.tRFC
        cfg[Cfg.LAT_RD] = smc._lat_rd_ps
        cfg[Cfg.LAT_WR] = smc._lat_wr_ps
        cfg[Cfg.WRITE_BURST] = t.tCWL + t.tBL
        cfg[Cfg.PROC_PERIOD] = smc._proc_period
        cfg[Cfg.MC_PERIOD] = smc._mc_period
        cfg[Cfg.REQ_BUS] = smc._req_bus_ps
        cfg[Cfg.RESP_BUS] = smc._resp_bus_ps
        cfg[Cfg.OCCUPANCY] = smc._occupancy_ps
        cfg[Cfg.PIPELINED] = int(smc._pipelined)
        cfg[Cfg.TRANSFER_CHARGE] = smc._transfer_charge
        cfg[Cfg.TOGGLE] = smc._critical_toggle
        # decision_cost: FCFS = 3 + n, FR-FCFS = 4 + 2n (base + per * n).
        from repro.core.schedulers import FRFCFS
        frfcfs = type(scheduler) is FRFCFS
        cfg[Cfg.SCHED_FRFCFS] = int(frfcfs)
        cfg[Cfg.DECISION_BASE] = 4 if frfcfs else 3
        cfg[Cfg.DECISION_PER] = 2 if frfcfs else 1
        age_cap = getattr(scheduler, "age_cap", None)
        cfg[Cfg.AGE_CAP] = -1 if age_cap is None else age_cap
        cfg[Cfg.REFRESH_ENABLED] = int(cc.refresh_enabled)
        cfg[Cfg.REFRESH_INTERVAL] = smc._refresh_interval
        cfg[Cfg.STORM_FACTOR] = smc._storm_factor
        cfg[Cfg.REF_CYCLES] = smc._ref_cycles
        cfg[Cfg.REF_OFFSET] = smc._ref_offset_ps
        cfg[Cfg.REF_MEASURED] = smc._ref_measured
        cfg[Cfg.NBANKS] = n
        cfg[Cfg.NGROUPS] = flat.num_groups
        cfg[Cfg.FAW_CAP] = FAW_RING_CAP
        tracker = smc._core_tracker
        cfg[Cfg.HAS_TRACKER] = int(tracker is not None)
        cfg[Cfg.NCORES] = len(tracker.reads) if tracker is not None else 0
        cfg[Cfg.STRICT_DECODE] = int(mapper.strict)
        cfg[Cfg.LINE_BYTES] = mapper._line_bytes
        cfg[Cfg.TOTAL_BYTES] = mapper._total_bytes
        cfg[Cfg.COLUMNS] = mapper._columns
        cfg[Cfg.ROWS] = mapper._rows
        cfg[Cfg.DEC_BANKS] = mapper._num_banks
        cfg[Cfg.ROW_MAJOR] = int(mapper._row_major)
        cfg[Cfg.SKEWED] = int(mapper._skewed)
        cfg[Cfg.CHANNELS] = mapper._channels
        cfg[Cfg.CH_MODE] = {None: CH_SLAB, "channel-line": CH_LINE,
                            "channel-row": CH_ROW,
                            "channel-xor": CH_XOR}[mapper._ch_mode]
        cfg[Cfg.LINES_PER_CHANNEL] = mapper._lines_per_channel
        cfg[Cfg.CH_POW2] = int(mapper._ch_pow2)
        cfg[Cfg.MLP] = config.processor.mlp
        cfg[Cfg.WINDOW] = config.processor.miss_window
        self.cfg = cfg
        self.geometry = geo

        self.st = _arr(len(ST_FIELDS))
        # Per-bank arrays.
        self.last_act = _arr(n)
        self.last_pre = _arr(n)
        self.last_read = _arr(n)
        self.last_write = _arr(n)
        self.last_write_end = _arr(n)
        self.open_row = _arr(n)
        self.prev_open_row = _arr(n)
        self.act_count = _arr(n)
        self.group_of = np.asarray(flat.group_of, dtype=np.int64)
        self.gmax_act = _arr(flat.num_groups)
        self.gmax_cas = _arr(flat.num_groups)
        self.faw_ring = _arr(FAW_RING_CAP)
        # Plans: flattened [2 * case + is_write] tables.
        plan_n = _arr(6)
        plan_kinds = _arr(6 * 3)
        plan_offsets = _arr(6 * 3)
        plan_cycles = _arr(6)
        plan_charge = _arr(6)
        plan_measured = _arr(6)
        plan_postflush = _arr(6)
        for p, (kinds, offsets, total_cycles, charge, measured,
                post_flush_ps) in enumerate(smc._plan_list):
            plan_n[p] = len(kinds)
            for j, kind in enumerate(kinds):
                plan_kinds[3 * p + j] = kind
                plan_offsets[3 * p + j] = offsets[j]
            plan_cycles[p] = total_cycles
            plan_charge[p] = charge
            plan_measured[p] = measured
            plan_postflush[p] = post_flush_ps
        self.plan_n = plan_n
        self.plan_kinds = plan_kinds
        self.plan_offsets = plan_offsets
        self.plan_cycles = plan_cycles
        self.plan_charge = plan_charge
        self.plan_measured = plan_measured
        self.plan_postflush = plan_postflush
        # Logs (grown on demand between calls).
        self.viol = _arr(VIOL_STRIDE * 4096)
        self.wrhit = _arr(WRHIT_STRIDE * 256)
        self.mat_keys = _arr(0)
        self.tracker_out = _arr(6 * max(1, int(cfg[Cfg.NCORES])))
        # Batch request arrays (grown on demand).
        self._req_cap = 0
        self.req_tag = _arr(0)
        self.req_addr = _arr(0)
        self.req_flags = _arr(0)
        self.req_core = _arr(0)
        self.req_release = _arr(0)
        self.req_service = _arr(0)
        self.tbl = _arr(0)
        # Block-mode buffers (allocated by the block driver).
        self.blk_flags = _arr(0)
        self.blk_gap = _arr(0)
        self.blk_lat = _arr(0)
        self.blk_fill = _arr(0)
        self.blk_wbidx = _arr(0)
        self.blk_wbaddr = _arr(0)
        self.pend_tag = _arr(0)
        self.pend_addr = _arr(0)
        self.pend_flags = _arr(0)
        self.pend_rid = _arr(0)
        self.pend_release = _arr(0)
        self.out_tag = _arr(0)
        self.out_issue = _arr(0)
        self.out_release = _arr(0)
        self.out_rid = _arr(0)
        self.heap = _arr(0)
        self.latencies = _arr(0)
        self.blk_addr = _arr(0)
        self.c1_tags = _arr(0)
        self.c1_dirty = _arr(0)
        self.c1_stamps = _arr(0)
        self.c1_count = _arr(0)
        self.c1_mru = _arr(0)
        self.c2_tags = _arr(0)
        self.c2_dirty = _arr(0)
        self.c2_stamps = _arr(0)
        self.c2_count = _arr(0)
        self.c2_mru = _arr(0)
        #: Memoized ctypes slot table; any buffer swap clears it.
        self._ptr_table = None

    # -- buffer management --------------------------------------------------

    def ensure_requests(self, n: int) -> None:
        """Grow the batch request arrays to hold ``n`` entries."""
        if n <= self._req_cap:
            return
        cap = max(64, 2 * n)
        for name in ("req_tag", "req_addr", "req_flags", "req_core",
                     "req_release", "req_service"):
            setattr(self, name, _arr(cap))
        self.tbl = _arr(TBL_STRIDE * cap)
        self._req_cap = cap
        self._ptr_table = None

    def ensure_table(self, entries: int) -> None:
        if self.tbl.shape[0] < TBL_STRIDE * entries:
            self.tbl = _arr(TBL_STRIDE * max(64, 2 * entries))
            self._ptr_table = None

    def ensure_viol(self, entries: int) -> None:
        if self.viol.shape[0] < VIOL_STRIDE * entries:
            self.viol = _arr(VIOL_STRIDE * max(4096, 2 * entries))
            self._ptr_table = None

    def ensure_wrhit(self, entries: int) -> None:
        if self.wrhit.shape[0] < WRHIT_STRIDE * entries:
            self.wrhit = _arr(WRHIT_STRIDE * max(256, 2 * entries))
            self._ptr_table = None

    def refresh_materialized(self) -> None:
        """Snapshot the device's materialized rows as sorted search keys.

        A conventional WR to a materialized row resets that line to its
        deterministic filler pattern (see ``DramDevice.issue_plan``).
        The kernel binary-searches this table and logs the hits; the
        driver applies the actual writes afterwards (idempotent —
        ordering within a run cannot matter because nothing reads row
        data between kernel commands).
        """
        rows = self.smc._device._rows
        if rows:
            keys = sorted((b << 32) | r for (b, r) in rows.keys())
            self.mat_keys = np.asarray(keys, dtype=np.int64)
        else:
            self.mat_keys = _arr(0)
        self.st[St.NMAT] = self.mat_keys.shape[0]
        self._ptr_table = None

    # -- marshalling --------------------------------------------------------

    def load(self) -> None:
        """Refresh the mutable controller-side state from the objects."""
        smc = self.smc
        st = self.st
        flat = smc._flat
        n = self.nbanks
        self.last_act[:n] = flat.last_act
        self.last_pre[:n] = flat.last_pre
        self.last_read[:n] = flat.last_read
        self.last_write[:n] = flat.last_write
        self.last_write_end[:n] = flat.last_write_end
        self.open_row[:n] = flat.open_row
        self.prev_open_row[:n] = flat.prev_open_row
        for i, bank in enumerate(smc._device.banks):
            self.act_count[i] = bank.act_count
        self.gmax_act[:] = flat.group_max_act
        self.gmax_cas[:] = flat.group_max_cas
        acts = list(flat.recent_acts)
        self.faw_ring[:len(acts)] = acts
        st[St.FAW_HEAD] = 0
        st[St.FAW_LEN] = len(acts)
        st[St.SCHED_CURSOR] = smc.sched_cursor
        st[St.DRAM_CURSOR] = smc.dram_cursor
        st[St.EXEC_ANCHOR] = smc._exec_anchor_ps
        st[St.NEXT_REFRESH] = smc._next_refresh_ps
        st[St.REFRESH_INDEX] = smc._refresh_index
        st[St.ARRIVAL_COUNTER] = smc._arrival_counter
        st[St.CHARGED] = smc.api.charged_cycles
        st[St.CRITICAL] = int(smc.api.critical)
        st[St.MAX_ACT_ALL] = flat.max_act_all
        st[St.MAX_CAS_ALL] = flat.max_cas_all
        st[St.MAX_WRITE_END] = flat.max_write_end
        st[St.MAX_PRE] = flat.max_pre
        st[St.LAST_REF] = flat.last_ref
        st[St.OPEN_COUNT] = flat.open_count
        st[St.LAST_ISSUE] = smc._device._last_issue_ps
        counters = smc.counters
        st[St.CNT_PROC] = counters.processor
        st[St.CNT_MC] = counters.memory_controller
        st[St.CNT_CRIT_ENTRIES] = counters.critical_entries
        st[St.CNT_CATCHUP] = counters.catch_up_cycles
        st[St.CNT_LOCKED_AT] = counters._locked_processor_at
        st[St.CNT_CRITICAL] = int(counters.critical_mode)
        stats = smc.stats
        st[St.S_READS] = stats.serviced_reads
        st[St.S_WRITES] = stats.serviced_writes
        st[St.S_PREFETCHES] = stats.serviced_prefetches
        st[St.S_REFRESHES] = stats.refreshes
        st[St.S_STORM] = stats.storm_refreshes
        st[St.S_SCHED_CYCLES] = stats.total_sched_cycles
        st[St.S_BATCHES] = stats.batches_executed
        tstats = smc._tile_stats
        st[St.T_REQUESTS] = tstats.requests_received
        st[St.T_RESPONSES] = tstats.responses_sent
        st[St.T_REFRESHES] = tstats.refreshes_issued
        st[St.T_SCHED_PS] = tstats.scheduling_ps
        st[St.T_DRAM_BUSY] = tstats.dram_busy_ps
        st[St.T_HITS] = tstats.row_hits
        st[St.T_MISSES] = tstats.row_misses
        st[St.T_CONFLICTS] = tstats.row_conflicts
        bender = smc._bender
        st[St.B_PROGRAMS] = bender.programs_run
        st[St.B_CYCLES] = bender.total_interface_cycles
        commands = smc._device.stats.commands
        st[St.CMD_ACT] = commands.get("ACT", 0)
        st[St.CMD_PRE] = commands.get("PRE", 0)
        st[St.CMD_PREA] = commands.get("PREA", 0)
        st[St.CMD_RD] = commands.get("RD", 0)
        st[St.CMD_WR] = commands.get("WR", 0)
        st[St.CMD_REF] = commands.get("REF", 0)
        st[St.VIOL_COUNT] = 0
        st[St.VIOL_CAP] = self.viol.shape[0] // VIOL_STRIDE
        st[St.WRHIT_COUNT] = 0
        st[St.WRHIT_CAP] = self.wrhit.shape[0] // WRHIT_STRIDE
        st[St.TBL_CAP] = self.tbl.shape[0] // TBL_STRIDE
        if self.cfg[Cfg.HAS_TRACKER]:
            self.tracker_out[:] = 0

    def store(self) -> None:
        """Write the kernel's state back into the live objects."""
        smc = self.smc
        st = self.st
        flat = smc._flat
        device = smc._device
        n = self.nbanks
        last_act = self.last_act.tolist()
        last_pre = self.last_pre.tolist()
        last_read = self.last_read.tolist()
        last_write = self.last_write.tolist()
        last_write_end = self.last_write_end.tolist()
        open_row = self.open_row.tolist()
        prev_open_row = self.prev_open_row.tolist()
        act_count = self.act_count.tolist()
        flat.last_act[:] = last_act
        flat.last_pre[:] = last_pre
        flat.last_read[:] = last_read
        flat.last_write[:] = last_write
        flat.last_write_end[:] = last_write_end
        flat.open_row[:] = open_row
        flat.prev_open_row[:] = prev_open_row
        for i, bank in enumerate(device.banks):
            bank.last_act = last_act[i]
            bank.last_pre = last_pre[i]
            bank.last_read = last_read[i]
            bank.last_write = last_write[i]
            bank.last_write_data_end = last_write_end[i]
            row = open_row[i]
            bank.open_row = row if row >= 0 else None
            prev = prev_open_row[i]
            bank.previously_open_row = prev if prev >= 0 else None
            bank.act_count = act_count[i]
        flat.group_max_act[:] = self.gmax_act.tolist()
        flat.group_max_cas[:] = self.gmax_cas.tolist()
        head = int(st[St.FAW_HEAD])
        length = int(st[St.FAW_LEN])
        cap = FAW_RING_CAP
        ring = self.faw_ring
        acts = [int(ring[(head + i) % cap]) for i in range(length)]
        flat.recent_acts.clear()
        flat.recent_acts.extend(acts)
        # Single-rank topology: the device rank's tFAW list mirrors the
        # channel-wide window (flat.rank_recent_acts stays unused).
        rank = device.ranks[0]
        rank.recent_acts = list(acts)
        last_ref = int(st[St.LAST_REF])
        if last_ref != flat.last_ref:
            # REF issued during the call: _apply_ref semantics.
            for rank_state in device.ranks:
                rank_state.last_ref = last_ref
                rank_state.refresh_epoch_ps = last_ref
        flat.max_act_all = int(st[St.MAX_ACT_ALL])
        flat.max_cas_all = int(st[St.MAX_CAS_ALL])
        flat.max_write_end = int(st[St.MAX_WRITE_END])
        flat.max_pre = int(st[St.MAX_PRE])
        flat.last_ref = last_ref
        flat.open_count = int(st[St.OPEN_COUNT])
        device._last_issue_ps = int(st[St.LAST_ISSUE])
        smc.sched_cursor = int(st[St.SCHED_CURSOR])
        smc.dram_cursor = int(st[St.DRAM_CURSOR])
        smc._exec_anchor_ps = int(st[St.EXEC_ANCHOR])
        smc._next_refresh_ps = int(st[St.NEXT_REFRESH])
        smc._refresh_index = int(st[St.REFRESH_INDEX])
        smc._arrival_counter = int(st[St.ARRIVAL_COUNTER])
        smc.api.charged_cycles = int(st[St.CHARGED])
        smc.api.critical = bool(st[St.CRITICAL])
        counters = smc.counters
        counters.processor = int(st[St.CNT_PROC])
        counters.memory_controller = int(st[St.CNT_MC])
        counters.critical_entries = int(st[St.CNT_CRIT_ENTRIES])
        counters.catch_up_cycles = int(st[St.CNT_CATCHUP])
        counters._locked_processor_at = int(st[St.CNT_LOCKED_AT])
        counters.critical_mode = bool(st[St.CNT_CRITICAL])
        stats = smc.stats
        stats.serviced_reads = int(st[St.S_READS])
        stats.serviced_writes = int(st[St.S_WRITES])
        stats.serviced_prefetches = int(st[St.S_PREFETCHES])
        stats.refreshes = int(st[St.S_REFRESHES])
        stats.storm_refreshes = int(st[St.S_STORM])
        stats.total_sched_cycles = int(st[St.S_SCHED_CYCLES])
        stats.batches_executed = int(st[St.S_BATCHES])
        tstats = smc._tile_stats
        tstats.requests_received = int(st[St.T_REQUESTS])
        tstats.responses_sent = int(st[St.T_RESPONSES])
        tstats.refreshes_issued = int(st[St.T_REFRESHES])
        tstats.scheduling_ps = int(st[St.T_SCHED_PS])
        tstats.dram_busy_ps = int(st[St.T_DRAM_BUSY])
        tstats.row_hits = int(st[St.T_HITS])
        tstats.row_misses = int(st[St.T_MISSES])
        tstats.row_conflicts = int(st[St.T_CONFLICTS])
        bender = smc._bender
        bender.programs_run = int(st[St.B_PROGRAMS])
        bender.total_interface_cycles = int(st[St.B_CYCLES])
        commands = device.stats.commands
        for name, slot in (("ACT", St.CMD_ACT), ("PRE", St.CMD_PRE),
                           ("PREA", St.CMD_PREA), ("RD", St.CMD_RD),
                           ("WR", St.CMD_WR), ("REF", St.CMD_REF)):
            count = int(st[slot])
            if count or name in commands:
                if count != commands.get(name, 0):
                    commands[name] = count
        tracker = smc._core_tracker
        if tracker is not None and self.cfg[Cfg.HAS_TRACKER]:
            ncores = int(self.cfg[Cfg.NCORES])
            out = self.tracker_out
            for c in range(ncores):
                base = 6 * c
                tracker.reads[c] += int(out[base])
                tracker.writes[c] += int(out[base + 1])
                tracker.prefetches[c] += int(out[base + 2])
                tracker.row_hits[c] += int(out[base + 3])
                tracker.row_misses[c] += int(out[base + 4])
                tracker.row_conflicts[c] += int(out[base + 5])

    # -- log scatter ---------------------------------------------------------

    def scatter_violations(self) -> None:
        """Append the kernel's violation log as ViolationRecord objects."""
        count = int(self.st[St.VIOL_COUNT])
        if not count:
            return
        from repro.dram.commands import Command, CommandKind
        from repro.dram.flat_timing import KIND_NAMES
        from repro.dram.timing_checker import ViolationRecord
        violations = self.smc._device.checker.violations
        viol = self.viol
        for i in range(count):
            base = VIOL_STRIDE * i
            kind = int(viol[base])
            violations.append(ViolationRecord(
                Command(CommandKind(KIND_NAMES[kind]), bank=int(viol[base + 1]),
                        row=int(viol[base + 2]), col=int(viol[base + 3])),
                int(viol[base + 4]), int(viol[base + 5]),
                CONSTRAINT_NAMES[int(viol[base + 6])]))
        self.st[St.VIOL_COUNT] = 0

    def apply_wr_hits(self) -> None:
        """Replay WRs that targeted materialized rows onto the row data."""
        count = int(self.st[St.WRHIT_COUNT])
        if not count:
            return
        device = self.smc._device
        wrhit = self.wrhit
        for i in range(count):
            base = WRHIT_STRIDE * i
            bank = int(wrhit[base])
            row = int(wrhit[base + 1])
            col = int(wrhit[base + 2])
            device._write_line(bank, row, col,
                               device.default_line(bank, row, col))
        self.st[St.WRHIT_COUNT] = 0

    def emit_refreshes(self, refresh_sink, next_refresh_before: int) -> None:
        """Replay refresh-sink callbacks for deadlines the kernel serviced.

        The serviced deadlines are exactly the arithmetic sequence from
        the pre-call ``_next_refresh_ps`` (inclusive) to the post-call
        value (exclusive), stepping by the refresh interval — the kernel
        refresh loop is the same ``while`` the Python path runs.
        """
        if refresh_sink is None:
            return
        after = int(self.st[St.NEXT_REFRESH])
        if after == next_refresh_before:
            return
        interval = int(self.cfg[Cfg.REFRESH_INTERVAL])
        deadline = next_refresh_before
        while deadline < after:
            refresh_sink(deadline)
            deadline += interval

    def pointer_table(self):
        """The ``int64*[]`` slot table, rebuilt when a buffer is swapped."""
        if self._ptr_table is not None:
            return self._ptr_table
        import ctypes
        arrays = (
            self.cfg, self.st,
            self.last_act, self.last_pre, self.last_read, self.last_write,
            self.last_write_end, self.open_row, self.prev_open_row,
            self.act_count, self.group_of, self.gmax_act, self.gmax_cas,
            self.faw_ring,
            self.plan_n, self.plan_kinds, self.plan_offsets,
            self.plan_cycles, self.plan_charge, self.plan_measured,
            self.plan_postflush,
            self.viol, self.mat_keys, self.wrhit,
            self.req_tag, self.req_addr, self.req_flags, self.req_core,
            self.req_release, self.req_service, self.tracker_out,
            self.tbl,
            self.blk_flags, self.blk_gap, self.blk_lat, self.blk_fill,
            self.blk_wbidx, self.blk_wbaddr,
            self.pend_tag, self.pend_addr, self.pend_flags, self.pend_rid,
            self.pend_release,
            self.out_tag, self.out_issue, self.out_release, self.out_rid,
            self.heap, self.latencies,
            self.blk_addr,
            self.c1_tags, self.c1_dirty, self.c1_stamps, self.c1_count,
            self.c1_mru,
            self.c2_tags, self.c2_dirty, self.c2_stamps, self.c2_count,
            self.c2_mru,
        )
        assert len(arrays) == len(PTR_FIELDS)
        p64 = ctypes.POINTER(ctypes.c_int64)
        table = (p64 * len(arrays))()
        null = ctypes.cast(None, p64)
        for i, arr in enumerate(arrays):
            table[i] = arr.ctypes.data_as(p64) if arr.size else null
        self._keepalive = arrays
        self._ptr_table = table
        return table

    def array_table(self):
        """The same slot table as live numpy arrays (pure-Python backend)."""
        return [
            self.cfg, self.st,
            self.last_act, self.last_pre, self.last_read, self.last_write,
            self.last_write_end, self.open_row, self.prev_open_row,
            self.act_count, self.group_of, self.gmax_act, self.gmax_cas,
            self.faw_ring,
            self.plan_n, self.plan_kinds, self.plan_offsets,
            self.plan_cycles, self.plan_charge, self.plan_measured,
            self.plan_postflush,
            self.viol, self.mat_keys, self.wrhit,
            self.req_tag, self.req_addr, self.req_flags, self.req_core,
            self.req_release, self.req_service, self.tracker_out,
            self.tbl,
            self.blk_flags, self.blk_gap, self.blk_lat, self.blk_fill,
            self.blk_wbidx, self.blk_wbaddr,
            self.pend_tag, self.pend_addr, self.pend_flags, self.pend_rid,
            self.pend_release,
            self.out_tag, self.out_issue, self.out_release, self.out_rid,
            self.heap, self.latencies,
            self.blk_addr,
            self.c1_tags, self.c1_dirty, self.c1_stamps, self.c1_count,
            self.c1_mru,
            self.c2_tags, self.c2_dirty, self.c2_stamps, self.c2_count,
            self.c2_mru,
        ]
