/* Batch serve kernel for the software memory controller.
 *
 * Compiled by repro.dram.kernel.cbackend with the layout #defines
 * generated from repro.dram.kernel.state prepended, so the field
 * indices can never drift from the Python marshalling code.
 *
 * Three entry points, each taking the int64_t*[] slot table:
 *
 *   repro_serve_batch  -- one critical-mode episode over a sorted
 *                         request batch (mirrors _make_service_fast /
 *                         _make_service_single byte for byte on the
 *                         emulated timeline).
 *   repro_run_block    -- replay one AccessBlock through the gated
 *                         processor model, servicing every clock gate
 *                         in place (mirrors Processor._execute_burst_blocks
 *                         plus the EventEngine block-mode gate closure).
 *   repro_finish_trace -- the end-of-trace drain + final done-gate.
 *
 * Every formula below is a transcription of the Python fast path; the
 * comments name the source (smc.py / device.py / flat_timing.py /
 * timing_checker.py / processor.py / engine.py).  Divisions only ever
 * see non-negative operands, so C truncation == Python floor.
 */

#include <stdint.h>
#include <string.h>

#define C(f) ((int64_t)k->cfg[CFG_##f])
#define S(f) k->st[ST_##f]

/* Constraint codes, in CONSTRAINT_NAMES order (state.py). */
#define CODE_POWER_ON 0
#define CODE_TRC 1
#define CODE_TRP 2
#define CODE_TRRD_L 3
#define CODE_TRRD_S 4
#define CODE_TFAW 5
#define CODE_TRFC 6
#define CODE_TRCD 7
#define CODE_TCCD_L 8
#define CODE_TCCD_S 9
#define CODE_TWTR 10
#define CODE_BANKS_OPEN 11

/* Flat command-kind codes (flat_timing.py). */
#define K_ACT 0
#define K_PRE 1
#define K_PREA 2
#define K_RD 3
#define K_WR 4
#define K_REF 5

/* EventKind values (core/events.py). */
#define EV_RELEASE 1
#define EV_REFRESH 2

/* memtrace access flags / request flags (state.py). */
#define AF_WRITE 1
#define AF_DEPENDENT 2
#define RF_WRITEBACK 1
#define RF_PREFETCH 2

typedef struct {
    const int64_t *cfg;
    int64_t *st;
    int64_t *last_act, *last_pre, *last_read, *last_write, *last_write_end;
    int64_t *open_row, *prev_open_row, *act_count;
    const int64_t *group_of;
    int64_t *gmax_act, *gmax_cas, *faw_ring;
    const int64_t *plan_n, *plan_kinds, *plan_offsets, *plan_cycles;
    const int64_t *plan_charge, *plan_measured, *plan_postflush;
    int64_t *viol;
    const int64_t *mat_keys;
    int64_t *wrhit;
    const int64_t *req_tag, *req_addr, *req_flags, *req_core;
    int64_t *req_release, *req_service, *tracker;
    int64_t *tbl;
    const int64_t *blk_flags, *blk_gap, *blk_addr;
    int64_t *blk_lat, *blk_fill;
    int64_t *blk_wbidx, *blk_wbaddr;
    int64_t *pend_tag, *pend_addr, *pend_flags, *pend_rid, *pend_release;
    int64_t *out_tag, *out_issue, *out_release, *out_rid;
    int64_t *heap, *latencies;
    int64_t *c1_tags, *c1_dirty, *c1_stamps, *c1_count, *c1_mru;
    int64_t *c2_tags, *c2_dirty, *c2_stamps, *c2_count, *c2_mru;
} K;

static void bind(K *k, int64_t **p)
{
    k->cfg = p[P_CFG];
    k->st = p[P_ST];
    k->last_act = p[P_LAST_ACT];
    k->last_pre = p[P_LAST_PRE];
    k->last_read = p[P_LAST_READ];
    k->last_write = p[P_LAST_WRITE];
    k->last_write_end = p[P_LAST_WRITE_END];
    k->open_row = p[P_OPEN_ROW];
    k->prev_open_row = p[P_PREV_OPEN_ROW];
    k->act_count = p[P_ACT_COUNT];
    k->group_of = p[P_GROUP_OF];
    k->gmax_act = p[P_GMAX_ACT];
    k->gmax_cas = p[P_GMAX_CAS];
    k->faw_ring = p[P_FAW_RING];
    k->plan_n = p[P_PLAN_N];
    k->plan_kinds = p[P_PLAN_KINDS];
    k->plan_offsets = p[P_PLAN_OFFSETS];
    k->plan_cycles = p[P_PLAN_CYCLES];
    k->plan_charge = p[P_PLAN_CHARGE];
    k->plan_measured = p[P_PLAN_MEASURED];
    k->plan_postflush = p[P_PLAN_POSTFLUSH];
    k->viol = p[P_VIOL];
    k->mat_keys = p[P_MAT_KEYS];
    k->wrhit = p[P_WRHIT];
    k->req_tag = p[P_REQ_TAG];
    k->req_addr = p[P_REQ_ADDR];
    k->req_flags = p[P_REQ_FLAGS];
    k->req_core = p[P_REQ_CORE];
    k->req_release = p[P_REQ_RELEASE];
    k->req_service = p[P_REQ_SERVICE];
    k->tracker = p[P_TRACKER];
    k->tbl = p[P_TBL];
    k->blk_flags = p[P_BLK_FLAGS];
    k->blk_gap = p[P_BLK_GAP];
    k->blk_lat = p[P_BLK_LAT];
    k->blk_fill = p[P_BLK_FILL];
    k->blk_wbidx = p[P_BLK_WBIDX];
    k->blk_wbaddr = p[P_BLK_WBADDR];
    k->pend_tag = p[P_PEND_TAG];
    k->pend_addr = p[P_PEND_ADDR];
    k->pend_flags = p[P_PEND_FLAGS];
    k->pend_rid = p[P_PEND_RID];
    k->pend_release = p[P_PEND_RELEASE];
    k->out_tag = p[P_OUT_TAG];
    k->out_issue = p[P_OUT_ISSUE];
    k->out_release = p[P_OUT_RELEASE];
    k->out_rid = p[P_OUT_RID];
    k->heap = p[P_HEAP];
    k->latencies = p[P_LATENCIES];
    k->blk_addr = p[P_BLK_ADDR];
    k->c1_tags = p[P_C1_TAGS];
    k->c1_dirty = p[P_C1_DIRTY];
    k->c1_stamps = p[P_C1_STAMPS];
    k->c1_count = p[P_C1_COUNT];
    k->c1_mru = p[P_C1_MRU];
    k->c2_tags = p[P_C2_TAGS];
    k->c2_dirty = p[P_C2_DIRTY];
    k->c2_stamps = p[P_C2_STAMPS];
    k->c2_count = p[P_C2_COUNT];
    k->c2_mru = p[P_C2_MRU];
}

/* -- address decode (AddressMapper.to_dram, address.py) ------------------- */

static int64_t decode_addr(K *k, int64_t addr, int64_t *bank_out,
                           int64_t *row_out, int64_t *col_out)
{
    int64_t total = C(TOTAL_BYTES);
    if (addr < 0) {            /* _check_range raises for any negative */
        S(ERR_ADDR) = addr;
        return KERR_DECODE_RANGE;
    }
    if (addr >= total) {
        if (C(STRICT_DECODE)) {
            S(ERR_ADDR) = addr;
            return KERR_DECODE_RANGE;
        }
        addr %= total;         /* permissive wrap */
    }
    int64_t line = addr / C(LINE_BYTES);
    int64_t channels = C(CHANNELS);
    if (channels > 1) {
        /* _split_channel: keep the within-channel line only. */
        int64_t mode = C(CH_MODE);
        if (mode == 0) {                       /* slab */
            line = line % C(LINES_PER_CHANNEL);
        } else if (mode == 1) {                /* channel-line */
            line = line / channels;
        } else if (mode == 2) {                /* channel-row */
            int64_t columns = C(COLUMNS);
            int64_t span = line / columns;
            int64_t col_part = line % columns;
            line = (span / channels) * columns + col_part;
        } else {                               /* channel-xor */
            line = line / channels;            /* base */
        }
    }
    int64_t bank, row, col;
    if (C(ROW_MAJOR)) {
        int64_t columns = C(COLUMNS), nb = C(DEC_BANKS);
        col = line % columns;
        int64_t block = line / columns;
        bank = block % nb;
        row = (block / nb) % C(ROWS);
        if (C(SKEWED)) {
            int64_t skew = row ^ (row >> 4) ^ (row >> 8);
            bank = (bank + skew) % nb;
        }
    } else {
        int64_t nb = C(DEC_BANKS), columns = C(COLUMNS);
        bank = line % nb;
        line /= nb;
        col = line % columns;
        row = (line / columns) % C(ROWS);
    }
    *bank_out = bank;
    *row_out = row;
    *col_out = col;
    return KERN_OK;
}

/* -- violation log -------------------------------------------------------- */

static int64_t viol_push(K *k, int64_t kind, int64_t bank, int64_t row,
                         int64_t col, int64_t t, int64_t earliest,
                         int64_t code)
{
    int64_t count = S(VIOL_COUNT);
    if (count >= S(VIOL_CAP))
        return KERR_VIOL_OVERFLOW;
    int64_t *rec = k->viol + VIOL_STRIDE * count;
    rec[0] = kind;
    rec[1] = bank;
    rec[2] = row;
    rec[3] = col;
    rec[4] = t;
    rec[5] = earliest;
    rec[6] = code;
    S(VIOL_COUNT) = count + 1;
    return KERN_OK;
}

/* -- checker candidate enumeration (timing_checker.py) --------------------
 *
 * Python resolves the binding constraint with max() over an ordered
 * candidate list; max keeps the FIRST maximal element, so the C loops
 * only replace the best on a strictly greater value.
 */

#define CAND(v, c) do { int64_t _v = (v); \
        if (_v > best) { best = _v; code = (c); } } while (0)

static void enum_act(K *k, int64_t bank, int64_t *e_out, int64_t *code_out)
{
    int64_t best = 0, code = CODE_POWER_ON;
    CAND(k->last_act[bank] + C(TRC), CODE_TRC);
    CAND(k->last_pre[bank] + C(TRP), CODE_TRP);
    int64_t grp = k->group_of[bank], nb = C(NBANKS);
    for (int64_t ob = 0; ob < nb; ob++) {
        if (ob == bank)
            continue;
        if (k->group_of[ob] == grp)
            CAND(k->last_act[ob] + C(TRRD_L), CODE_TRRD_L);
        else
            CAND(k->last_act[ob] + C(TRRD_S), CODE_TRRD_S);
    }
    int64_t len = S(FAW_LEN);
    if (len < 4) {
        CAND((int64_t)0, CODE_TFAW);
    } else {
        int64_t cap = C(FAW_CAP);
        int64_t idx = (S(FAW_HEAD) + len - 4) % cap;
        CAND(k->faw_ring[idx] + C(TFAW), CODE_TFAW);
    }
    CAND(S(LAST_REF) + C(TRFC), CODE_TRFC);
    *e_out = best;
    *code_out = code;
}

static void enum_cas(K *k, int64_t bank, int is_write, int64_t *e_out,
                     int64_t *code_out)
{
    int64_t best = 0, code = CODE_POWER_ON;
    CAND(k->last_act[bank] + C(TRCD), CODE_TRCD);
    int64_t grp = k->group_of[bank], nb = C(NBANKS);
    for (int64_t ob = 0; ob < nb; ob++) {
        int64_t cas = k->last_read[ob] > k->last_write[ob]
            ? k->last_read[ob] : k->last_write[ob];
        if (k->group_of[ob] == grp)
            CAND(cas + C(TCCD_L), CODE_TCCD_L);
        else
            CAND(cas + C(TCCD_S), CODE_TCCD_S);
    }
    if (!is_write) {
        int64_t we = NEVER_PS;
        for (int64_t ob = 0; ob < nb; ob++)
            if (k->last_write_end[ob] > we)
                we = k->last_write_end[ob];
        CAND(we + C(TWTR), CODE_TWTR);
    }
    *e_out = best;
    *code_out = code;
}

static void enum_ref(K *k, int64_t *e_out, int64_t *code_out)
{
    int64_t best = 0, code = CODE_POWER_ON;
    int64_t nb = C(NBANKS);
    for (int64_t b = 0; b < nb; b++) {
        CAND(k->last_pre[b] + C(TRP), CODE_TRP);
        if (k->open_row[b] >= 0)
            CAND(FAR_FUTURE, CODE_BANKS_OPEN);
    }
    CAND(S(LAST_REF) + C(TRFC), CODE_TRFC);
    *e_out = best;
    *code_out = code;
}

/* -- per-command state transitions (device.py issue_plan / flat_timing) --- */

static int64_t note_wr_hit(K *k, int64_t bank, int64_t row, int64_t col)
{
    /* A conventional WR to a materialized row resets the line to its
     * filler pattern; log the hit for the driver to apply. */
    int64_t n = S(NMAT);
    if (!n || row < 0)
        return KERN_OK;
    int64_t key = (bank << 32) | row;
    int64_t lo = 0, hi = n - 1;
    while (lo <= hi) {
        int64_t mid = (lo + hi) / 2;
        int64_t v = k->mat_keys[mid];
        if (v == key) {
            int64_t count = S(WRHIT_COUNT);
            if (count >= S(WRHIT_CAP))
                return KERR_VIOL_OVERFLOW;
            int64_t *rec = k->wrhit + WRHIT_STRIDE * count;
            rec[0] = bank;
            rec[1] = row;
            rec[2] = col;
            S(WRHIT_COUNT) = count + 1;
            return KERN_OK;
        }
        if (v < key)
            lo = mid + 1;
        else
            hi = mid - 1;
    }
    return KERN_OK;
}

static int64_t apply_act(K *k, int64_t bank, int64_t row, int64_t t)
{
    int64_t grp = k->group_of[bank];
    k->last_act[bank] = t;
    k->act_count[bank] += 1;
    if (k->open_row[bank] < 0)
        S(OPEN_COUNT) += 1;
    k->open_row[bank] = row;
    if (t > k->gmax_act[grp])
        k->gmax_act[grp] = t;
    if (t > S(MAX_ACT_ALL))
        S(MAX_ACT_ALL) = t;
    /* tFAW sliding window: append, then expire entries <= t - tFAW. */
    int64_t cap = C(FAW_CAP), len = S(FAW_LEN), head = S(FAW_HEAD);
    if (len >= cap)
        return KERR_FAW_OVERFLOW;
    k->faw_ring[(head + len) % cap] = t;
    len += 1;
    int64_t cutoff = t - C(TFAW);
    while (len && k->faw_ring[head] <= cutoff) {
        head = (head + 1) % cap;
        len -= 1;
    }
    S(FAW_HEAD) = head;
    S(FAW_LEN) = len;
    S(CMD_ACT) += 1;
    return KERN_OK;
}

static void apply_pre(K *k, int64_t bank, int64_t t)
{
    k->prev_open_row[bank] = k->open_row[bank];
    if (k->open_row[bank] >= 0) {
        S(OPEN_COUNT) -= 1;
        k->open_row[bank] = -1;
    }
    k->last_pre[bank] = t;
    if (t > S(MAX_PRE))
        S(MAX_PRE) = t;
    S(CMD_PRE) += 1;
}

static void apply_rd(K *k, int64_t bank, int64_t t)
{
    int64_t grp = k->group_of[bank];
    k->last_read[bank] = t;
    if (t > k->gmax_cas[grp])
        k->gmax_cas[grp] = t;
    if (t > S(MAX_CAS_ALL))
        S(MAX_CAS_ALL) = t;
    S(CMD_RD) += 1;
}

static int64_t apply_wr(K *k, int64_t bank, int64_t col, int64_t t)
{
    int64_t err = note_wr_hit(k, bank, k->open_row[bank], col);
    if (err)
        return err;
    int64_t grp = k->group_of[bank];
    int64_t data_end = t + C(WRITE_BURST);
    k->last_write[bank] = t;
    k->last_write_end[bank] = data_end;
    if (t > k->gmax_cas[grp])
        k->gmax_cas[grp] = t;
    if (t > S(MAX_CAS_ALL))
        S(MAX_CAS_ALL) = t;
    if (data_end > S(MAX_WRITE_END))
        S(MAX_WRITE_END) = data_end;
    S(CMD_WR) += 1;
    return KERN_OK;
}

/* Two-term earliest for an in-plan (non-leading) command; exact because
 * the kernel only engages when device._inline_earliest holds. */
static int64_t flat_earliest(K *k, int64_t kind, int64_t bank)
{
    int64_t e, v;
    int64_t grp = k->group_of[bank];
    if (kind == K_ACT) {
        e = k->last_act[bank] + C(TRC);
        v = k->last_pre[bank] + C(TRP);
        if (v > e)
            e = v;
        v = S(MAX_ACT_ALL) + C(TRRD_S);
        if (v > e)
            e = v;
        v = k->gmax_act[grp] + C(TRRD_L);
        if (v > e)
            e = v;
        int64_t len = S(FAW_LEN);
        if (len >= 4) {
            int64_t cap = C(FAW_CAP);
            v = k->faw_ring[(S(FAW_HEAD) + len - 4) % cap] + C(TFAW);
            if (v > e)
                e = v;
        }
        v = S(LAST_REF) + C(TRFC);
        if (v > e)
            e = v;
    } else {                                   /* K_RD / K_WR */
        e = k->last_act[bank] + C(TRCD);
        v = S(MAX_CAS_ALL) + C(TCCD_S);
        if (v > e)
            e = v;
        v = k->gmax_cas[grp] + C(TCCD_L);
        if (v > e)
            e = v;
        if (kind == K_RD) {
            v = S(MAX_WRITE_END) + C(TWTR);
            if (v > e)
                e = v;
        }
    }
    return e;
}

/* device.issue_plan: walk a memoized plan from the precleared start. */
static int64_t issue_plan_k(K *k, int64_t p, int64_t bank, int64_t row,
                            int64_t col, int64_t start)
{
    int64_t n = k->plan_n[p];
    int64_t tck = C(TCK);
    int64_t t = start;
    for (int64_t i = 0; i < n; i++) {
        int64_t kind = k->plan_kinds[3 * p + i];
        t = start + k->plan_offsets[3 * p + i] * tck;
        if (i) {
            int64_t e = flat_earliest(k, kind, bank);
            if (t < e) {
                int64_t ee, code;
                if (kind == K_ACT)
                    enum_act(k, bank, &ee, &code);
                else
                    enum_cas(k, bank, kind == K_WR ? 1 : 0, &ee, &code);
                int64_t err = viol_push(k, kind, bank, row, col, t, ee, code);
                if (err)
                    return err;
            }
        }
        int64_t err = KERN_OK;
        if (kind == K_ACT)
            err = apply_act(k, bank, row, t);
        else if (kind == K_PRE)
            apply_pre(k, bank, t);
        else if (kind == K_RD)
            apply_rd(k, bank, t);
        else if (kind == K_WR)
            err = apply_wr(k, bank, col, t);
        else
            err = KERR_BAD_KIND;
        if (err)
            return err;
    }
    S(LAST_ISSUE) = t;
    return KERN_OK;
}

/* device.issue_col: the single precleared RD/WR of a row hit. */
static int64_t issue_col_k(K *k, int64_t kind, int64_t bank, int64_t col,
                           int64_t t)
{
    int64_t err = KERN_OK;
    if (kind == K_RD)
        apply_rd(k, bank, t);
    else if (kind == K_WR)
        err = apply_wr(k, bank, col, t);
    else
        err = KERR_BAD_KIND;
    if (err)
        return err;
    S(LAST_ISSUE) = t;
    return KERN_OK;
}

/* -- event heap (EventQueue entries (time, seq, kind, payload)) ----------- */

static int64_t heap_push(K *k, int64_t time, int64_t kind, int64_t payload)
{
    int64_t len = S(HEAP_LEN);
    if (len >= S(HEAP_CAP))
        return KERR_HEAP_OVERFLOW;
    int64_t *h = k->heap;
    int64_t seq = S(QSEQ);
    S(QSEQ) = seq + 1;
    int64_t i = len;
    while (i > 0) {
        int64_t parent = (i - 1) / 2;
        int64_t *pe = h + 4 * parent;
        /* (time, seq) lexicographic; seq values are unique. */
        if (pe[0] < time || (pe[0] == time && pe[1] < seq))
            break;
        memcpy(h + 4 * i, pe, 4 * sizeof(int64_t));
        i = parent;
    }
    int64_t *e = h + 4 * i;
    e[0] = time;
    e[1] = seq;
    e[2] = kind;
    e[3] = payload;
    S(HEAP_LEN) = len + 1;
    return KERN_OK;
}

static void heap_pop_discard(K *k)
{
    int64_t len = S(HEAP_LEN) - 1;
    int64_t *h = k->heap;
    S(HEAP_LEN) = len;
    if (!len)
        return;
    int64_t e0 = h[4 * len], e1 = h[4 * len + 1];
    int64_t e2 = h[4 * len + 2], e3 = h[4 * len + 3];
    int64_t i = 0;
    for (;;) {
        int64_t child = 2 * i + 1;
        if (child >= len)
            break;
        int64_t right = child + 1;
        if (right < len) {
            int64_t *cl = h + 4 * child, *cr = h + 4 * right;
            if (cr[0] < cl[0] || (cr[0] == cl[0] && cr[1] < cl[1]))
                child = right;
        }
        int64_t *ce = h + 4 * child;
        if (e0 < ce[0] || (e0 == ce[0] && e1 < ce[1]))
            break;
        memcpy(h + 4 * i, ce, 4 * sizeof(int64_t));
        i = child;
    }
    int64_t *e = h + 4 * i;
    e[0] = e0;
    e[1] = e1;
    e[2] = e2;
    e[3] = e3;
}

/* -- refresh episode (smc._maybe_refresh_flat) ---------------------------- */

static int64_t refresh_episode(K *k, int block_mode)
{
    while (S(NEXT_REFRESH) <= S(SCHED_CURSOR)) {
        S(CHARGED) = 0;        /* staging + accumulated charges discarded */
        int64_t anchor = S(SCHED_CURSOR);
        S(EXEC_ANCHOR) = anchor;
        int64_t start = anchor >= S(DRAM_CURSOR) ? anchor : S(DRAM_CURSOR);
        /* flat.earliest(K_PREA): worst bank's precharge bound, >= 0. */
        int64_t e = 0, nb = C(NBANKS);
        for (int64_t b = 0; b < nb; b++) {
            int64_t v = k->last_act[b] + C(TRAS);
            int64_t w = k->last_read[b] + C(TRTP);
            if (w > v)
                v = w;
            w = k->last_write_end[b] + C(TWR);
            if (w > v)
                v = w;
            if (v > e)
                e = v;
        }
        if (e > start)
            start = e;
        /* PREA, precleared: every bank precharges at start. */
        for (int64_t b = 0; b < nb; b++) {
            k->prev_open_row[b] = k->open_row[b];
            if (k->open_row[b] >= 0) {
                S(OPEN_COUNT) -= 1;
                k->open_row[b] = -1;
            }
            k->last_pre[b] = start;
        }
        if (start > S(MAX_PRE))
            S(MAX_PRE) = start;
        S(CMD_PREA) += 1;
        S(LAST_ISSUE) = start;
        /* REF at the fixed plan offset; legality checked (not precleared). */
        int64_t t2 = start + C(REF_OFFSET);
        int64_t er = S(MAX_PRE) + C(TRP);
        int64_t v = S(LAST_REF) + C(TRFC);
        if (v > er)
            er = v;
        if (S(OPEN_COUNT))
            er = FAR_FUTURE;   /* unreachable: PREA just closed every bank */
        if (er < 0)
            er = 0;
        if (t2 < er) {
            int64_t ee, code;
            enum_ref(k, &ee, &code);
            int64_t err = viol_push(k, K_REF, 0, 0, 0, t2, ee, code);
            if (err)
                return err;
        }
        S(LAST_REF) = t2;
        S(CMD_REF) += 1;
        S(LAST_ISSUE) = t2;
        S(B_PROGRAMS) += 1;
        S(B_CYCLES) += C(REF_CYCLES);
        S(DRAM_CURSOR) = start + C(REF_MEASURED);
        S(T_DRAM_BUSY) += C(REF_MEASURED);
        S(S_BATCHES) += 1;
        S(CHARGED) = 0;        /* flush charges discarded */
        S(S_REFRESHES) += 1;
        S(T_REFRESHES) += 1;
        if (C(STORM_FACTOR) > 1) {
            S(REFRESH_INDEX) += 1;
            if (S(REFRESH_INDEX) % C(STORM_FACTOR))
                S(S_STORM) += 1;
        }
        if (block_mode) {
            /* EventEngine._note_refresh, inlined. */
            S(E_REFRESHES) += 1;
            if (C(PROC_PERIOD)) {
                int64_t err = heap_push(k, S(NEXT_REFRESH) / C(PROC_PERIOD),
                                        EV_REFRESH, 0);
                if (err)
                    return err;
            }
        }
        S(NEXT_REFRESH) += C(REFRESH_INTERVAL);
        if (!C(PIPELINED) && S(DRAM_CURSOR) > S(SCHED_CURSOR))
            S(SCHED_CURSOR) = S(DRAM_CURSOR);
    }
    return KERN_OK;
}

/* -- serve one request (smc._make_serve_flat) ----------------------------- */

static int64_t serve_one(K *k, int64_t bank, int64_t row, int64_t col,
                         int64_t is_wb, int64_t is_pref, int64_t core,
                         int64_t *release_out, int64_t *service_out)
{
    int64_t sched_start = S(SCHED_CURSOR);
    int64_t open = k->open_row[bank];
    int64_t cse;
    if (open == row) {
        S(T_HITS) += 1;
        cse = 0;
    } else if (open < 0) {
        S(T_MISSES) += 1;
        cse = 1;
    } else {
        S(T_CONFLICTS) += 1;
        cse = 2;
    }
    if (C(HAS_TRACKER)) {
        int64_t *tr = k->tracker + 6 * core;
        if (is_pref) {
            tr[2] += 1;        /* prefetches */
        } else {
            if (is_wb)
                tr[1] += 1;    /* writes */
            else
                tr[0] += 1;    /* reads */
            tr[3 + cse] += 1;  /* row_hits / row_misses / row_conflicts */
        }
    }
    int64_t p = 2 * cse + is_wb;
    int64_t sched_cycles = S(CHARGED) + k->plan_charge[p];
    S(CHARGED) = 0;
    S(S_SCHED_CYCLES) += sched_cycles;
    int64_t sched_ps = sched_cycles * C(MC_PERIOD);
    S(T_SCHED_PS) += sched_ps;
    int64_t start = sched_start + sched_ps;
    S(EXEC_ANCHOR) = start;
    if (S(DRAM_CURSOR) > start)
        start = S(DRAM_CURSOR);
    /* Earliest legal time of the leading command (inline two-term). */
    int64_t e, v;
    int64_t grp = k->group_of[bank];
    if (cse == 0) {            /* RD/WR on the open row */
        e = k->last_act[bank] + C(TRCD);
        v = S(MAX_CAS_ALL) + C(TCCD_S);
        if (v > e)
            e = v;
        v = k->gmax_cas[grp] + C(TCCD_L);
        if (v > e)
            e = v;
        if (!is_wb) {
            v = S(MAX_WRITE_END) + C(TWTR);
            if (v > e)
                e = v;
        }
    } else if (cse == 2) {     /* PRE (row conflict) */
        e = k->last_act[bank] + C(TRAS);
        v = k->last_read[bank] + C(TRTP);
        if (v > e)
            e = v;
        v = k->last_write_end[bank] + C(TWR);
        if (v > e)
            e = v;
    } else {                   /* ACT (closed bank) */
        e = flat_earliest(k, K_ACT, bank);
    }
    if (e > start)
        start = e;
    int64_t err;
    if (cse)
        err = issue_plan_k(k, p, bank, row, col, start);
    else
        err = issue_col_k(k, k->plan_kinds[3 * p], bank, col, start);
    if (err)
        return err;
    S(B_PROGRAMS) += 1;
    S(B_CYCLES) += k->plan_cycles[p];
    int64_t measured = k->plan_measured[p];
    int64_t dram_end = start + measured;
    S(DRAM_CURSOR) = dram_end;
    S(T_DRAM_BUSY) += measured;
    S(S_BATCHES) += 1;
    int64_t release_ps = dram_end + (is_wb ? C(LAT_WR) : C(LAT_RD))
        + C(RESP_BUS);
    int64_t pp = C(PROC_PERIOD);
    *release_out = (release_ps + pp - 1) / pp;   /* ceil, operands >= 0 */
    if (service_out)
        *service_out = dram_end - sched_start;
    if (is_wb)
        S(S_WRITES) += 1;
    else if (is_pref)
        S(S_PREFETCHES) += 1;
    else
        S(S_READS) += 1;
    S(CHARGED) = 0;            /* discarded rdback/enqueue charges */
    S(T_RESPONSES) += 1;
    if (C(PIPELINED)) {
        int64_t occupied = sched_start + C(OCCUPANCY);
        if (occupied > S(SCHED_CURSOR))
            S(SCHED_CURSOR) = occupied;
    } else {
        int64_t cursor = sched_start + sched_ps + k->plan_postflush[p];
        if (dram_end > cursor)
            cursor = dram_end;
        S(SCHED_CURSOR) = cursor;
    }
    return KERN_OK;
}

/* -- one critical-mode episode (smc._make_service_fast) -------------------
 *
 * ``arrivals`` must be sorted by tag (stable).  Covers the n == 1 shape
 * exactly: the singleton specialization differs only in when charges
 * accumulate, which is unobservable because charged_cycles is read only
 * at serve time (and zeroed by refresh episodes) -- the sums at every
 * read point are identical.
 */

static int64_t episode(K *k, int64_t n, const int64_t *tag,
                       const int64_t *addr, const int64_t *flags,
                       const int64_t *core, int64_t *release,
                       int64_t *service, int block_mode)
{
    /* counters.enter_critical() */
    if (!S(CNT_CRITICAL)) {
        S(CNT_CRITICAL) = 1;
        S(CNT_CRIT_ENTRIES) += 1;
        S(CNT_LOCKED_AT) = S(CNT_PROC);
    }
    S(CHARGED) += C(TOGGLE);   /* set_scheduling_state(True) */
    S(CRITICAL) = 1;
    int64_t pp = C(PROC_PERIOD), bus = C(REQ_BUS);
    int64_t now = tag[0] * pp + bus;
    if (S(SCHED_CURSOR) > now)
        now = S(SCHED_CURSOR);
    S(SCHED_CURSOR) = now;
    int64_t pos = 0, tcount = 0;
    int64_t *tbl = k->tbl;
    int frfcfs = (int)C(SCHED_FRFCFS);
    while (pos < n || tcount) {
        int64_t cursor = S(SCHED_CURSOR);
        while (pos < n) {
            int64_t arrival = tag[pos] * pp + bus;
            if (arrival <= cursor || !tcount) {
                S(T_REQUESTS) += 1;
                S(CHARGED) += C(TRANSFER_CHARGE);
                int64_t bank, row, col;
                int64_t err = decode_addr(k, addr[pos], &bank, &row, &col);
                if (err)
                    return err;
                int64_t *ent = tbl + TBL_STRIDE * tcount;
                ent[0] = S(ARRIVAL_COUNTER);
                S(ARRIVAL_COUNTER) += 1;
                ent[1] = pos;
                ent[2] = bank;
                ent[3] = row;
                ent[4] = col;
                ent[5] = flags[pos] & RF_WRITEBACK;
                tcount += 1;
                if (arrival > cursor)
                    cursor = arrival;
                pos += 1;
            } else {
                break;
            }
        }
        S(SCHED_CURSOR) = cursor;
        if (!tcount) {
            int64_t next_arrival = tag[pos] * pp + bus;
            if (next_arrival > cursor)
                S(SCHED_CURSOR) = next_arrival;
            continue;
        }
        if (C(REFRESH_ENABLED) && S(NEXT_REFRESH) <= S(SCHED_CURSOR)) {
            int64_t err = refresh_episode(k, block_mode);
            if (err)
                return err;
        }
        S(CHARGED) += C(DECISION_BASE) + C(DECISION_PER) * tcount;
        /* Scheduler select (schedulers.py select_flat; count == 1 pops
         * directly on both policies -- same entry either way). */
        int64_t pick = 0;
        if (tcount > 1 && frfcfs) {
            int64_t *first = tbl;
            int64_t *last = tbl + TBL_STRIDE * (tcount - 1);
            int64_t age_cap = C(AGE_CAP);
            if (age_cap >= 0 && last[0] - first[0] >= age_cap) {
                pick = 0;
            } else if (!first[5] && k->open_row[first[2]] == first[3]) {
                pick = 0;      /* oldest is a row-hit read: take it */
            } else {
                int64_t best_key = INT64_MAX;
                for (int64_t j = 0; j < tcount; j++) {
                    int64_t *ent = tbl + TBL_STRIDE * j;
                    int64_t key = ent[0];
                    if (ent[5])
                        key += (int64_t)2 << 60;
                    if (k->open_row[ent[2]] != ent[3])
                        key += (int64_t)1 << 60;
                    if (key < best_key) {
                        best_key = key;
                        pick = j;
                    }
                }
            }
        }
        int64_t *ent = tbl + TBL_STRIDE * pick;
        int64_t idx = ent[1];
        int64_t fl = flags[idx];
        int64_t rel, svc;
        int64_t err = serve_one(k, ent[2], ent[3], ent[4], ent[5],
                                (fl & RF_PREFETCH) ? 1 : 0,
                                core ? core[idx] : 0, &rel, &svc);
        if (err)
            return err;
        release[idx] = rel;
        if (service)
            service[idx] = svc;
        if (pick < tcount - 1)
            memmove(ent, ent + TBL_STRIDE,
                    (size_t)(tcount - 1 - pick) * TBL_STRIDE
                    * sizeof(int64_t));
        tcount -= 1;
    }
    S(CHARGED) += C(TOGGLE);   /* set_scheduling_state(False) */
    S(CRITICAL) = 0;
    /* _sync_mc_counter: advance-only (backwards would raise in Python). */
    int64_t point = S(SCHED_CURSOR) > S(DRAM_CURSOR)
        ? S(SCHED_CURSOR) : S(DRAM_CURSOR);
    int64_t cycle = point / pp;
    if (cycle > S(CNT_MC))
        S(CNT_MC) = cycle;
    /* counters.exit_critical() */
    S(CNT_CRITICAL) = 0;
    if (S(CNT_MC) > S(CNT_PROC)) {
        S(CNT_CATCHUP) += S(CNT_MC) - S(CNT_PROC);
        S(CNT_PROC) = S(CNT_MC);
    }
    return KERN_OK;
}

#undef CAND

/* -- block-mode gate (EventEngine run_trace block-mode closure) ----------- */

static int64_t gate(K *k, int64_t cycles, int done)
{
    /* counters.advance_processor(cycles) */
    if (cycles > S(CNT_PROC))
        S(CNT_PROC) = cycles;
    int64_t np = S(PEND_COUNT);
    if (!np) {
        if (done)
            return KERN_OK;
        return KERR_DEADLOCK;
    }
    if (!done)
        S(E_GATES) += 1;
    /* pend requests are created in non-decreasing tag order, so the
     * buffer already matches Python's stable sort-by-tag. */
    int64_t err = episode(k, np, k->pend_tag, k->pend_addr, k->pend_flags,
                          (const int64_t *)0, k->pend_release,
                          (int64_t *)0, 1);
    if (err)
        return err;
    S(E_BATCHED) += 1;
    S(E_RELEASES) += np;
    /* In Python the MLP window and the pending batch share request
     * objects, so the episode's release assignments are visible to the
     * replay loop; here the windows are separate arrays -- propagate by
     * rid.  Unreleased window entries can only be fills from this very
     * batch (every earlier gate released everything it held). */
    int64_t oc = S(OUT_COUNT);
    for (int64_t m = 0; m < oc; m++) {
        if (k->out_release[m] >= 0)
            continue;
        int64_t rid = k->out_rid[m];
        for (int64_t j = 0; j < np; j++) {
            if (k->pend_rid[j] == rid) {
                k->out_release[m] = k->pend_release[j];
                break;
            }
        }
    }
    for (int64_t j = 0; j < np; j++) {
        err = heap_push(k, k->pend_release[j], EV_RELEASE, k->pend_rid[j]);
        if (err)
            return err;
    }
    S(PEND_COUNT) = 0;
    if (done)
        return KERN_OK;
    /* Drain events the processor's jump already passed. */
    while (S(HEAP_LEN) && k->heap[0] <= cycles) {
        heap_pop_discard(k);
        S(E_SKIPPED) += 1;
    }
    return KERN_OK;
}

static int64_t pend_append(K *k, int64_t tag, int64_t addr, int64_t flags)
{
    int64_t count = S(PEND_COUNT);
    if (count >= S(PEND_CAP))
        return KERR_PEND_OVERFLOW;
    k->pend_tag[count] = tag;
    k->pend_addr[count] = addr;
    k->pend_flags[count] = flags;
    k->pend_rid[count] = S(NEXT_RID);
    S(NEXT_RID) += 1;
    k->pend_release[count] = -1;
    S(PEND_COUNT) = count + 1;
    return KERN_OK;
}

static int64_t lat_append(K *k, int64_t delta)
{
    int64_t count = S(LAT_COUNT);
    if (count >= S(LAT_CAP))
        return KERR_PEND_OVERFLOW;
    k->latencies[count] = delta > 0 ? delta : 0;
    S(LAT_COUNT) = count + 1;
    return KERN_OK;
}

/* -- resident cache filter (CacheHierarchy.access_block, cpu/cache.py) ---- */

/* L2 probe with LRU/dirty touch; returns the hit slot or -1. */
static int64_t l2_touch(K *k, int64_t s2, int64_t t2, int set_dirty)
{
    int64_t a2 = C(C2_ASSOC);
    int64_t *ts2 = k->c2_tags + s2 * a2;
    int64_t c2 = k->c2_count[s2];
    int64_t slot = k->c2_mru[s2];
    if (slot >= 0 && slot < c2 && ts2[slot] == t2) {
        ;
    } else {
        slot = -1;
        for (int64_t w = 0; w < c2; w++) {
            if (ts2[w] == t2) {
                slot = w;
                k->c2_mru[s2] = w;
                break;
            }
        }
    }
    if (slot < 0)
        return -1;
    k->c2_stamps[s2 * a2 + slot] = S(C2_TICK);
    S(C2_TICK) += 1;
    if (set_dirty)
        k->c2_dirty[s2 * a2 + slot] = 1;
    S(C2_HITS) += 1;
    return slot;
}

/* L2 fill of a known-absent line; logs an access-i writeback on dirty
 * eviction.  The wbidx/wbaddr buffers are driver-sized for the worst
 * case (two writebacks per access), so no bounds check is needed. */
static void l2_fill(K *k, int64_t s2, int64_t t2, int dirty, int64_t i,
                    int64_t *nwb)
{
    int64_t a2 = C(C2_ASSOC);
    int64_t base = s2 * a2;
    int64_t *ts2 = k->c2_tags + base;
    int64_t c2 = k->c2_count[s2];
    int64_t vslot;
    S(C2_MISSES) += 1;
    if (c2 >= a2) {
        int64_t *st2 = k->c2_stamps + base;
        int64_t best = st2[0];
        vslot = 0;
        for (int64_t w = 1; w < a2; w++) {
            if (st2[w] < best) {   /* first-minimum, like list.index(min) */
                best = st2[w];
                vslot = w;
            }
        }
        if (k->c2_dirty[base + vslot]) {
            S(C2_WB) += 1;
            k->blk_wbidx[*nwb] = i;
            k->blk_wbaddr[*nwb] = (ts2[vslot] * C(C2_SETS) + s2)
                * C(C_LINE_BYTES);
            *nwb += 1;
        }
        ts2[vslot] = t2;
        k->c2_dirty[base + vslot] = dirty;
        st2[vslot] = S(C2_TICK);
    } else {
        vslot = c2;
        ts2[vslot] = t2;
        k->c2_dirty[base + vslot] = dirty;
        k->c2_stamps[base + vslot] = S(C2_TICK);
        k->c2_count[s2] = c2 + 1;
    }
    S(C2_TICK) += 1;
    k->c2_mru[s2] = vslot;
}

/* The fused two-level block filter: fills blk_lat/blk_fill per access
 * and the blk_wbidx/blk_wbaddr pairs, bit-identical to the Python
 * access_block scan (same probe order, same first-min LRU eviction). */
static void filter_block(K *k)
{
    int64_t n = S(BLK_N);
    int64_t lb = C(C_LINE_BYTES);
    int64_t n1 = C(C1_SETS), a1 = C(C1_ASSOC);
    int64_t n2 = C(C2_SETS);
    int64_t hit1 = C(C1_HIT), hit12 = C(C2_HIT12);
    int64_t miss_lat = C(C_MISS_LAT);
    int64_t nwb = 0;
    for (int64_t i = 0; i < n; i++) {
        int64_t line = k->blk_addr[i] / lb;
        int is_write = (int)(k->blk_flags[i] & AF_WRITE);
        int64_t s1 = line % n1, t1 = line / n1;
        int64_t base1 = s1 * a1;
        int64_t *ts1 = k->c1_tags + base1;
        int64_t c1 = k->c1_count[s1];
        /* -- L1 probe (MRU slot first) ---------------------------------- */
        int64_t slot = k->c1_mru[s1];
        if (slot >= 0 && slot < c1 && ts1[slot] == t1) {
            ;
        } else {
            slot = -1;
            for (int64_t w = 0; w < c1; w++) {
                if (ts1[w] == t1) {
                    slot = w;
                    k->c1_mru[s1] = w;
                    break;
                }
            }
        }
        if (slot >= 0) {
            k->c1_stamps[base1 + slot] = S(C1_TICK);
            S(C1_TICK) += 1;
            if (is_write)
                k->c1_dirty[base1 + slot] = 1;
            S(C1_HITS) += 1;
            k->blk_lat[i] = hit1;
            k->blk_fill[i] = -1;
            continue;
        }
        S(C1_MISSES) += 1;
        /* -- L2 probe --------------------------------------------------- */
        int64_t s2 = line % n2, t2 = line / n2;
        if (l2_touch(k, s2, t2, 0) >= 0) {
            k->blk_lat[i] = hit12;
            k->blk_fill[i] = -1;
        } else {
            l2_fill(k, s2, t2, 0, i, &nwb);
            k->blk_lat[i] = miss_lat;
            k->blk_fill[i] = line * lb;
        }
        /* -- install into L1 (line known absent) ------------------------ */
        int64_t vslot;
        if (c1 >= a1) {
            int64_t *st1 = k->c1_stamps + base1;
            int64_t best = st1[0];
            vslot = 0;
            for (int64_t w = 1; w < a1; w++) {
                if (st1[w] < best) {
                    best = st1[w];
                    vslot = w;
                }
            }
            if (k->c1_dirty[base1 + vslot]) {
                S(C1_WB) += 1;
                int64_t victim = ts1[vslot] * n1 + s1;
                /* Dirty L1 victim folds into L2. */
                int64_t sv = victim % n2, tv = victim / n2;
                if (l2_touch(k, sv, tv, 1) < 0)
                    l2_fill(k, sv, tv, 1, i, &nwb);
            }
            ts1[vslot] = t1;
            k->c1_dirty[base1 + vslot] = is_write;
            k->c1_stamps[base1 + vslot] = S(C1_TICK);
        } else {
            vslot = c1;
            ts1[vslot] = t1;
            k->c1_dirty[base1 + vslot] = is_write;
            k->c1_stamps[base1 + vslot] = S(C1_TICK);
            k->c1_count[s1] = c1 + 1;
        }
        S(C1_TICK) += 1;
        k->c1_mru[s1] = vslot;
    }
    S(BLK_NWB) = nwb;
}

/* -- entry points --------------------------------------------------------- */

int64_t repro_abi_version(void)
{
    return 2;
}

int64_t repro_serve_batch(int64_t **p)
{
    K kk;
    K *k = &kk;
    bind(k, p);
    return episode(k, S(N_REQ), k->req_tag, k->req_addr, k->req_flags,
                   k->req_core, k->req_release, k->req_service, 0);
}

/* Replay one AccessBlock (Processor._execute_burst_blocks body) with the
 * engine's gate serviced in place. */
int64_t repro_run_block(int64_t **p)
{
    K kk;
    K *k = &kk;
    bind(k, p);
    if (S(HAS_CACHE))
        filter_block(k);   /* one call per block, so POS/WB_PTR are 0 */
    int64_t n = S(BLK_N), nwb = S(BLK_NWB);
    int64_t i = S(POS), wb_ptr = S(WB_PTR);
    int64_t cycles = S(P_CYCLES);
    int64_t accesses = S(P_ACCESSES), loads = S(P_LOADS);
    int64_t stores = S(P_STORES), compute = S(P_COMPUTE);
    int64_t stalls = S(P_STALLS);
    int64_t mlp = C(MLP), window = C(WINDOW);
    int64_t err = KERN_OK;
    while (i < n) {
        int64_t flag = k->blk_flags[i];
        int64_t oc = S(OUT_COUNT);
        if (oc && ((flag & AF_DEPENDENT) || oc >= mlp
                   || accesses - k->out_issue[0] >= window)) {
            if (flag & AF_DEPENDENT) {
                /* A dependent access consumes *every* outstanding fill. */
                int blocked = 0;
                for (int64_t j = 0; j < oc; j++) {
                    if (k->out_release[j] < 0) {
                        blocked = 1;
                        break;
                    }
                }
                if (blocked) {
                    S(P_CYCLES) = cycles;
                    S(P_STALLS) = stalls;
                    err = gate(k, cycles, 0);
                    if (err)
                        break;
                    continue;
                }
                for (int64_t j = 0; j < oc; j++) {
                    int64_t rel = k->out_release[j];
                    if (rel > cycles) {
                        stalls += rel - cycles;
                        cycles = rel;
                    }
                    err = lat_append(k, rel - k->out_tag[j]);
                    if (err)
                        break;
                }
                if (err)
                    break;
                S(OUT_COUNT) = 0;
            } else {
                int64_t rel = k->out_release[0];
                if (rel < 0) {
                    S(P_CYCLES) = cycles;
                    S(P_STALLS) = stalls;
                    err = gate(k, cycles, 0);
                    if (err)
                        break;
                    continue;
                }
                if (rel > cycles) {
                    stalls += rel - cycles;
                    cycles = rel;
                }
                err = lat_append(k, rel - k->out_tag[0]);
                if (err)
                    break;
                memmove(k->out_tag, k->out_tag + 1,
                        (size_t)(oc - 1) * sizeof(int64_t));
                memmove(k->out_issue, k->out_issue + 1,
                        (size_t)(oc - 1) * sizeof(int64_t));
                memmove(k->out_release, k->out_release + 1,
                        (size_t)(oc - 1) * sizeof(int64_t));
                memmove(k->out_rid, k->out_rid + 1,
                        (size_t)(oc - 1) * sizeof(int64_t));
                S(OUT_COUNT) = oc - 1;
            }
            continue;          /* re-check the same access */
        }
        /* Execute the access. */
        accesses += 1;
        if (flag & AF_WRITE)
            stores += 1;
        else
            loads += 1;
        int64_t gap = k->blk_gap[i];
        if (gap) {
            cycles += gap;
            compute += gap;
        }
        cycles += k->blk_lat[i];
        while (wb_ptr < nwb && k->blk_wbidx[wb_ptr] == i) {
            S(P_WB_REQ) += 1;
            err = pend_append(k, cycles, k->blk_wbaddr[wb_ptr],
                              RF_WRITEBACK);
            if (err)
                break;
            wb_ptr += 1;
        }
        if (err)
            break;
        int64_t fill = k->blk_fill[i];
        if (fill >= 0) {
            S(P_LLC_MISS) += 1;
            int64_t rid = S(NEXT_RID);   /* pend_append advances it */
            err = pend_append(k, cycles, fill, 0);
            if (err)
                break;
            int64_t c = S(OUT_COUNT);    /* < mlp here, cap >= mlp + 1 */
            k->out_tag[c] = cycles;
            k->out_issue[c] = accesses;
            k->out_release[c] = -1;
            k->out_rid[c] = rid;
            S(OUT_COUNT) = c + 1;
        }
        i += 1;
    }
    S(POS) = i;
    S(WB_PTR) = wb_ptr;
    S(P_CYCLES) = cycles;
    S(P_ACCESSES) = accesses;
    S(P_LOADS) = loads;
    S(P_STORES) = stores;
    S(P_COMPUTE) = compute;
    S(P_STALLS) = stalls;
    return err;
}

/* End of trace: drain the MLP window (gating until every outstanding
 * fill has a release), then run the final done-gate. */
int64_t repro_finish_trace(int64_t **p)
{
    K kk;
    K *k = &kk;
    bind(k, p);
    for (;;) {
        int64_t oc = S(OUT_COUNT);
        int blocked = 0;
        for (int64_t j = 0; j < oc; j++) {
            if (k->out_release[j] < 0) {
                blocked = 1;
                break;
            }
        }
        if (!blocked)
            break;
        int64_t err = gate(k, S(P_CYCLES), 0);
        if (err)
            return err;
    }
    int64_t oc = S(OUT_COUNT);
    int64_t cycles = S(P_CYCLES), stalls = S(P_STALLS);
    for (int64_t j = 0; j < oc; j++) {
        int64_t rel = k->out_release[j];
        if (rel > cycles) {
            stalls += rel - cycles;
            cycles = rel;
        }
        int64_t err = lat_append(k, rel - k->out_tag[j]);
        if (err)
            return err;
    }
    S(OUT_COUNT) = 0;
    S(P_CYCLES) = cycles;
    S(P_STALLS) = stalls;
    S(DONE) = 1;
    return gate(k, cycles, 1);
}
