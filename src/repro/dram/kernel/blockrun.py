"""Whole-trace block replay inside the compiled kernel.

The batch entry point (:meth:`~repro.core.smc.SMC.service_pending_kernel`)
still marshals the controller state across the FFI boundary once per
gate; on dependent-load streams the gates are singleton batches and the
marshalling dominates.  This driver removes it: for an eligible
single-core block trace the *entire* replay — the
``Processor._execute_burst_blocks`` loop, the engine's gate closure, the
critical-mode episodes, refresh interleave, and the event-queue
bookkeeping — runs resident in C.  Python is re-entered once per
:class:`~repro.cpu.blocks.AccessBlock` (thousands of accesses) only to
run the cache model and to flush logs, and the controller objects are
loaded/stored exactly once per trace.

Eligibility is the batch kernel's structural gate plus the block-replay
extras (compiled backend, no prefetcher/channel hook, clean MLP window);
any miss records ``smc.kernel_fallback_reason`` and the caller falls
back to the Python gate closure — bit-identical either way.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.events import EventKind
from repro.dram.kernel.state import (
    KERN_OK, KERR_DEADLOCK, KERR_DECODE_RANGE, Cfg, St,
    TBL_STRIDE, VIOL_STRIDE, WRHIT_STRIDE,
)

#: Event-heap headroom (entries) per block on top of the worst-case
#: release pushes: covers every refresh deadline a block could span.
_HEAP_SLACK = 4096


def _arr(n: int):
    return np.zeros(n, dtype=np.int64)


def _grow_keep(arr, need: int):
    """``arr`` grown to at least ``need`` slots, contents preserved."""
    if arr.shape[0] >= need:
        return arr
    new = _arr(max(64, 2 * need))
    new[:arr.shape[0]] = arr
    return new


def _load_cache(ks, hier) -> None:
    """Flatten the two cache levels into the kernel's way arrays.

    Padded ``[set * assoc]`` layout with a live-way count per set; slots
    past the count are never read by the kernel, so they stay stale.
    """
    cfg = ks.cfg
    st = ks.st
    l1, l2 = hier.l1, hier.l2
    cfg[Cfg.C1_SETS] = l1.num_sets
    cfg[Cfg.C1_ASSOC] = l1.assoc
    cfg[Cfg.C1_HIT] = l1.hit_latency
    cfg[Cfg.C2_SETS] = l2.num_sets
    cfg[Cfg.C2_ASSOC] = l2.assoc
    cfg[Cfg.C2_HIT12] = l1.hit_latency + l2.hit_latency
    cfg[Cfg.C_MISS_LAT] = l1.hit_latency + hier.memory_fill_latency
    cfg[Cfg.C_LINE_BYTES] = hier.line_bytes
    for prefix, level, tick_slot in (("c1", l1, St.C1_TICK),
                                     ("c2", l2, St.C2_TICK)):
        sets, assoc = level.num_sets, level.assoc
        if getattr(ks, prefix + "_tags").shape[0] != sets * assoc:
            setattr(ks, prefix + "_tags", _arr(sets * assoc))
            setattr(ks, prefix + "_dirty", _arr(sets * assoc))
            setattr(ks, prefix + "_stamps", _arr(sets * assoc))
            setattr(ks, prefix + "_count", _arr(sets))
            setattr(ks, prefix + "_mru", _arr(sets))
        tags = getattr(ks, prefix + "_tags")
        dirty = getattr(ks, prefix + "_dirty")
        stamps = getattr(ks, prefix + "_stamps")
        count = getattr(ks, prefix + "_count")
        mru = getattr(ks, prefix + "_mru")
        for s, ways in enumerate(level._tags):
            c = len(ways)
            if c:
                base = s * assoc
                tags[base:base + c] = ways
                dirty[base:base + c] = level._dirty[s]
                stamps[base:base + c] = level._stamps[s]
            count[s] = c
        mru[:] = level._mru
        st[tick_slot] = level._tick
    st[St.C1_HITS] = l1.stats.hits
    st[St.C1_MISSES] = l1.stats.misses
    st[St.C1_WB] = l1.stats.writebacks
    st[St.C2_HITS] = l2.stats.hits
    st[St.C2_MISSES] = l2.stats.misses
    st[St.C2_WB] = l2.stats.writebacks
    ks._ptr_table = None


def _store_cache(ks, hier) -> None:
    """Write the kernel's way arrays back into the cache-level lists."""
    st = ks.st
    l1, l2 = hier.l1, hier.l2
    for prefix, level, tick_slot in (("c1", l1, St.C1_TICK),
                                     ("c2", l2, St.C2_TICK)):
        assoc = level.assoc
        tags = getattr(ks, prefix + "_tags").tolist()
        dirty = getattr(ks, prefix + "_dirty").tolist()
        stamps = getattr(ks, prefix + "_stamps").tolist()
        count = getattr(ks, prefix + "_count").tolist()
        mru = getattr(ks, prefix + "_mru").tolist()
        for s in range(level.num_sets):
            c = count[s]
            base = s * assoc
            level._tags[s] = tags[base:base + c]
            level._dirty[s] = [bool(d) for d in dirty[base:base + c]]
            level._stamps[s] = stamps[base:base + c]
        level._mru[:] = mru
        level._tick = int(st[tick_slot])
    l1.stats.hits = int(st[St.C1_HITS])
    l1.stats.misses = int(st[St.C1_MISSES])
    l1.stats.writebacks = int(st[St.C1_WB])
    l2.stats.hits = int(st[St.C2_HITS])
    l2.stats.misses = int(st[St.C2_MISSES])
    l2.stats.writebacks = int(st[St.C2_WB])


def _eligible(proc, smc) -> str | None:
    """Why this trace cannot replay in the kernel, or ``None``."""
    if not hasattr(smc, "_kernel_resolve"):
        return "multi-channel topology"
    ks = smc._kernel_state if smc._kernel_resolved else smc._kernel_resolve()
    if ks is None:
        return smc.kernel_fallback_reason
    if getattr(smc._kernel_backend, "run_block", None) is None:
        return "pure-Python backend (block replay needs the compiled kernel)"
    if smc.serve_hook is not None:
        return "technique episode (serve hook)"
    if smc.tile.has_requests or len(smc.api.program):
        return "staged tile state pending"
    if proc.prefetcher is not None:
        return "stream prefetcher installed"
    if proc.channel_hook is not None:
        return "multi-channel request routing"
    if proc.outstanding:
        return "MLP window not drained at trace start"
    return None


def run_gated_kernel(engine, session, proc, smc) -> bool:
    """Replay ``proc``'s fed block trace to completion in the kernel.

    Returns ``False`` (nothing touched, reason recorded) when
    ineligible; the caller then runs the Python gate closure.  On
    ``True`` the processor is done and every side effect of the Python
    path — controller state, stats, event queue, request latencies —
    has been applied.
    """
    reason = _eligible(proc, smc)
    if reason is not None:
        if hasattr(smc, "kernel_fallback_reason"):
            smc.kernel_fallback_reason = reason
        return False
    ks = smc._kernel_state
    backend = smc._kernel_backend
    st = ks.st
    cfg = ks.cfg
    mlp = int(cfg[Cfg.MLP])

    if len(smc._device._rows) != int(st[St.NMAT]):
        ks.refresh_materialized()
    ks.load()

    # -- trace-level slots the marshaller does not own -----------------------
    if ks.out_tag.shape[0] < mlp + 2:
        for name in ("out_tag", "out_issue", "out_release", "out_rid"):
            setattr(ks, name, _arr(mlp + 2))
        ks._ptr_table = None
    queue = engine.queue
    heap_len = len(queue._heap)
    if ks.heap.shape[0] < 4 * (heap_len + _HEAP_SLACK):
        ks.heap = _arr(4 * (heap_len + 2 * _HEAP_SLACK))
        ks._ptr_table = None
    heap = ks.heap
    for i, (time, seq, kind, payload) in enumerate(queue._heap):
        base = 4 * i
        heap[base] = time
        heap[base + 1] = seq
        heap[base + 2] = int(kind)
        heap[base + 3] = payload
    st[St.HEAP_LEN] = heap_len
    st[St.QSEQ] = queue._seq
    st[St.PEND_COUNT] = 0
    st[St.OUT_COUNT] = 0
    st[St.LAT_COUNT] = 0
    st[St.DONE] = 0
    st[St.POS] = 0
    st[St.WB_PTR] = 0
    for slot in (St.E_GATES, St.E_RELEASES, St.E_REFRESHES, St.E_BATCHED,
                 St.E_SKIPPED):
        st[slot] = 0
    # The consumed id becomes the first kernel-issued rid; the counter is
    # re-anchored from NEXT_RID after the run, so numbering is seamless.
    st[St.NEXT_RID] = next(proc._rid)
    stats = proc.stats
    st[St.P_CYCLES] = proc.cycles
    st[St.P_ACCESSES] = stats.accesses
    st[St.P_LOADS] = stats.loads
    st[St.P_STORES] = stats.stores
    st[St.P_COMPUTE] = stats.compute_cycles
    st[St.P_STALLS] = stats.stall_cycles
    st[St.P_LLC_MISS] = stats.llc_miss_requests
    st[St.P_WB_REQ] = stats.writeback_requests

    # Resident cache filter: the standard two-level hierarchy runs
    # inside run_block itself (no Python cache scan, no decode-memo
    # prime — the kernel decodes directly).  A subclassed hierarchy
    # keeps the Python filter per block, as does a strict address map
    # whose trace actually goes out of range: the Python path names
    # the prime batch's worst offender, not the first, so the error
    # case must replay through it.  In-range traces cannot differ —
    # a strict cache never holds an out-of-range line (its fill would
    # have raised at install time) — so one max/min scan settles it.
    from repro.cpu.cache import CacheHierarchy
    has_cache = type(proc.hierarchy) is CacheHierarchy
    blocks = proc._blocks
    if has_cache and smc._mapper.strict:
        if not isinstance(blocks, (list, tuple)):
            blocks = list(blocks)   # the feed hands over a generator
            proc._blocks = blocks
        total = smc._mapper._total_bytes
        for block in blocks:
            if block.addr and not 0 <= min(block.addr) <= max(
                    block.addr) < total:
                has_cache = False
                break
    st[St.HAS_CACHE] = 1 if has_cache else 0
    if has_cache:
        _load_cache(ks, proc.hierarchy)

    run_block = backend.run_block
    finish_trace = backend.finish_trace
    access_block = proc.hierarchy.access_block
    latencies = stats.request_latencies

    def flush_logs() -> None:
        count = int(st[St.LAT_COUNT])
        if count:
            latencies.extend(ks.latencies[:count].tolist())
            st[St.LAT_COUNT] = 0
        if int(st[St.VIOL_COUNT]):
            ks.scatter_violations()
        if int(st[St.WRHIT_COUNT]):
            ks.apply_wr_hits()

    err = KERN_OK
    for block in blocks:
        ks.blk_flags = np.asarray(block.flags, dtype=np.int64)
        ks.blk_gap = np.asarray(block.gap, dtype=np.int64)
        n = ks.blk_flags.shape[0]
        if has_cache:
            ks.blk_addr = np.asarray(block.addr, dtype=np.int64)
            if ks.blk_lat.shape[0] < n:
                ks.blk_lat = _arr(n)
                ks.blk_fill = _arr(n)
            # Worst case two writebacks per access (demand L2 eviction
            # plus the dirty-L1-victim fold's own eviction).
            if ks.blk_wbidx.shape[0] < 2 * n + 2:
                ks.blk_wbidx = _arr(2 * n + 2)
                ks.blk_wbaddr = _arr(2 * n + 2)
            nwb = 2 * n + 2
        else:
            traffic = access_block(block.addr, block.flags)
            hook = proc.prime_hook
            if hook is not None and (traffic.n_fills or traffic.wb_addr):
                hook(traffic.fill_addr, traffic.wb_addr)
            ks.blk_lat = np.asarray(traffic.latency, dtype=np.int64)
            ks.blk_fill = np.asarray(traffic.fill_addr, dtype=np.int64)
            ks.blk_wbidx = np.asarray(traffic.wb_index, dtype=np.int64)
            ks.blk_wbaddr = np.asarray(traffic.wb_addr, dtype=np.int64)
            nwb = ks.blk_wbidx.shape[0]
        ks._ptr_table = None
        # Worst-case capacity for this block (overflow inside the kernel
        # is a hard error, never a silent drop).  Logs were flushed after
        # the previous call, so the ensure_* replacements are safe; the
        # pend buffer and heap carry live state and grow preservingly.
        carried = int(st[St.PEND_COUNT])
        created = carried + n + nwb
        if ks.pend_tag.shape[0] < created + 8:
            for name in ("pend_tag", "pend_addr", "pend_flags", "pend_rid",
                         "pend_release"):
                setattr(ks, name, _grow_keep(getattr(ks, name), created + 8))
            ks._ptr_table = None
        pend_cap = ks.pend_tag.shape[0]
        ks.ensure_table(pend_cap)
        ks.ensure_viol(3 * (created + mlp) + 256)
        ks.ensure_wrhit(created + mlp + 64)
        if ks.latencies.shape[0] < n + mlp + 8:
            ks.latencies = _arr(2 * (n + mlp + 8))
            ks._ptr_table = None
        heap_need = 4 * (int(st[St.HEAP_LEN]) + created + _HEAP_SLACK)
        if ks.heap.shape[0] < heap_need:
            ks.heap = _grow_keep(ks.heap, heap_need)
            ks._ptr_table = None
        st[St.PEND_CAP] = pend_cap
        st[St.TBL_CAP] = ks.tbl.shape[0] // TBL_STRIDE
        st[St.VIOL_CAP] = ks.viol.shape[0] // VIOL_STRIDE
        st[St.WRHIT_CAP] = ks.wrhit.shape[0] // WRHIT_STRIDE
        st[St.LAT_CAP] = ks.latencies.shape[0]
        st[St.HEAP_CAP] = ks.heap.shape[0] // 4
        st[St.BLK_N] = n
        st[St.BLK_NWB] = nwb
        st[St.POS] = 0
        st[St.WB_PTR] = 0
        err = int(run_block(ks.pointer_table()))
        flush_logs()
        if err != KERN_OK:
            break
    if err == KERN_OK:
        err = int(finish_trace(ks.pointer_table()))
        flush_logs()

    # -- write everything back (best effort even on error) -------------------
    ks.store()
    if has_cache:
        _store_cache(ks, proc.hierarchy)
    estats = engine.stats
    estats.gates += int(st[St.E_GATES])
    estats.releases += int(st[St.E_RELEASES])
    estats.refreshes += int(st[St.E_REFRESHES])
    estats.batched_episodes += int(st[St.E_BATCHED])
    estats.events_skipped += int(st[St.E_SKIPPED])
    heap_len = int(st[St.HEAP_LEN])
    heap = ks.heap
    queue._heap = [
        (int(heap[4 * i]), int(heap[4 * i + 1]),
         EventKind(int(heap[4 * i + 2])), int(heap[4 * i + 3]))
        for i in range(heap_len)
    ]
    queue._seq = int(st[St.QSEQ])
    proc.cycles = int(st[St.P_CYCLES])
    stats.accesses = int(st[St.P_ACCESSES])
    stats.loads = int(st[St.P_LOADS])
    stats.stores = int(st[St.P_STORES])
    stats.compute_cycles = int(st[St.P_COMPUTE])
    stats.stall_cycles = int(st[St.P_STALLS])
    stats.llc_miss_requests = int(st[St.P_LLC_MISS])
    stats.writeback_requests = int(st[St.P_WB_REQ])
    proc._rid = itertools.count(int(st[St.NEXT_RID]))
    proc._cur = None
    proc._pos = int(st[St.POS])
    proc._wb_ptr = int(st[St.WB_PTR])
    proc.outstanding.clear()

    if err == KERR_DEADLOCK:
        from repro.core.engine import EmulationDeadlock
        raise EmulationDeadlock(
            "processor blocked with no pending memory requests")
    if err == KERR_DECODE_RANGE:
        smc._mapper._check_range(int(st[St.ERR_ADDR]))
        raise AssertionError("decode error did not reproduce")
    if err != KERN_OK:
        raise RuntimeError(f"block kernel failed with error {err}")
    proc._done = True
    return True
