"""Memory-access trace records.

Workloads are lazy generators of :class:`Access` tuples so multi-million
access kernels never materialize in memory.  Each access carries:

``addr``
    physical byte address;
``flags``
    bit 0 — write, bit 1 — *dependent* (the access cannot issue until all
    earlier outstanding misses resolve; pointer chases set this);
``gap``
    compute cycles the core spends before this access (emulated processor
    cycles at the *modeled* frequency — time scaling maps them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, NamedTuple

FLAG_WRITE = 1
FLAG_DEPENDENT = 2


class Access(NamedTuple):
    """One memory access in a workload trace."""

    addr: int
    flags: int
    gap: int

    @property
    def is_write(self) -> bool:
        return bool(self.flags & FLAG_WRITE)

    @property
    def is_dependent(self) -> bool:
        return bool(self.flags & FLAG_DEPENDENT)


def load(addr: int, gap: int = 0, dependent: bool = False) -> Access:
    """Build a read access."""
    return Access(addr, FLAG_DEPENDENT if dependent else 0, gap)


def store(addr: int, gap: int = 0) -> Access:
    """Build a write access."""
    return Access(addr, FLAG_WRITE, gap)


Trace = Iterable[Access]


@dataclass
class TraceStats:
    """Summary statistics of a trace (used to sanity-check workloads)."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    compute_cycles: int = 0
    unique_lines: set = field(default_factory=set)
    line_bytes: int = 64

    def observe(self, access: Access) -> None:
        self.accesses += 1
        if access.flags & FLAG_WRITE:
            self.writes += 1
        else:
            self.reads += 1
        self.compute_cycles += access.gap
        self.unique_lines.add(access.addr // self.line_bytes)

    @property
    def footprint_bytes(self) -> int:
        return len(self.unique_lines) * self.line_bytes


def summarize(trace: Trace, line_bytes: int = 64) -> TraceStats:
    """Consume a trace and return its statistics."""
    stats = TraceStats(line_bytes=line_bytes)
    for access in trace:
        stats.observe(access)
    return stats


def take(trace: Trace, n: int) -> Iterator[Access]:
    """First ``n`` accesses of a trace (partial-workload simulation)."""
    for i, access in enumerate(trace):
        if i >= n:
            return
        yield access
