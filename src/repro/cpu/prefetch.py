"""Stream prefetcher at the core boundary (beyond-paper extension).

A classic unit-stride stream prefetcher sitting next to the last-level
cache: it observes every demand LLC-miss fill address, detects
ascending/descending line streams within an aligned 4 KiB region, and
issues prefetch-tagged :class:`~repro.cpu.processor.MemoryRequest` fills
``distance`` lines ahead of the demand stream, ``degree`` lines per
trigger.

Prefetches ride the normal request path — they occupy the request table,
consume DRAM bandwidth, and perturb row-buffer locality — but they never
enter the processor's MLP window (the core does not wait on them) and
the controller counts them apart from demand traffic
(``SmcStats.serviced_prefetches``), so demand-attribution statistics are
unchanged.  The cache model is tag-only, so *usefulness* is accounted at
the prefetcher: a demand miss to a previously prefetched line counts as
covered (the emulated timeline still pays the fill — accuracy/coverage
are observability stats, not a timing model of a prefetch buffer).

Enable per core via ``Session.add_core(prefetch=...)`` /
``Session.set_prefetcher``, or for every core with the
``REPRO_PREFETCH`` environment knob (``"1"`` for the defaults, or
``"degree:distance"``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

_FALSE = ("0", "false", "no", "off")

#: 4 KiB regions: the classic stream-table granularity (streams are
#: page-bounded, like hardware prefetchers trained on physical addresses).
_REGION_BYTES = 4096


@dataclass(frozen=True)
class PrefetchConfig:
    """Per-core stream-prefetcher parameters."""

    #: Lines issued per confirmed trigger.
    degree: int = 2
    #: How many lines ahead of the demand miss the window starts.
    distance: int = 4
    #: Concurrently tracked regions (oldest is evicted beyond this).
    streams: int = 16

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError("degree must be >= 1")
        if self.distance < 1:
            raise ValueError("distance must be >= 1")
        if self.streams < 1:
            raise ValueError("streams must be >= 1")


@dataclass
class PrefetchStats:
    """Accuracy/coverage accounting for one core's prefetcher."""

    issued: int = 0
    #: Demand misses that hit a previously prefetched line.
    useful: int = 0
    demand_misses: int = 0

    @property
    def accuracy(self) -> float:
        """useful / issued — how many prefetches the demand stream used."""
        return self.useful / self.issued if self.issued else 0.0

    @property
    def coverage(self) -> float:
        """useful / demand misses — how much demand traffic was prefetched."""
        return self.useful / self.demand_misses if self.demand_misses else 0.0


@dataclass(slots=True)
class _Stream:
    """One tracked region's training state."""

    last_line: int
    stride: int = 0          # 0 = untrained; +1/-1 once a unit stride is seen
    confirmed: bool = False  # two consecutive equal unit strides


class StreamPrefetcher:
    """Deterministic unit-stride stream detector over LLC-miss fills.

    ``line_bytes`` must be a power of two (the cache line size);
    ``limit`` bounds prefetch addresses to the mapper's decodable range
    (the address mapper raises on out-of-range decodes by default).
    """

    def __init__(self, config: PrefetchConfig, line_bytes: int,
                 limit: int) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a positive power of two")
        self.config = config
        self.stats = PrefetchStats()
        self._line_shift = line_bytes.bit_length() - 1
        self._region_shift = max(0, _REGION_BYTES.bit_length() - 1
                                 - self._line_shift)
        self._limit_line = limit >> self._line_shift
        self._streams: dict[int, _Stream] = {}
        #: Prefetched but not yet demanded line indices.
        self._issued_lines: set[int] = set()

    def observe(self, fill_addr: int) -> list[int]:
        """Train on one demand LLC-miss fill; return addresses to prefetch.

        Called by the processor for every demand fill it issues, in
        issue order, on both execution paths — determinism (and the
        fastpath bit-identity contract) follows from that call
        discipline.
        """
        stats = self.stats
        stats.demand_misses += 1
        line = fill_addr >> self._line_shift
        issued = self._issued_lines
        if line in issued:
            issued.discard(line)
            stats.useful += 1
        region = line >> self._region_shift
        streams = self._streams
        stream = streams.get(region)
        if stream is None:
            if len(streams) >= self.config.streams:
                # Evict the oldest tracked region (dict insertion order).
                del streams[next(iter(streams))]
            streams[region] = _Stream(last_line=line)
            return []
        stride = line - stream.last_line
        stream.last_line = line
        if stride != 1 and stride != -1:
            stream.stride = 0
            stream.confirmed = False
            return []
        if stride != stream.stride:
            stream.stride = stride
            stream.confirmed = False
            return []
        stream.confirmed = True
        config = self.config
        base = line + stride * config.distance
        limit_line = self._limit_line
        out: list[int] = []
        for k in range(config.degree):
            target = base + stride * k
            if target < 0 or target >= limit_line or target in issued:
                continue
            issued.add(target)
            stats.issued += 1
            out.append(target << self._line_shift)
        return out


def prefetch_from_env() -> PrefetchConfig | None:
    """The ``REPRO_PREFETCH`` knob: off (default), ``1``, or ``deg:dist``.

    Read at session/core construction time, like every ``REPRO_*`` knob.
    """
    value = os.environ.get("REPRO_PREFETCH", "").strip().lower()
    if not value or value in _FALSE:
        return None
    if value in ("1", "true", "yes", "on"):
        return PrefetchConfig()
    parts = value.split(":")
    try:
        degree = int(parts[0])
        distance = int(parts[1]) if len(parts) > 1 else 4
    except ValueError:
        raise ValueError(
            f"REPRO_PREFETCH must be 0/1 or 'degree:distance', "
            f"got {value!r}") from None
    return PrefetchConfig(degree=degree, distance=distance)
