"""Set-associative cache hierarchy.

Tag-only, write-back, write-allocate caches with true LRU replacement.
The end-to-end evaluation needs the caches for *filtering* (which
accesses reach DRAM) and for the per-level latency profile of Figure 8;
data contents live in the DRAM device model only.

The hierarchy exposes a single :meth:`CacheHierarchy.access` that returns
the hit-path latency plus any memory traffic (a blocking line fill and/or
posted writebacks), a :meth:`CacheHierarchy.flush_line` implementing
the memory-mapped CLFLUSH register of Section 7.1, and the array-native
:meth:`CacheHierarchy.access_block` that filters a whole
:class:`~repro.cpu.blocks.AccessBlock` per call.

Storage layout: each set holds parallel ``tags``/``dirty``/``stamps``
arrays; recency is an integer LRU stamp (a global monotonically
increasing tick) instead of the seed model's MRU-ordered list, so a
probe is a C-speed ``list`` scan and eviction is an ``argmin`` over the
stamps.  The two layouts are behaviorally identical (stamp order *is*
recency order); :class:`ReferenceCache`/:class:`ReferenceCacheHierarchy`
below preserve the original list-based implementation verbatim as the
oracle the randomized differential tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class CacheStats:
    """Per-level hit/miss/writeback counters."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class Cache:
    """One cache level.  Addresses are *line* addresses (byte // line)."""

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_bytes: int, hit_latency: int) -> None:
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by"
                f" assoc*line ({assoc}x{line_bytes})")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.num_sets = size_bytes // (assoc * line_bytes)
        # Per-set parallel arrays (grow up to ``assoc`` entries).
        self._tags: list[list[int]] = [[] for _ in range(self.num_sets)]
        self._dirty: list[list[bool]] = [[] for _ in range(self.num_sets)]
        self._stamps: list[list[int]] = [[] for _ in range(self.num_sets)]
        # Most-recently-touched slot per set (-1 = unknown): repeated
        # touches to the hottest line skip the way scan entirely.
        self._mru: list[int] = [-1] * self.num_sets
        self._tick = 0
        self.stats = CacheStats()

    # -- per-access API (set/tag split hoisted into the _st variants) -------

    def split(self, line_addr: int) -> tuple[int, int]:
        """(set index, tag) of a line address — computed once per access.

        The split is plain divmod so it is stable for non-power-of-two
        set counts too: ``tag * num_sets + set_index`` always round-trips
        to the original line address.
        """
        return line_addr % self.num_sets, line_addr // self.num_sets

    def lookup(self, line_addr: int, is_write: bool) -> bool:
        """Probe for a line; on hit, update LRU and dirty bit."""
        set_index, tag = self.split(line_addr)
        return self.lookup_st(set_index, tag, is_write)

    def lookup_st(self, set_index: int, tag: int, is_write: bool) -> bool:
        """:meth:`lookup` with the set/tag split already computed."""
        tags = self._tags[set_index]
        mru = self._mru[set_index]
        if mru >= 0 and mru < len(tags) and tags[mru] == tag:
            slot = mru
        elif tag in tags:
            slot = tags.index(tag)
            self._mru[set_index] = slot
        else:
            self.stats.misses += 1
            return False
        self._stamps[set_index][slot] = self._tick
        self._tick += 1
        if is_write:
            self._dirty[set_index][slot] = True
        self.stats.hits += 1
        return True

    def fill(self, line_addr: int, dirty: bool) -> int | None:
        """Install a line; return the evicted dirty line address, if any."""
        set_index, tag = self.split(line_addr)
        tags = self._tags[set_index]
        if tag in tags:  # already present (e.g. racing writeback)
            slot = tags.index(tag)
            self._stamps[set_index][slot] = self._tick
            self._tick += 1
            self._dirty[set_index][slot] = self._dirty[set_index][slot] or dirty
            self._mru[set_index] = slot
            return None
        return self.fill_absent_st(set_index, tag, dirty)

    def fill_absent_st(self, set_index: int, tag: int,
                       dirty: bool) -> int | None:
        """Install a line known to be absent (a probe just missed it)."""
        tags = self._tags[set_index]
        victim_line = None
        if len(tags) >= self.assoc:
            stamps = self._stamps[set_index]
            slot = stamps.index(min(stamps))
            if self._dirty[set_index][slot]:
                victim_line = tags[slot] * self.num_sets + set_index
                self.stats.writebacks += 1
            tags[slot] = tag
            self._dirty[set_index][slot] = dirty
            stamps[slot] = self._tick
        else:
            slot = len(tags)
            tags.append(tag)
            self._dirty[set_index].append(dirty)
            self._stamps[set_index].append(self._tick)
        self._tick += 1
        self._mru[set_index] = slot
        return victim_line

    def evict(self, line_addr: int) -> tuple[bool, bool]:
        """Remove a line if present; return (was_present, was_dirty)."""
        set_index, tag = self.split(line_addr)
        tags = self._tags[set_index]
        if tag not in tags:
            return False, False
        slot = tags.index(tag)
        tags.pop(slot)
        was_dirty = self._dirty[set_index].pop(slot)
        self._stamps[set_index].pop(slot)
        self._mru[set_index] = -1
        return True, was_dirty

    def contains(self, line_addr: int) -> bool:
        set_index, tag = self.split(line_addr)
        return tag in self._tags[set_index]

    def resident_lines(self) -> int:
        return sum(len(tags) for tags in self._tags)


@dataclass
class MemoryTraffic:
    """DRAM-bound traffic produced by one cache-hierarchy access."""

    latency: int                       # hit-path latency in core cycles
    fill_line: int | None = None       # blocking line fill (line address)
    writebacks: list[int] = field(default_factory=list)  # posted writes

    @property
    def is_llc_miss(self) -> bool:
        return self.fill_line is not None


class BlockTraffic:
    """DRAM-bound traffic of one :class:`~repro.cpu.blocks.AccessBlock`.

    Per-access results in compact parallel arrays: ``latency[i]`` is the
    hit-path latency of access ``i`` and ``fill_addr[i]`` its blocking
    line-fill byte address (-1 = served by the caches).  Posted
    writebacks are sparse, so they come as ordered ``(wb_index[k],
    wb_addr[k])`` pairs — ``wb_index`` is the access index the writeback
    was produced by, non-decreasing.
    """

    __slots__ = ("latency", "fill_addr", "wb_index", "wb_addr", "n_fills")

    def __init__(self, latency: list[int], fill_addr: list[int],
                 wb_index: list[int], wb_addr: list[int],
                 n_fills: int) -> None:
        self.latency = latency
        self.fill_addr = fill_addr
        self.wb_index = wb_index
        self.wb_addr = wb_addr
        #: Number of non-sentinel entries in ``fill_addr``.
        self.n_fills = n_fills


class CacheHierarchy:
    """Two-level (L1D + L2) hierarchy with non-inclusive write-back flow."""

    def __init__(self, l1: Cache, l2: Cache, memory_fill_latency: int = 0) -> None:
        if l1.line_bytes != l2.line_bytes:
            raise ValueError("L1 and L2 must share a line size")
        self.l1 = l1
        self.l2 = l2
        self.line_bytes = l1.line_bytes
        #: Extra core cycles charged on an LLC miss for the fill path
        #: (bus/queue traversal); DRAM latency itself comes from the SMC.
        self.memory_fill_latency = memory_fill_latency

    def access(self, addr: int, is_write: bool) -> MemoryTraffic:
        """Access a byte address; return latency and memory traffic."""
        line = addr // self.line_bytes
        l1 = self.l1
        s1, t1 = l1.split(line)
        if l1.lookup_st(s1, t1, is_write):
            return MemoryTraffic(latency=l1.hit_latency)
        l2 = self.l2
        latency = l1.hit_latency + l2.hit_latency
        writebacks: list[int] = []
        s2, t2 = l2.split(line)
        if l2.lookup_st(s2, t2, False):
            self._install_l1(s1, t1, line, is_write, writebacks)
            return MemoryTraffic(latency=latency, writebacks=writebacks)
        # LLC miss: fill L2 then L1 from memory.  Only the L1 probe cost
        # is charged inline: a non-blocking miss overlaps the rest of the
        # lookup with downstream work, and the end-to-end miss latency is
        # applied when the response's release cycle is consumed.
        l2_victim = l2.fill_absent_st(s2, t2, False)
        if l2_victim is not None:
            writebacks.append(l2_victim * self.line_bytes)
        self._install_l1(s1, t1, line, is_write, writebacks)
        return MemoryTraffic(
            latency=l1.hit_latency + self.memory_fill_latency,
            fill_line=line * self.line_bytes,
            writebacks=writebacks,
        )

    def _install_l1(self, s1: int, t1: int, line: int, is_write: bool,
                    writebacks: list[int]) -> None:
        victim = self.l1.fill_absent_st(s1, t1, is_write)
        if victim is None:
            return
        # Dirty L1 victim folds into L2 (write-allocate, no memory fetch).
        l2 = self.l2
        s2, t2 = l2.split(victim)
        if l2.lookup_st(s2, t2, True):
            return
        l2_victim = l2.fill_absent_st(s2, t2, True)
        if l2_victim is not None:
            writebacks.append(l2_victim * self.line_bytes)

    # -- array-native block path (the fast-path frontend) -------------------

    def access_block(self, addrs: list[int], flags: list[int]) -> BlockTraffic:
        """Filter a whole access block; behaviorally N x :meth:`access`.

        One fused loop over both levels with the set/tag splits hoisted
        (computed once per access, shared by the probe and the fill) and
        all per-level state in locals — no :class:`MemoryTraffic`
        allocation, no method dispatch per probe.  Statistics and
        eviction decisions are bit-identical to the per-access path.
        """
        l1, l2 = self.l1, self.l2
        lb = self.line_bytes
        n1, n2 = l1.num_sets, l2.num_sets
        a1 = l1.assoc
        a2 = l2.assoc
        # The set/tag splits of the whole block, hoisted out of the scan
        # loop as four bulk array ops (the satellite fix for the seed's
        # per-probe ``line // num_sets`` recomputation).
        arr = np.asarray(addrs, dtype=np.int64)
        lines_np = arr // lb
        line_of = lines_np.tolist()
        s1_of = (lines_np % n1).tolist()
        t1_of = (lines_np // n1).tolist()
        s2_of = (lines_np % n2).tolist()
        t2_of = (lines_np // n2).tolist()
        tags1, dirty1, stamps1, mru1 = l1._tags, l1._dirty, l1._stamps, l1._mru
        tags2, dirty2, stamps2, mru2 = l2._tags, l2._dirty, l2._stamps, l2._mru
        tick1 = l1._tick
        tick2 = l2._tick
        hit1 = l1.hit_latency
        hit12 = hit1 + l2.hit_latency
        miss_lat = hit1 + self.memory_fill_latency
        h1 = m1 = w1 = 0      # L1 hits/misses/writebacks this block
        h2 = m2 = w2 = 0
        n_fills = 0
        latency: list[int] = []
        fill_addr: list[int] = []
        wb_index: list[int] = []
        wb_addr: list[int] = []
        lat_append = latency.append
        fill_append = fill_addr.append
        for i, line in enumerate(line_of):
            is_write = flags[i] & 1
            s1 = s1_of[i]
            t1 = t1_of[i]
            ts1 = tags1[s1]
            # -- L1 probe (MRU slot first) --------------------------------
            slot = mru1[s1]
            if 0 <= slot < len(ts1) and ts1[slot] == t1:
                pass
            elif t1 in ts1:
                slot = ts1.index(t1)
                mru1[s1] = slot
            else:
                slot = -1
            if slot >= 0:
                stamps1[s1][slot] = tick1
                tick1 += 1
                if is_write:
                    dirty1[s1][slot] = True
                h1 += 1
                lat_append(hit1)
                fill_append(-1)
                continue
            m1 += 1
            # -- L2 probe --------------------------------------------------
            s2 = s2_of[i]
            t2 = t2_of[i]
            ts2 = tags2[s2]
            slot = mru2[s2]
            if 0 <= slot < len(ts2) and ts2[slot] == t2:
                pass
            elif t2 in ts2:
                slot = ts2.index(t2)
                mru2[s2] = slot
            else:
                slot = -1
            if slot >= 0:
                stamps2[s2][slot] = tick2
                tick2 += 1
                h2 += 1
                lat_append(hit12)
                fill_append(-1)
            else:
                m2 += 1
                # l2.fill(line, dirty=False): the probe just missed, so
                # the line is known absent.
                if len(ts2) >= a2:
                    st2 = stamps2[s2]
                    vslot = st2.index(min(st2))
                    if dirty2[s2][vslot]:
                        w2 += 1
                        wb_index.append(i)
                        wb_addr.append((ts2[vslot] * n2 + s2) * lb)
                    ts2[vslot] = t2
                    dirty2[s2][vslot] = False
                    st2[vslot] = tick2
                else:
                    vslot = len(ts2)
                    ts2.append(t2)
                    dirty2[s2].append(False)
                    stamps2[s2].append(tick2)
                tick2 += 1
                mru2[s2] = vslot
                lat_append(miss_lat)
                fill_append(line * lb)
                n_fills += 1
            # -- install into L1 (line known absent) -----------------------
            if len(ts1) >= a1:
                st1 = stamps1[s1]
                vslot = st1.index(min(st1))
                if dirty1[s1][vslot]:
                    w1 += 1
                    victim = ts1[vslot] * n1 + s1
                    # Dirty L1 victim folds into L2.
                    sv = victim % n2
                    tv = victim // n2
                    tsv = tags2[sv]
                    vs = mru2[sv]
                    if 0 <= vs < len(tsv) and tsv[vs] == tv:
                        pass
                    elif tv in tsv:
                        vs = tsv.index(tv)
                        mru2[sv] = vs
                    else:
                        vs = -1
                    if vs >= 0:
                        stamps2[sv][vs] = tick2
                        tick2 += 1
                        dirty2[sv][vs] = True
                        h2 += 1
                    else:
                        m2 += 1
                        if len(tsv) >= a2:
                            stv = stamps2[sv]
                            v2 = stv.index(min(stv))
                            if dirty2[sv][v2]:
                                w2 += 1
                                wb_index.append(i)
                                wb_addr.append((tsv[v2] * n2 + sv) * lb)
                            tsv[v2] = tv
                            dirty2[sv][v2] = True
                            stv[v2] = tick2
                        else:
                            v2 = len(tsv)
                            tsv.append(tv)
                            dirty2[sv].append(True)
                            stamps2[sv].append(tick2)
                        tick2 += 1
                        mru2[sv] = v2
                ts1[vslot] = t1
                dirty1[s1][vslot] = bool(is_write)
                stamps1[s1][vslot] = tick1
            else:
                vslot = len(ts1)
                ts1.append(t1)
                dirty1[s1].append(bool(is_write))
                stamps1[s1].append(tick1)
            tick1 += 1
            mru1[s1] = vslot
        l1._tick = tick1
        l2._tick = tick2
        s = l1.stats
        s.hits += h1
        s.misses += m1
        s.writebacks += w1
        s = l2.stats
        s.hits += h2
        s.misses += m2
        s.writebacks += w2
        return BlockTraffic(latency, fill_addr, wb_index, wb_addr, n_fills)

    def flush_line(self, addr: int) -> int | None:
        """CLFLUSH: invalidate everywhere; return writeback address if dirty."""
        line = addr // self.line_bytes
        dirty = False
        for cache in (self.l1, self.l2):
            present, was_dirty = cache.evict(line)
            if present:
                cache.stats.flushes += 1
            dirty = dirty or was_dirty
        return line * self.line_bytes if dirty else None

    def llc_misses(self) -> int:
        return self.l2.stats.misses

    def reset_stats(self) -> None:
        self.l1.stats = CacheStats()
        self.l2.stats = CacheStats()


# ---------------------------------------------------------------------------
# Reference (seed) implementation — the differential-test oracle.
# ---------------------------------------------------------------------------


class ReferenceCache:
    """The original MRU-ordered-list cache level, kept verbatim.

    This is the seed model the paper artifacts were validated against;
    the randomized differential tests drive it in lockstep with the
    flat-array :class:`Cache`/:class:`CacheHierarchy` (per-access and
    block paths) and require identical stats, traffic, and residency.
    """

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_bytes: int, hit_latency: int) -> None:
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by"
                f" assoc*line ({assoc}x{line_bytes})")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.num_sets = size_bytes // (assoc * line_bytes)
        # Per set: list of [tag, dirty] kept in MRU-first order.
        self._sets: list[list[list]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def lookup(self, line_addr: int, is_write: bool) -> bool:
        ways = self._sets[line_addr % self.num_sets]
        tag = line_addr // self.num_sets
        if ways and ways[0][0] == tag:
            if is_write:
                ways[0][1] = True
            self.stats.hits += 1
            return True
        for i, entry in enumerate(ways):
            if entry[0] == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                if is_write:
                    ways[0][1] = True
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        return False

    def fill(self, line_addr: int, dirty: bool) -> int | None:
        set_index = line_addr % self.num_sets
        ways = self._sets[set_index]
        tag = line_addr // self.num_sets
        for i, entry in enumerate(ways):
            if entry[0] == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                ways[0][1] = ways[0][1] or dirty
                return None
        victim_line = None
        if len(ways) >= self.assoc:
            victim = ways.pop()
            if victim[1]:
                victim_line = victim[0] * self.num_sets + set_index
                self.stats.writebacks += 1
        ways.insert(0, [tag, dirty])
        return victim_line

    def evict(self, line_addr: int) -> tuple[bool, bool]:
        ways = self._sets[line_addr % self.num_sets]
        tag = line_addr // self.num_sets
        for i, entry in enumerate(ways):
            if entry[0] == tag:
                ways.pop(i)
                return True, entry[1]
        return False, False

    def contains(self, line_addr: int) -> bool:
        ways = self._sets[line_addr % self.num_sets]
        tag = line_addr // self.num_sets
        return any(entry[0] == tag for entry in ways)

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)


class ReferenceCacheHierarchy:
    """The seed two-level hierarchy, kept verbatim as the oracle."""

    def __init__(self, l1: ReferenceCache, l2: ReferenceCache,
                 memory_fill_latency: int = 0) -> None:
        if l1.line_bytes != l2.line_bytes:
            raise ValueError("L1 and L2 must share a line size")
        self.l1 = l1
        self.l2 = l2
        self.line_bytes = l1.line_bytes
        self.memory_fill_latency = memory_fill_latency

    def access(self, addr: int, is_write: bool) -> MemoryTraffic:
        line = addr // self.line_bytes
        if self.l1.lookup(line, is_write):
            return MemoryTraffic(latency=self.l1.hit_latency)
        latency = self.l1.hit_latency + self.l2.hit_latency
        writebacks: list[int] = []
        if self.l2.lookup(line, False):
            self._install_l1(line, is_write, writebacks)
            return MemoryTraffic(latency=latency, writebacks=writebacks)
        l2_victim = self.l2.fill(line, dirty=False)
        if l2_victim is not None:
            writebacks.append(l2_victim * self.line_bytes)
        self._install_l1(line, is_write, writebacks)
        return MemoryTraffic(
            latency=self.l1.hit_latency + self.memory_fill_latency,
            fill_line=line * self.line_bytes,
            writebacks=writebacks,
        )

    def _install_l1(self, line: int, is_write: bool, writebacks: list[int]) -> None:
        victim = self.l1.fill(line, dirty=is_write)
        if victim is None:
            return
        if self.l2.lookup(victim, True):
            return
        l2_victim = self.l2.fill(victim, dirty=True)
        if l2_victim is not None:
            writebacks.append(l2_victim * self.line_bytes)

    def flush_line(self, addr: int) -> int | None:
        line = addr // self.line_bytes
        dirty = False
        for cache in (self.l1, self.l2):
            present, was_dirty = cache.evict(line)
            if present:
                cache.stats.flushes += 1
            dirty = dirty or was_dirty
        return line * self.line_bytes if dirty else None

    def llc_misses(self) -> int:
        return self.l2.stats.misses

    def reset_stats(self) -> None:
        self.l1.stats = CacheStats()
        self.l2.stats = CacheStats()
