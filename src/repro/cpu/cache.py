"""Set-associative cache hierarchy.

Tag-only, write-back, write-allocate caches with true LRU replacement.
The end-to-end evaluation needs the caches for *filtering* (which
accesses reach DRAM) and for the per-level latency profile of Figure 8;
data contents live in the DRAM device model only.

The hierarchy exposes a single :meth:`CacheHierarchy.access` that returns
the hit-path latency plus any memory traffic (a blocking line fill and/or
posted writebacks), and a :meth:`CacheHierarchy.flush_line` implementing
the memory-mapped CLFLUSH register of Section 7.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Per-level hit/miss/writeback counters."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class Cache:
    """One cache level.  Addresses are *line* addresses (byte // line)."""

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_bytes: int, hit_latency: int) -> None:
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by"
                f" assoc*line ({assoc}x{line_bytes})")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.num_sets = size_bytes // (assoc * line_bytes)
        # Per set: list of [tag, dirty] kept in MRU-first order.
        self._sets: list[list[list]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def lookup(self, line_addr: int, is_write: bool) -> bool:
        """Probe for a line; on hit, update LRU and dirty bit."""
        ways = self._sets[line_addr % self.num_sets]
        tag = line_addr // self.num_sets
        # MRU fast path: repeated touches to the hottest line skip the
        # way scan entirely (the emulation engines probe per access, so
        # this sits on every engine's hot path).
        if ways and ways[0][0] == tag:
            if is_write:
                ways[0][1] = True
            self.stats.hits += 1
            return True
        for i, entry in enumerate(ways):
            if entry[0] == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                if is_write:
                    ways[0][1] = True
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        return False

    def fill(self, line_addr: int, dirty: bool) -> int | None:
        """Install a line; return the evicted dirty line address, if any."""
        set_index = line_addr % self.num_sets
        ways = self._sets[set_index]
        tag = line_addr // self.num_sets
        for i, entry in enumerate(ways):
            if entry[0] == tag:  # already present (e.g. racing writeback)
                if i:
                    ways.insert(0, ways.pop(i))
                ways[0][1] = ways[0][1] or dirty
                return None
        victim_line = None
        if len(ways) >= self.assoc:
            victim = ways.pop()
            if victim[1]:
                victim_line = victim[0] * self.num_sets + set_index
                self.stats.writebacks += 1
        ways.insert(0, [tag, dirty])
        return victim_line

    def evict(self, line_addr: int) -> tuple[bool, bool]:
        """Remove a line if present; return (was_present, was_dirty)."""
        ways = self._sets[line_addr % self.num_sets]
        tag = line_addr // self.num_sets
        for i, entry in enumerate(ways):
            if entry[0] == tag:
                ways.pop(i)
                return True, entry[1]
        return False, False

    def contains(self, line_addr: int) -> bool:
        ways = self._sets[line_addr % self.num_sets]
        tag = line_addr // self.num_sets
        return any(entry[0] == tag for entry in ways)

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)


@dataclass
class MemoryTraffic:
    """DRAM-bound traffic produced by one cache-hierarchy access."""

    latency: int                       # hit-path latency in core cycles
    fill_line: int | None = None       # blocking line fill (line address)
    writebacks: list[int] = field(default_factory=list)  # posted writes

    @property
    def is_llc_miss(self) -> bool:
        return self.fill_line is not None


class CacheHierarchy:
    """Two-level (L1D + L2) hierarchy with non-inclusive write-back flow."""

    def __init__(self, l1: Cache, l2: Cache, memory_fill_latency: int = 0) -> None:
        if l1.line_bytes != l2.line_bytes:
            raise ValueError("L1 and L2 must share a line size")
        self.l1 = l1
        self.l2 = l2
        self.line_bytes = l1.line_bytes
        #: Extra core cycles charged on an LLC miss for the fill path
        #: (bus/queue traversal); DRAM latency itself comes from the SMC.
        self.memory_fill_latency = memory_fill_latency

    def access(self, addr: int, is_write: bool) -> MemoryTraffic:
        """Access a byte address; return latency and memory traffic."""
        line = addr // self.line_bytes
        if self.l1.lookup(line, is_write):
            return MemoryTraffic(latency=self.l1.hit_latency)
        latency = self.l1.hit_latency + self.l2.hit_latency
        writebacks: list[int] = []
        if self.l2.lookup(line, False):
            self._install_l1(line, is_write, writebacks)
            return MemoryTraffic(latency=latency, writebacks=writebacks)
        # LLC miss: fill L2 then L1 from memory.  Only the L1 probe cost
        # is charged inline: a non-blocking miss overlaps the rest of the
        # lookup with downstream work, and the end-to-end miss latency is
        # applied when the response's release cycle is consumed.
        l2_victim = self.l2.fill(line, dirty=False)
        if l2_victim is not None:
            writebacks.append(l2_victim * self.line_bytes)
        self._install_l1(line, is_write, writebacks)
        return MemoryTraffic(
            latency=self.l1.hit_latency + self.memory_fill_latency,
            fill_line=line * self.line_bytes,
            writebacks=writebacks,
        )

    def _install_l1(self, line: int, is_write: bool, writebacks: list[int]) -> None:
        victim = self.l1.fill(line, dirty=is_write)
        if victim is None:
            return
        # Dirty L1 victim folds into L2 (write-allocate, no memory fetch).
        if self.l2.lookup(victim, True):
            return
        l2_victim = self.l2.fill(victim, dirty=True)
        if l2_victim is not None:
            writebacks.append(l2_victim * self.line_bytes)

    def flush_line(self, addr: int) -> int | None:
        """CLFLUSH: invalidate everywhere; return writeback address if dirty."""
        line = addr // self.line_bytes
        dirty = False
        for cache in (self.l1, self.l2):
            present, was_dirty = cache.evict(line)
            if present:
                cache.stats.flushes += 1
            dirty = dirty or was_dirty
        return line * self.line_bytes if dirty else None

    def llc_misses(self) -> int:
        return self.l2.stats.misses

    def reset_stats(self) -> None:
        self.l1.stats = CacheStats()
        self.l2.stats = CacheStats()
