"""Processor substrate: caches, traces, and the trace-driven core model."""

from repro.cpu.cache import Cache, CacheHierarchy, CacheStats, MemoryTraffic
from repro.cpu.memtrace import (
    FLAG_DEPENDENT,
    FLAG_WRITE,
    Access,
    TraceStats,
    load,
    store,
    summarize,
    take,
)
from repro.cpu.processor import (
    BurstResult,
    MemoryRequest,
    Processor,
    ProcessorConfig,
    ProcessorStats,
)

__all__ = [
    "Access",
    "BurstResult",
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "FLAG_DEPENDENT",
    "FLAG_WRITE",
    "MemoryRequest",
    "MemoryTraffic",
    "Processor",
    "ProcessorConfig",
    "ProcessorStats",
    "TraceStats",
    "load",
    "store",
    "summarize",
    "take",
]
