"""Array-native access blocks: the workload side of the fast path.

Workloads emit :class:`AccessBlock` chunks — parallel ``addr``/``flags``
/``gap`` integer arrays covering a few thousand accesses — instead of
one :class:`~repro.cpu.memtrace.Access` namedtuple at a time.  A block
crosses the frontend in three bulk steps (generate, cache-filter,
replay) where the object pipeline paid per-access generator resumption
and allocation.

A :class:`BlockTrace` is a single-use stream of blocks, exactly like an
``Iterator[Access]`` is a single-use stream of accesses.  It carries a
compatibility shim (:meth:`BlockTrace.accesses`) that re-yields the
identical per-access stream, which is what the processor consumes when
``REPRO_FASTPATH`` is off and what the legacy workload generators now
delegate to — block builders are the source of truth, the iterators are
thin views.

Blocks store plain Python ``list``s of ``int``: the consuming loops are
CPython ``for`` loops where list indexing beats NumPy scalar access by
an order of magnitude.  Builders are free to *construct* those lists
with NumPy (``ndarray.tolist()`` is a bulk operation) — the microbench
and lmbench builders do.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.cpu.memtrace import Access
from repro.fastpath import block_accesses


class AccessBlock:
    """A chunk of accesses as parallel integer arrays.

    ``addr[i]``/``flags[i]``/``gap[i]`` describe the same access as
    ``Access(addr, flags, gap)``; flag bits are those of
    :mod:`repro.cpu.memtrace` (bit 0 write, bit 1 dependent).
    """

    __slots__ = ("addr", "flags", "gap")

    def __init__(self, addr: list[int], flags: list[int], gap: list[int]) -> None:
        if not (len(addr) == len(flags) == len(gap)):
            raise ValueError("addr/flags/gap arrays must have equal length")
        self.addr = addr
        self.flags = flags
        self.gap = gap

    def __len__(self) -> int:
        return len(self.addr)

    def accesses(self) -> Iterator[Access]:
        """The identical per-access view of this block."""
        for item in zip(self.addr, self.flags, self.gap):
            yield Access(*item)


class BlockTrace:
    """A single-use stream of :class:`AccessBlock` chunks.

    Iterating yields blocks; :meth:`accesses` yields the equivalent
    per-access stream (the compatibility shim used whenever the fast
    path is disabled).  Like generator traces, a ``BlockTrace`` can be
    consumed once.
    """

    __slots__ = ("_blocks",)

    def __init__(self, blocks: Iterable[AccessBlock]) -> None:
        self._blocks = iter(blocks)

    def __iter__(self) -> Iterator[AccessBlock]:
        return self._blocks

    def accesses(self) -> Iterator[Access]:
        """Per-access compatibility view (consumes the trace)."""
        for block in self._blocks:
            yield from block.accesses()


class MaterializedBlocks:
    """A multi-shot block sequence: generate once, replay many times.

    A :class:`BlockTrace` is single-use, which is exactly right for the
    paper's one-pass artifacts — but multi-core workload mixes run every
    workload at least twice (once solo for the slowdown baseline, once
    under contention), and fairness sweeps re-run the same mix per
    scheduler.  Materializing the block arrays once and handing out
    fresh :class:`BlockTrace` views amortizes trace generation across
    all of those runs; the blocks themselves are immutable on the replay
    path (the processor and cache layers only read them), so sharing is
    safe.
    """

    __slots__ = ("blocks",)

    def __init__(self, trace: BlockTrace | Iterable[AccessBlock]) -> None:
        self.blocks = list(trace)

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def accesses(self) -> int:
        """Total accesses across every block."""
        return sum(len(block) for block in self.blocks)

    def trace(self) -> BlockTrace:
        """A fresh single-use :class:`BlockTrace` view over the blocks."""
        return BlockTrace(iter(self.blocks))


def blockify(trace: Iterable[Access], block: int | None = None) -> BlockTrace:
    """Chunk any per-access trace into an equivalent :class:`BlockTrace`.

    This is the generic adapter for workloads that stay generator-based
    (e.g. the PolyBench loop nests): the generator still runs, but the
    cache and processor layers downstream get the batched interface.
    """
    size = block or block_accesses()

    def chunks() -> Iterator[AccessBlock]:
        addr: list[int] = []
        flags: list[int] = []
        gap: list[int] = []
        append_a, append_f, append_g = addr.append, flags.append, gap.append
        for access in trace:
            append_a(access[0])
            append_f(access[1])
            append_g(access[2])
            if len(addr) >= size:
                yield AccessBlock(addr, flags, gap)
                addr, flags, gap = [], [], []
                append_a, append_f, append_g = (addr.append, flags.append,
                                                gap.append)
        if addr:
            yield AccessBlock(addr, flags, gap)

    return BlockTrace(chunks())


def from_builder(builder: Callable[[int], Iterator[AccessBlock]],
                 block: int | None = None) -> BlockTrace:
    """Wrap a block-size-parameterized builder into a :class:`BlockTrace`."""
    return BlockTrace(builder(block or block_accesses()))
