"""Trace-driven processor model with bounded memory-level parallelism.

The model replaces the paper's BOOM RISC-V core.  It executes a memory
trace (compute gaps + loads/stores), filters accesses through the cache
hierarchy, and exposes the processor-side contract that EasyDRAM's time
scaling needs (Sections 4.3/4.4):

* every last-level-cache miss becomes a :class:`MemoryRequest` *tagged
  with the processor cycle counter at issue time*;
* the processor clock-gates (``execute_burst`` returns with
  ``blocked=True``) once it cannot proceed without a response;
* responses carry a *release* cycle set by the memory-controller side;
  consuming a response advances the processor counter to that release
  value, which is exactly the "response tagged with the cycle it may be
  consumed at" rule of Figure 5 (step 10).

Out-of-order behaviour is approximated by a miss-level-parallelism bound
(``mlp``) plus an instruction window past the oldest outstanding miss.
Dependent accesses (pointer chases) serialize on all earlier misses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.cpu.cache import CacheHierarchy
from repro.cpu.memtrace import FLAG_DEPENDENT, FLAG_WRITE, Access, Trace


@dataclass
class MemoryRequest:
    """A DRAM-bound request emitted by the processor (or a writeback)."""

    rid: int
    addr: int
    is_write: bool
    tag: int                   # processor cycle counter at issue (Fig 5, (b))
    is_writeback: bool = False
    release: int | None = None  # set by the SMC; consumption gate
    issue_index: int = 0        # instruction count at issue (window check)
    #: Filled in by the memory side for row-hit statistics.
    service_ps: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "WB" if self.is_writeback else ("ST" if self.is_write else "LD")
        return f"<{kind}#{self.rid} {self.addr:#x} tag={self.tag} rel={self.release}>"


@dataclass
class BurstResult:
    """What one ``execute_burst`` call produced."""

    new_requests: list[MemoryRequest]
    blocked: bool
    done: bool


@dataclass
class ProcessorConfig:
    """Core parameters of the modeled processor."""

    name: str = "generic"
    emulated_freq_hz: float = 1.43e9   # Cortex A57 in the Jetson Nano
    fpga_freq_hz: float = 100e6        # BOOM's FPGA clock in EasyDRAM
    mlp: int = 4                       # max outstanding LLC-miss fills
    miss_window: int = 32              # accesses allowed past oldest miss
    flush_latency: int = 8             # CLFLUSH register write cost (cycles)

    def __post_init__(self) -> None:
        if self.mlp < 1:
            raise ValueError("mlp must be >= 1")
        if self.miss_window < 1:
            raise ValueError("miss_window must be >= 1")


@dataclass
class ProcessorStats:
    """Execution counters in emulated processor cycles."""

    accesses: int = 0
    loads: int = 0
    stores: int = 0
    compute_cycles: int = 0
    stall_cycles: int = 0
    llc_miss_requests: int = 0
    writeback_requests: int = 0
    request_latencies: list[int] = field(default_factory=list)

    @property
    def avg_request_latency(self) -> float:
        lat = self.request_latencies
        return sum(lat) / len(lat) if lat else 0.0


class Processor:
    """One emulated core executing a memory trace."""

    def __init__(self, config: ProcessorConfig, hierarchy: CacheHierarchy,
                 trace: Trace) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self._trace: Iterator[Access] = iter(trace)
        self.cycles = 0                      # processor cycle counter
        self.outstanding: list[MemoryRequest] = []
        self.stats = ProcessorStats()
        self._rid = itertools.count()
        self._pending: Access | None = None
        self._done = False

    # -- engine-facing API ------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._done

    def feed(self, trace: Trace) -> None:
        """Queue another trace segment (sessions mix traces and techniques)."""
        self._trace = iter(trace)
        self._pending = None
        self._done = False

    def execute_burst(self) -> BurstResult:
        """Run until blocked on an unserviced miss or the trace ends."""
        new_requests: list[MemoryRequest] = []
        while True:
            if self._pending is None:
                self._pending = next(self._trace, None)
            access = self._pending
            if access is None:
                if self._drain():
                    self._done = True
                    return BurstResult(new_requests, blocked=False, done=True)
                return BurstResult(new_requests, blocked=True, done=False)
            if not self._can_issue(access):
                if not self._consume_ready(access):
                    return BurstResult(new_requests, blocked=True, done=False)
                continue
            self._pending = None
            self._execute(access, new_requests)

    def deliver(self, request: MemoryRequest) -> None:
        """The memory side finished ``request``; its release must be set."""
        if request.release is None:
            raise ValueError(f"delivered request without release: {request}")

    def next_release_cycle(self) -> int | None:
        """Release cycle of the oldest serviced outstanding fill, if any.

        This is the processor's next scheduled RELEASE event on the
        event-driven timeline: after a critical-mode episode the core
        resumes by jumping directly to this cycle (Fig 5, step 10) —
        no emulated cycle before it can make the core runnable.  Exposed
        for engine instrumentation and the scheduler edge-case tests.
        """
        for request in self.outstanding:
            if request.release is not None:
                return request.release
        return None

    def clflush(self, addr: int) -> tuple[int | None, int]:
        """Flush one line (memory-mapped CLFLUSH register, Section 7.1).

        Returns (writeback address or None, cycles charged).
        """
        self.cycles += self.config.flush_latency
        return self.hierarchy.flush_line(addr), self.config.flush_latency

    # -- internals ------------------------------------------------------------

    def _can_issue(self, access: Access) -> bool:
        if not self.outstanding:
            return True
        if access.flags & FLAG_DEPENDENT:
            return False
        if len(self.outstanding) >= self.config.mlp:
            return False
        oldest = self.outstanding[0]
        return self.stats.accesses - oldest.issue_index < self.config.miss_window

    def _consume_ready(self, access: Access) -> bool:
        """Consume resolved responses that gate ``access``.

        Returns False when the gating response has not been serviced yet —
        i.e. the processor is clock-gated.
        """
        if access.flags & FLAG_DEPENDENT:
            if any(r.release is None for r in self.outstanding):
                return False
            for request in self.outstanding:
                self._consume(request)
            self.outstanding.clear()
            return True
        oldest = self.outstanding[0]
        if oldest.release is None:
            return False
        self._consume(oldest)
        self.outstanding.pop(0)
        return True

    def _consume(self, request: MemoryRequest) -> None:
        assert request.release is not None
        if request.release > self.cycles:
            self.stats.stall_cycles += request.release - self.cycles
            self.cycles = request.release
        self.stats.request_latencies.append(max(0, request.release - request.tag))

    def _drain(self) -> bool:
        """At end of trace: consume every outstanding fill if possible."""
        if any(r.release is None for r in self.outstanding):
            return False
        for request in self.outstanding:
            self._consume(request)
        self.outstanding.clear()
        return True

    def _execute(self, access: Access, new_requests: list[MemoryRequest]) -> None:
        stats = self.stats
        stats.accesses += 1
        is_write = bool(access.flags & FLAG_WRITE)
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1
        if access.gap:
            self.cycles += access.gap
            stats.compute_cycles += access.gap
        traffic = self.hierarchy.access(access.addr, is_write)
        self.cycles += traffic.latency
        for wb_addr in traffic.writebacks:
            stats.writeback_requests += 1
            new_requests.append(MemoryRequest(
                rid=next(self._rid), addr=wb_addr, is_write=True,
                tag=self.cycles, is_writeback=True,
                issue_index=stats.accesses))
        if traffic.fill_line is not None:
            stats.llc_miss_requests += 1
            request = MemoryRequest(
                rid=next(self._rid), addr=traffic.fill_line,
                is_write=is_write, tag=self.cycles,
                issue_index=stats.accesses)
            self.outstanding.append(request)
            new_requests.append(request)
