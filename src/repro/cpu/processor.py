"""Trace-driven processor model with bounded memory-level parallelism.

The model replaces the paper's BOOM RISC-V core.  It executes a memory
trace (compute gaps + loads/stores), filters accesses through the cache
hierarchy, and exposes the processor-side contract that EasyDRAM's time
scaling needs (Sections 4.3/4.4):

* every last-level-cache miss becomes a :class:`MemoryRequest` *tagged
  with the processor cycle counter at issue time*;
* the processor clock-gates (``execute_burst`` returns with
  ``blocked=True``) once it cannot proceed without a response;
* responses carry a *release* cycle set by the memory-controller side;
  consuming a response advances the processor counter to that release
  value, which is exactly the "response tagged with the cycle it may be
  consumed at" rule of Figure 5 (step 10).

Out-of-order behaviour is approximated by a miss-level-parallelism bound
(``mlp``) plus an instruction window past the oldest outstanding miss.
Dependent accesses (pointer chases) serialize on all earlier misses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.cpu.blocks import AccessBlock, BlockTrace
from repro.cpu.cache import BlockTraffic, CacheHierarchy
from repro.cpu.memtrace import FLAG_DEPENDENT, FLAG_WRITE, Access, Trace
from repro.fastpath import fastpath_enabled


@dataclass(slots=True, eq=False)
class MemoryRequest:
    """A DRAM-bound request emitted by the processor (or a writeback).

    Identity semantics (``eq=False``): a request is one in-flight object
    shared between processor and controller, never compared by value —
    and list removal then uses C-speed identity scans.
    """

    rid: int
    addr: int
    is_write: bool
    tag: int                   # processor cycle counter at issue (Fig 5, (b))
    is_writeback: bool = False
    release: int | None = None  # set by the SMC; consumption gate
    issue_index: int = 0        # instruction count at issue (window check)
    #: Filled in by the memory side for row-hit statistics.
    service_ps: int = 0
    #: Memory channel the address decodes to (always 0 on the paper's
    #: single-channel system); set at issue time so the channel router
    #: never re-decodes.
    channel: int = 0
    #: Core that issued the request (always 0 on the paper's single-core
    #: system).  Multi-core sessions tag it at issue time so the shared
    #: memory controller can attribute service and row-buffer outcomes
    #: per core without back-pointers.
    core: int = 0
    #: Issued by the stream prefetcher, not by demand execution.  The
    #: core never waits on prefetches (they bypass the MLP window) and
    #: the controller counts them apart from demand traffic.
    is_prefetch: bool = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = ("PF" if self.is_prefetch else
                "WB" if self.is_writeback else
                "ST" if self.is_write else "LD")
        return f"<{kind}#{self.rid} {self.addr:#x} tag={self.tag} rel={self.release}>"


@dataclass(slots=True)
class BurstResult:
    """What one ``execute_burst`` call produced."""

    new_requests: list[MemoryRequest]
    blocked: bool
    done: bool


@dataclass
class ProcessorConfig:
    """Core parameters of the modeled processor."""

    name: str = "generic"
    emulated_freq_hz: float = 1.43e9   # Cortex A57 in the Jetson Nano
    fpga_freq_hz: float = 100e6        # BOOM's FPGA clock in EasyDRAM
    mlp: int = 4                       # max outstanding LLC-miss fills
    miss_window: int = 32              # accesses allowed past oldest miss
    flush_latency: int = 8             # CLFLUSH register write cost (cycles)

    def __post_init__(self) -> None:
        if self.mlp < 1:
            raise ValueError("mlp must be >= 1")
        if self.miss_window < 1:
            raise ValueError("miss_window must be >= 1")


@dataclass
class ProcessorStats:
    """Execution counters in emulated processor cycles."""

    accesses: int = 0
    loads: int = 0
    stores: int = 0
    compute_cycles: int = 0
    stall_cycles: int = 0
    llc_miss_requests: int = 0
    writeback_requests: int = 0
    #: Requests issued by this core's stream prefetcher (0 without one).
    prefetch_requests: int = 0
    request_latencies: list[int] = field(default_factory=list)

    @property
    def avg_request_latency(self) -> float:
        lat = self.request_latencies
        return sum(lat) / len(lat) if lat else 0.0


class Processor:
    """One emulated core executing a memory trace."""

    def __init__(self, config: ProcessorConfig, hierarchy: CacheHierarchy,
                 trace: Trace, core_id: int = 0) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self._trace: Iterator[Access] = iter(trace)
        self.cycles = 0                      # processor cycle counter
        #: This core's index in a multi-core session (0 when solo);
        #: stamped into every request the core issues.
        self.core_id = core_id
        self.outstanding: list[MemoryRequest] = []
        self.stats = ProcessorStats()
        self._rid = itertools.count()
        self._pending: Access | None = None
        self._done = False
        self._fastpath = fastpath_enabled()
        #: Optional bulk address-decode hook (wired by the session to
        #: the tile's :meth:`AddressMapper.prime`): called with each
        #: block's DRAM-bound addresses right after the cache filter.
        self.prime_hook = None
        #: Optional address -> channel hook (wired by multi-channel
        #: sessions to :meth:`AddressMapper.channel_of`).  Every DRAM
        #: request — LLC-miss fill or writeback — is tagged with its
        #: channel at issue time, before it enters the MLP gating window,
        #: so the controller side routes without re-decoding.
        self.channel_hook = None
        #: Optional :class:`~repro.cpu.prefetch.StreamPrefetcher` (wired
        #: by the session).  Observes every demand fill at issue; its
        #: prefetch requests join ``new_requests`` but never the MLP
        #: window, so the core is never gated on a prefetch.
        self.prefetcher = None
        # Block-mode state: the block stream, the current block with its
        # precomputed cache traffic, and replay cursors into it.
        self._blocks: Iterator[AccessBlock] | None = None
        self._cur: tuple[AccessBlock, BlockTraffic] | None = None
        self._pos = 0
        self._wb_ptr = 0

    # -- engine-facing API ------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._done

    def feed(self, trace: Trace | BlockTrace) -> None:
        """Queue another trace segment (sessions mix traces and techniques).

        A :class:`~repro.cpu.blocks.BlockTrace` takes the array-native
        replay path (cache traffic precomputed one block at a time);
        with ``REPRO_FASTPATH`` off it is consumed through its
        per-access compatibility shim instead.  Both paths produce the
        same requests, cycles, and statistics.
        """
        self._pending = None
        self._done = False
        self._blocks = None
        self._cur = None
        self._pos = 0
        self._wb_ptr = 0
        if isinstance(trace, BlockTrace):
            if self._fastpath:
                self._trace = iter(())
                self._blocks = iter(trace)
            else:
                self._trace = trace.accesses()
        else:
            self._trace = iter(trace)

    def execute_burst(self) -> BurstResult:
        """Run until blocked on an unserviced miss or the trace ends."""
        if self._blocks is not None:
            return self._execute_burst_blocks()
        new_requests: list[MemoryRequest] = []
        while True:
            if self._pending is None:
                self._pending = next(self._trace, None)
            access = self._pending
            if access is None:
                if self._drain():
                    self._done = True
                    return BurstResult(new_requests, blocked=False, done=True)
                return BurstResult(new_requests, blocked=True, done=False)
            if not self._can_issue(access):
                if not self._consume_ready(access):
                    return BurstResult(new_requests, blocked=True, done=False)
                continue
            self._pending = None
            self._execute(access, new_requests)

    @property
    def in_block_mode(self) -> bool:
        """Whether the current trace segment replays as access blocks."""
        return self._blocks is not None

    def execute_gated(self, gate) -> None:
        """Run a block trace to completion, servicing gates in place.

        The skip-ahead engine's inverted control flow: instead of
        returning a blocked :class:`BurstResult` at every clock gate and
        being re-entered after servicing, the replay loop calls
        ``gate(new_requests, done)`` at exactly the points the burst
        protocol would return — the callback runs the per-gate sequence
        (counter advance, deadlock check, critical-mode episode, event
        bookkeeping) and must leave every request released.  Equivalent
        to the execute_burst loop with the per-gate re-entry cost
        removed.  Only valid in block mode.
        """
        self._execute_burst_blocks(gate)

    def _execute_burst_blocks(self, gate=None) -> BurstResult | None:
        """:meth:`execute_burst` over precomputed access blocks.

        The cache outcomes of a whole block are computed up front
        (:meth:`CacheHierarchy.access_block` — legal because cache state
        depends only on the access stream, never on request servicing)
        and replayed here under the same MLP/window/dependence gating as
        the per-access path, with the hot state in locals.  With a
        ``gate`` callback the loop services in place instead of
        returning (see :meth:`execute_gated`).
        """
        new_requests: list[MemoryRequest] = []
        out = self.outstanding
        config = self.config
        mlp = config.mlp
        window = config.miss_window
        stats = self.stats
        rid = self._rid
        channel_of = self.channel_hook
        core = self.core_id
        prefetcher = self.prefetcher
        # Hot counters hoisted into locals for the replay loop; every
        # exit path below writes them back through _sync_block_counters.
        cycles = self.cycles
        accesses = stats.accesses
        loads = stats.loads
        stores = stats.stores
        compute = stats.compute_cycles
        stalls = stats.stall_cycles
        latencies = stats.request_latencies
        while True:
            cur = self._cur
            if cur is None:
                block = next(self._blocks, None)
                if block is None:
                    self._sync_block_counters(
                        cycles, accesses, loads, stores, compute, stalls)
                    if self._drain():
                        self._done = True
                        if gate is None:
                            return BurstResult(new_requests, blocked=False,
                                               done=True)
                        gate(new_requests, True)
                        return None
                    if gate is None:
                        return BurstResult(new_requests, blocked=True,
                                           done=False)
                    gate(new_requests, False)
                    new_requests = []
                    # _drain observed unserviced fills, so it mutated
                    # nothing — the hoisted counters stay authoritative.
                    continue
                traffic = self.hierarchy.access_block(block.addr, block.flags)
                hook = self.prime_hook
                if hook is not None and (traffic.n_fills or traffic.wb_addr):
                    hook(traffic.fill_addr, traffic.wb_addr)
                cur = self._cur = (block, traffic)
                self._pos = 0
                self._wb_ptr = 0
            block, traffic = cur
            flags = block.flags
            gaps = block.gap
            lat = traffic.latency
            fills = traffic.fill_addr
            wb_idx = traffic.wb_index
            wb_addrs = traffic.wb_addr
            n = len(flags)
            n_wb = len(wb_idx)
            i = self._pos
            wb_ptr = self._wb_ptr
            while i < n:
                flag = flags[i]
                if out:
                    # _can_issue, inlined.
                    if (flag & FLAG_DEPENDENT or len(out) >= mlp
                            or accesses - out[0].issue_index >= window):
                        # _consume_ready / _consume, inlined.
                        if flag & FLAG_DEPENDENT:
                            blocked = False
                            for request in out:
                                if request.release is None:
                                    blocked = True
                                    break
                            if blocked:
                                self._pos = i
                                self._wb_ptr = wb_ptr
                                self._sync_block_counters(
                                    cycles, accesses, loads, stores, compute,
                                    stalls)
                                if gate is None:
                                    return BurstResult(new_requests,
                                                       blocked=True,
                                                       done=False)
                                gate(new_requests, False)
                                new_requests = []
                                continue
                            for request in out:
                                release = request.release
                                if release > cycles:
                                    stalls += release - cycles
                                    cycles = release
                                delta = release - request.tag
                                latencies.append(delta if delta > 0 else 0)
                            out.clear()
                        else:
                            oldest = out[0]
                            release = oldest.release
                            if release is None:
                                self._pos = i
                                self._wb_ptr = wb_ptr
                                self._sync_block_counters(
                                    cycles, accesses, loads, stores, compute,
                                    stalls)
                                if gate is None:
                                    return BurstResult(new_requests,
                                                       blocked=True,
                                                       done=False)
                                gate(new_requests, False)
                                new_requests = []
                                continue
                            if release > cycles:
                                stalls += release - cycles
                                cycles = release
                            delta = release - oldest.tag
                            latencies.append(delta if delta > 0 else 0)
                            out.pop(0)
                        continue
                # _execute, inlined.
                accesses += 1
                if flag & FLAG_WRITE:
                    stores += 1
                else:
                    loads += 1
                gap = gaps[i]
                if gap:
                    cycles += gap
                    compute += gap
                cycles += lat[i]
                while wb_ptr < n_wb and wb_idx[wb_ptr] == i:
                    stats.writeback_requests += 1
                    wb_addr = wb_addrs[wb_ptr]
                    new_requests.append(MemoryRequest(
                        rid=next(rid), addr=wb_addr, is_write=True,
                        tag=cycles, is_writeback=True, issue_index=accesses,
                        channel=0 if channel_of is None else channel_of(wb_addr),
                        core=core))
                    wb_ptr += 1
                fill = fills[i]
                if fill >= 0:
                    stats.llc_miss_requests += 1
                    request = MemoryRequest(
                        rid=next(rid), addr=fill,
                        is_write=bool(flag & FLAG_WRITE), tag=cycles,
                        issue_index=accesses,
                        channel=0 if channel_of is None else channel_of(fill),
                        core=core)
                    out.append(request)
                    new_requests.append(request)
                    if prefetcher is not None:
                        for pf_addr in prefetcher.observe(fill):
                            stats.prefetch_requests += 1
                            new_requests.append(MemoryRequest(
                                rid=next(rid), addr=pf_addr, is_write=False,
                                tag=cycles, issue_index=accesses,
                                channel=0 if channel_of is None
                                else channel_of(pf_addr),
                                core=core, is_prefetch=True))
                i += 1
            self._cur = None

    def _sync_block_counters(self, cycles: int, accesses: int, loads: int,
                             stores: int, compute: int, stalls: int) -> None:
        """Write the block-replay loop's hoisted counters back."""
        self.cycles = cycles
        stats = self.stats
        stats.accesses = accesses
        stats.loads = loads
        stats.stores = stores
        stats.compute_cycles = compute
        stats.stall_cycles = stalls

    def deliver(self, request: MemoryRequest) -> None:
        """The memory side finished ``request``; its release must be set."""
        if request.release is None:
            raise ValueError(f"delivered request without release: {request}")

    def next_release_cycle(self) -> int | None:
        """Release cycle of the oldest serviced outstanding fill, if any.

        This is the processor's next scheduled RELEASE event on the
        event-driven timeline: after a critical-mode episode the core
        resumes by jumping directly to this cycle (Fig 5, step 10) —
        no emulated cycle before it can make the core runnable.  Exposed
        for engine instrumentation and the scheduler edge-case tests.
        """
        for request in self.outstanding:
            if request.release is not None:
                return request.release
        return None

    def clflush(self, addr: int) -> tuple[int | None, int]:
        """Flush one line (memory-mapped CLFLUSH register, Section 7.1).

        Returns (writeback address or None, cycles charged).
        """
        self.cycles += self.config.flush_latency
        return self.hierarchy.flush_line(addr), self.config.flush_latency

    # -- internals ------------------------------------------------------------

    def _can_issue(self, access: Access) -> bool:
        if not self.outstanding:
            return True
        if access.flags & FLAG_DEPENDENT:
            return False
        if len(self.outstanding) >= self.config.mlp:
            return False
        oldest = self.outstanding[0]
        return self.stats.accesses - oldest.issue_index < self.config.miss_window

    def _consume_ready(self, access: Access) -> bool:
        """Consume resolved responses that gate ``access``.

        Returns False when the gating response has not been serviced yet —
        i.e. the processor is clock-gated.
        """
        if access.flags & FLAG_DEPENDENT:
            if any(r.release is None for r in self.outstanding):
                return False
            for request in self.outstanding:
                self._consume(request)
            self.outstanding.clear()
            return True
        oldest = self.outstanding[0]
        if oldest.release is None:
            return False
        self._consume(oldest)
        self.outstanding.pop(0)
        return True

    def _consume(self, request: MemoryRequest) -> None:
        assert request.release is not None
        if request.release > self.cycles:
            self.stats.stall_cycles += request.release - self.cycles
            self.cycles = request.release
        self.stats.request_latencies.append(max(0, request.release - request.tag))

    def _drain(self) -> bool:
        """At end of trace: consume every outstanding fill if possible."""
        if any(r.release is None for r in self.outstanding):
            return False
        for request in self.outstanding:
            self._consume(request)
        self.outstanding.clear()
        return True

    def _execute(self, access: Access, new_requests: list[MemoryRequest]) -> None:
        stats = self.stats
        stats.accesses += 1
        is_write = bool(access.flags & FLAG_WRITE)
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1
        if access.gap:
            self.cycles += access.gap
            stats.compute_cycles += access.gap
        traffic = self.hierarchy.access(access.addr, is_write)
        self.cycles += traffic.latency
        channel_of = self.channel_hook
        for wb_addr in traffic.writebacks:
            stats.writeback_requests += 1
            new_requests.append(MemoryRequest(
                rid=next(self._rid), addr=wb_addr, is_write=True,
                tag=self.cycles, is_writeback=True,
                issue_index=stats.accesses,
                channel=0 if channel_of is None else channel_of(wb_addr),
                core=self.core_id))
        if traffic.fill_line is not None:
            stats.llc_miss_requests += 1
            request = MemoryRequest(
                rid=next(self._rid), addr=traffic.fill_line,
                is_write=is_write, tag=self.cycles,
                issue_index=stats.accesses,
                channel=0 if channel_of is None
                else channel_of(traffic.fill_line),
                core=self.core_id)
            self.outstanding.append(request)
            new_requests.append(request)
            prefetcher = self.prefetcher
            if prefetcher is not None:
                for pf_addr in prefetcher.observe(traffic.fill_line):
                    stats.prefetch_requests += 1
                    new_requests.append(MemoryRequest(
                        rid=next(self._rid), addr=pf_addr, is_write=False,
                        tag=self.cycles, issue_index=stats.accesses,
                        channel=0 if channel_of is None
                        else channel_of(pf_addr),
                        core=self.core_id, is_prefetch=True))
