"""Experiment harnesses regenerating every table and figure of the paper.

Each module exposes ``run(...) -> dict`` (rows + aggregates for
programmatic checks), ``report(result) -> str`` (the printed
table/figure), and a ``SWEEP`` :class:`~repro.runner.spec.SweepSpec`
declaring the artifact's independent measurement points for the parallel
cached runner (``python -m repro run``);
``python -m repro.experiments.<name>`` regenerates one artifact from the
command line.

===========================  =======================================
Module                       Paper artifact
===========================  =======================================
``tab01_platforms``          Table 1 (platform comparison)
``fig02_breakdown``          Figure 2 (request time breakdown)
``sec6_validation``          Section 6 validation (<0.1 % error)
``fig08_latency_profile``    Figure 8 (lmbench latency profile)
``fig10_rowclone_noflush``   Figure 10 (RowClone, No Flush)
``fig11_rowclone_clflush``   Figure 11 (RowClone, CLFLUSH)
``fig12_trcd_heatmap``       Figure 12 (min-tRCD heatmap)
``fig13_trcd_speedup``       Figure 13 (tRCD-reduction speedup)
``fig14_sim_speed``          Figure 14 (simulation speed)
``fig15_channel_scaling``    Figure 15 (channel scaling, extension)
``fig16_core_contention``    Figure 16 (core contention, extension)
===========================  =======================================
"""

from repro.experiments import (
    ablations,
    common,
    fig02_breakdown,
    fig08_latency_profile,
    fig10_rowclone_noflush,
    fig11_rowclone_clflush,
    fig12_trcd_heatmap,
    fig13_trcd_speedup,
    fig14_sim_speed,
    fig15_channel_scaling,
    fig16_core_contention,
    sec6_validation,
    tab01_platforms,
)

__all__ = [
    "ablations",
    "common",
    "fig02_breakdown",
    "fig08_latency_profile",
    "fig10_rowclone_noflush",
    "fig11_rowclone_clflush",
    "fig12_trcd_heatmap",
    "fig13_trcd_speedup",
    "fig14_sim_speed",
    "fig15_channel_scaling",
    "fig16_core_contention",
    "sec6_validation",
    "tab01_platforms",
]
