"""Figure 17 (extension) — scheduler fairness/throughput frontier.

PR 7's scheduler zoo makes policy a swept axis: every registered
scheduler (:data:`repro.core.schedulers.SCHEDULERS`) runs the same
multi-programmed mixes on the same topologies, and each
(mix, topology) group reports the classic two-objective frontier of the
memory-scheduling literature:

* **weighted speedup** (throughput, higher is better) —
  ``sum_i 1/slowdown_i``, each core's solo-normalized progress;
* **max slowdown** (fairness, lower is better) — the most-victimized
  core's slowdown.

A scheduler is *on the frontier* of its group when no other scheduler
in that group beats it on one objective without losing the other
(non-dominated, with an epsilon so bit-equal points tie rather than
knock each other off).  The paper's FR-FCFS default (no age cap — the
exact single-core artifact configuration) is the reference point: it
lands on the frontier in at least one group, while the fairness-aware
policies (ATLAS-style ranking, batch scheduling) trade around it when
a latency-critical pointer chase shares the channel with bandwidth
hogs.

Every point is a deterministic emulation, so frontier membership is a
reproducible fact of the model, not a statistical claim.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core.config import ControllerConfig, jetson_nano_time_scaling
from repro.core.schedulers import scheduler_names
from repro.core.workload_mix import WorkloadMix, run_mix
from repro.experiments.common import full_runs_enabled, scaled_cache_overrides
from repro.runner import SweepPoint, SweepSpec, register

#: Every scheduler in the registry, in sorted-name order.
SCHEDULERS = scheduler_names()

#: Workload mixes (label -> spec), cycled over the cores of each point:
#: ``copy-init-chase`` adds a writeback-heavy store stream to the
#: bandwidth-vs-latency fight, ``copy-chase`` is the pure two-class mix.
MIXES = {
    "copy-init-chase": "stream+init+pointer_chase",
    "copy-chase": "stream+pointer_chase",
}

#: Memory-system topology presets swept (see ``config.TOPOLOGIES``).
TOPOLOGIES = ("ddr4-1ch", "ddr4-2ch")

#: Cores sharing the memory system at every point.
CORES = 4

#: Dominance epsilon: differences below this tie (bit-equal points all
#: stay on the frontier instead of knocking each other off).
EPS = 1e-9


def sweep_point(scheduler: str, mix_label: str, topology: str,
                scale: int = 1) -> dict:
    """Run one (scheduler, mix, topology) cell of the grid."""
    config = jetson_nano_time_scaling(
        **scaled_cache_overrides()).with_topology(topology).with_overrides(
        controller=ControllerConfig(scheduler=scheduler,
                                    scheduler_age_cap=None))
    mix = WorkloadMix.parse(MIXES[mix_label], cores=CORES)
    run = run_mix(config, mix, scale=scale)
    result = run.result
    slowdowns = run.slowdowns
    row_total = result.row_hits + result.row_misses + result.row_conflicts
    return {
        "scheduler": scheduler,
        "mix": mix_label,
        "topology": topology,
        "cores": CORES,
        "weighted_speedup": sum(1.0 / s for s in slowdowns if s > 0.0),
        "max_slowdown": run.max_slowdown,
        "min_slowdown": run.min_slowdown,
        "avg_slowdown": run.avg_slowdown,
        "unfairness": run.unfairness,
        "slowdowns": slowdowns,
        "row_hit_rate": result.row_hits / row_total if row_total else 0.0,
        "emulated_ms": result.emulated_ps / 1e9,
    }


def pareto_frontier(points: list[tuple[float, float]],
                    eps: float = EPS) -> list[int]:
    """Indices of non-dominated (throughput up, slowdown down) points.

    ``points`` are ``(weighted_speedup, max_slowdown)`` pairs.  Point j
    dominates point i when it is at least as good on both objectives
    and strictly better (beyond ``eps``) on one; equal points therefore
    never dominate each other, and both stay on the frontier.
    """
    frontier = []
    for i, (ws_i, sd_i) in enumerate(points):
        dominated = False
        for j, (ws_j, sd_j) in enumerate(points):
            if j == i:
                continue
            if (ws_j >= ws_i - eps and sd_j <= sd_i + eps
                    and (ws_j > ws_i + eps or sd_j < sd_i - eps)):
                dominated = True
                break
        if not dominated:
            frontier.append(i)
    return frontier


def _build_points(schedulers: tuple[str, ...] = SCHEDULERS,
                  mixes: tuple[str, ...] = tuple(MIXES),
                  topologies: tuple[str, ...] = TOPOLOGIES,
                  scale: int | None = None) -> tuple[SweepPoint, ...]:
    if scale is None:
        scale = 2 if full_runs_enabled() else 1
    return tuple(
        SweepPoint(artifact="fig17",
                   point_id=f"{topology}-{mix_label}-{scheduler}",
                   fn=f"{__name__}:sweep_point",
                   params={"scheduler": scheduler, "mix_label": mix_label,
                           "topology": topology, "scale": scale})
        for topology in topologies
        for mix_label in mixes
        for scheduler in schedulers)


def _combine(results: dict) -> dict:
    points = sorted(results.values(),
                    key=lambda v: (v["topology"], v["mix"], v["scheduler"]))
    groups: dict[str, dict] = {}
    for value in points:
        key = f"{value['topology']}/{value['mix']}"
        groups.setdefault(key, []).append(value)
    frontiers = {}
    on_frontier: set[tuple[str, str, str]] = set()
    for key, members in groups.items():
        coords = [(v["weighted_speedup"], v["max_slowdown"]) for v in members]
        winners = pareto_frontier(coords)
        frontiers[key] = sorted(members[i]["scheduler"] for i in winners)
        for i in winners:
            v = members[i]
            on_frontier.add((v["topology"], v["mix"], v["scheduler"]))
    rows = [(v["topology"], v["mix"], v["scheduler"],
             round(v["weighted_speedup"], 4), round(v["max_slowdown"], 4),
             round(v["unfairness"], 4),
             "yes" if (v["topology"], v["mix"], v["scheduler"]) in on_frontier
             else "")
            for v in points]
    frfcfs_groups = sorted(k for k, scheds in frontiers.items()
                           if "fr-fcfs" in scheds)
    return {
        "rows": rows,
        "schedulers": sorted({v["scheduler"] for v in points}),
        "groups": sorted(groups),
        "frontiers": frontiers,
        "frfcfs_frontier_groups": frfcfs_groups,
        "frfcfs_on_frontier": bool(frfcfs_groups),
        "weighted_speedup": {
            f"{v['topology']}/{v['mix']}/{v['scheduler']}":
                v["weighted_speedup"] for v in points},
        "max_slowdown": {
            f"{v['topology']}/{v['mix']}/{v['scheduler']}":
                v["max_slowdown"] for v in points},
        "details": {f"{v['topology']}-{v['mix']}-{v['scheduler']}": v
                    for v in points},
    }


def run(schedulers: tuple[str, ...] = SCHEDULERS,
        mixes: tuple[str, ...] = tuple(MIXES),
        topologies: tuple[str, ...] = TOPOLOGIES,
        scale: int | None = None) -> dict:
    points = _build_points(schedulers=tuple(schedulers), mixes=tuple(mixes),
                           topologies=tuple(topologies), scale=scale)
    return _combine({p.point_id: sweep_point(**p.params) for p in points})


SWEEP = register(SweepSpec(
    artifact="fig17", title="Figure 17 (scheduler frontier)",
    module=__name__,
    build_points=_build_points, combine=_combine,
    csv_headers=("topology", "mix", "scheduler", "weighted speedup",
                 "max slowdown", "unfairness", "frontier"),
    description="scheduler x mix x topology sweep: weighted-speedup vs"
                " max-slowdown fairness/throughput frontier per group",
    runtime="~30 s"))


def report(result: dict) -> str:
    table = format_table(
        ["topology", "mix", "scheduler", "weighted speedup", "max slowdown",
         "unfairness", "frontier"],
        result["rows"],
        title=f"Figure 17 — scheduler frontier ({CORES}-core mixes)")
    notes = []
    for key in result["groups"]:
        notes.append(f"{key}: frontier = "
                     + ", ".join(result["frontiers"][key]))
    if result["frfcfs_on_frontier"]:
        notes.append("paper default fr-fcfs is on the frontier in: "
                     + ", ".join(result["frfcfs_frontier_groups"]))
    else:
        notes.append("WARNING: fr-fcfs fell off every group's frontier")
    return table + "\n" + "\n".join(notes)


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
