"""Figure 15 (extension) — memory-system channel scaling.

The paper's evaluated system is one DDR4 channel (footnote 5).  This
experiment extends the reproduction beyond the paper: the same
bandwidth-bound copy kernel runs on 1-, 2-, and 4-channel topologies
(``ddr4-Nch`` presets, ``channel-line`` interleave, identical
within-channel layout), and we report

* **emulated copy throughput** — bytes moved per emulated second.  With
  per-channel software memory controllers servicing their slices of
  every critical-mode batch on independent DRAM timelines, throughput
  must *increase* with channel count (channel-level parallelism);
* **request routing** — how the channel interleave spread the kernel's
  DRAM requests over the controllers (near-uniform for a stream);
* a **Figure-14-style axis** — host simulation speed (emulated processor
  cycles per wall second) at each channel count, isolating what the
  extra per-channel bookkeeping costs the host.

Like Figure 14, the host-speed column measures wall time, so the sweep
is ``parallel_safe=False``; the emulated columns are deterministic.
"""

from __future__ import annotations

from repro.analysis import bar_chart, format_table
from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.experiments.common import full_runs_enabled, scaled_cache_overrides
from repro.runner import SweepPoint, SweepSpec, register
from repro.workloads import microbench

#: Channel counts swept (the fig14-style axis).
CHANNEL_COUNTS = (1, 2, 4)

#: Lines of the copy stream per channel-count point (the *total* work is
#: fixed across points so emulated times are directly comparable).
CI_LINES = 8_192            # 512 KiB footprint
FULL_LINES = 65_536         # 4 MiB footprint


def sweep_point(channels: int, total_lines: int) -> dict:
    """Copy-stream throughput on one ``channels``-wide topology.

    Built from the ``ddr4-1ch`` preset with the channel count overridden
    so any count — not just the preset 1/2/4 — sweeps cleanly.
    """
    config = jetson_nano_time_scaling(
        **scaled_cache_overrides()).with_topology(
        "ddr4-1ch", mapping_scheme="channel-line", channels=channels)
    system = EasyDRAMSystem(config)
    lines_per_channel = total_lines // channels
    trace = microbench.channel_stream_blocks(
        system.mapper, lines_per_channel, write=True)
    result = system.run(trace, workload_name=f"stream-{channels}ch")
    # The stream issues exactly lines_per_channel * channels lines; with
    # a channel count that does not divide total_lines the remainder is
    # dropped, so throughput must be computed from the issued work.
    bytes_moved = lines_per_channel * channels * config.geometry.line_bytes
    emulated_s = result.emulated_ps / 1e12
    return {
        "channels": channels,
        "bytes_moved": bytes_moved,
        "emulated_ms": result.emulated_ps / 1e9,
        "gbps": bytes_moved / emulated_s / 1e9 if emulated_s else 0.0,
        "host_mhz": result.sim_speed_hz / 1e6,
        "requests_per_channel": result.requests_per_channel,
        "stall_cycles": result.stall_cycles,
        "row_hits": result.row_hits,
    }


def _build_points(channel_counts: tuple[int, ...] = CHANNEL_COUNTS,
                  total_lines: int | None = None) -> tuple[SweepPoint, ...]:
    if total_lines is None:
        total_lines = FULL_LINES if full_runs_enabled() else CI_LINES
    return tuple(
        SweepPoint(artifact="fig15", point_id=f"{channels}ch",
                   fn=f"{__name__}:sweep_point",
                   params={"channels": channels, "total_lines": total_lines})
        for channels in channel_counts)


def _combine(results: dict) -> dict:
    ordered = sorted(results.values(), key=lambda v: v["channels"])
    base_gbps = ordered[0]["gbps"] if ordered else 0.0
    rows = []
    for value in ordered:
        speedup = value["gbps"] / base_gbps if base_gbps else 0.0
        balance = value["requests_per_channel"]
        rows.append((value["channels"], round(value["emulated_ms"], 4),
                     round(value["gbps"], 3), round(speedup, 2),
                     round(value["host_mhz"], 3),
                     "/".join(str(n) for n in balance)))
    return {
        "rows": rows,
        "channels": [v["channels"] for v in ordered],
        "gbps": [v["gbps"] for v in ordered],
        "speedups": [r[3] for r in rows],
        "host_mhz": [v["host_mhz"] for v in ordered],
        "requests_per_channel": {str(v["channels"]): v["requests_per_channel"]
                                 for v in ordered},
        "monotonic": all(b["gbps"] > a["gbps"]
                         for a, b in zip(ordered, ordered[1:])),
    }


def run(channel_counts: tuple[int, ...] = CHANNEL_COUNTS,
        total_lines: int | None = None) -> dict:
    points = _build_points(channel_counts=tuple(channel_counts),
                           total_lines=total_lines)
    return _combine({p.point_id: sweep_point(**p.params) for p in points})


SWEEP = register(SweepSpec(
    artifact="fig15", title="Figure 15 (channel scaling)", module=__name__,
    build_points=_build_points, combine=_combine,
    csv_headers=("channels", "emulated ms", "GB/s", "speedup vs 1ch",
                 "host MHz", "requests/channel"),
    description="beyond-paper channel scaling: stream throughput and host"
                " sim speed on 1/2/4-channel topologies",
    runtime="~1 s",
    parallel_safe=False))


def report(result: dict) -> str:
    table = format_table(
        ["channels", "emulated ms", "GB/s", "speedup vs 1ch", "host MHz",
         "requests/channel"],
        result["rows"],
        title="Figure 15 — copy-stream throughput vs channel count")
    chart = bar_chart(
        [f"{c}ch" for c in result["channels"]],
        {"GB/s (emulated)": result["gbps"]},
        title="\nFigure 15 (chart)")
    tail = ("\nthroughput scales monotonically with channels"
            if result["monotonic"] else
            "\nWARNING: throughput did not scale monotonically")
    return table + "\n" + chart + tail


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
