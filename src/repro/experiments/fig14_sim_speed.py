"""Figure 14 — simulation speed of EasyDRAM vs the cycle-level baseline.

Simulation speed = simulated processor cycles per wall-clock second, in
MHz, for the Figure 13 workloads.  Paper results: EasyDRAM averages
5.9x (max 20.3x) faster than Ramulator 2.0, with the gap growing as the
workload's memory intensity falls (durbin, at 0.01 LLC misses per
kilo-cycle, shows the maximum) — an event-driven emulator skips compute
phases that a cycle-level simulator must tick through.

In this reproduction both "platforms" are Python models, so absolute
MHz is far below the paper's FPGA numbers; the *relative* gap and its
correlation with memory intensity are the reproduced shape.
"""

from __future__ import annotations

from repro.analysis import bar_chart, format_table, geomean
from repro.baselines.ramulator import RamulatorConfig, RamulatorSim
from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.experiments.common import polybench_size, scaled_cache_overrides
from repro.workloads import polybench

KERNELS = polybench.FIG13_KERNELS
RAMULATOR_CAP = 60_000


def run(kernels: tuple[str, ...] = KERNELS, size: str | None = None) -> dict:
    size = size or polybench_size()
    config = jetson_nano_time_scaling(**scaled_cache_overrides())
    rows = []
    easy_speeds: list[float] = []
    ram_speeds: list[float] = []
    ratios: list[float] = []
    for name in kernels:
        easy = EasyDRAMSystem(config).run(polybench.trace(name, size), name)
        ram = RamulatorSim(RamulatorConfig(max_accesses=RAMULATOR_CAP)).run(
            polybench.trace(name, size), name)
        easy_mhz = easy.sim_speed_hz / 1e6
        ram_mhz = ram.sim_speed_hz / 1e6
        easy_speeds.append(easy_mhz)
        ram_speeds.append(ram_mhz)
        ratio = easy_mhz / ram_mhz if ram_mhz else 0.0
        ratios.append(ratio)
        rows.append((name, round(easy_mhz, 3), round(ram_mhz, 3),
                     round(ratio, 2), round(easy.mpk_accesses, 2)))
    rows.append(("geomean", round(geomean(easy_speeds), 3),
                 round(geomean(ram_speeds), 3),
                 round(geomean(ratios), 2), ""))
    return {
        "rows": rows,
        "kernels": list(kernels),
        "easydram_mhz": easy_speeds,
        "ramulator_mhz": ram_speeds,
        "speed_ratios": ratios,
        "mean_ratio": geomean(ratios),
        "max_ratio": max(ratios),
    }


def report(result: dict) -> str:
    table = format_table(
        ["workload", "EasyDRAM MHz", "Ramulator MHz", "ratio",
         "LLC-miss/kacc"],
        result["rows"],
        title="Figure 14 — simulation speed (simulated cycles / wall second)")
    chart = bar_chart(
        result["kernels"],
        {"EasyDRAM": result["easydram_mhz"],
         "Ramulator 2.0": result["ramulator_mhz"]},
        log=True, title="\nFigure 14 (chart, log scale)")
    tail = (f"\nEasyDRAM is {result['mean_ratio']:.1f}x faster on average"
            f" (paper: 5.9x), max {result['max_ratio']:.1f}x (paper: 20.3x)")
    return table + "\n" + chart + tail


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
