"""Figure 14 — simulation speed of EasyDRAM vs the cycle-level baseline.

Simulation speed = simulated processor cycles per wall-clock second, in
MHz, for the Figure 13 workloads.  Paper results: EasyDRAM averages
5.9x (max 20.3x) faster than Ramulator 2.0, with the gap growing as the
workload's memory intensity falls (durbin, at 0.01 LLC misses per
kilo-cycle, shows the maximum) — an event-driven emulator skips compute
phases that a cycle-level simulator must tick through.

In this reproduction both "platforms" are Python models, so absolute
MHz is far below the paper's FPGA numbers; the *relative* gap and its
correlation with memory intensity are the reproduced shape.

The sweep also carries an **engine-comparison axis**: every kernel is
emulated twice, once on the event-driven skip-ahead core and once on the
cycle-stepped reference engine (see :mod:`repro.core.engine`).  The two
engines return bit-identical artifacts, so the extra column isolates the
host-time win of event-driven servicing on this host — the same
argument Figure 14 makes for EasyDRAM against Ramulator, one level down.
"""

from __future__ import annotations

import os

from repro.analysis import bar_chart, format_table, geomean
from repro.baselines.ramulator import RamulatorConfig, RamulatorSim
from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.experiments.common import polybench_size, scaled_cache_overrides
from repro.runner import SweepPoint, SweepSpec, register
from repro.workloads import polybench

KERNELS = polybench.FIG13_KERNELS
RAMULATOR_CAP = 60_000

#: Keep sampling a platform until its accumulated wall time reaches this
#: floor.  The fast path finishes mini kernels in single-digit
#: milliseconds, where one-shot rates are dominated by scheduler jitter;
#: best-of-N over a fixed window keeps the reported rate stable run to
#: run.  The round cap only bounds pathological cases — it must be high
#: enough that millisecond-scale runs actually fill the window.
MIN_MEASURE_SECONDS = 0.1
MAX_MEASURE_ROUNDS = 100


def _best_rate(run_once) -> tuple[float, object]:
    """Best (max) sim rate over a minimum measurement window."""
    best_hz = 0.0
    result = None
    spent = 0.0
    for _ in range(MAX_MEASURE_ROUNDS):
        result = run_once()
        spent += result.wall_seconds
        best_hz = max(best_hz, result.sim_speed_hz)
        if spent >= MIN_MEASURE_SECONDS:
            break
    return best_hz, result


def sweep_point(kernel: str, size: str) -> dict:
    """Wall-clock simulation speed of both platforms on one kernel.

    Note: unlike every other sweep, these values measure *this host's*
    wall time, so they vary run to run (caching still makes re-runs
    reproducible — the cached measurement is returned verbatim).  The
    sweep is marked ``parallel_safe=False`` so concurrent workers never
    contend for cores while a point is timing itself.
    """
    config = jetson_nano_time_scaling(**scaled_cache_overrides())
    # The serve kernel (REPRO_KERNEL) collapses memory-service host time
    # so far that it would swamp the engine-comparison axis this figure
    # isolates — the memory-bound kernels would suddenly "gain" the most,
    # inverting the intensity correlation that is the reproduced shape.
    # Both platforms measure with it pinned off; every *artifact*-bearing
    # experiment runs it as usual (results are bit-identical regardless).
    prior = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = "0"
    try:
        easy_hz, easy = _best_rate(lambda: EasyDRAMSystem(
            config, engine="event").run(polybench.trace_blocks(kernel, size),
                                        kernel))
        cycle_hz, _ = _best_rate(lambda: EasyDRAMSystem(
            config, engine="cycle").run(polybench.trace_blocks(kernel, size),
                                        kernel))
    finally:
        if prior is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = prior
    ram_hz, _ = _best_rate(lambda: RamulatorSim(RamulatorConfig(
        max_accesses=RAMULATOR_CAP)).run(polybench.trace(kernel, size),
                                         kernel))
    return {
        "easydram_mhz": easy_hz / 1e6,
        "easydram_cycle_mhz": cycle_hz / 1e6,
        "ramulator_mhz": ram_hz / 1e6,
        "mpk_accesses": easy.mpk_accesses,
    }


def _build_points(kernels: tuple[str, ...] = KERNELS,
                  size: str | None = None) -> tuple[SweepPoint, ...]:
    size = size or polybench_size()
    return tuple(
        SweepPoint(artifact="fig14", point_id=kernel,
                   fn=f"{__name__}:sweep_point",
                   params={"kernel": kernel, "size": size})
        for kernel in kernels)


def _combine(results: dict) -> dict:
    rows = []
    easy_speeds: list[float] = []
    cycle_speeds: list[float] = []
    ram_speeds: list[float] = []
    ratios: list[float] = []
    engine_speedups: list[float] = []
    for name, value in results.items():
        easy_mhz = value["easydram_mhz"]
        cycle_mhz = value.get("easydram_cycle_mhz", 0.0)
        ram_mhz = value["ramulator_mhz"]
        easy_speeds.append(easy_mhz)
        cycle_speeds.append(cycle_mhz)
        ram_speeds.append(ram_mhz)
        ratio = easy_mhz / ram_mhz if ram_mhz else 0.0
        ratios.append(ratio)
        engine_speedup = easy_mhz / cycle_mhz if cycle_mhz else 0.0
        engine_speedups.append(engine_speedup)
        rows.append((name, round(easy_mhz, 3), round(cycle_mhz, 3),
                     round(ram_mhz, 3), round(ratio, 2),
                     round(engine_speedup, 2),
                     round(value["mpk_accesses"], 2)))
    rows.append(("geomean", round(geomean(easy_speeds), 3),
                 round(geomean(cycle_speeds), 3),
                 round(geomean(ram_speeds), 3),
                 round(geomean(ratios), 2),
                 round(geomean(engine_speedups), 2), ""))
    return {
        "rows": rows,
        "kernels": list(results),
        "easydram_mhz": easy_speeds,
        "easydram_cycle_mhz": cycle_speeds,
        "ramulator_mhz": ram_speeds,
        "speed_ratios": ratios,
        "engine_speedups": engine_speedups,
        "mean_ratio": geomean(ratios),
        "max_ratio": max(ratios),
        "mean_engine_speedup": geomean(engine_speedups),
    }


def run(kernels: tuple[str, ...] = KERNELS, size: str | None = None) -> dict:
    points = _build_points(kernels=tuple(kernels), size=size)
    return _combine({p.point_id: sweep_point(**p.params) for p in points})


SWEEP = register(SweepSpec(
    artifact="fig14", title="Figure 14", module=__name__,
    build_points=_build_points, combine=_combine,
    csv_headers=("workload", "EasyDRAM (event) MHz", "EasyDRAM (cycle) MHz",
                 "Ramulator MHz", "ratio", "engine speedup",
                 "LLC-miss/kacc"),
    description="simulation speed vs the cycle-level baseline, plus the"
                " event-vs-cycle engine comparison",
    runtime="~3 s",
    parallel_safe=False))


def report(result: dict) -> str:
    table = format_table(
        ["workload", "EasyDRAM (event) MHz", "EasyDRAM (cycle) MHz",
         "Ramulator MHz", "ratio", "engine speedup", "LLC-miss/kacc"],
        result["rows"],
        title="Figure 14 — simulation speed (simulated cycles / wall second)")
    chart = bar_chart(
        result["kernels"],
        {"EasyDRAM": result["easydram_mhz"],
         "Ramulator 2.0": result["ramulator_mhz"]},
        log=True, title="\nFigure 14 (chart, log scale)")
    tail = (f"\nEasyDRAM is {result['mean_ratio']:.1f}x faster on average"
            f" (paper: 5.9x), max {result['max_ratio']:.1f}x (paper: 20.3x)")
    engine = result.get("mean_engine_speedup")
    if engine:
        tail += (f"\nEvent-driven engine vs cycle-stepped reference:"
                 f" {engine:.1f}x host speedup (bit-identical artifacts)")
    return table + "\n" + chart + tail


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
