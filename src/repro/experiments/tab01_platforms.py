"""Table 1 — comparison of DRAM-technique evaluation platforms.

The qualitative columns come straight from the paper; the "evaluated CPU
clock cycles per second" column is *measured* where we model the
platform: EasyDRAM's estimated FPGA-wall throughput (the platform's
defining ~10M cycles/s figure) and the software simulator's measured
rate come from actual runs of this repository's engines.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines.ramulator import RamulatorConfig, RamulatorSim
from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.experiments.common import polybench_size
from repro.runner import SweepPoint, SweepSpec, register
from repro.workloads import polybench


def sweep_point(kernel: str, size: str) -> dict:
    """Measure both platforms' rates and build the whole table."""
    easy = EasyDRAMSystem(jetson_nano_time_scaling()).run(
        polybench.trace_blocks(kernel, size), kernel)
    ram = RamulatorSim(RamulatorConfig()).run(
        polybench.trace(kernel, size), kernel)
    # Cycles the modeled FPGA platform would evaluate per second of FPGA
    # wall time (the paper's Table 1 metric for hardware platforms).
    easy_fpga_rate = easy.cycles / max(easy.estimated_fpga_seconds, 1e-12)
    rows = [
        ("Commercial systems", "yes", "no", "billions", "yes", "no"),
        ("Software simulators", "no", "yes (C/C++)",
         f"~{_eng(ram.sim_speed_hz)} (measured, this host)", "yes", "yes"),
        ("FPGA-based simulators", "no", "no", "~4M - ~100M", "yes", "yes"),
        ("DRAM testing platforms", "DDR3/4", "no", "n/a", "no", "no"),
        ("FPGA-based emulators", "DDR3/4", "HDL", "50M - 200M", "no", "yes"),
        ("EasyDRAM (this work)", "DDR4", "yes (C/C++)",
         f"~{_eng(easy_fpga_rate)} (estimated FPGA wall)", "yes", "yes"),
    ]
    return {
        "rows": rows,
        "easydram_fpga_rate_hz": easy_fpga_rate,
        "ramulator_rate_hz": ram.sim_speed_hz,
    }


def run(kernel: str = "gemm", size: str | None = None) -> dict:
    return sweep_point(kernel, size or polybench_size())


def _build_points(kernel: str = "gemm",
                  size: str | None = None) -> tuple[SweepPoint, ...]:
    return (SweepPoint(
        artifact="tab01", point_id="table",
        fn=f"{__name__}:sweep_point",
        params={"kernel": kernel, "size": size or polybench_size()}),)


def _combine(results: dict) -> dict:
    return results["table"]


SWEEP = register(SweepSpec(
    artifact="tab01", title="Table 1", module=__name__,
    build_points=_build_points, combine=_combine,
    csv_headers=("platform", "real DRAM", "flexible MC", "CPU cycles/s",
                 "accurate perf", "configurable"),
    description="evaluation-platform comparison (measured cycles/second"
                " column)",
    runtime="~1 s"))


def _eng(value: float) -> str:
    if value >= 1e9:
        return f"{value / 1e9:.1f}G"
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}K"
    return f"{value:.0f}"


def report(result: dict) -> str:
    table = format_table(
        ["platform", "real DRAM", "flexible MC", "CPU cycles/s",
         "accurate perf", "configurable"],
        result["rows"],
        title="Table 1 — evaluation platform comparison")
    tail = (
        f"\nEasyDRAM estimated FPGA-wall rate:"
        f" {result['easydram_fpga_rate_hz'] / 1e6:.1f}M cycles/s"
        f" (paper: ~10M)")
    return table + tail


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
