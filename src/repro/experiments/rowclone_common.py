"""Shared measurement harness for the RowClone case study (Figs 10/11).

Each data point compares two program variants on a fresh system:

* **CPU** — copy/init with load/store instructions;
* **RowClone** — in-DRAM copy operations with CPU fallback for
  unclonable pairs.

Two settings bracket RowClone's benefit (Section 7.2):

* **No Flush** — source data is already in DRAM (cold caches): best
  case, no coherence work;
* **CLFLUSH** — the data has dirty cached copies that must be written
  back (RowClone variants flush; CPU variants enjoy the warm cache):
  worst case.

The Ramulator series reproduces the baseline's idealized methodology:
partial-workload cycle simulation for the CPU variant and an analytic
command-sequence cost for RowClone (every pair succeeds, no real-chip
characterization, footnote 6 not modeled).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.ramulator import RamulatorConfig, RamulatorSim
from repro.core.config import SystemConfig
from repro.core.system import EasyDRAMSystem
from repro.core.techniques.rowclone import RowCloneTechnique
from repro.experiments.common import full_runs_enabled
from repro.workloads.microbench import (
    cpu_copy_blocks,
    cpu_copy_trace,
    cpu_init_blocks,
    cpu_init_trace,
    touch_blocks,
)

#: Src/dst array anchors (DRAM-row aligned, far apart).
SRC_BASE = 0
DST_BASE = 1 << 26

#: A baseline-simulator access cap (the paper simulates 500M instructions
#: of much larger workloads; we cap and extrapolate the same way).
RAMULATOR_ACCESS_CAP = 60_000


def default_sizes() -> tuple[int, ...]:
    top = 12 if full_runs_enabled() else 9   # 16 MiB or 2 MiB
    return tuple(8 * 1024 * (1 << i) for i in range(top))


@dataclass
class Point:
    """One (size, variant) measurement."""

    size: int
    cpu_ps: int
    rowclone_ps: int
    fallback_rows: int
    total_rows: int

    @property
    def speedup(self) -> float:
        return self.cpu_ps / self.rowclone_ps if self.rowclone_ps else 0.0


def _measured(session, phase) -> int:
    """Emulated picoseconds consumed by ``phase`` (warmup excluded)."""
    period = session._proc_period
    before = session.processor.cycles
    phase()
    return (session.processor.cycles - before) * period


def measure_easydram(config: SystemConfig, workload: str, size: int,
                     clflush: bool) -> Point:
    """One EasyDRAM data point (fresh systems for each variant)."""
    if workload not in ("copy", "init"):
        raise ValueError(f"unknown workload {workload!r}")
    # -- CPU variant ------------------------------------------------------
    sys_cpu = EasyDRAMSystem(config)
    ses_cpu = sys_cpu.session(f"cpu-{workload}")
    if clflush:
        # The data has live cached copies before the measured phase.
        warm_base = SRC_BASE if workload == "copy" else DST_BASE
        ses_cpu.run_trace(touch_blocks(warm_base, size, write=True))
    if workload == "copy":
        cpu_ps = _measured(ses_cpu, lambda: ses_cpu.run_trace(
            cpu_copy_blocks(SRC_BASE, DST_BASE, size)))
    else:
        cpu_ps = _measured(ses_cpu, lambda: ses_cpu.run_trace(
            cpu_init_blocks(DST_BASE, size)))
    # -- RowClone variant ----------------------------------------------------
    sys_rc = EasyDRAMSystem(config)
    ses_rc = sys_rc.session(f"rowclone-{workload}")
    tech = RowCloneTechnique(ses_rc)
    if workload == "copy":
        plan = tech.plan_copy(size, base_addr=SRC_BASE)
        total_rows = len(plan.pairs)
        if clflush:
            ses_rc.run_trace(touch_blocks(SRC_BASE, size, write=True))
        rc_ps = _measured(ses_rc, lambda: tech.execute_copy(
            plan, clflush=clflush))
    else:
        plan = tech.plan_init(size, base_addr=DST_BASE)
        total_rows = len(plan.targets)
        if clflush:
            ses_rc.run_trace(touch_blocks(DST_BASE, size, write=True))
        rc_ps = _measured(ses_rc, lambda: tech.execute_init(
            plan, clflush=clflush, include_source_setup=False))
    return Point(size=size, cpu_ps=cpu_ps, rowclone_ps=rc_ps,
                 fallback_rows=tech.stats.fallback_rows,
                 total_rows=total_rows)


def measure_ramulator(workload: str, size: int, clflush: bool) -> Point:
    """One baseline data point (idealized RowClone, partial simulation)."""
    lines = size // 64
    cap = RAMULATOR_ACCESS_CAP
    sim = RamulatorSim(RamulatorConfig(max_accesses=cap))
    if workload == "copy":
        trace = cpu_copy_trace(SRC_BASE, DST_BASE, size)
        total_accesses = 2 * lines
    else:
        trace = cpu_init_trace(DST_BASE, size)
        total_accesses = lines
    result = sim.run(trace, f"{workload}-{size}")
    # Extrapolate the capped simulation to the full size (the baseline's
    # partial-workload methodology).
    scale = max(1.0, total_accesses / max(1, result.accesses))
    cpu_cycles = result.cpu_cycles * scale
    rows = -(-size // (sim.config.geometry.row_bytes))
    ratio = sim.config.cpu_freq_hz / sim.config.mem_freq_hz
    rc_cycles = sim.rowclone_rows_cycles(rows) * ratio
    if clflush:
        # Dirty resident lines must be written back before the in-DRAM op.
        dirty_lines = min(size, sim.config.l2_size) // 64
        rc_cycles += dirty_lines * sim.model.c_ccd * ratio
        # The CPU variant benefits from the warm cache instead.
        resident = min(size, sim.config.l2_size)
        hit_fraction = resident / size
        cpu_cycles *= (1.0 - 0.5 * hit_fraction)
    cpu_period = 1e12 / sim.config.cpu_freq_hz
    return Point(size=size, cpu_ps=int(cpu_cycles * cpu_period),
                 rowclone_ps=int(rc_cycles * cpu_period),
                 fallback_rows=0, total_rows=rows)
