"""Figure 2 — execution-time breakdown of memory requests.

The paper plots this figure qualitatively to motivate time scaling; we
measure it: the same memory-intensive microworkload runs on four system
models and each reports where a request's time goes —

1. **Real system** — native clocks, hardware memory controller;
2. **FPGA + RTL memory controller** — slow 50 MHz processor, but the
   controller is hardware (tiny scheduling cost);
3. **FPGA + software memory controller** — the controller's software
   cost is fully exposed and serialized (the PiDRAM pathology);
4. **FPGA + software MC + time scaling** — EasyDRAM: the breakdown
   matches the real system again.

Expected shape: (2) and especially (3) inflate total time, with (3)
dominated by scheduling; (4) restores (1)'s proportions.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core.config import (
    cortex_a57_reference,
    jetson_nano_time_scaling,
    pidram_no_time_scaling,
)
from repro.core.easyapi import CostModel
from repro.core.system import EasyDRAMSystem
from repro.runner import SweepPoint, SweepSpec, register
from repro.workloads.lmbench import pointer_chase_blocks

_RTL_COSTS = CostModel(
    poll=0, receive_request=1, enqueue_response=1, address_map=0,
    table_insert=0, command_insert=0, flush=1, per_instruction_transfer=0,
    readback=0, critical_toggle=0)


def _configs():
    rtl = pidram_no_time_scaling()
    rtl = rtl.with_overrides(name="FPGA + RTL MC")
    return (
        ("Real system", cortex_a57_reference(), None),
        ("FPGA + RTL MC", rtl, _RTL_COSTS),
        ("FPGA + software MC", pidram_no_time_scaling(), None),
        ("FPGA + software MC + Time Scaling", jetson_nano_time_scaling(), None),
    )


def _measure(name: str, accesses: int, working_set: int):
    """One system model's breakdown row (and the full result)."""
    config, costs = next(
        (config, costs) for n, config, costs in _configs() if n == name)
    system = EasyDRAMSystem(config, costs=costs)
    result = system.run(
        pointer_chase_blocks(working_set, accesses), "fig02-chase")
    total_ms = result.emulated_ps / 1e9
    b = result.breakdown
    per_req_ns = (result.avg_request_latency_cycles
                  / config.processor.emulated_freq_hz * 1e9)
    sched_share = b.scheduling_ps / max(1, result.emulated_ps)
    dram_share = b.main_memory_ps / max(1, result.emulated_ps)
    row = (name, round(total_ms, 4),
           round(result.avg_request_latency_cycles, 1),
           round(per_req_ns, 1),
           round(100 * sched_share, 1),
           round(100 * dram_share, 1),
           round(100 * result.stall_cycles / result.cycles, 1))
    return row, result


def sweep_point(model: str, accesses: int, working_set: int) -> dict:
    row, _ = _measure(model, accesses, working_set)
    return {"row": row}


def run(accesses: int = 4000, working_set: int = 2 * 1024 * 1024) -> dict:
    """Measure the per-request breakdown on a dependent-load stream."""
    rows = []
    details = {}
    for name, _config, _costs in _configs():
        row, result = _measure(name, accesses, working_set)
        rows.append(row)
        details[name] = result
    return {"rows": rows, "details": details}


def _build_points(accesses: int = 4000,
                  working_set: int = 2 * 1024 * 1024) -> tuple[SweepPoint, ...]:
    return tuple(
        SweepPoint(
            artifact="fig02", point_id=f"model-{i}",
            fn=f"{__name__}:sweep_point",
            params={"model": name, "accesses": accesses,
                    "working_set": working_set})
        for i, (name, _config, _costs) in enumerate(_configs()))


def _combine(results: dict) -> dict:
    return {"rows": [value["row"] for value in results.values()]}


SWEEP = register(SweepSpec(
    artifact="fig02", title="Figure 2", module=__name__,
    build_points=_build_points, combine=_combine,
    csv_headers=("system", "exec ms", "mem latency (cycles)",
                 "mem latency (ns)", "sched %", "DRAM %", "stalled %"),
    description="execution-time breakdown of a memory request on four"
                " system models",
    runtime="~1 s"))


def report(result: dict) -> str:
    table = format_table(
        ["system", "exec ms", "mem latency (cycles)", "mem latency (ns)",
         "sched %", "DRAM %", "stalled %"],
        result["rows"],
        title="Figure 2 — where a memory request's time goes, 4 system models")
    notes = (
        "\nExpected shape: the software-MC FPGA system inflates latency"
        " (scheduling-dominated);\nthe RTL-MC FPGA system shrinks DRAM's"
        " share (too few processor cycles pass);\ntime scaling restores"
        " the real system's proportions.")
    return table + notes


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
