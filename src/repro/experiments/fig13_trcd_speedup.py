"""Figure 13 — execution-time speedup with tRCD reduction.

Eleven PolyBench workloads run to completion on EasyDRAM - Time Scaling
with and without the reduced-tRCD scheduler (Bloom-filtered weak rows),
and on the cycle-level baseline (which simulates only a prefix of each
workload — one of the two reasons the paper gives for its per-workload
divergence, e.g. on correlation).

Paper results: EasyDRAM +2.75 % average (max +9.76 %); Ramulator +2.58 %
average (max +7.04 %).  The evaluated workloads are not memory-intensive
(2.2 LLC misses per kilo-cycle on average), so single-digit gains are
the expected shape.
"""

from __future__ import annotations

from repro.analysis import bar_chart, format_table, geomean
from repro.baselines.ramulator import RamulatorConfig, RamulatorSim
from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.core.techniques.trcd import TrcdReductionTechnique
from repro.dram.timing import ns
from repro.experiments.common import polybench_size, scaled_cache_overrides
from repro.profiling.characterize import oracle_characterize
from repro.workloads import polybench

KERNELS = polybench.FIG13_KERNELS

#: Baseline-simulator access cap (partial-workload simulation).
RAMULATOR_CAP = 120_000


def _config():
    return jetson_nano_time_scaling(**scaled_cache_overrides())


def run(kernels: tuple[str, ...] = KERNELS, size: str | None = None) -> dict:
    size = size or polybench_size()
    config = _config()
    probe = EasyDRAMSystem(config)
    geometry = probe.config.geometry
    characterization = oracle_characterize(
        probe.tile.cells, geometry, range(geometry.num_banks),
        range(geometry.rows_per_bank))
    reduced_c = -(-ns(9.0) // probe.config.timing.tCK)
    nominal_c = -(-probe.config.timing.tRCD // probe.config.timing.tCK)

    rows = []
    easy_speedups: list[float] = []
    ram_speedups: list[float] = []
    for name in kernels:
        base = EasyDRAMSystem(config).run(polybench.trace(name, size), name)
        sys_t = EasyDRAMSystem(config)
        technique = TrcdReductionTechnique(sys_t, characterization)
        technique.install()
        fast = sys_t.run(polybench.trace(name, size), name)
        easy = base.emulated_ps / fast.emulated_ps
        easy_speedups.append(easy)

        ram_base = RamulatorSim(RamulatorConfig(max_accesses=RAMULATOR_CAP)).run(
            polybench.trace(name, size), name)
        sim_fast = RamulatorSim(RamulatorConfig(max_accesses=RAMULATOR_CAP))
        sim_fast.controller.trcd_cycles_for = (
            lambda bank, row: reduced_c
            if characterization.min_trcd(bank, row) <= ns(9.0) else nominal_c)
        ram_fast = sim_fast.run(polybench.trace(name, size), name)
        ram = ram_base.cpu_cycles / max(1, ram_fast.cpu_cycles)
        ram_speedups.append(ram)
        rows.append((name, round(easy, 4), round(ram, 4),
                     round(base.mpk_accesses, 2),
                     technique.stats.reduced_acts,
                     technique.stats.nominal_acts))
    rows.append(("geomean", round(geomean(easy_speedups), 4),
                 round(geomean(ram_speedups), 4), "", "", ""))
    return {
        "rows": rows,
        "kernels": list(kernels),
        "easydram": easy_speedups,
        "ramulator": ram_speedups,
        "easydram_geomean": geomean(easy_speedups),
        "ramulator_geomean": geomean(ram_speedups),
    }


def report(result: dict) -> str:
    table = format_table(
        ["workload", "EasyDRAM speedup", "Ramulator speedup",
         "LLC-miss/kacc", "reduced ACTs", "nominal ACTs"],
        result["rows"],
        title="Figure 13 — tRCD-reduction speedup (1.0 = baseline)")
    chart = bar_chart(
        result["kernels"],
        {"EasyDRAM": result["easydram"], "Ramulator 2.0": result["ramulator"]},
        title="\nFigure 13 (chart)")
    tail = (f"\nEasyDRAM geomean: {result['easydram_geomean']:.4f}"
            f" (paper: +2.75% avg)"
            f"\nRamulator geomean: {result['ramulator_geomean']:.4f}"
            f" (paper: +2.58% avg)")
    return table + "\n" + chart + tail


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
