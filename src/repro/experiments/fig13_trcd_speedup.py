"""Figure 13 — execution-time speedup with tRCD reduction.

Eleven PolyBench workloads run to completion on EasyDRAM - Time Scaling
with and without the reduced-tRCD scheduler (Bloom-filtered weak rows),
and on the cycle-level baseline (which simulates only a prefix of each
workload — one of the two reasons the paper gives for its per-workload
divergence, e.g. on correlation).

Paper results: EasyDRAM +2.75 % average (max +9.76 %); Ramulator +2.58 %
average (max +7.04 %).  The evaluated workloads are not memory-intensive
(2.2 LLC misses per kilo-cycle on average), so single-digit gains are
the expected shape.
"""

from __future__ import annotations

from functools import lru_cache

from repro.analysis import bar_chart, format_table, geomean
from repro.baselines.ramulator import RamulatorConfig, RamulatorSim
from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.core.techniques.trcd import TrcdReductionTechnique
from repro.dram.timing import ns
from repro.experiments.common import polybench_size, scaled_cache_overrides
from repro.profiling.characterize import oracle_characterize
from repro.runner import SweepPoint, SweepSpec, register
from repro.workloads import polybench

KERNELS = polybench.FIG13_KERNELS

#: Baseline-simulator access cap (partial-workload simulation).
RAMULATOR_CAP = 120_000


def _config():
    return jetson_nano_time_scaling(**scaled_cache_overrides())


@lru_cache(maxsize=1)
def _characterization():
    """The full-geometry weak-row map (cells are seeded: deterministic
    across processes, so each pool worker derives the identical map)."""
    probe = EasyDRAMSystem(_config())
    geometry = probe.config.geometry
    characterization = oracle_characterize(
        probe.tile.cells, geometry, range(geometry.num_banks),
        range(geometry.rows_per_bank))
    reduced_c = -(-ns(9.0) // probe.config.timing.tCK)
    nominal_c = -(-probe.config.timing.tRCD // probe.config.timing.tCK)
    return characterization, reduced_c, nominal_c


def sweep_point(kernel: str, size: str) -> dict:
    """Baseline vs reduced-tRCD runs (EasyDRAM and Ramulator), one kernel."""
    characterization, reduced_c, nominal_c = _characterization()
    config = _config()
    base = EasyDRAMSystem(config).run(polybench.trace_blocks(kernel, size),
                                      kernel)
    sys_t = EasyDRAMSystem(config)
    technique = TrcdReductionTechnique(sys_t, characterization)
    technique.install()
    fast = sys_t.run(polybench.trace_blocks(kernel, size), kernel)
    easy = base.emulated_ps / fast.emulated_ps

    ram_base = RamulatorSim(RamulatorConfig(max_accesses=RAMULATOR_CAP)).run(
        polybench.trace(kernel, size), kernel)
    sim_fast = RamulatorSim(RamulatorConfig(max_accesses=RAMULATOR_CAP))
    sim_fast.controller.trcd_cycles_for = (
        lambda bank, row: reduced_c
        if characterization.min_trcd(bank, row) <= ns(9.0) else nominal_c)
    ram_fast = sim_fast.run(polybench.trace(kernel, size), kernel)
    ram = ram_base.cpu_cycles / max(1, ram_fast.cpu_cycles)
    return {
        "easydram": easy,
        "ramulator": ram,
        "mpk_accesses": base.mpk_accesses,
        "reduced_acts": technique.stats.reduced_acts,
        "nominal_acts": technique.stats.nominal_acts,
    }


def _build_points(kernels: tuple[str, ...] = KERNELS,
                  size: str | None = None) -> tuple[SweepPoint, ...]:
    size = size or polybench_size()
    return tuple(
        SweepPoint(artifact="fig13", point_id=kernel,
                   fn=f"{__name__}:sweep_point",
                   params={"kernel": kernel, "size": size})
        for kernel in kernels)


def _combine(results: dict) -> dict:
    rows = []
    easy_speedups: list[float] = []
    ram_speedups: list[float] = []
    for name, value in results.items():
        easy_speedups.append(value["easydram"])
        ram_speedups.append(value["ramulator"])
        rows.append((name, round(value["easydram"], 4),
                     round(value["ramulator"], 4),
                     round(value["mpk_accesses"], 2),
                     value["reduced_acts"], value["nominal_acts"]))
    rows.append(("geomean", round(geomean(easy_speedups), 4),
                 round(geomean(ram_speedups), 4), "", "", ""))
    return {
        "rows": rows,
        "kernels": list(results),
        "easydram": easy_speedups,
        "ramulator": ram_speedups,
        "easydram_geomean": geomean(easy_speedups),
        "ramulator_geomean": geomean(ram_speedups),
    }


def run(kernels: tuple[str, ...] = KERNELS, size: str | None = None) -> dict:
    points = _build_points(kernels=tuple(kernels), size=size)
    return _combine({p.point_id: sweep_point(**p.params) for p in points})


SWEEP = register(SweepSpec(
    artifact="fig13", title="Figure 13", module=__name__,
    build_points=_build_points, combine=_combine,
    csv_headers=("workload", "EasyDRAM speedup", "Ramulator speedup",
                 "LLC-miss/kacc", "reduced ACTs", "nominal ACTs"),
    description="execution-time speedup with reduced-tRCD scheduling on"
                " PolyBench kernels",
    runtime="~5 s"))


def report(result: dict) -> str:
    table = format_table(
        ["workload", "EasyDRAM speedup", "Ramulator speedup",
         "LLC-miss/kacc", "reduced ACTs", "nominal ACTs"],
        result["rows"],
        title="Figure 13 — tRCD-reduction speedup (1.0 = baseline)")
    chart = bar_chart(
        result["kernels"],
        {"EasyDRAM": result["easydram"], "Ramulator 2.0": result["ramulator"]},
        title="\nFigure 13 (chart)")
    tail = (f"\nEasyDRAM geomean: {result['easydram_geomean']:.4f}"
            f" (paper: +2.75% avg)"
            f"\nRamulator geomean: {result['ramulator_geomean']:.4f}"
            f" (paper: +2.58% avg)")
    return table + "\n" + chart + tail


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
