"""Figure 10 — RowClone speedup, No-Flush setting.

Execution-time speedup of RowClone over the CPU baseline for Copy (a)
and Init (b) across array sizes, for three evaluation methodologies:
EasyDRAM without time scaling, EasyDRAM with time scaling, and the
cycle-level baseline simulator.

Paper shapes: without time scaling Copy averages ~307x and Init ~37x;
with time scaling Copy drops to ~15x and Init to ~1.8x; Ramulator lands
in between (27x / 17x) because it idealizes RowClone reliability.  The
headline: evaluation without faithful system modeling overstates the
technique by ~20x.
"""

from __future__ import annotations

from repro.analysis import bar_chart, format_table, geomean
from repro.core.config import jetson_nano_time_scaling, pidram_no_time_scaling
from repro.experiments.rowclone_common import (
    default_sizes,
    measure_easydram,
    measure_ramulator,
)

SERIES = ("EasyDRAM - No Time Scaling", "EasyDRAM - Time Scaling",
          "Ramulator 2.0")


def run(sizes: tuple[int, ...] | None = None, clflush: bool = False) -> dict:
    """Measure Copy and Init speedups for every size and methodology."""
    sizes = sizes or default_sizes()
    out: dict = {"sizes": list(sizes), "clflush": clflush}
    for workload in ("copy", "init"):
        speedups: dict[str, list[float]] = {name: [] for name in SERIES}
        for size in sizes:
            no_ts = measure_easydram(
                pidram_no_time_scaling(), workload, size, clflush)
            ts = measure_easydram(
                jetson_nano_time_scaling(), workload, size, clflush)
            ram = measure_ramulator(workload, size, clflush)
            speedups["EasyDRAM - No Time Scaling"].append(no_ts.speedup)
            speedups["EasyDRAM - Time Scaling"].append(ts.speedup)
            speedups["Ramulator 2.0"].append(ram.speedup)
        out[workload] = speedups
        out[f"{workload}_geomean"] = {
            name: geomean(vals) for name, vals in speedups.items()}
        out[f"{workload}_max"] = {
            name: max(vals) for name, vals in speedups.items()}
    return out


def report(result: dict, figure: str = "Figure 10",
           setting: str = "No Flush") -> str:
    sizes = result["sizes"]
    blocks = []
    for workload in ("copy", "init"):
        speedups = result[workload]
        rows = [
            [_size_label(s)] + [round(speedups[name][i], 2) for name in SERIES]
            for i, s in enumerate(sizes)
        ]
        rows.append(["geomean"] + [
            round(result[f"{workload}_geomean"][name], 2) for name in SERIES])
        rows.append(["max"] + [
            round(result[f"{workload}_max"][name], 2) for name in SERIES])
        blocks.append(format_table(
            ["size"] + list(SERIES), rows,
            title=f"{figure} ({setting}) — {workload} speedup over CPU"))
        blocks.append(bar_chart(
            [_size_label(s) for s in sizes],
            {name: speedups[name] for name in SERIES},
            log=True, title=f"{figure} — {workload} (log-scale bars)"))
    return "\n\n".join(blocks)


def _size_label(size: int) -> str:
    if size >= 1 << 20:
        return f"{size >> 20}M"
    return f"{size >> 10}K"


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
