"""Figure 10 — RowClone speedup, No-Flush setting.

Execution-time speedup of RowClone over the CPU baseline for Copy (a)
and Init (b) across array sizes, for three evaluation methodologies:
EasyDRAM without time scaling, EasyDRAM with time scaling, and the
cycle-level baseline simulator.

Paper shapes: without time scaling Copy averages ~307x and Init ~37x;
with time scaling Copy drops to ~15x and Init to ~1.8x; Ramulator lands
in between (27x / 17x) because it idealizes RowClone reliability.  The
headline: evaluation without faithful system modeling overstates the
technique by ~20x.
"""

from __future__ import annotations

from repro.analysis import bar_chart, format_table, geomean
from repro.core.config import jetson_nano_time_scaling, pidram_no_time_scaling
from repro.experiments.rowclone_common import (
    default_sizes,
    measure_easydram,
    measure_ramulator,
)
from repro.runner import SweepPoint, SweepSpec, register

SERIES = ("EasyDRAM - No Time Scaling", "EasyDRAM - Time Scaling",
          "Ramulator 2.0")

_SERIES_IDS = {"EasyDRAM - No Time Scaling": "no-ts",
               "EasyDRAM - Time Scaling": "ts",
               "Ramulator 2.0": "ramulator"}


def sweep_point(workload: str, size: int, series: str, clflush: bool) -> dict:
    """One (workload, size, methodology) measurement, JSON-ready."""
    if series == "no-ts":
        point = measure_easydram(
            pidram_no_time_scaling(), workload, size, clflush)
    elif series == "ts":
        point = measure_easydram(
            jetson_nano_time_scaling(), workload, size, clflush)
    elif series == "ramulator":
        point = measure_ramulator(workload, size, clflush)
    else:
        raise ValueError(f"unknown series {series!r}")
    return {"workload": workload, "size": size, "series": series,
            "cpu_ps": point.cpu_ps, "rowclone_ps": point.rowclone_ps,
            "speedup": point.speedup,
            "fallback_rows": point.fallback_rows,
            "total_rows": point.total_rows}


def _build_points(sizes: tuple[int, ...] | None = None,
                  clflush: bool = False,
                  artifact: str = "fig10") -> tuple[SweepPoint, ...]:
    sizes = tuple(sizes or default_sizes())
    return tuple(
        SweepPoint(
            artifact=artifact,
            point_id=f"{workload}-{size}-{_SERIES_IDS[name]}",
            fn=f"{__name__}:sweep_point",
            params={"workload": workload, "size": size,
                    "series": _SERIES_IDS[name], "clflush": clflush})
        for workload in ("copy", "init")
        for size in sizes
        for name in SERIES)


def _combine(results: dict, clflush: bool = False) -> dict:
    # Index payloads by the coordinates they carry (never parse ids).
    by_coord = {(v["workload"], v["size"], v["series"]): v
                for v in results.values()}
    sizes: list[int] = []
    for value in results.values():
        if value["size"] not in sizes:
            sizes.append(value["size"])
    out: dict = {"sizes": sizes, "clflush": clflush}
    for workload in ("copy", "init"):
        speedups: dict[str, list[float]] = {name: [] for name in SERIES}
        for size in sizes:
            for name in SERIES:
                value = by_coord[(workload, size, _SERIES_IDS[name])]
                speedups[name].append(value["speedup"])
        out[workload] = speedups
        out[f"{workload}_geomean"] = {
            name: geomean(vals) for name, vals in speedups.items()}
        out[f"{workload}_max"] = {
            name: max(vals) for name, vals in speedups.items()}
    return out


def run(sizes: tuple[int, ...] | None = None, clflush: bool = False) -> dict:
    """Measure Copy and Init speedups for every size and methodology."""
    points = _build_points(sizes=sizes, clflush=clflush)
    return _combine(
        {p.point_id: sweep_point(**p.params) for p in points}, clflush)


SWEEP = register(SweepSpec(
    artifact="fig10", title="Figure 10", module=__name__,
    build_points=_build_points, combine=_combine,
    description="RowClone speedup over CPU copy/init, No-Flush setting,"
                " three methodologies",
    runtime="~25 s"))


def report(result: dict, figure: str = "Figure 10",
           setting: str = "No Flush") -> str:
    sizes = result["sizes"]
    blocks = []
    for workload in ("copy", "init"):
        speedups = result[workload]
        rows = [
            [_size_label(s)] + [round(speedups[name][i], 2) for name in SERIES]
            for i, s in enumerate(sizes)
        ]
        rows.append(["geomean"] + [
            round(result[f"{workload}_geomean"][name], 2) for name in SERIES])
        rows.append(["max"] + [
            round(result[f"{workload}_max"][name], 2) for name in SERIES])
        blocks.append(format_table(
            ["size"] + list(SERIES), rows,
            title=f"{figure} ({setting}) — {workload} speedup over CPU"))
        blocks.append(bar_chart(
            [_size_label(s) for s in sizes],
            {name: speedups[name] for name in SERIES},
            log=True, title=f"{figure} — {workload} (log-scale bars)"))
    return "\n\n".join(blocks)


def _size_label(size: int) -> str:
    if size >= 1 << 20:
        return f"{size >> 20}M"
    return f"{size >> 10}K"


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
