"""Ablation studies on EasyDRAM's design choices.

Beyond the paper's figures, these sweeps isolate the contribution of
individual mechanisms (DESIGN.md section 6):

* ``scheduler_ablation`` — FR-FCFS vs FCFS on a row-locality workload
  (why the software library ships FR-FCFS as the default);
* ``mlp_sweep`` — how the modeled core's memory-level parallelism bound
  shapes streaming throughput (the knob that separates the in-order
  No-Time-Scaling system from the A57 model);
* ``bloom_ablation`` — weak-row Bloom-filter size vs false-positive
  rate vs retained tRCD-reduction benefit (the RAIDR-style trade-off);
* ``quantization_sweep`` — time-scaling validation error vs the
  measurement clock, demonstrating that the <0.1 % residual of
  Section 6 is measurement-grid quantization.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core.config import jetson_nano_time_scaling, validation_reference
from repro.core.schedulers import make_scheduler
from repro.core.system import EasyDRAMSystem
from repro.core.techniques.trcd import TrcdReductionTechnique
from repro.core.timescale import ClockDomain
from repro.cpu.memtrace import load
from repro.cpu.processor import ProcessorConfig
from repro.profiling.characterize import oracle_characterize
from repro.runner import SweepPoint, SweepSpec, register
from repro.workloads.microbench import cpu_copy_blocks


def _locality_trace(system, rows: int = 8, lines_per_row: int = 48):
    """Interleave accesses across a few rows of two banks: FR-FCFS can
    batch row hits that FCFS serves in arrival (thrashing) order."""
    mapper = system.mapper
    trace = []
    for i in range(rows * lines_per_row):
        row = i % rows
        base = mapper.row_base_physical(row % 2, 10 + row)
        trace.append(load(base + (i // rows % lines_per_row) * 64, gap=1))
    return trace


def scheduler_ablation() -> dict:
    """FR-FCFS vs FCFS execution time on a row-locality workload."""
    times = {}
    for name in ("fr-fcfs", "fcfs"):
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        system.smc.scheduler = make_scheduler(name)
        result = system.run(_locality_trace(system), f"sched-{name}")
        times[name] = result.emulated_ps
    return {
        "times_ps": times,
        "frfcfs_speedup": times["fcfs"] / times["fr-fcfs"],
        "rows": [(name, ps / 1e6) for name, ps in times.items()],
    }


def mlp_sweep(mlps: tuple[int, ...] = (1, 2, 4, 8, 16),
              size: int = 64 * 1024) -> dict:
    """Streaming-copy time vs the core's outstanding-miss bound."""
    rows = []
    times = []
    for mlp in mlps:
        config = jetson_nano_time_scaling(processor=ProcessorConfig(
            name=f"mlp{mlp}", emulated_freq_hz=1.43e9, fpga_freq_hz=100e6,
            mlp=mlp, miss_window=max(8, 6 * mlp)))
        system = EasyDRAMSystem(config)
        result = system.run(cpu_copy_blocks(0, 1 << 26, size), f"mlp-{mlp}")
        times.append(result.emulated_ps)
        rows.append((mlp, result.emulated_ps / 1e6,
                     round(times[0] / result.emulated_ps, 2)))
    return {"mlps": list(mlps), "times_ps": times, "rows": rows,
            "speedup_1_to_max": times[0] / times[-1]}


def bloom_ablation(fp_rates: tuple[float, ...] = (0.3, 0.1, 0.01, 0.001),
                   rows: int = 1024) -> dict:
    """Bloom-filter sizing: bytes vs false positives vs lost benefit."""
    probe = EasyDRAMSystem(jetson_nano_time_scaling())
    geometry = probe.config.geometry
    characterization = oracle_characterize(
        probe.tile.cells, geometry, range(geometry.num_banks), range(rows))
    strong = [(b, r) for (b, r), p in characterization.profiles.items()
              if p.min_trcd_ps <= 9000]
    out_rows = []
    for fp_rate in fp_rates:
        system = EasyDRAMSystem(jetson_nano_time_scaling())
        technique = TrcdReductionTechnique(
            system, characterization, bloom_fp_rate=fp_rate)
        demoted = sum(
            1 for bank, row in strong
            if technique.trcd_for(bank, row) == technique.nominal_trcd_ps)
        out_rows.append((fp_rate, technique.bloom.size_bytes,
                         technique.bloom.num_hashes,
                         round(demoted / len(strong), 4)))
    return {"rows": out_rows, "strong_rows": len(strong)}


def quantization_sweep(
        freqs_hz: tuple[float, ...] = (50e6, 100e6, 333e6, 1e9),
        accesses: int = 1500) -> dict:
    """Validation error vs the Bender measurement clock.

    The coarser the clock that measures DRAM durations, the larger the
    time-scaling residual — the mechanism behind Section 6's <0.1 %.
    """
    def trace():
        return [load(i * 64, gap=2) for i in range(accesses)]

    ref = EasyDRAMSystem(validation_reference(
        bender_domain=ClockDomain("bender", 1e9, 1e9))).run(trace(), "ref")
    rows = []
    errors = []
    for freq in freqs_hz:
        config = validation_reference(
            name=f"meas-{freq / 1e6:.0f}MHz",
            bender_domain=ClockDomain("bender", freq, freq))
        result = EasyDRAMSystem(config).run(trace(), "q")
        err = abs(result.cycles - ref.cycles) / ref.cycles * 100
        errors.append(err)
        rows.append((f"{freq / 1e6:.0f} MHz", result.cycles, round(err, 4)))
    return {"rows": rows, "errors_pct": errors, "reference_cycles": ref.cycles}


#: The individual studies, in report order.
STUDIES = {
    "scheduler": scheduler_ablation,
    "mlp": mlp_sweep,
    "bloom": bloom_ablation,
    "quantization": quantization_sweep,
}


def sweep_point(study: str) -> dict:
    return STUDIES[study]()


def _build_points() -> tuple[SweepPoint, ...]:
    return tuple(
        SweepPoint(artifact="ablations", point_id=study,
                   fn=f"{__name__}:sweep_point", params={"study": study})
        for study in STUDIES)


def _combine(results: dict) -> dict:
    return dict(results)


def run() -> dict:
    """All four ablation studies, keyed by study name."""
    return _combine({p.point_id: sweep_point(**p.params)
                     for p in _build_points()})


SWEEP = register(SweepSpec(
    artifact="ablations", title="Ablations", module=__name__,
    build_points=_build_points, combine=_combine,
    description="beyond-paper ablations: FR-FCFS vs FCFS, pipelined-occupancy"
                " sweep, Bloom-filter false-positive-rate sweep",
    runtime="~1 s"))


def report(result: dict) -> str:
    blocks = []
    sched = result["scheduler"]
    blocks.append(format_table(
        ["scheduler", "exec us"], sched["rows"],
        title="Ablation — scheduler policy (row-locality workload)"))
    blocks.append(f"FR-FCFS speedup over FCFS: {sched['frfcfs_speedup']:.2f}x")
    blocks.append(format_table(
        ["mlp", "copy us", "speedup vs mlp=1"], result["mlp"]["rows"],
        title="\nAblation — memory-level parallelism (64 KiB copy)"))
    blocks.append(format_table(
        ["target fp rate", "filter bytes", "hashes", "strong rows demoted"],
        result["bloom"]["rows"], title="\nAblation — Bloom-filter sizing"))
    blocks.append(format_table(
        ["measurement clock", "cycles", "error %"],
        result["quantization"]["rows"],
        title="\nAblation — time-scaling error vs measurement clock"))
    return "\n".join(blocks)


def report_all() -> str:  # pragma: no cover - CLI convenience
    return report(run())


def main() -> None:  # pragma: no cover - CLI entry
    print(report_all())


if __name__ == "__main__":  # pragma: no cover
    main()
