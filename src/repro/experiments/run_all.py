"""Regenerate every paper artifact in one go.

``python -m repro.experiments.run_all`` prints Table 1, Figure 2, the
Section 6 validation, and Figures 8-14 back to back (CI-scale; set
``REPRO_FULL=1`` for the paper-scale sweeps).  Useful for producing a
complete reproduction log in one command.
"""

from __future__ import annotations

import time

from repro.experiments import (
    ablations,
    fig02_breakdown,
    fig08_latency_profile,
    fig10_rowclone_noflush,
    fig11_rowclone_clflush,
    fig12_trcd_heatmap,
    fig13_trcd_speedup,
    fig14_sim_speed,
    sec6_validation,
    tab01_platforms,
)

ARTIFACTS = (
    ("Table 1", tab01_platforms),
    ("Figure 2", fig02_breakdown),
    ("Section 6 validation", sec6_validation),
    ("Figure 8", fig08_latency_profile),
    ("Figure 10", fig10_rowclone_noflush),
    ("Figure 11", fig11_rowclone_clflush),
    ("Figure 12", fig12_trcd_heatmap),
    ("Figure 13", fig13_trcd_speedup),
    ("Figure 14", fig14_sim_speed),
)


def main() -> None:  # pragma: no cover - CLI entry
    total_start = time.perf_counter()
    for name, module in ARTIFACTS:
        start = time.perf_counter()
        print("=" * 72)
        print(f"{name} ({module.__name__})")
        print("=" * 72)
        result = module.run()
        print(module.report(result))
        print(f"\n[{name} regenerated in"
              f" {time.perf_counter() - start:.1f}s]\n")
    print("=" * 72)
    print("Ablations (repro.experiments.ablations)")
    print("=" * 72)
    print(ablations.report_all())
    print(f"\nall artifacts regenerated in"
          f" {time.perf_counter() - total_start:.1f}s")


if __name__ == "__main__":  # pragma: no cover
    main()
