"""Regenerate every paper artifact in one go.

``python -m repro.experiments.run_all`` is kept as a thin compatibility
wrapper around the unified CLI (``python -m repro run``): it prints
Table 1, Figure 2, the Section 6 validation, Figures 8-14, and the
ablations back to back through the parallel sweep runner (CI-scale; set
``REPRO_FULL=1`` for the paper-scale sweeps, ``REPRO_JOBS=N`` to shard
points across worker processes).  A failing artifact no longer aborts
the stream: the failure is reported per artifact and the exit status is
nonzero.
"""

from __future__ import annotations

from repro.experiments import (
    ablations,
    fig02_breakdown,
    fig08_latency_profile,
    fig10_rowclone_noflush,
    fig11_rowclone_clflush,
    fig12_trcd_heatmap,
    fig13_trcd_speedup,
    fig14_sim_speed,
    fig15_channel_scaling,
    sec6_validation,
    tab01_platforms,
)
from repro.runner.cli import main as cli_main

#: Kept for importers of the historical module-level table.
ARTIFACTS = (
    ("Table 1", tab01_platforms),
    ("Figure 2", fig02_breakdown),
    ("Section 6 validation", sec6_validation),
    ("Figure 8", fig08_latency_profile),
    ("Figure 10", fig10_rowclone_noflush),
    ("Figure 11", fig11_rowclone_clflush),
    ("Figure 12", fig12_trcd_heatmap),
    ("Figure 13", fig13_trcd_speedup),
    ("Figure 14", fig14_sim_speed),
    ("Figure 15", fig15_channel_scaling),
    ("Ablations", ablations),
)


def main() -> int:  # pragma: no cover - CLI entry
    return cli_main(["run"])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
