"""Figure 12 — minimum reliable tRCD of rows across two banks.

DRAM characterization heatmap: the minimum tRCD at which each row of the
first two banks serves correct data, with 4K rows per bank arranged in
64-row groups.  Paper findings: every row works below the nominal
13.5 ns; 84.5 % of rows are strong (<= 9.0 ns); weak rows cluster within
specific banks and areas.

The sweep uses the emulated profiling path (Section 8.1's profiling
requests through DRAM Bender) on a row sample and the fast oracle for
the full heatmap — the two are asserted identical on the sample.
"""

from __future__ import annotations

from repro.analysis import format_table, heatmap
from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.dram.timing import ns
from repro.experiments.common import full_runs_enabled
from repro.profiling.characterize import (
    characterize,
    oracle_characterize,
)
from repro.runner import SweepPoint, SweepSpec, register


def default_rows() -> int:
    geometry = jetson_nano_time_scaling().geometry
    return (geometry.rows_per_bank if full_runs_enabled()
            else min(1024, geometry.rows_per_bank))


def _profile(banks: int, rows: int, emulated_sample_rows: int):
    """Characterize ``banks`` x ``rows``; returns (JSON dict, oracle)."""
    system = EasyDRAMSystem(jetson_nano_time_scaling())
    oracle = oracle_characterize(
        system.tile.cells, system.config.geometry, range(banks), range(rows))
    # Cross-check a sample through the real profiling-request path.
    session = system.session("characterize")
    sample_rows = range(0, rows, max(1, rows // emulated_sample_rows))
    emulated = characterize(session, range(1), sample_rows,
                            cols_per_row_sampled=1)
    mismatches = sum(
        1 for key, profile in emulated.profiles.items()
        if oracle.profiles[key].min_trcd_ps != profile.min_trcd_ps)
    strong = oracle.strong_fraction(threshold_ps=ns(9.0))
    maps = [oracle.heatmap(bank, rows, group=64) for bank in range(banks)]
    summary_rows = []
    for bank in range(banks):
        values = [oracle.min_trcd(bank, row) / 1000.0 for row in range(rows)]
        summary_rows.append((
            f"bank {bank + 1}", round(min(values), 2),
            round(sum(values) / len(values), 2), round(max(values), 2)))
    return {
        "rows": rows,
        "banks": banks,
        "strong_fraction": strong,
        "weak_fraction": 1.0 - strong,
        "emulated_sample_mismatches": mismatches,
        "emulated_sample_size": len(emulated.profiles),
        "heatmaps": maps,
        "summary_rows": summary_rows,
    }, oracle


def sweep_point(banks: int, rows: int, emulated_sample_rows: int) -> dict:
    return _profile(banks, rows, emulated_sample_rows)[0]


def run(banks: int = 2, rows: int | None = None,
        emulated_sample_rows: int = 8) -> dict:
    """Profile ``banks`` x ``rows`` and build Figure 12's heatmap."""
    result, oracle = _profile(
        banks, rows if rows is not None else default_rows(),
        emulated_sample_rows)
    return result | {"characterization": oracle}


def _build_points(banks: int = 2, rows: int | None = None,
                  emulated_sample_rows: int = 8) -> tuple[SweepPoint, ...]:
    return (SweepPoint(
        artifact="fig12", point_id="heatmap",
        fn=f"{__name__}:sweep_point",
        params={"banks": banks,
                "rows": rows if rows is not None else default_rows(),
                "emulated_sample_rows": emulated_sample_rows}),)


def _combine(results: dict) -> dict:
    return results["heatmap"]


SWEEP = register(SweepSpec(
    artifact="fig12", title="Figure 12", module=__name__,
    build_points=_build_points, combine=_combine,
    csv_headers=("bank", "min tRCD ns", "mean", "max"),
    description="per-row minimum reliable tRCD heatmap (~84.5% strong rows)",
    runtime="~1 s"))


def report(result: dict) -> str:
    blocks = [
        "Figure 12 — minimum reliable tRCD per row (nominal 13.5 ns)",
        f"strong rows (<=9.0 ns): {result['strong_fraction'] * 100:.1f}%"
        f" (paper: 84.5%)   weak rows: {result['weak_fraction'] * 100:.1f}%"
        f" (paper: 15.5%)",
        f"emulated-vs-oracle sample mismatches:"
        f" {result['emulated_sample_mismatches']}"
        f"/{result['emulated_sample_size']}",
    ]
    for bank, grid in enumerate(result["heatmaps"]):
        blocks.append(heatmap(
            grid, title=f"\nBank {bank + 1} (row groups x rows; ns)",
            vmin=8.0, vmax=10.5))
    blocks.append("\n" + format_table(
        ["bank", "min tRCD ns", "mean", "max"], result["summary_rows"]))
    return "\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
