"""Figure 12 — minimum reliable tRCD of rows across two banks.

DRAM characterization heatmap: the minimum tRCD at which each row of the
first two banks serves correct data, with 4K rows per bank arranged in
64-row groups.  Paper findings: every row works below the nominal
13.5 ns; 84.5 % of rows are strong (<= 9.0 ns); weak rows cluster within
specific banks and areas.

The sweep uses the emulated profiling path (Section 8.1's profiling
requests through DRAM Bender) on a row sample and the fast oracle for
the full heatmap — the two are asserted identical on the sample.
"""

from __future__ import annotations

from repro.analysis import format_table, heatmap
from repro.core.config import jetson_nano_time_scaling
from repro.core.system import EasyDRAMSystem
from repro.dram.timing import ns
from repro.experiments.common import full_runs_enabled
from repro.profiling.characterize import (
    characterize,
    oracle_characterize,
)


def run(banks: int = 2, rows: int | None = None,
        emulated_sample_rows: int = 8) -> dict:
    """Profile ``banks`` x ``rows`` and build Figure 12's heatmap."""
    system = EasyDRAMSystem(jetson_nano_time_scaling())
    if rows is None:
        rows = (system.config.geometry.rows_per_bank if full_runs_enabled()
                else min(1024, system.config.geometry.rows_per_bank))
    oracle = oracle_characterize(
        system.tile.cells, system.config.geometry, range(banks), range(rows))
    # Cross-check a sample through the real profiling-request path.
    session = system.session("characterize")
    sample_rows = range(0, rows, max(1, rows // emulated_sample_rows))
    emulated = characterize(session, range(1), sample_rows,
                            cols_per_row_sampled=1)
    mismatches = sum(
        1 for key, profile in emulated.profiles.items()
        if oracle.profiles[key].min_trcd_ps != profile.min_trcd_ps)
    strong = oracle.strong_fraction(threshold_ps=ns(9.0))
    maps = {
        bank: oracle.heatmap(bank, rows, group=64) for bank in range(banks)}
    return {
        "rows": rows,
        "banks": banks,
        "strong_fraction": strong,
        "weak_fraction": 1.0 - strong,
        "emulated_sample_mismatches": mismatches,
        "emulated_sample_size": len(emulated.profiles),
        "heatmaps": maps,
        "characterization": oracle,
    }


def report(result: dict) -> str:
    blocks = [
        "Figure 12 — minimum reliable tRCD per row (nominal 13.5 ns)",
        f"strong rows (<=9.0 ns): {result['strong_fraction'] * 100:.1f}%"
        f" (paper: 84.5%)   weak rows: {result['weak_fraction'] * 100:.1f}%"
        f" (paper: 15.5%)",
        f"emulated-vs-oracle sample mismatches:"
        f" {result['emulated_sample_mismatches']}"
        f"/{result['emulated_sample_size']}",
    ]
    for bank, grid in result["heatmaps"].items():
        blocks.append(heatmap(
            grid, title=f"\nBank {bank + 1} (row groups x rows; ns)",
            vmin=8.0, vmax=10.5))
    summary_rows = []
    char = result["characterization"]
    for bank in range(result["banks"]):
        values = [char.min_trcd(bank, row) / 1000.0
                  for row in range(result["rows"])]
        summary_rows.append((
            f"bank {bank + 1}", round(min(values), 2),
            round(sum(values) / len(values), 2), round(max(values), 2)))
    blocks.append("\n" + format_table(
        ["bank", "min tRCD ns", "mean", "max"], summary_rows))
    return "\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
