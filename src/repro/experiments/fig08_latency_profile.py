"""Figure 8 — memory latency profile (lmbench-style).

Average cycles per load instruction for growing working-set sizes on:

* ``EasyDRAM - No Time Scaling`` — the 50 MHz system; few processor
  cycles pass while DRAM serves a request, so main memory looks absurdly
  fast;
* ``EasyDRAM - Time Scaling`` — the Cortex-A57 model; and
* ``Cortex A57`` — the real Jetson Nano board (our native-clock
  reference configuration with its 2 MiB L2).

Expected shape: all three step up at the L1 and L2 boundaries; in the
main-memory region the No-Time-Scaling line sits far below the other
two, while Time Scaling tracks the A57 reference (the A57's L2 is 2 MiB
vs EasyDRAM's 512 KiB, so their L2->DRAM steps differ).
"""

from __future__ import annotations

from repro.analysis import format_table, line_chart
from repro.core.config import (
    cortex_a57_reference,
    jetson_nano_time_scaling,
    pidram_no_time_scaling,
)
from repro.core.system import EasyDRAMSystem
from repro.runner import SweepPoint, SweepSpec, register
from repro.workloads import lmbench, microbench

CONFIGS = (
    ("EasyDRAM - No Time Scaling", pidram_no_time_scaling),
    ("EasyDRAM - Time Scaling", jetson_nano_time_scaling),
    ("Cortex A57", cortex_a57_reference),
)


def sweep_point(config: str, size_kib: int, max_accesses: int) -> dict:
    """Steady-state cycles/load for one (configuration, size) point.

    Like the real ``lat_mem_rd``, each point reports steady state: the
    working set is touched once (untimed warm-up) before the dependent
    chase is measured, so capacity — not compulsory misses — decides
    where each cache step appears.
    """
    factory = dict(CONFIGS)[config]
    size = size_kib * 1024
    accesses = lmbench.accesses_for(size, max_accesses=max_accesses)
    system = EasyDRAMSystem(factory())
    session = system.session(f"lat-{size_kib}KiB")
    session.run_trace(microbench.touch_blocks(0, size))
    before_cycles = session.processor.cycles
    before_accesses = session.processor.stats.accesses
    session.run_trace(lmbench.pointer_chase_blocks(size, accesses, base_addr=0))
    result = session.finish()
    cycles = result.cycles - before_cycles
    measured = result.accesses - before_accesses
    return {"config": config, "size_kib": size_kib,
            "cycles_per_load": cycles / measured}


def _build_points(sizes_kib: tuple[int, ...] = lmbench.FIG8_SIZES_KIB,
                  max_accesses: int = 12_000) -> tuple[SweepPoint, ...]:
    return tuple(
        SweepPoint(
            artifact="fig08", point_id=f"{name}-{size_kib}KiB".lower()
            .replace(" ", ""),
            fn=f"{__name__}:sweep_point",
            params={"config": name, "size_kib": size_kib,
                    "max_accesses": max_accesses})
        for size_kib in sizes_kib for name, _factory in CONFIGS)


def _combine(results: dict) -> dict:
    # Each point's payload carries its own (config, size) coordinates,
    # so combining never parses point ids.
    series: dict[str, list[float]] = {name: [] for name, _ in CONFIGS}
    sizes_kib: list[int] = []
    for value in results.values():
        if value["size_kib"] not in sizes_kib:
            sizes_kib.append(value["size_kib"])
        series[value["config"]].append(value["cycles_per_load"])
    return {"sizes_kib": sizes_kib, "series": series}


def run(sizes_kib: tuple[int, ...] = lmbench.FIG8_SIZES_KIB,
        max_accesses: int = 12_000) -> dict:
    """Measure steady-state cycles/load per size per configuration."""
    points = _build_points(sizes_kib=tuple(sizes_kib),
                           max_accesses=max_accesses)
    return _combine({p.point_id: sweep_point(**p.params) for p in points})


SWEEP = register(SweepSpec(
    artifact="fig08", title="Figure 8", module=__name__,
    build_points=_build_points, combine=_combine,
    description="lmbench memory-latency profile: No-Time-Scaling vs"
                " Time-Scaling vs the real Cortex A57",
    runtime="~45 s"))


def report(result: dict) -> str:
    sizes = result["sizes_kib"]
    series = result["series"]
    rows = [
        [f"{s} KiB"] + [round(series[name][i], 1) for name, _ in CONFIGS]
        for i, s in enumerate(sizes)
    ]
    table = format_table(
        ["size"] + [name for name, _ in CONFIGS], rows,
        title="Figure 8 — average cycles per load vs working-set size")
    chart = line_chart(
        sizes, series, title="\nFigure 8 (chart)",
        ylabel="cycles per LD instruction")
    return table + "\n" + chart


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
