"""Figure 16 (extension) — multi-core contention and scheduler fairness.

The paper's evaluated system drives the memory controller from a single
in-order core, so the request table never holds competing streams.  This
experiment extends the reproduction beyond the paper: the mixed workload
``stream+init+pointer_chase`` (a bandwidth-hungry copy stream, a store
stream whose writebacks fight the reads, and a latency-critical
dependent-load chase) runs on 1, 2, and 4 cores sharing one DDR4
channel, under both schedulers the EasyAPI software library ships, and
we report

* **per-core slowdown** — each core's completion cycles under contention
  over its solo run on an identical system.  Average slowdown must grow
  *monotonically* with core count (more cores, more contention) and is
  exactly 1.0 at one core (the solo run is the run);
* **max/min fairness** — the classic unfairness metric (most-slowed over
  least-slowed core).  The pointer chaser, which cannot overlap misses,
  is always the victim;
* **row-hit rate per scheduler** — FR-FCFS (with the anti-starvation
  age cap) recovers row-buffer locality that FCFS's strict arrival
  order destroys when streams from different cores interleave, so its
  row-hit rate must be at least FCFS's at every core count.

Every point is a deterministic emulation (no wall-time axis), so the
sweep is parallel-safe and the assertions above are exact, not
statistical.
"""

from __future__ import annotations

from repro.analysis import bar_chart, format_table
from repro.core.config import ControllerConfig, jetson_nano_time_scaling
from repro.core.workload_mix import WorkloadMix, run_mix
from repro.experiments.common import full_runs_enabled, scaled_cache_overrides
from repro.runner import SweepPoint, SweepSpec, register

#: Core counts swept at fixed (single-channel DDR4) topology.
CORE_COUNTS = (1, 2, 4)

#: Both schedulers of the EasyAPI software library (Table 2).
SCHEDULERS = ("fcfs", "fr-fcfs")

#: The mixed workload, cycled over the cores of each point.
MIX_SPEC = "stream+init+pointer_chase"

#: FR-FCFS anti-starvation guard: the oldest table entry is served once
#: this many newer arrivals have bypassed it.
AGE_CAP = 64


def sweep_point(cores: int, scheduler: str, scale: int = 1) -> dict:
    """Run the mix on ``cores`` cores under ``scheduler``."""
    config = jetson_nano_time_scaling(
        **scaled_cache_overrides()).with_overrides(
        controller=ControllerConfig(
            scheduler=scheduler,
            scheduler_age_cap=AGE_CAP if scheduler == "fr-fcfs" else None))
    mix = WorkloadMix.parse(MIX_SPEC, cores=cores)
    run = run_mix(config, mix, scale=scale)
    result = run.result
    row_total = result.row_hits + result.row_misses + result.row_conflicts
    return {
        "cores": cores,
        "scheduler": scheduler,
        "mix": list(mix.names),
        "emulated_ms": result.emulated_ps / 1e9,
        "avg_slowdown": run.avg_slowdown,
        "max_slowdown": run.max_slowdown,
        "min_slowdown": run.min_slowdown,
        "unfairness": run.unfairness,
        "row_hit_rate": result.row_hits / row_total if row_total else 0.0,
        "core_cycles": run.core_cycles,
        "solo_cycles": run.solo_cycles,
        "slowdowns": run.slowdowns,
        # per_core slices only exist on multi-core sessions; the 1-core
        # point's lone entry is the channel total.
        "requests_per_core": (
            [c.serviced_reads + c.serviced_writes for c in result.per_core]
            or [sum(result.requests_per_channel)]),
    }


def _build_points(core_counts: tuple[int, ...] = CORE_COUNTS,
                  schedulers: tuple[str, ...] = SCHEDULERS,
                  scale: int | None = None) -> tuple[SweepPoint, ...]:
    if scale is None:
        scale = 2 if full_runs_enabled() else 1
    return tuple(
        SweepPoint(artifact="fig16", point_id=f"{cores}core-{scheduler}",
                   fn=f"{__name__}:sweep_point",
                   params={"cores": cores, "scheduler": scheduler,
                           "scale": scale})
        for scheduler in schedulers for cores in core_counts)


def _combine(results: dict) -> dict:
    points = sorted(results.values(),
                    key=lambda v: (v["scheduler"], v["cores"]))
    rows = [(v["scheduler"], v["cores"],
             round(v["avg_slowdown"], 3), round(v["max_slowdown"], 3),
             round(v["unfairness"], 3), round(v["row_hit_rate"], 4),
             round(v["emulated_ms"], 4))
            for v in points]
    by_sched = {s: [v for v in points if v["scheduler"] == s]
                for s in {v["scheduler"] for v in points}}
    monotonic = {
        s: all(b["avg_slowdown"] >= a["avg_slowdown"] - 1e-9
               for a, b in zip(vals, vals[1:]))
        for s, vals in by_sched.items()}
    # FR-FCFS vs FCFS row-hit rate at each shared core count.
    frfcfs_wins = True
    core_counts = sorted({v["cores"] for v in points})
    if "fcfs" in by_sched and "fr-fcfs" in by_sched:
        fcfs = {v["cores"]: v["row_hit_rate"] for v in by_sched["fcfs"]}
        fr = {v["cores"]: v["row_hit_rate"] for v in by_sched["fr-fcfs"]}
        frfcfs_wins = all(fr[c] >= fcfs[c] - 1e-9 for c in core_counts
                          if c in fr and c in fcfs)
    return {
        "rows": rows,
        "core_counts": core_counts,
        "schedulers": sorted(by_sched),
        "avg_slowdowns": {s: [v["avg_slowdown"] for v in vals]
                          for s, vals in by_sched.items()},
        "row_hit_rates": {s: [v["row_hit_rate"] for v in vals]
                          for s, vals in by_sched.items()},
        "unfairness": {s: [v["unfairness"] for v in vals]
                       for s, vals in by_sched.items()},
        "slowdown_monotonic": monotonic,
        "frfcfs_hit_rate_wins": frfcfs_wins,
        "details": {f"{v['cores']}core-{v['scheduler']}": v for v in points},
    }


def run(core_counts: tuple[int, ...] = CORE_COUNTS,
        schedulers: tuple[str, ...] = SCHEDULERS,
        scale: int | None = None) -> dict:
    points = _build_points(core_counts=tuple(core_counts),
                           schedulers=tuple(schedulers), scale=scale)
    return _combine({p.point_id: sweep_point(**p.params) for p in points})


SWEEP = register(SweepSpec(
    artifact="fig16", title="Figure 16 (core contention)", module=__name__,
    build_points=_build_points, combine=_combine,
    csv_headers=("scheduler", "cores", "avg slowdown", "max slowdown",
                 "unfairness", "row-hit rate", "emulated ms"),
    description="multi-core contention: slowdown, max/min fairness, and"
                " row-hit rate for FCFS vs FR-FCFS on a shared channel",
    runtime="~3 s"))


def report(result: dict) -> str:
    table = format_table(
        ["scheduler", "cores", "avg slowdown", "max slowdown", "unfairness",
         "row-hit rate", "emulated ms"],
        result["rows"],
        title=f"Figure 16 — contention on the {MIX_SPEC} mix")
    labels = [f"{c}core" for c in result["core_counts"]]
    chart = bar_chart(
        labels,
        {s: vals for s, vals in result["avg_slowdowns"].items()},
        title="\nFigure 16 (chart): average slowdown vs core count")
    notes = []
    for sched, ok in sorted(result["slowdown_monotonic"].items()):
        notes.append(f"{sched}: slowdown monotone in cores"
                     if ok else f"WARNING: {sched} slowdown not monotone")
    notes.append("FR-FCFS row-hit rate >= FCFS at every core count"
                 if result["frfcfs_hit_rate_wins"] else
                 "WARNING: FCFS beat FR-FCFS on row-hit rate")
    return table + "\n" + chart + "\n" + "\n".join(notes)


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
