"""Shared plumbing for the experiment harnesses.

Every experiment module exposes ``run(...) -> dict`` returning the rows
it printed, so benchmarks and tests can assert on shapes.  Problem sizes
default to values that keep the full benchmark suite in minutes of host
time; the ``REPRO_FULL`` environment variable switches to the paper-scale
sweeps.
"""

from __future__ import annotations

import os

from repro.core.config import SystemConfig
from repro.core.system import EasyDRAMSystem
from repro.core.stats import RunResult
from repro.cpu.memtrace import Trace


def full_runs_enabled() -> bool:
    """Whether to run paper-scale sweeps (slow) instead of CI-scale."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0", "false")


def default_jobs() -> int:
    """Default worker-process count for the sweep runner.

    ``REPRO_JOBS`` mirrors the CLI's ``--jobs``: experiment sweeps are
    embarrassingly parallel (every point builds fresh deterministic
    systems), so CI and batch hosts can shard them without changing any
    command lines.
    """
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def polybench_size() -> str:
    return "small" if full_runs_enabled() else "mini"


def run_easydram(config: SystemConfig, trace: Trace, name: str) -> RunResult:
    """One fresh EasyDRAM run of a trace."""
    return EasyDRAMSystem(config).run(trace, workload_name=name)


def scaled_cache_overrides() -> dict:
    """Cache sizes scaled down with the problem sizes (see EXPERIMENTS.md).

    PolyBench at paper-scale ("large") datasets spills a 512 KiB L2; our
    reduced datasets would fit, hiding all memory behaviour.  Scaling the
    caches with the data restores the paper's memory intensity spread.
    """
    from repro.core.config import CacheConfig

    return {
        "l1": CacheConfig(size_bytes=4 * 1024, assoc=2, hit_latency=2),
        "l2": CacheConfig(size_bytes=32 * 1024, assoc=8, hit_latency=12),
    }
