"""Section 6 — time-scaling validation.

Compares EasyDRAM with time scaling (a 100 MHz FPGA processor emulating
1 GHz) against the RTL reference system (everything natively at 1 GHz,
same scheduling logic in hardware) across PolyBench workloads plus the
lmbench memory-read-latency microbenchmark.

Paper result: execution time and memory latency differ by <0.1 % on
average and <1 % at most across 29 microbenchmarks.  The residual error
comes from measuring DRAM durations on the FPGA clock grid.
"""

from __future__ import annotations

from repro.analysis import arith_mean, format_table
from repro.core.config import validation_reference, validation_time_scaled
from repro.core.system import EasyDRAMSystem
from repro.experiments.common import polybench_size
from repro.runner import SweepPoint, SweepSpec, register
from repro.workloads import lmbench, polybench


def _make_trace(workload: str, size: str):
    if workload == "lmbench-lat":
        return lmbench.pointer_chase_blocks(256 * 1024, 6000)
    return polybench.trace_blocks(workload, size)


def sweep_point(workload: str, size: str) -> dict:
    """Reference vs time-scaled run of one workload; error percentages."""
    ref = EasyDRAMSystem(validation_reference()).run(
        _make_trace(workload, size), workload)
    ts = EasyDRAMSystem(validation_time_scaled()).run(
        _make_trace(workload, size), workload)
    exec_err = abs(ts.cycles - ref.cycles) / ref.cycles * 100
    ref_lat = max(ref.avg_request_latency_cycles, 1e-9)
    lat_err = (abs(ts.avg_request_latency_cycles
                   - ref.avg_request_latency_cycles) / ref_lat * 100)
    return {"ref_cycles": ref.cycles, "ts_cycles": ts.cycles,
            "exec_err": exec_err, "lat_err": lat_err}


def _build_points(kernels: list[str] | None = None,
                  size: str | None = None) -> tuple[SweepPoint, ...]:
    size = size or polybench_size()
    names = list(kernels if kernels is not None else polybench.names())
    names.append("lmbench-lat")
    return tuple(
        SweepPoint(artifact="sec6", point_id=name,
                   fn=f"{__name__}:sweep_point",
                   params={"workload": name, "size": size})
        for name in names)


def _combine(results: dict) -> dict:
    rows = []
    exec_errors = []
    latency_errors = []
    for name, value in results.items():
        exec_errors.append(value["exec_err"])
        latency_errors.append(value["lat_err"])
        rows.append((name, value["ref_cycles"], value["ts_cycles"],
                     round(value["exec_err"], 4), round(value["lat_err"], 4)))
    return {
        "avg_exec_error_pct": arith_mean(exec_errors),
        "max_exec_error_pct": max(exec_errors),
        "avg_latency_error_pct": arith_mean(latency_errors),
        "max_latency_error_pct": max(latency_errors),
        "rows": rows,
    }


def run(kernels: list[str] | None = None, size: str | None = None) -> dict:
    """Run the validation sweep; returns per-workload error rows."""
    points = _build_points(kernels=kernels, size=size)
    return _combine({p.point_id: sweep_point(**p.params) for p in points})


SWEEP = register(SweepSpec(
    artifact="sec6", title="Section 6 validation", module=__name__,
    build_points=_build_points, combine=_combine,
    csv_headers=("workload", "ref cycles", "time-scaled cycles",
                 "exec err %", "mem-lat err %"),
    description="time-scaling validation: scaled 100 MHz system vs 1 GHz"
                " reference, <0.1% average error",
    runtime="~4 s"))


def report(result: dict) -> str:
    table = format_table(
        ["workload", "ref cycles", "time-scaled cycles",
         "exec err %", "mem-lat err %"],
        result["rows"],
        title="Section 6 — time scaling vs 1 GHz RTL reference")
    tail = (
        f"\naverage execution-time error: {result['avg_exec_error_pct']:.4f}%"
        f" (paper: <0.1%)"
        f"\nmaximum execution-time error: {result['max_exec_error_pct']:.4f}%"
        f" (paper: <1%)")
    return table + tail


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
