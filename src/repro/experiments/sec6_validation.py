"""Section 6 — time-scaling validation.

Compares EasyDRAM with time scaling (a 100 MHz FPGA processor emulating
1 GHz) against the RTL reference system (everything natively at 1 GHz,
same scheduling logic in hardware) across PolyBench workloads plus the
lmbench memory-read-latency microbenchmark.

Paper result: execution time and memory latency differ by <0.1 % on
average and <1 % at most across 29 microbenchmarks.  The residual error
comes from measuring DRAM durations on the FPGA clock grid.
"""

from __future__ import annotations

from repro.analysis import arith_mean, format_table
from repro.core.config import validation_reference, validation_time_scaled
from repro.core.system import EasyDRAMSystem
from repro.experiments.common import polybench_size
from repro.workloads import lmbench, polybench


def run(kernels: list[str] | None = None, size: str | None = None) -> dict:
    """Run the validation sweep; returns per-workload error rows."""
    size = size or polybench_size()
    names = kernels if kernels is not None else polybench.names()
    rows = []
    exec_errors = []
    latency_errors = []
    workloads: list[tuple[str, object]] = [
        (name, lambda name=name: polybench.trace(name, size)) for name in names]
    workloads.append(
        ("lmbench-lat", lambda: lmbench.pointer_chase(256 * 1024, 6000)))
    for name, make_trace in workloads:
        ref = EasyDRAMSystem(validation_reference()).run(make_trace(), name)
        ts = EasyDRAMSystem(validation_time_scaled()).run(make_trace(), name)
        exec_err = abs(ts.cycles - ref.cycles) / ref.cycles * 100
        ref_lat = max(ref.avg_request_latency_cycles, 1e-9)
        lat_err = (abs(ts.avg_request_latency_cycles
                       - ref.avg_request_latency_cycles) / ref_lat * 100)
        exec_errors.append(exec_err)
        latency_errors.append(lat_err)
        rows.append((name, ref.cycles, ts.cycles,
                     round(exec_err, 4), round(lat_err, 4)))
    summary = {
        "avg_exec_error_pct": arith_mean(exec_errors),
        "max_exec_error_pct": max(exec_errors),
        "avg_latency_error_pct": arith_mean(latency_errors),
        "max_latency_error_pct": max(latency_errors),
        "rows": rows,
    }
    return summary


def report(result: dict) -> str:
    table = format_table(
        ["workload", "ref cycles", "time-scaled cycles",
         "exec err %", "mem-lat err %"],
        result["rows"],
        title="Section 6 — time scaling vs 1 GHz RTL reference")
    tail = (
        f"\naverage execution-time error: {result['avg_exec_error_pct']:.4f}%"
        f" (paper: <0.1%)"
        f"\nmaximum execution-time error: {result['max_exec_error_pct']:.4f}%"
        f" (paper: <1%)")
    return table + tail


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
