"""Figure 11 — RowClone speedup, CLFLUSH setting.

Same sweep as Figure 10 but in the worst-case coherence setting: the
operands have dirty cached copies, so the RowClone variant must flush
(write back / invalidate) cache lines before each in-DRAM operation
while the CPU variant enjoys the warm cache.

Paper shapes: Copy speedups compress to ~3-4x; Init *degrades* system
performance at small sizes (<= 256 KiB with time scaling) and only wins
above; benefits grow with array size as flush work amortizes.
"""

from __future__ import annotations

from repro.experiments import fig10_rowclone_noflush as fig10
from repro.runner import SweepPoint, SweepSpec, register


def run(sizes: tuple[int, ...] | None = None) -> dict:
    return fig10.run(sizes=sizes, clflush=True)


def report(result: dict) -> str:
    return fig10.report(result, figure="Figure 11", setting="CLFLUSH")


def _build_points(sizes: tuple[int, ...] | None = None
                  ) -> tuple[SweepPoint, ...]:
    return fig10._build_points(sizes=sizes, clflush=True, artifact="fig11")


def _combine(results: dict) -> dict:
    return fig10._combine(results, clflush=True)


SWEEP = register(SweepSpec(
    artifact="fig11", title="Figure 11", module=__name__,
    build_points=_build_points, combine=_combine,
    description="RowClone speedup in the CLFLUSH (dirty-cache) setting",
    runtime="~50 s"))


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
