"""Request schedulers for the software memory controller.

The software library of EasyAPI (Table 2) ships FCFS and FR-FCFS
scheduler implementations.  Schedulers select the next request from the
software request table given the current bank states; their *decision
cost* in controller cycles is charged by the cost model so slower
algorithms genuinely slow the controller down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.processor import MemoryRequest
from repro.dram.address import DramAddress
from repro.dram.bank import BankState


@dataclass
class TableEntry:
    """A request decoded and parked in the software request table."""

    request: MemoryRequest
    dram: DramAddress
    arrival_order: int

    @property
    def is_write(self) -> bool:
        return self.request.is_writeback


class Scheduler:
    """Interface: pick the next table entry to service."""

    name = "abstract"

    def select(self, table: list[TableEntry],
               banks: list[BankState]) -> TableEntry:
        raise NotImplementedError

    def decision_cost(self, table_len: int) -> int:
        """Controller cycles the decision takes (charged by the cost model)."""
        raise NotImplementedError


class FCFS(Scheduler):
    """First come, first serve: strictly oldest request first."""

    name = "fcfs"

    def select(self, table: list[TableEntry],
               banks: list[BankState]) -> TableEntry:
        if not table:
            raise ValueError("cannot schedule from an empty request table")
        return min(table, key=lambda e: e.arrival_order)

    def decision_cost(self, table_len: int) -> int:
        return 3 + table_len


class FRFCFS(Scheduler):
    """First ready, first come, first serve (Rixner et al.).

    Row-buffer hits are prioritized over row misses; ties break by age.
    This maximizes row-buffer locality and is the paper's default.
    """

    name = "fr-fcfs"

    def select(self, table: list[TableEntry],
               banks: list[BankState]) -> TableEntry:
        if not table:
            raise ValueError("cannot schedule from an empty request table")
        best: TableEntry | None = None
        best_key: tuple[int, int, int] | None = None
        for entry in table:
            bank = banks[entry.dram.bank]
            row_hit = bank.open_row == entry.dram.row
            # Reads (fills) are latency-critical; writebacks are posted,
            # so they drain behind reads (standard write deprioritization).
            key = (1 if entry.is_write else 0,
                   0 if row_hit else 1, entry.arrival_order)
            if best_key is None or key < best_key:
                best, best_key = entry, key
        assert best is not None
        return best

    def decision_cost(self, table_len: int) -> int:
        # Scanning the table for row hits costs a couple of cycles/entry.
        return 4 + 2 * table_len


def make_scheduler(name: str) -> Scheduler:
    """Factory used by the controller config."""
    if name == "fcfs":
        return FCFS()
    if name == "fr-fcfs":
        return FRFCFS()
    raise ValueError(f"unknown scheduler {name!r}")
